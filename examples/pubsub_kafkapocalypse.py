#!/usr/bin/env python
"""The Parse.ly "Kafkapocalypse" on a real publish-subscribe substrate.

The Table 1 entry for Parse.ly 2015 describes a cascading failure
through a message bus.  This example rebuilds it with the
:mod:`repro.bus` broker — actual topics, bounded queues, at-least-once
delivery — and stages the datastore failure with Gremlin:

1. analytics events flow publisher -> broker -> datastore consumer;
2. ``Crash('datastore')`` kills the consumer edge;
3. the broker's per-subscriber queue fills; with backpressure
   configured, publishers start receiving 503s — the outage;
4. the hardened configuration (drop-on-overflow + dead-lettering)
   keeps publishers healthy through the same fault.

Run:  python examples/pubsub_kafkapocalypse.py
"""

from repro import Crash, Gremlin
from repro.bus import BrokerConfig, broker_definition, publish
from repro.http import HttpResponse
from repro.loadgen import ClosedLoopLoad
from repro.microservice import Application, PolicySpec, ServiceDefinition


def publisher_handler(ctx, request):
    yield from ctx.work()
    response = yield from publish(ctx, "bus", "pageviews", b"view-event", parent=request)
    return HttpResponse(response.status, body=response.body)


def consumer_handler(ctx, request):
    yield from ctx.work()
    ctx.state["consumed"] = ctx.state.get("consumed", 0) + 1
    return HttpResponse(200, body=b"stored")


def build(drop_on_overflow: bool):
    app = Application("kafkapocalypse")
    app.add_service(
        ServiceDefinition(
            "publisher",
            handler=publisher_handler,
            dependencies={"bus": PolicySpec(timeout=2.0)},
        )
    )
    app.add_service(
        broker_definition(
            "bus",
            topics={"pageviews": ["datastore"]},
            subscriber_policy=PolicySpec(timeout=0.5),
            config=BrokerConfig(
                queue_limit=10,
                redelivery_delay=0.5,
                drop_on_overflow=drop_on_overflow,
                max_redeliveries=5,
            ),
        )
    )
    app.add_service(ServiceDefinition("datastore", handler=consumer_handler))
    return app.deploy(seed=77)


def run(drop_on_overflow: bool) -> None:
    label = "hardened (shed load)" if drop_on_overflow else "as-deployed (backpressure)"
    print(f"\n=== Broker configured: {label} ===")
    deployment = build(drop_on_overflow)
    source = deployment.add_traffic_source("publisher")
    gremlin = Gremlin(deployment)

    healthy = ClosedLoopLoad(num_requests=5)
    healthy.run(source)
    print(f"  healthy phase: publish statuses {sorted(set(healthy.result.statuses))}")

    gremlin.inject(Crash("datastore"))
    outage = ClosedLoopLoad(num_requests=20)
    outage.run(source)
    blocked = sum(1 for status in outage.result.statuses if status != 202)
    print(f"  datastore crashed: {blocked}/20 publishes rejected (503)")

    broker_state = deployment.instances_of("bus")[0].ctx.state["broker"]
    print(
        f"  broker: delivered={broker_state['delivered']}"
        f" dropped={broker_state['dropped']}"
        f" dead-lettered={len(broker_state['dead_letter'])}"
    )
    gremlin.clear()


def main() -> None:
    print("Parse.ly 2015 'Kafkapocalypse' on the pub-sub substrate")
    run(drop_on_overflow=False)
    run(drop_on_overflow=True)


if __name__ == "__main__":
    main()
