#!/usr/bin/env python
"""Chained failures (paper Section 4.2): conditional multi-step testing.

The operator escalates based on what the previous step showed::

    Overload(ServiceB)
    if not HasBoundedRetries(ServiceA, ServiceB, 5):
        raise 'No bounded retries'
    else:
        Crash(ServiceB)
        HasCircuitBreaker(ServiceA, ServiceB, ...)

Quick feedback (each step completes in well under a second of wall
time) is what makes this interactive style practical.

Run:  python examples/chained_failures.py
"""

import time

from repro import (
    ClosedLoopLoad,
    Crash,
    Gremlin,
    HasBoundedRetries,
    HasCircuitBreaker,
    Overload,
    PolicySpec,
    build_twotier,
)
from repro.http import HttpResponse


def main() -> None:
    policy = PolicySpec(
        timeout=0.5,
        max_retries=5,
        retry_backoff_base=0.02,
        breaker_failure_threshold=5,
        breaker_recovery_timeout=5.0,
        fallback=lambda request: HttpResponse(200, body=b"cached"),
    )
    deployment = build_twotier(policy=policy).deploy(seed=13)
    source = deployment.add_traffic_source("ServiceA")
    gremlin = Gremlin(deployment)
    sim = deployment.sim

    wall_start = time.perf_counter()

    # --- Step 1: overload ServiceB, check for bounded retries -----------
    gremlin.inject(Overload("ServiceB", abort_fraction=1.0))
    ClosedLoopLoad(num_requests=1).run(source)
    step1 = gremlin.check(HasBoundedRetries("ServiceA", "ServiceB", 5, window="30s"))
    gremlin.clear()
    print(f"step 1 (Overload): {step1}")
    if not step1.passed:
        raise SystemExit("No bounded retries — fix ServiceA before testing further.")

    # Give the tripped breaker healthy traffic so it closes again
    # before the next experiment (state persists, as in production).
    sim.run(until=sim.now + 6.0)
    ClosedLoopLoad(num_requests=3, think_time=0.1, uri="/warmup").run(source)

    # --- Step 2: escalate to a crash, check the circuit breaker ---------
    window_start = sim.now
    gremlin.inject(Crash("ServiceB"))
    ClosedLoopLoad(num_requests=60, think_time=0.2).run(source)
    step2 = gremlin.check(
        HasCircuitBreaker("ServiceA", "ServiceB", threshold=5, tdelta="4s"),
        since=window_start,
    )
    gremlin.clear()
    print(f"step 2 (Crash):    {step2}")

    wall = time.perf_counter() - wall_start
    print(f"\nBoth steps (covering {sim.now:.0f}s of virtual time) ran in {wall:.2f}s wall time.")


if __name__ == "__main__":
    main()
