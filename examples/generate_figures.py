#!/usr/bin/env python
"""Dump plottable data series for every reproduced figure.

Writes tab-separated files under ``figures/`` (next to this script, or
a directory given as argv[1]):

* ``fig5_delay_<D>s.tsv``  — response-time CDF per injected delay
  (naive and hardened series side by side);
* ``fig6_breaker.tsv``     — aborted/delayed-phase CDFs, naive and
  hardened;
* ``fig7_orchestration.tsv`` — orchestration/assertion time vs services;
* ``fig8_matching.tsv``    — per-request matching-time CDF per rule
  count and matcher strategy.

Each file is ready for gnuplot / matplotlib / a spreadsheet, so the
paper's plots can be redrawn from this reproduction's data.

Run:  python examples/generate_figures.py [output_dir]
"""

import pathlib
import random
import sys
import time

from repro.agent import abort, make_matcher
from repro.analysis import Cdf
from repro.apps import (
    ELASTICSEARCH,
    TREE_ROOT,
    WORDPRESS,
    build_tree_app,
    build_wordpress_app,
    tree_service_names,
)
from repro.core import AbortCalls, DelayCalls, Gremlin, HasTimeouts
from repro.core.translator import RecipeTranslator
from repro.loadgen import ClosedLoopLoad

STEPS = 50  # points per CDF series


def cdf_column(latencies):
    cdf = Cdf(latencies)
    return [cdf.value_at(index / STEPS) for index in range(STEPS + 1)]


def write_tsv(path, headers, columns):
    rows = zip(*columns)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("\t".join(headers) + "\n")
        for row in rows:
            handle.write("\t".join(f"{value:.6g}" for value in row) + "\n")
    print(f"  wrote {path}")


def fig5(out_dir):
    for injected in (1.0, 2.0, 3.0, 4.0):
        columns = [[index / STEPS for index in range(STEPS + 1)]]
        headers = ["cumfrac"]
        for hardened, label in ((False, "naive"), (True, "hardened")):
            deployment = build_wordpress_app(hardened=hardened).deploy(seed=5)
            source = deployment.add_traffic_source(WORDPRESS)
            Gremlin(deployment).inject(
                DelayCalls(WORDPRESS, ELASTICSEARCH, interval=injected)
            )
            load = ClosedLoopLoad(num_requests=100)
            load.run(source)
            columns.append(cdf_column(load.result.latencies))
            headers.append(f"{label}_s")
        write_tsv(out_dir / f"fig5_delay_{injected:.0f}s.tsv", headers, columns)


def fig6(out_dir):
    columns = [[index / STEPS for index in range(STEPS + 1)]]
    headers = ["cumfrac"]
    for hardened, label in ((False, "naive"), (True, "hardened")):
        deployment = build_wordpress_app(hardened=hardened).deploy(seed=6)
        source = deployment.add_traffic_source(WORDPRESS)
        Gremlin(deployment).inject(
            AbortCalls(WORDPRESS, ELASTICSEARCH, error=503, max_matches=100),
            DelayCalls(WORDPRESS, ELASTICSEARCH, interval=3.0, max_matches=100),
        )
        load = ClosedLoopLoad(num_requests=200)
        load.run(source)
        columns.append(cdf_column(load.result.latencies[:100]))
        columns.append(cdf_column(load.result.latencies[100:]))
        headers.extend([f"{label}_aborted_s", f"{label}_delayed_s"])
    write_tsv(out_dir / "fig6_breaker.tsv", headers, columns)


def fig7(out_dir):
    headers = ["services", "orchestration_ms", "assertion_ms"]
    services_column, orch_column, assert_column = [], [], []
    for depth in range(5):
        deployment = build_tree_app(depth).deploy(seed=7)
        source = deployment.add_traffic_source(TREE_ROOT)
        gremlin = Gremlin(deployment)
        names = tree_service_names(depth)
        scenarios = [
            DelayCalls(caller, callee, interval="5ms")
            for caller, callee in deployment.graph.edges()
            if caller in names and callee in names
        ]
        orchestration = 0.0
        if scenarios:
            start = time.perf_counter()
            rules = RecipeTranslator(deployment.graph).translate(scenarios)
            gremlin.orchestrator.apply(rules)
            orchestration = time.perf_counter() - start
        ClosedLoopLoad(num_requests=100).run(source)
        start = time.perf_counter()
        for name in names:
            HasTimeouts(name, "10s").run(deployment.store)
        assertion = time.perf_counter() - start
        services_column.append(float(len(names)))
        orch_column.append(orchestration * 1e3)
        assert_column.append(assertion * 1e3)
    write_tsv(out_dir / "fig7_orchestration.tsv", headers,
              [services_column, orch_column, assert_column])


def fig8(out_dir):
    columns = [[index / STEPS for index in range(STEPS + 1)]]
    headers = ["cumfrac"]
    for strategy in ("linear", "prefix"):
        for rules in (1, 5, 10):
            matcher = make_matcher(strategy, rng=random.Random(0))
            for index in range(rules):
                matcher.install(abort("A", "B", pattern=f"test-{index}-*"))
            samples = []
            for _ in range(10_000):
                start = time.perf_counter_ns()
                matcher.match("B", "request", "zz-no-match")
                samples.append((time.perf_counter_ns() - start) / 1e3)  # µs
            columns.append(cdf_column(samples))
            headers.append(f"{strategy}_{rules}rules_us")
    write_tsv(out_dir / "fig8_matching.tsv", headers, columns)


def main() -> None:
    out_dir = pathlib.Path(sys.argv[1]) if len(sys.argv) > 1 else (
        pathlib.Path(__file__).resolve().parent.parent / "figures"
    )
    out_dir.mkdir(parents=True, exist_ok=True)
    print(f"writing figure data to {out_dir}/")
    fig5(out_dir)
    fig6(out_dir)
    fig7(out_dir)
    fig8(out_dir)
    print("done — plot with your tool of choice (x = value, y = cumfrac for CDFs)")


if __name__ == "__main__":
    main()
