#!/usr/bin/env python
"""The IBM enterprise-application case study (paper Section 7.1, Fig 4).

A web-services search portal: webapp -> {searchservice, activityservice};
searchservice -> servicedb; activityservice -> {github, stackoverflow}.

The case study's headline finding is reproduced: the Web App team's
Unirest-style HTTP wrapper handles ordinary timeouts, but a TCP
connection corner case (staged with Gremlin's Crash, i.e. Abort with
Error=-1) escapes the wrapper and percolates — turning a decorative
widget failure into a full page error.

Run:  python examples/enterprise_case_study.py
"""

from repro import ClosedLoopLoad, Crash, Gremlin, Hang, build_enterprise_app
from repro.apps.enterprise import ACTIVITY, WEBAPP


def stage(name, deployment, source, gremlin, scenario):
    gremlin.inject(scenario)
    load = ClosedLoopLoad(num_requests=10)
    load.run(source)
    gremlin.clear()
    statuses = sorted(set(load.result.statuses))
    print(f"  {name:<42} -> page statuses {statuses}")
    return load.result


def run(fixed_unirest: bool) -> None:
    build_label = "fixed wrapper" if fixed_unirest else "as deployed (buggy Unirest wrapper)"
    print(f"\n=== Enterprise portal, {build_label} ===")
    deployment = build_enterprise_app(fixed_unirest=fixed_unirest).deploy(seed=23)
    source = deployment.add_traffic_source(WEBAPP)
    gremlin = Gremlin(deployment)

    # Ordinary degradation: the activity service hangs.  The wrapper's
    # timeout fires, the page renders without the widget.  This is the
    # path the developers tested, so the library looked safe.
    stage("Hang(activityservice) — plain slowness", deployment, source, gremlin,
          Hang(ACTIVITY, interval="1h"))

    # The corner case Gremlin staged: network instability that resets
    # TCP connections.  The buggy wrapper lets the error percolate.
    stage("Crash(activityservice) — TCP reset corner case", deployment, source, gremlin,
          Crash(ACTIVITY))


def main() -> None:
    print("Reproducing the enterprise case study (paper Fig 4 + Section 7.1)")
    run(fixed_unirest=False)
    run(fixed_unirest=True)
    print(
        "\nWith the published wrapper, the TCP-reset scenario turns the page"
        " into a 500 — the previously unknown bug the paper reports the"
        " developers finding with Gremlin. The fixed wrapper absorbs it."
    )


if __name__ == "__main__":
    main()
