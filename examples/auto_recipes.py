#!/usr/bin/env python
"""Automatic recipe generation (paper Section 9, future work).

Walks the enterprise application's logical graph and generates, for
every caller/callee edge, the recipes that validate the four resiliency
patterns — then executes the overload suite and reports which services
would survive and which need work.  Third-party endpoints are annotated
``skip`` (we do not fault github.com's edge on their behalf).

Run:  python examples/auto_recipes.py
"""

from repro import ClosedLoopLoad, Gremlin, build_enterprise_app, generate_recipes
from repro.apps.enterprise import GITHUB, STACKOVERFLOW, WEBAPP
from repro.core import Recipe
from repro.core.autogen import EdgeAnnotation


def main() -> None:
    deployment = build_enterprise_app().deploy(seed=71)
    source = deployment.add_traffic_source(WEBAPP)
    gremlin = Gremlin(deployment)

    annotations = {
        GITHUB: EdgeAnnotation(skip=True),
        STACKOVERFLOW: EdgeAnnotation(skip=True),
        "servicedb": EdgeAnnotation(criticality="high"),
    }
    recipes = generate_recipes(deployment.graph, annotations=annotations)

    print(f"Generated {len(recipes)} recipes from the application graph:")
    for recipe in recipes:
        scenario_text = ", ".join(scenario.describe() for scenario in recipe.scenarios)
        print(f"  {recipe.name:<28} [{scenario_text}] ({len(recipe.checks)} checks)")

    print("\nExecuting the generated overload recipes:")
    for recipe in recipes:
        if not recipe.name.startswith("auto/overload"):
            continue
        load = ClosedLoopLoad(num_requests=30, think_time=0.02)
        runnable = Recipe(
            name=recipe.name,
            scenarios=recipe.scenarios,
            checks=recipe.checks,
            load=lambda deployment: load.driver(source),
        )
        result = gremlin.run_recipe(runnable)
        if all(check.inconclusive for check in result.checks):
            verdict = "NOT EXERCISED (fault never hit this edge; raise the load)"
        elif result.passed:
            verdict = "PASS"
        else:
            verdict = "ISSUES FOUND"
        print(f"\n  {recipe.name}: {verdict}")
        for check in result.checks:
            print(f"    {check}")


if __name__ == "__main__":
    main()
