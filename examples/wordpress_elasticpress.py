#!/usr/bin/env python
"""The WordPress + ElasticPress case study (paper Section 7.1, Figs 5-6).

Reproduces both published findings against the simulated deployment of
WordPress, Elasticsearch and MySQL:

* ElasticPress falls back to MySQL search when Elasticsearch is
  unreachable or errors (graceful) — but has **no timeout**: response
  times are offset by exactly the injected delay (Figure 5's CDFs);
* it has **no circuit breaker**: after 100 consecutive aborted
  requests, the next 100 delayed requests all wait out the full three
  seconds (Figure 6's CDFs).

Run:  python examples/wordpress_elasticpress.py
"""

from repro import (
    AbortCalls,
    ClosedLoopLoad,
    DelayCalls,
    Gremlin,
    HasCircuitBreaker,
    HasTimeouts,
    build_wordpress_app,
)
from repro.analysis import Cdf
from repro.apps import ELASTICSEARCH, WORDPRESS


def figure5(hardened: bool) -> None:
    title = "hardened plugin (timeout+breaker)" if hardened else "published plugin (naive)"
    print(f"\n--- Figure 5: injected delay between WordPress and Elasticsearch [{title}] ---")
    for injected in (1.0, 2.0, 3.0, 4.0):
        deployment = build_wordpress_app(hardened=hardened).deploy(seed=7)
        source = deployment.add_traffic_source(WORDPRESS)
        gremlin = Gremlin(deployment)
        gremlin.inject(DelayCalls(WORDPRESS, ELASTICSEARCH, interval=injected))
        load = ClosedLoopLoad(num_requests=100)
        load.run(source)
        cdf = Cdf(load.result.latencies)
        # The hardened plugin is bounded by its 1s client timeout (plus
        # fallback work); the naive one by the injected delay.  A 1.5s
        # answer budget separates the two cleanly for every delay >= 2s.
        timeout_check = gremlin.check(HasTimeouts(WORDPRESS, "1.5s"))
        print(
            f"  delay={injected:.0f}s: response time min={cdf.min:.2f}s"
            f" median={cdf.median:.2f}s max={cdf.max:.2f}s | {timeout_check}"
        )


def figure6(hardened: bool) -> None:
    title = "hardened plugin" if hardened else "published plugin"
    print(f"\n--- Figure 6: 100 aborted then 100 delayed (3s) requests [{title}] ---")
    deployment = build_wordpress_app(hardened=hardened).deploy(seed=7)
    source = deployment.add_traffic_source(WORDPRESS)
    gremlin = Gremlin(deployment)
    gremlin.inject(
        AbortCalls(WORDPRESS, ELASTICSEARCH, error=503, max_matches=100),
        DelayCalls(WORDPRESS, ELASTICSEARCH, interval=3.0, max_matches=100),
    )
    load = ClosedLoopLoad(num_requests=200)
    load.run(source)
    aborted = load.result.latencies[:100]
    delayed = load.result.latencies[100:]
    print(Cdf(aborted).ascii_plot(width=30, label="aborted phase"))
    print(Cdf(delayed).ascii_plot(width=30, label="delayed phase"))
    breaker_check = gremlin.check(
        HasCircuitBreaker(WORDPRESS, ELASTICSEARCH, threshold=5, tdelta="2s",
                          check_recovery=False)
    )
    print(f"  {breaker_check}")
    fast_delayed = sum(1 for latency in delayed if latency < 1.5)
    print(f"  delayed-phase requests returning early: {fast_delayed}/100")


def main() -> None:
    print("WordPress + ElasticPress resilience test (paper Section 7.1)")
    figure5(hardened=False)
    figure5(hardened=True)
    figure6(hardened=False)
    figure6(hardened=True)


if __name__ == "__main__":
    main()
