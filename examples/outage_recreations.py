#!/usr/bin/env python
"""Recreating the Table 1 outages (paper Section 1 + Section 5).

For each published postmortem, the corresponding topology is deployed
twice — once as the fragile system that actually failed, once with the
missing resilience pattern added — and the same Gremlin recipe runs
against both.  The recipe *fails* on the fragile build (it would have
caught the outage before production did) and *passes* on the hardened
one.

Run:  python examples/outage_recreations.py
"""

from repro.apps import (
    billing_recipe,
    build_billing_app,
    build_coreservice_app,
    build_database_app,
    build_messagebus_app,
    coreservice_recipe,
    database_overload_recipe,
    messagebus_recipe,
)
from repro.core import Gremlin
from repro.loadgen import ClosedLoopLoad, OpenLoopLoad


def print_outcome(hardened, checks, extra=""):
    passed = all(check.passed for check in checks if not check.inconclusive)
    conclusive = [check for check in checks if not check.inconclusive]
    verdict = "PASS (pattern present)" if passed and conclusive else "FAIL (outage reproduced)"
    build_label = "hardened" if hardened else "as-deployed"
    print(f"  [{build_label:>12}] {verdict}{extra}")
    for check in checks:
        print(f"      {check}")


def run_messagebus():
    print("\n=== Parse.ly 2015 / Stackdriver 2013 — cascading failure via message bus ===")
    for hardened in (False, True):
        deployment = build_messagebus_app(hardened=hardened).deploy(seed=61)
        source = deployment.add_traffic_source("publisher")
        gremlin = Gremlin(deployment)
        window = deployment.sim.now
        gremlin.inject(*messagebus_recipe().scenarios)
        load = OpenLoopLoad(rate=10.0, duration=8.0)
        load.run(source)
        checks = [gremlin.check(check, since=window) for check in messagebus_recipe().checks]
        gremlin.clear()
        blocked = 1.0 - load.result.success_rate
        print_outcome(hardened, checks, extra=f"  (publishers blocked/failed: {blocked:.0%})")


def run_database():
    print("\n=== CircleCI 2015 / BBC 2014 — database overload ===")
    for hardened in (False, True):
        deployment = build_database_app(hardened=hardened).deploy(seed=62)
        sources = [
            deployment.add_traffic_source(f"frontend-{index}", name=f"user{index}")
            for index in range(2)
        ]
        gremlin = Gremlin(deployment)
        window = deployment.sim.now
        gremlin.inject(*database_overload_recipe().scenarios)
        loads = [ClosedLoopLoad(num_requests=20, think_time=0.1) for _ in sources]
        sim = deployment.sim
        for load, source in zip(loads, sources):
            sim.process(load.driver(source))
        sim.run()
        checks = [
            gremlin.check(check, since=window) for check in database_overload_recipe().checks
        ]
        gremlin.clear()
        print_outcome(hardened, checks)


def run_coreservice():
    print("\n=== Spotify 2013 — degradation of a core internal service ===")
    for hardened in (False, True):
        deployment = build_coreservice_app(hardened=hardened).deploy(seed=63)
        sources = [
            deployment.add_traffic_source(edge, name=f"user-{edge}")
            for edge in ("playlists", "radio")
        ]
        gremlin = Gremlin(deployment)
        window = deployment.sim.now
        gremlin.inject(*coreservice_recipe().scenarios)
        sim = deployment.sim
        for source in sources:
            sim.process(ClosedLoopLoad(num_requests=5).driver(source))
        sim.run()
        checks = [gremlin.check(check, since=window) for check in coreservice_recipe().checks]
        gremlin.clear()
        print_outcome(hardened, checks)


def run_billing():
    print("\n=== Twilio 2013 — repeated billing after datastore failure ===")
    print("  (one charge request; the fault hits the response path, so the")
    print("   charge applies but the confirmation is lost and the client retries)")
    for hardened in (False, True):
        deployment = build_billing_app(hardened=hardened).deploy(seed=64)
        source = deployment.add_traffic_source("billinggateway")
        gremlin = Gremlin(deployment)
        window = deployment.sim.now
        gremlin.inject(*billing_recipe().scenarios)
        ClosedLoopLoad(num_requests=1).run(source)
        checks = [gremlin.check(check, since=window) for check in billing_recipe().checks]
        gremlin.clear()
        charges = deployment.instances_of("billingdb")[0].ctx.state.get("charges", {})
        doubles = sum(1 for count in charges.values() if count > 1)
        build_label = "hardened" if hardened else "as-deployed"
        verdict = "FAIL (customer double-billed)" if doubles else "PASS (idempotent charges)"
        print(f"  [{build_label:>12}] {verdict}  (charge applied"
              f" {max(charges.values())}x for {len(charges)} request)")
        for check in checks:
            print(f"      {check}")


def main() -> None:
    print("Table 1 outage recreations: the same recipe against fragile and fixed builds")
    run_messagebus()
    run_database()
    run_coreservice()
    run_billing()


if __name__ == "__main__":
    main()
