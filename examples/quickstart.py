#!/usr/bin/env python
"""Quickstart: the paper's Example 1 (Section 3.2), verbatim workflow.

Two HTTP microservices: ServiceA makes API calls to ServiceB.  The
operator wants to test ServiceA's resilience to ServiceB degrading,
expecting ServiceA to retry failed API calls no more than five times::

    Overload(ServiceB)
    HasBoundedRetries(ServiceA, ServiceB, 5)

Run:  python examples/quickstart.py
"""

from repro import (
    ClosedLoopLoad,
    Gremlin,
    HasBoundedRetries,
    Overload,
    PolicySpec,
    build_twotier,
)


def run_example(max_retries: int, label: str) -> None:
    print(f"\n=== ServiceA with max_retries={max_retries} ({label}) ===")

    # Deploy ServiceA -> ServiceB on a fresh simulated network, with a
    # Gremlin agent sidecar on every instance that makes outbound calls.
    policy = PolicySpec(timeout=1.0, max_retries=max_retries, retry_backoff_base=0.02)
    deployment = build_twotier(policy=policy).deploy(seed=42)
    source = deployment.add_traffic_source("ServiceA")
    gremlin = Gremlin(deployment)

    # Line 1 of the recipe: emulate the overloaded state of ServiceB.
    # (abort_fraction=1.0 = the fully-throttled variant, so a single
    # test request exercises the whole retry budget.)
    gremlin.inject(Overload("ServiceB", abort_fraction=1.0))

    # Inject one test request through the Gremlin-fronted entry point.
    ClosedLoopLoad(num_requests=1).run(source)

    # Line 2 of the recipe: the assertion.
    result = gremlin.check(HasBoundedRetries("ServiceA", "ServiceB", 5, window="30s"))
    print(result)
    requests = gremlin.get_requests("ServiceA", "ServiceB")
    print(f"    requests ServiceA -> ServiceB on the wire: {len(requests)}")
    gremlin.clear()


def main() -> None:
    # A well-behaved ServiceA: five bounded retries -> check passes.
    run_example(max_retries=5, label="bounded, as expected")
    # A buggy ServiceA: effectively unbounded retries -> check fails,
    # and the operator knows *before* ServiceB really melts down.
    run_example(max_retries=50, label="retry storm bug")


if __name__ == "__main__":
    main()
