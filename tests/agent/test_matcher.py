"""Unit tests for the rule-matching engines (both strategies)."""

import random

import pytest

from repro.agent import LinearMatcher, PrefixIndexMatcher, abort, delay, make_matcher, modify
from repro.errors import RuleValidationError

STRATEGIES = ["linear", "prefix"]


@pytest.fixture(params=STRATEGIES)
def matcher(request):
    return make_matcher(request.param, rng=random.Random(7))


class TestInstallRemove:
    def test_install_and_len(self, matcher):
        matcher.install(abort("A", "B"))
        assert len(matcher) == 1

    def test_remove_by_id(self, matcher):
        rule = abort("A", "B")
        matcher.install(rule)
        assert matcher.remove(rule.rule_id)
        assert len(matcher) == 0
        assert not matcher.remove(rule.rule_id)

    def test_clear(self, matcher):
        matcher.install(abort("A", "B"))
        matcher.install(delay("A", "C", interval=1))
        matcher.clear()
        assert len(matcher) == 0
        assert matcher.match("B", "request", "test-1") is None

    def test_unknown_strategy_rejected(self):
        with pytest.raises(RuleValidationError):
            make_matcher("quantum")

    def test_removal_preserves_first_match_wins_order(self, matcher):
        """Surgical unindexing must not disturb surviving rules' order."""
        doomed = abort("A", "B", pattern="test-*", error=500)
        first = abort("A", "B", pattern="test-*", error=503)
        second = abort("A", "B", pattern="test-*", error=404)
        matcher.install(doomed)
        matcher.install(first)
        matcher.install(second)
        assert matcher.remove(doomed.rule_id)
        hit = matcher.match("B", "request", "test-1")
        assert hit.rule.rule_id == first.rule_id

    def test_reinstall_after_removal_ranks_last(self, matcher):
        """A re-installed rule gets a fresh (higher) order — it must not
        inherit the removed slot and jump ahead of older rules."""
        removed = abort("A", "B", pattern="test-*", error=500)
        survivor = abort("A", "B", pattern="test-*", error=503)
        matcher.install(removed)
        matcher.install(survivor)
        assert matcher.remove(removed.rule_id)
        latecomer = abort("A", "B", pattern="test-*", error=404)
        matcher.install(latecomer)
        hit = matcher.match("B", "request", "test-1")
        assert hit.rule.rule_id == survivor.rule_id

    def test_removal_prunes_only_affected_prefix_group(self):
        """Other prefix groups (and lengths) survive a removal intact."""
        matcher = PrefixIndexMatcher(random.Random(3))
        short = abort("A", "B", pattern="ab*")
        long_ = abort("A", "B", pattern="abcdef*")
        matcher.install(short)
        matcher.install(long_)
        assert matcher.remove(long_.rule_id)
        assert matcher.match("B", "request", "abzzz") is not None
        assert matcher.match("B", "request", "abcdef-1") is not None  # short still covers
        matcher.install(abort("A", "B", pattern="abcdef*", error=404))
        hit = matcher.match("B", "request", "abcdef-1")
        # first-match-wins: the older short-prefix rule still wins.
        assert hit.rule.rule_id == short.rule_id


class TestStructuralMatch:
    def test_matches_dst_direction_and_id(self, matcher):
        matcher.install(abort("A", "B", pattern="test-*"))
        assert matcher.match("B", "request", "test-1") is not None
        assert matcher.match("B", "request", "user-1") is None
        assert matcher.match("C", "request", "test-1") is None
        assert matcher.match("B", "response", "test-1") is None

    def test_untagged_traffic_not_matched_by_pattern(self, matcher):
        matcher.install(abort("A", "B", pattern="test-*"))
        assert matcher.match("B", "request", None) is None

    def test_star_pattern_matches_untagged(self, matcher):
        matcher.install(abort("A", "B", pattern="*"))
        assert matcher.match("B", "request", None) is not None

    def test_first_match_wins(self, matcher):
        first = abort("A", "B", error=503)
        second = abort("A", "B", error=404)
        matcher.install(first)
        matcher.install(second)
        hit = matcher.match("B", "request", "test-1")
        assert hit.rule.rule_id == first.rule_id

    def test_modify_requires_body_match(self, matcher):
        matcher.install(modify("A", "B", pattern="key", replace_bytes="bad"))
        assert matcher.match("B", "response", "test-1", body=b"the key here") is not None
        assert matcher.match("B", "response", "test-1", body=b"nothing") is None
        assert matcher.match("B", "response", "test-1", body=None) is None


class TestBudget:
    def test_budget_exhausts_rule(self, matcher):
        matcher.install(abort("A", "B", max_matches=2))
        for _ in range(2):
            hit = matcher.match("B", "request", "test-1")
            assert hit is not None
            hit.consume()
        assert matcher.match("B", "request", "test-1") is None

    def test_budget_enables_sequential_rule_phases(self, matcher):
        """The Fig 6 schedule: abort 100, then delay the next 100."""
        matcher.install(abort("A", "B", max_matches=3))
        matcher.install(delay("A", "B", interval=3.0, max_matches=3))
        kinds = []
        for _ in range(7):
            hit = matcher.match("B", "request", "test-1")
            if hit is None:
                kinds.append(None)
            else:
                hit.consume()
                kinds.append(hit.rule.fault_type)
        assert kinds == ["abort"] * 3 + ["delay"] * 3 + [None]

    def test_unapplied_match_does_not_consume_budget(self, matcher):
        matcher.install(abort("A", "B", max_matches=1))
        assert matcher.match("B", "request", "test-1") is not None
        # consume() not called -> budget intact
        assert matcher.match("B", "request", "test-1") is not None


class TestProbability:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_probability_fraction_applied(self, strategy):
        matcher = make_matcher(strategy, rng=random.Random(42))
        matcher.install(abort("A", "B", probability=0.25))
        hits = sum(
            1 for _ in range(2000) if matcher.match("B", "request", "test-1") is not None
        )
        assert 400 <= hits <= 600  # ~25% of 2000

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_probability_zero_never_matches(self, strategy):
        matcher = make_matcher(strategy, rng=random.Random(1))
        matcher.install(abort("A", "B", probability=0.0))
        assert all(
            matcher.match("B", "request", "test-1") is None for _ in range(50)
        )

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_lost_draw_falls_through_to_next_rule(self, strategy):
        """The Overload decomposition: abort p, then delay the rest."""
        matcher = make_matcher(strategy, rng=random.Random(5))
        matcher.install(abort("A", "B", probability=0.25))
        matcher.install(delay("A", "B", interval=0.1, probability=1.0))
        outcomes = [matcher.match("B", "request", "test-1").rule.fault_type for _ in range(1000)]
        abort_fraction = outcomes.count("abort") / len(outcomes)
        assert outcomes.count("abort") + outcomes.count("delay") == 1000
        assert 0.2 <= abort_fraction <= 0.3


class TestStrategiesAgree:
    def test_same_decisions_on_structural_matches(self):
        rules = [
            abort("A", "B", pattern="test-1*"),
            delay("A", "B", interval=1.0, pattern="test-2*"),
            abort("A", "C", pattern="*"),
        ]
        linear = LinearMatcher(random.Random(0))
        prefix = PrefixIndexMatcher(random.Random(0))
        for rule in rules:
            linear.install(rule)
            prefix.install(rule)
        probes = [
            ("B", "request", "test-11"),
            ("B", "request", "test-21"),
            ("B", "request", "test-99"),
            ("B", "request", "user-1"),
            ("C", "request", None),
            ("C", "request", "anything"),
            ("B", "response", "test-11"),
        ]
        for dst, direction, request_id in probes:
            left = linear.match(dst, direction, request_id)
            right = prefix.match(dst, direction, request_id)
            assert (left is None) == (right is None), probes
            if left is not None:
                assert left.rule.rule_id == right.rule.rule_id
