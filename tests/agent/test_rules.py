"""Unit tests for fault-rule construction and validation (Table 2)."""

import pytest

from repro.agent import FaultRule, FaultType, TCP_RESET, abort, delay, modify
from repro.errors import RuleValidationError


class TestAbortRule:
    def test_basic(self):
        rule = abort("A", "B", error=503)
        assert rule.fault_type == FaultType.ABORT
        assert rule.error == 503
        assert not rule.is_reset
        assert rule.describe() == "abort(503)"

    def test_reset_variant(self):
        rule = abort("A", "B", error=TCP_RESET)
        assert rule.is_reset
        assert rule.describe() == "abort(reset)"

    def test_error_mandatory(self):
        with pytest.raises(RuleValidationError):
            FaultRule(src="A", dst="B", fault_type=FaultType.ABORT)

    @pytest.mark.parametrize("bad_error", [0, 200, 399, 600, -2])
    def test_error_must_be_4xx_5xx_or_reset(self, bad_error):
        with pytest.raises(RuleValidationError):
            abort("A", "B", error=bad_error)

    def test_default_pattern_is_test_traffic(self):
        assert abort("A", "B").pattern == "test-*"
        assert abort("A", "B").flow_pattern == "test-*"


class TestDelayRule:
    def test_basic(self):
        rule = delay("A", "B", interval="100ms")
        assert rule.fault_type == FaultType.DELAY
        assert rule.interval == pytest.approx(0.1)
        assert rule.describe() == "delay(0.1)"

    def test_paper_duration_strings(self):
        assert delay("A", "B", interval="1h").interval == 3600.0
        assert delay("A", "B", interval="1min").interval == 60.0

    def test_numeric_interval(self):
        assert delay("A", "B", interval=2.5).interval == 2.5

    def test_interval_mandatory(self):
        with pytest.raises(RuleValidationError):
            FaultRule(src="A", dst="B", fault_type=FaultType.DELAY)

    def test_negative_interval_rejected(self):
        with pytest.raises(RuleValidationError):
            FaultRule(src="A", dst="B", fault_type=FaultType.DELAY, interval=-1)


class TestModifyRule:
    def test_basic(self):
        rule = modify("A", "B", pattern="key", replace_bytes="badkey")
        assert rule.fault_type == FaultType.MODIFY
        assert rule.search_bytes == b"key"
        assert rule.replace_bytes == b"badkey"
        assert rule.on == "response"  # FakeSuccess default direction
        assert rule.describe() == "modify"

    def test_bytes_input(self):
        rule = modify("A", "B", pattern=b"\x00\x01", replace_bytes=b"\xff")
        assert rule.search_bytes == b"\x00\x01"
        assert rule.replace_bytes == b"\xff"

    def test_flow_pattern_defaults_to_all(self):
        assert modify("A", "B", pattern="k", replace_bytes="x").flow_pattern == "*"

    def test_id_pattern_scopes_flows(self):
        rule = modify("A", "B", pattern="k", replace_bytes="x", id_pattern="test-*")
        assert rule.flow_pattern == "test-*"

    def test_replace_bytes_mandatory(self):
        with pytest.raises(RuleValidationError):
            FaultRule(src="A", dst="B", fault_type=FaultType.MODIFY)

    def test_search_bytes_only_for_modify(self):
        with pytest.raises(RuleValidationError):
            _ = abort("A", "B").search_bytes


class TestCommonValidation:
    def test_unknown_fault_type(self):
        with pytest.raises(RuleValidationError):
            FaultRule(src="A", dst="B", fault_type="explode")

    def test_empty_services_rejected(self):
        with pytest.raises(RuleValidationError):
            FaultRule(src="", dst="B", fault_type=FaultType.ABORT, error=503)

    @pytest.mark.parametrize("probability", [-0.1, 1.1])
    def test_probability_bounds(self, probability):
        with pytest.raises(RuleValidationError):
            abort("A", "B", probability=probability)

    def test_bad_direction_rejected(self):
        with pytest.raises(RuleValidationError):
            abort("A", "B", on="sideways")

    def test_max_matches_validated(self):
        with pytest.raises(RuleValidationError):
            abort("A", "B", max_matches=0)

    def test_rule_ids_unique(self):
        assert abort("A", "B").rule_id != abort("A", "B").rule_id

    def test_str_includes_essentials(self):
        text = str(abort("A", "B", max_matches=100))
        assert "abort(503)" in text
        assert "A->B" in text
        assert "budget=100" in text
