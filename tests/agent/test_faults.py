"""Unit tests for fault-action helpers."""

import pytest

from repro.agent import (
    abort,
    delay,
    modify,
    modify_request,
    modify_response,
    synthesize_abort_response,
)
from repro.agent.rules import TCP_RESET
from repro.errors import RuleValidationError
from repro.http import HttpRequest, HttpResponse


class TestSynthesizeAbort:
    def test_error_response_carries_code_and_id(self):
        rule = abort("A", "B", error=503)
        request = HttpRequest("GET", "/x")
        request.request_id = "test-5"
        response = synthesize_abort_response(rule, request)
        assert response.status == 503
        assert response.request_id == "test-5"
        assert str(rule.rule_id).encode() in response.body

    def test_custom_error_codes(self):
        assert synthesize_abort_response(abort("A", "B", error=404), HttpRequest("GET", "/")).status == 404

    def test_reset_rule_cannot_synthesize(self):
        with pytest.raises(RuleValidationError):
            synthesize_abort_response(abort("A", "B", error=TCP_RESET), HttpRequest("GET", "/"))

    def test_non_abort_rule_rejected(self):
        with pytest.raises(RuleValidationError):
            synthesize_abort_response(delay("A", "B", interval=1), HttpRequest("GET", "/"))


class TestModify:
    def test_modify_response_rewrites_body(self):
        rule = modify("A", "B", pattern="key", replace_bytes="badkey")
        response = HttpResponse(200, body=b"key=value")
        rewritten = modify_response(rule, response)
        assert rewritten.body == b"badkey=value"
        assert response.body == b"key=value"  # original untouched

    def test_modify_request_rewrites_body(self):
        rule = modify("A", "B", pattern="amount=5", replace_bytes="amount=50", on="request")
        request = HttpRequest("POST", "/charge", body=b"amount=5")
        assert modify_request(rule, request).body == b"amount=50"

    def test_all_occurrences_replaced(self):
        rule = modify("A", "B", pattern="x", replace_bytes="yy")
        assert modify_response(rule, HttpResponse(200, body=b"x.x.x")).body == b"yy.yy.yy"

    def test_no_match_leaves_body(self):
        rule = modify("A", "B", pattern="absent", replace_bytes="z")
        assert modify_response(rule, HttpResponse(200, body=b"body")).body == b"body"

    def test_non_modify_rule_rejected(self):
        with pytest.raises(RuleValidationError):
            modify_response(abort("A", "B"), HttpResponse(200))

    def test_binary_patterns(self):
        rule = modify("A", "B", pattern=b"\x01\x02", replace_bytes=b"")
        assert modify_response(rule, HttpResponse(200, body=b"a\x01\x02b")).body == b"ab"
