"""Unit tests for the agent control channel and rule wire format."""

import pytest

from repro.agent import abort, delay, modify, rule_from_wire, rule_to_wire
from repro.errors import RuleValidationError


class TestWireFormat:
    @pytest.mark.parametrize(
        "rule",
        [
            abort("A", "B", error=503, pattern="test-*"),
            abort("A", "B", error=-1, probability=0.5),
            delay("A", "B", interval="100ms", on="response", max_matches=10),
            modify("A", "B", pattern="key", replace_bytes="badkey", id_pattern="test-*"),
        ],
    )
    def test_round_trip_preserves_semantics(self, rule):
        parsed = rule_from_wire(rule_to_wire(rule))
        assert parsed.src == rule.src
        assert parsed.dst == rule.dst
        assert parsed.fault_type == rule.fault_type
        assert parsed.pattern == rule.pattern
        assert parsed.on == rule.on
        assert parsed.probability == rule.probability
        assert parsed.error == rule.error
        assert parsed.interval == rule.interval
        assert parsed.replace_bytes == rule.replace_bytes
        assert parsed.max_matches == rule.max_matches

    def test_binary_replace_bytes_survive(self):
        rule = modify("A", "B", pattern=b"\x00\xff", replace_bytes=b"\xfe\x01")
        parsed = rule_from_wire(rule_to_wire(rule))
        assert parsed.search_bytes == b"\x00\xff"
        assert parsed.replace_bytes == b"\xfe\x01"

    def test_malformed_json_rejected(self):
        with pytest.raises(RuleValidationError):
            rule_from_wire("{not json")

    def test_non_object_rejected(self):
        with pytest.raises(RuleValidationError):
            rule_from_wire("[1, 2]")

    def test_unknown_fields_rejected(self):
        with pytest.raises(RuleValidationError, match="unknown"):
            rule_from_wire('{"src": "A", "dst": "B", "fault_type": "abort", "error": 503, "evil": 1}')

    def test_invalid_rule_content_rejected_at_agent_boundary(self):
        with pytest.raises(RuleValidationError):
            rule_from_wire('{"src": "A", "dst": "B", "fault_type": "abort", "error": 200}')
