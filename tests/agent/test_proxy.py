"""Integration tests for the GremlinAgent sidecar proxy.

Each test deploys the two-tier app (ServiceA -> ServiceB through A's
sidecar) and drives calls from a traffic source, asserting on both the
caller-visible behaviour and the observation records the agent emits.
"""

import pytest

from repro.agent import TCP_RESET, abort, delay, modify
from repro.apps import build_twotier
from repro.errors import ConnectionResetError_, OrchestrationError
from repro.http import HttpRequest
from repro.logstore import Query
from repro.microservice import PolicySpec


def deploy(policy=None, instances_b=1, seed=11):
    deployment = build_twotier(
        policy=policy or PolicySpec(timeout=5.0), instances_b=instances_b
    ).deploy(seed=seed)
    source = deployment.add_traffic_source("ServiceA")
    return deployment, source


def drive(deployment, source, n=1, prefix="test-", uri="/api"):
    """Issue n tagged requests; returns list of (status_or_exc, elapsed)."""
    sim = deployment.sim
    outcomes = []

    def one(sim, rid):
        request = HttpRequest("GET", uri)
        request.request_id = rid
        start = sim.now
        try:
            response = yield from source.client.call(request)
            outcomes.append((response.status, sim.now - start))
        except Exception as exc:  # noqa: BLE001
            outcomes.append((type(exc).__name__, sim.now - start))

    def sequence(sim):
        for index in range(n):
            yield from one(sim, f"{prefix}{index + 1}")

    sim.process(sequence(sim))
    sim.run()
    return outcomes


def agent_a(deployment):
    return deployment.agents_of("ServiceA")[0]


class TestForwarding:
    def test_passthrough_and_observation_records(self):
        deployment, source = deploy()
        outcomes = drive(deployment, source, n=2)
        assert [status for status, _ in outcomes] == [200, 200]

        requests = deployment.store.search(Query(kind="request", src="ServiceA", dst="ServiceB"))
        replies = deployment.store.search(Query(kind="reply", src="ServiceA", dst="ServiceB"))
        assert len(requests) == 2
        assert len(replies) == 2
        record = requests[0]
        assert record.src_instance == "servicea-0"
        assert record.method == "GET"
        assert record.uri == "/serviceb"
        assert record.request_id == "test-1"
        assert record.status == 200  # outcome written back in place
        assert record.fault_applied is None
        reply = replies[0]
        assert reply.latency is not None and reply.latency > 0
        assert reply.injected_delay == 0.0
        assert not reply.gremlin_generated

    def test_round_robin_across_instances(self):
        deployment, source = deploy(instances_b=2)
        drive(deployment, source, n=4)
        served = [i.server.requests_served for i in deployment.instances_of("ServiceB")]
        assert served == [2, 2]

    def test_proxied_counter(self):
        deployment, source = deploy()
        drive(deployment, source, n=3)
        assert agent_a(deployment).proxied == 3


class TestAbortFault:
    def test_abort_503_never_reaches_destination(self):
        deployment, source = deploy(policy=PolicySpec(timeout=5.0))
        agent_a(deployment).install_rule(abort("ServiceA", "ServiceB", error=503))
        outcomes = drive(deployment, source, n=2)
        # fanout_handler turns the dependency 503 into a 500 upstream.
        assert [status for status, _ in outcomes] == [500, 500]
        assert all(i.server.requests_served == 0 for i in deployment.instances_of("ServiceB"))

        requests = deployment.store.search(Query(kind="request", src="ServiceA", dst="ServiceB"))
        assert all(r.fault_applied == "abort(503)" for r in requests)
        assert all(r.status == 503 for r in requests)
        replies = deployment.store.search(Query(kind="reply", src="ServiceA", dst="ServiceB"))
        assert all(r.gremlin_generated for r in replies)

    def test_abort_reset_surfaces_as_connection_reset(self):
        deployment, source = deploy(policy=PolicySpec())
        agent_a(deployment).install_rule(abort("ServiceA", "ServiceB", error=TCP_RESET))
        outcomes = drive(deployment, source, n=1)
        # ServiceA's naive client sees the reset; its handler degrades to 500.
        assert outcomes[0][0] == 500
        replies = deployment.store.search(Query(kind="reply", src="ServiceA", dst="ServiceB"))
        assert replies[0].error == "reset"

    def test_abort_matches_only_rule_pattern(self):
        deployment, source = deploy()
        agent_a(deployment).install_rule(abort("ServiceA", "ServiceB", error=503, pattern="test-*"))
        test_outcomes = drive(deployment, source, n=1, prefix="test-")
        production_outcomes = drive(deployment, source, n=1, prefix="user-")
        assert test_outcomes[0][0] == 500
        assert production_outcomes[0][0] == 200


class TestDelayFault:
    def test_delay_offsets_latency_and_is_recorded(self):
        deployment, source = deploy()
        agent_a(deployment).install_rule(delay("ServiceA", "ServiceB", interval="2s"))
        outcomes = drive(deployment, source, n=1)
        status, elapsed = outcomes[0]
        assert status == 200
        assert elapsed == pytest.approx(2.0, abs=0.1)
        replies = deployment.store.search(Query(kind="reply", src="ServiceA", dst="ServiceB"))
        reply = replies[0]
        assert reply.injected_delay == pytest.approx(2.0)
        assert reply.latency == pytest.approx(2.0, abs=0.1)
        assert reply.actual_latency == pytest.approx(reply.latency - 2.0)
        assert reply.fault_applied == "delay(2)"

    def test_delayed_request_still_reaches_destination(self):
        deployment, source = deploy()
        agent_a(deployment).install_rule(delay("ServiceA", "ServiceB", interval=0.5))
        drive(deployment, source, n=2)
        total_served = sum(i.server.requests_served for i in deployment.instances_of("ServiceB"))
        assert total_served == 2

    def test_response_direction_delay(self):
        deployment, source = deploy()
        agent_a(deployment).install_rule(
            delay("ServiceA", "ServiceB", interval=1.0, on="response")
        )
        outcomes = drive(deployment, source, n=1)
        assert outcomes[0][1] == pytest.approx(1.0, abs=0.1)


class TestModifyFault:
    def test_response_body_rewritten(self):
        deployment, source = deploy()
        agent_a(deployment).install_rule(
            modify("ServiceA", "ServiceB", pattern="ok", replace_bytes="corrupted")
        )
        sim = deployment.sim
        bodies = []

        def scenario(sim):
            request = HttpRequest("GET", "/api")
            request.request_id = "test-1"
            # Look at what ServiceA's client actually received by calling
            # through the source (ServiceA relays ServiceB's body on 200).
            response = yield from source.client.call(request)
            bodies.append(response.body)

        sim.process(scenario(sim))
        sim.run()
        assert bodies == [b"ok"]  # fanout handler replies "ok" on success

        # The record shows the fault was applied on the A->B edge.
        replies = deployment.store.search(Query(kind="reply", src="ServiceA", dst="ServiceB"))
        assert replies[0].fault_applied == "modify"


class TestBudgetedRules:
    def test_fig6_style_schedule(self):
        """Abort the first 3 matching requests, delay the next 3."""
        deployment, source = deploy(policy=PolicySpec(timeout=10.0))
        agent = agent_a(deployment)
        agent.install_rule(abort("ServiceA", "ServiceB", error=503, max_matches=3))
        agent.install_rule(delay("ServiceA", "ServiceB", interval=3.0, max_matches=3))
        outcomes = drive(deployment, source, n=7)
        statuses = [status for status, _ in outcomes]
        elapsed = [t for _, t in outcomes]
        assert statuses == [500, 500, 500, 200, 200, 200, 200]
        assert all(t < 0.5 for t in elapsed[:3])
        assert all(t == pytest.approx(3.0, abs=0.2) for t in elapsed[3:6])
        assert elapsed[6] < 0.5


class TestControlInterface:
    def test_rule_for_other_source_rejected(self):
        deployment, _source = deploy()
        with pytest.raises(OrchestrationError):
            agent_a(deployment).install_rule(abort("ServiceX", "ServiceB"))

    def test_rule_for_unrouted_destination_rejected(self):
        deployment, _source = deploy()
        with pytest.raises(OrchestrationError):
            agent_a(deployment).install_rule(abort("ServiceA", "Unknown"))

    def test_clear_rules_restores_passthrough(self):
        deployment, source = deploy()
        agent = agent_a(deployment)
        agent.install_rule(abort("ServiceA", "ServiceB", error=503))
        assert drive(deployment, source, n=1)[0][0] == 500
        agent.clear_rules()
        assert drive(deployment, source, n=1, prefix="test-x")[0][0] == 200

    def test_list_and_remove_rules(self):
        deployment, _source = deploy()
        agent = agent_a(deployment)
        rule = abort("ServiceA", "ServiceB")
        agent.install_rule(rule)
        assert [r.rule_id for r in agent.list_rules()] == [rule.rule_id]
        assert agent.remove_rule(rule.rule_id)
        assert agent.list_rules() == []

    def test_duplicate_route_rejected(self):
        deployment, _source = deploy()
        with pytest.raises(OrchestrationError):
            agent_a(deployment).add_route(9000, "ServiceB")


class TestUpstreamFailures:
    def test_stopped_destination_becomes_503(self):
        deployment, source = deploy(policy=PolicySpec())
        for instance in deployment.instances_of("ServiceB"):
            instance.stop()
        outcomes = drive(deployment, source, n=1)
        assert outcomes[0][0] == 500  # A's handler sees 503 -> degrades to 500
        replies = deployment.store.search(Query(kind="reply", src="ServiceA", dst="ServiceB"))
        assert replies[0].error == "refused"
        assert replies[0].status == 503

    def test_agent_stop_refuses_caller(self):
        deployment, source = deploy(policy=PolicySpec())
        agent_a(deployment).stop()
        outcomes = drive(deployment, source, n=1)
        assert outcomes[0][0] == 500  # refused at the loopback hop
