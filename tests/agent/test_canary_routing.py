"""Agent-level unit tests for canary routing configuration."""

from repro.apps import build_twotier
from repro.agent.proxy import GremlinAgent
from repro.loadgen import ClosedLoopLoad
from repro.microservice import Application, PolicySpec, ServiceDefinition, fanout_handler
from repro.tracing import RequestIdGenerator


def build(canary_pattern="test-*"):
    """Two-tier app with one canary; agents use ``canary_pattern``."""
    app = Application("canary-config")
    app.add_service(
        ServiceDefinition(
            "ServiceA",
            handler=fanout_handler(["ServiceB"]),
            dependencies={"ServiceB": PolicySpec(timeout=1.0)},
        )
    )
    app.add_service(ServiceDefinition("ServiceB", canary_instances=1))
    deployment = app.deploy(seed=141)
    # Reconfigure every agent's canary pattern post-deploy (unit-level
    # knob; the Deployment default is test-*).
    from repro.logstore.query import compile_id_pattern

    for agent in deployment.agents:
        agent.canary_pattern = canary_pattern
        agent._canary_regex = compile_id_pattern(canary_pattern)
    source = deployment.add_traffic_source("ServiceA")
    for agent in deployment.agents:
        agent.canary_pattern = canary_pattern
        agent._canary_regex = compile_id_pattern(canary_pattern)
    return deployment, source


class TestCanaryPatternConfig:
    def test_custom_pattern(self):
        deployment, source = build(canary_pattern="shadow-*")
        ClosedLoopLoad(num_requests=2, ids=RequestIdGenerator(prefix="shadow-")).run(source)
        ClosedLoopLoad(num_requests=3).run(source)  # test-* -> production now
        canary = deployment.canaries_of("ServiceB")[0]
        production = deployment.production_instances_of("ServiceB")[0]
        assert canary.server.requests_served == 2
        assert production.server.requests_served == 3

    def test_none_disables_canary_routing(self):
        deployment, source = build(canary_pattern=None)
        ClosedLoopLoad(num_requests=4).run(source)
        canary = deployment.canaries_of("ServiceB")[0]
        production = deployment.production_instances_of("ServiceB")[0]
        assert canary.server.requests_served == 0
        assert production.server.requests_served == 4

    def test_default_pattern_on_fresh_agent(self):
        deployment, _source = build()
        agent = deployment.agents_of("ServiceA")[0]
        assert agent.canary_pattern == "test-*"
