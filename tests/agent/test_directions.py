"""Direction-specific fault semantics: request vs. response rules."""

import pytest

from repro.agent import TCP_RESET, abort, delay, modify
from repro.apps import build_twotier
from repro.http import HttpRequest
from repro.logstore import Query
from repro.microservice import PolicySpec


def deploy(seed=161):
    deployment = build_twotier(policy=PolicySpec(timeout=10.0)).deploy(seed=seed)
    source = deployment.add_traffic_source("ServiceA")
    return deployment, source


def one_call(deployment, source, rid="test-1"):
    sim = deployment.sim
    box = {}

    def scenario(sim):
        request = HttpRequest("GET", "/api")
        request.request_id = rid
        start = sim.now
        try:
            response = yield from source.client.call(request)
            box["status"] = response.status
        except Exception as exc:  # noqa: BLE001
            box["status"] = type(exc).__name__
        box["elapsed"] = sim.now - start

    sim.process(scenario(sim))
    sim.run()
    return box


def agent_a(deployment):
    return deployment.agents_of("ServiceA")[0]


class TestResponseDirectionAbort:
    def test_request_reaches_service_but_reply_replaced(self):
        deployment, source = deploy()
        agent_a(deployment).install_rule(
            abort("ServiceA", "ServiceB", error=503, on="response")
        )
        outcome = one_call(deployment, source)
        assert outcome["status"] == 500  # A saw the synthesized 503
        # Crucially, ServiceB really processed the request — the failure
        # hit the *response path* (the Twilio double-charge mechanism).
        assert deployment.instances_of("ServiceB")[0].server.requests_served == 1

    def test_response_reset(self):
        deployment, source = deploy()
        agent_a(deployment).install_rule(
            abort("ServiceA", "ServiceB", error=TCP_RESET, on="response")
        )
        outcome = one_call(deployment, source)
        assert outcome["status"] == 500
        replies = deployment.store.search(Query(kind="reply", src="ServiceA", dst="ServiceB"))
        assert replies[0].error == "reset"
        assert deployment.instances_of("ServiceB")[0].server.requests_served == 1


class TestBothDirections:
    def test_request_and_response_delays_accumulate(self):
        deployment, source = deploy()
        agent = agent_a(deployment)
        agent.install_rule(delay("ServiceA", "ServiceB", interval=0.5, on="request"))
        agent.install_rule(delay("ServiceA", "ServiceB", interval=0.7, on="response"))
        outcome = one_call(deployment, source)
        assert outcome["status"] == 200
        assert outcome["elapsed"] == pytest.approx(1.2, abs=0.1)
        reply = deployment.store.search(Query(kind="reply", src="ServiceA", dst="ServiceB"))[0]
        assert reply.injected_delay == pytest.approx(1.2)
        assert reply.fault_applied == "delay(0.5)+delay(0.7)"

    def test_request_direction_modify(self):
        deployment, source = deploy()
        captured = {}

        # Wrap ServiceA's handler to capture the body it receives; the
        # Modify rule sits on the user -> ServiceA edge (the source's
        # sidecar), which is the hop carrying the payload.
        instance = deployment.instances_of("ServiceA")[0]
        original = instance.definition.handler

        def spying(ctx, request):
            captured["body"] = request.body
            result = yield from original(ctx, request)
            return result

        instance.definition.handler = spying

        source.agent.install_rule(
            modify("user", "ServiceA", pattern="secret", replace_bytes="REDACTED",
                   on="request", id_pattern="test-*")
        )
        sim = deployment.sim

        def scenario(sim):
            request = HttpRequest("POST", "/api", body=b"payload=secret")
            request.request_id = "test-1"
            yield from source.client.call(request)

        sim.process(scenario(sim))
        sim.run()
        assert captured["body"] == b"payload=REDACTED"
