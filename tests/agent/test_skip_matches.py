"""``skip_matches``: deterministic per-invocation targeting.

The exploration layer compiles single-invocation coordinates to rules
with ``skip_matches=K`` + ``max_matches=1``; these tests pin the three
properties that compilation relies on: skips are counted per
structural match, they consume neither budget nor probability draws,
and all matcher strategies agree.
"""

import random

import pytest

from repro.agent import abort, delay, make_matcher
from repro.agent.rules import FaultRule, FaultType
from repro.errors import RuleValidationError

STRATEGIES = ["linear", "prefix", "table"]


@pytest.fixture(params=STRATEGIES)
def matcher(request):
    return make_matcher(request.param, rng=random.Random(7))


class TestSkipSemantics:
    def test_first_k_matches_pass_untouched(self, matcher):
        matcher.install(abort("A", "B", pattern="test-*", skip_matches=2))
        assert matcher.match("B", "request", "test-1") is None
        assert matcher.match("B", "request", "test-1") is None
        hit = matcher.match("B", "request", "test-1")
        assert hit is not None
        assert hit.rule.fault_type is FaultType.ABORT

    def test_skip_with_max_matches_one_hits_exactly_the_kth(self, matcher):
        matcher.install(
            abort("A", "B", pattern="test-1", skip_matches=1, max_matches=1)
        )
        outcomes = []
        for _ in range(4):
            hit = matcher.match("B", "request", "test-1")
            if hit is not None:
                hit.consume()  # as the proxy does after applying the fault
            outcomes.append(hit is not None)
        assert outcomes == [False, True, False, False]

    def test_skip_zero_is_the_default_behaviour(self, matcher):
        matcher.install(delay("A", "B", interval=1.0, pattern="test-*"))
        assert matcher.match("B", "request", "test-1") is not None

    def test_non_matching_ids_do_not_consume_skips(self, matcher):
        matcher.install(abort("A", "B", pattern="test-7", skip_matches=1))
        assert matcher.match("B", "request", "test-1") is None  # no match at all
        assert matcher.match("B", "request", "test-7") is None  # the skip
        assert matcher.match("B", "request", "test-7") is not None

    def test_skips_burn_no_budget(self, matcher):
        matcher.install(
            abort("A", "B", pattern="test-*", skip_matches=3, max_matches=2)
        )
        fired = 0
        for _ in range(10):
            hit = matcher.match("B", "request", "test-1")
            if hit is not None:
                hit.consume()
                fired += 1
        assert fired == 2  # skips left the 2-match budget intact

    def test_skips_take_no_probability_draw(self):
        """A skipped match must not advance the RNG stream: a later
        probabilistic rule sees the same draws whether or not an
        earlier rule skipped."""

        def draws(skips):
            matcher = make_matcher("linear", rng=random.Random(42))
            matcher.install(
                abort("A", "B", pattern="test-*", skip_matches=skips, error=500)
            )
            matcher.install(
                abort("A", "C", pattern="test-*", probability=0.5, error=503)
            )
            return [
                matcher.match("C", "request", "test-1") is not None
                for _ in range(20)
            ]

        assert draws(0) == draws(5)


class TestStrategyEquivalence:
    def test_all_strategies_agree_on_skip_schedule(self):
        matchers = {
            strategy: make_matcher(strategy, rng=random.Random(3))
            for strategy in STRATEGIES
        }
        for engine in matchers.values():
            engine.install(
                abort("A", "B", pattern="test-*", skip_matches=2, max_matches=1)
            )
        def schedule(engine):
            fired = []
            for n in range(1, 7):
                hit = engine.match("B", "request", f"test-{n}")
                if hit is not None:
                    hit.consume()
                fired.append(hit is not None)
            return fired

        schedules = {
            strategy: schedule(engine) for strategy, engine in matchers.items()
        }
        assert len(set(map(tuple, schedules.values()))) == 1
        assert schedules["linear"] == [False, False, True, False, False, False]


class TestValidationAndDisplay:
    def test_negative_skip_rejected(self):
        with pytest.raises(RuleValidationError):
            abort("A", "B", skip_matches=-1)

    def test_str_shows_nonzero_skip_only(self):
        assert "skip=2" in str(abort("A", "B", skip_matches=2))
        assert "skip" not in str(abort("A", "B"))

    def test_round_trips_through_constructors(self):
        rule = delay("A", "B", interval=0.5, skip_matches=4)
        assert isinstance(rule, FaultRule)
        assert rule.skip_matches == 4
