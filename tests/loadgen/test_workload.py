"""Tests for the load generators."""

import pytest

from repro.apps import build_twotier
from repro.core import Disconnect, Gremlin
from repro.loadgen import ApacheBench, ClosedLoopLoad, OpenLoopLoad
from repro.microservice import PolicySpec
from repro.tracing import RequestIdGenerator


def deploy(seed=17, service_time_b=0.001):
    deployment = build_twotier(
        policy=PolicySpec(timeout=5.0), service_time_b=service_time_b
    ).deploy(seed=seed)
    source = deployment.add_traffic_source("ServiceA")
    return deployment, source


class TestClosedLoop:
    def test_issues_exact_count(self):
        _deployment, source = deploy()
        result = ClosedLoopLoad(num_requests=7).run(source)
        assert len(result) == 7
        assert result.success_rate == 1.0

    def test_requests_are_sequential(self):
        _deployment, source = deploy()
        load = ClosedLoopLoad(num_requests=3, think_time=0.5)
        load.run(source)
        starts = [sample.start for sample in load.result.samples]
        assert starts == sorted(starts)
        assert starts[1] - starts[0] >= 0.5

    def test_unique_test_ids(self):
        _deployment, source = deploy()
        load = ClosedLoopLoad(num_requests=5)
        load.run(source)
        ids = [sample.request_id for sample in load.result.samples]
        assert len(set(ids)) == 5
        assert all(request_id.startswith("test-") for request_id in ids)

    def test_errors_recorded_not_raised(self):
        deployment, source = deploy()
        gremlin = Gremlin(deployment)
        from repro.core import Crash

        gremlin.inject(Crash("ServiceA"))  # reset between user and A
        result = ClosedLoopLoad(num_requests=3).run(source)
        assert result.error_count == 3
        assert result.success_rate == 0.0
        assert all(s.error == "ConnectionResetError_" for s in result.samples)

    def test_custom_id_generator(self):
        _deployment, source = deploy()
        load = ClosedLoopLoad(num_requests=2, ids=RequestIdGenerator(prefix="user-"))
        load.run(source)
        assert load.result.samples[0].request_id == "user-1"

    def test_validation(self):
        with pytest.raises(ValueError):
            ClosedLoopLoad(num_requests=0)
        with pytest.raises(ValueError):
            ClosedLoopLoad(num_requests=1, think_time=-1)


class TestOpenLoop:
    def test_rate_approximately_honored(self):
        _deployment, source = deploy()
        load = OpenLoopLoad(rate=50.0, duration=4.0)
        load.run(source)
        assert 120 <= len(load.result) <= 280  # ~200 expected

    def test_arrivals_do_not_wait_for_responses(self):
        # Slow backend (1s); open-loop arrivals at 10/s keep coming.
        _deployment, source = deploy(service_time_b=1.0)
        load = OpenLoopLoad(rate=10.0, duration=2.0)
        load.run(source)
        starts = sorted(sample.start for sample in load.result.samples)
        assert starts[-1] - starts[0] < 3.0  # all arrived during window
        assert len(load.result) >= 10

    def test_deterministic_given_seed(self):
        counts = []
        for _ in range(2):
            _deployment, source = deploy(seed=77)
            load = OpenLoopLoad(rate=20.0, duration=3.0)
            load.run(source)
            counts.append(len(load.result))
        assert counts[0] == counts[1]

    def test_validation(self):
        with pytest.raises(ValueError):
            OpenLoopLoad(rate=0, duration=1)
        with pytest.raises(ValueError):
            OpenLoopLoad(rate=1, duration=0)


class TestApacheBench:
    def test_completes_total_requests(self):
        _deployment, source = deploy()
        bench = ApacheBench(total_requests=20, concurrency=4)
        result = bench.run(source)
        assert len(result) == 20
        assert result.success_rate == 1.0

    def test_concurrency_shortens_wall_time(self):
        _deployment, source = deploy(service_time_b=0.1)
        serial_deployment, serial_source = deploy(seed=18, service_time_b=0.1)

        bench = ApacheBench(total_requests=10, concurrency=5)
        bench.run(source)
        parallel_span = max(s.start + s.elapsed for s in bench.result.samples)

        serial = ApacheBench(total_requests=10, concurrency=1)
        serial.run(serial_source)
        serial_span = max(s.start + s.elapsed for s in serial.result.samples)
        assert parallel_span < serial_span / 2

    def test_validation(self):
        with pytest.raises(ValueError):
            ApacheBench(total_requests=0)
        with pytest.raises(ValueError):
            ApacheBench(total_requests=1, concurrency=0)


class TestLoadResult:
    def test_summary_fields(self):
        _deployment, source = deploy()
        result = ClosedLoopLoad(num_requests=4).run(source)
        assert len(result.latencies) == 4
        assert all(latency > 0 for latency in result.latencies)
        assert result.statuses == [200] * 4
        assert result.error_count == 0

    def test_empty_result(self):
        from repro.loadgen import LoadResult

        result = LoadResult()
        assert result.success_rate == 0.0
        assert len(result) == 0
