"""Tests for the differential fuzzing harness."""
