"""Generator determinism and corpus validity."""

from repro.cli import APPS
from repro.fuzz import FuzzGenerator, build_application, build_check, build_scenario

CORPUS = 40


class TestDeterminism:
    def test_same_seed_same_corpus(self):
        first = FuzzGenerator(11, app_registry=APPS).generate(CORPUS)
        second = FuzzGenerator(11, app_registry=APPS).generate(CORPUS)
        assert [c.to_dict() for c in first] == [c.to_dict() for c in second]

    def test_case_independent_of_generation_order(self):
        generator = FuzzGenerator(11, app_registry=APPS)
        direct = generator.case(17)
        assert FuzzGenerator(11, app_registry=APPS).generate(18)[17] == direct

    def test_different_seeds_differ(self):
        a = FuzzGenerator(1, app_registry=APPS).generate(10)
        b = FuzzGenerator(2, app_registry=APPS).generate(10)
        assert [c.to_dict() for c in a] != [c.to_dict() for c in b]


class TestCorpusValidity:
    def test_every_case_materializes(self):
        for case in FuzzGenerator(3, app_registry=APPS).generate(CORPUS):
            application = build_application(case.topology, app_registry=APPS)
            assert application.definitions
            for spec in case.scenarios:
                build_scenario(spec)
            for spec in case.checks:
                build_check(spec)
            assert case.workload.requests >= 1

    def test_dags_are_rooted_at_entry(self):
        for case in FuzzGenerator(5, app_registry=APPS).generate(CORPUS):
            if case.topology.kind != "dag":
                continue
            topology = case.topology
            assert topology.entry == topology.services[0]
            # Every non-root service has at least one caller.
            callees = {dst for _, dst in topology.edges}
            for service in topology.services[1:]:
                assert service in callees
            # Edges point strictly forward: it is a DAG.
            order = {name: i for i, name in enumerate(topology.services)}
            assert all(order[src] < order[dst] for src, dst in topology.edges)

    def test_corpus_mixes_domains(self):
        cases = FuzzGenerator(0, app_registry=APPS).generate(120)
        kinds = {spec["kind"] for case in cases for spec in case.scenarios}
        # All fifteen scenario kinds appear in a decent-sized corpus.
        assert len(kinds) == 15, kinds
        assert {"retry_storm", "gray_failure", "misconfiguration",
                "resource_exhaustion", "noop_control"} <= kinds
        assert any(case.topology.kind == "app" for case in cases)
        assert any(case.oracle_eligible for case in cases)
        assert any(not case.deterministic for case in cases)

    def test_no_registry_means_dag_only(self):
        cases = FuzzGenerator(0).generate(30)
        assert all(case.topology.kind == "dag" for case in cases)
