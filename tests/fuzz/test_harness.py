"""Fleet-level fuzz runs, repro artifacts, and bit-for-bit replay."""

import json

import pytest

from repro.cli import APPS
from repro.errors import GremlinError
from repro.fuzz import (
    FuzzGenerator,
    load_artifact,
    replay_artifact,
    run_case,
    run_fuzz,
    write_artifact,
)
from repro.fuzz.differential import CaseReport
import repro.fuzz.harness as harness_mod

CASES = 12


class TestRunFuzz:
    def test_clean_corpus_passes(self):
        report = run_fuzz(31, CASES, app_registry=APPS)
        assert report.passed
        assert report.cases == CASES
        assert report.oracle_checked > 0
        assert report.metamorphic_counts["matcher-strategy"] == CASES
        assert report.metamorphic_counts["shuffle"] == CASES

    def test_worker_count_independence(self):
        serial = run_fuzz(31, CASES, workers=1, app_registry=APPS)
        fleet = run_fuzz(31, CASES, workers=4, app_registry=APPS)
        assert serial.to_dict()["failures"] == fleet.to_dict()["failures"]
        assert serial.oracle_checked == fleet.oracle_checked
        assert serial.metamorphic_counts == fleet.metamorphic_counts

    def test_crashing_case_becomes_harness_error(self, monkeypatch, tmp_path):
        real_run = harness_mod.run_case

        def exploding(case, app_registry=None):
            if case.case_id.endswith("-2"):
                raise RuntimeError("boom")
            return real_run(case, app_registry=app_registry)

        monkeypatch.setattr(harness_mod, "run_case", exploding)
        report = run_fuzz(31, 4, app_registry=APPS, artifacts_dir=str(tmp_path))
        assert not report.passed
        (failure,) = report.failures
        assert failure["mismatch_kinds"] == ["harness/error"]
        # Harness errors are not shrunk but still produce an artifact.
        assert failure["artifact"] is not None

    def test_failures_are_shrunk_and_archived(self, monkeypatch, tmp_path):
        real_run = harness_mod.run_case

        def buggy(case, app_registry=None):
            report = real_run(case, app_registry=app_registry)
            if any(s["kind"] == "delay" for s in case.scenarios):
                report.mismatches.append(
                    {"kind": "oracle/trace", "detail": "synthetic"}
                )
            return report

        monkeypatch.setattr(harness_mod, "run_case", buggy)
        import importlib

        shrink_mod = importlib.import_module("repro.fuzz.shrink")
        monkeypatch.setattr(shrink_mod, "run_case", buggy)
        report = run_fuzz(31, CASES, app_registry=APPS, artifacts_dir=str(tmp_path))
        assert not report.passed
        for failure in report.failures:
            assert failure["artifact"] is not None
            data = load_artifact(failure["artifact"])
            assert data["verdict"]["mismatch_kinds"] == ["oracle/trace"]
            minimal = data["case"]
            assert any(s["kind"] == "delay" for s in minimal["scenarios"])


class TestArtifacts:
    def artifact_for(self, tmp_path, seed=5, index=3):
        case = FuzzGenerator(seed, app_registry=APPS).case(index)
        report = run_case(case, app_registry=APPS)
        path = tmp_path / f"{case.case_id}.json"
        write_artifact(str(path), report, shrink_steps=["none"])
        return path, report

    def test_artifact_is_valid_json(self, tmp_path):
        path, report = self.artifact_for(tmp_path)
        data = json.loads(path.read_text())
        assert data["version"] == 1
        assert data["verdict"]["digest"] == report.digest
        assert data["shrink_steps"] == ["none"]

    def test_replay_reproduces_bit_for_bit(self, tmp_path):
        path, report = self.artifact_for(tmp_path)
        result = replay_artifact(str(path), app_registry=APPS)
        assert result.reproduced
        assert result.report.digest == report.digest

    def test_replay_detects_digest_drift(self, tmp_path):
        path, _report = self.artifact_for(tmp_path)
        data = json.loads(path.read_text())
        data["verdict"]["digest"] = "0" * 64
        path.write_text(json.dumps(data))
        result = replay_artifact(str(path), app_registry=APPS)
        assert not result.reproduced

    def test_version_gate(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 99, "case": {}}))
        with pytest.raises(GremlinError):
            load_artifact(str(path))
