"""Property tests for the five new scenario primitives.

Two contracts, each under randomized parameters (hypothesis):

* **Codec losslessness** — every new-kind scenario survives
  ``scenario_to_spec -> json -> build_scenario`` comparing equal.
* **Oracle exactness** — within the deterministic domain (probability
  and slow_fraction pinned to 0 or 1), the reference oracle's
  prediction agrees with the real stack field-for-field: record keys,
  end-to-end samples, and check verdicts.  This is the differential
  loop's core guarantee, extended to the new vocabulary — including
  ResourceExhaustion, whose skip/budget rule pair is the sharpest test
  of matcher-order mirroring.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scenarios import (
    GrayFailure,
    Misconfiguration,
    NoOpControl,
    ResourceExhaustion,
    RetryStorm,
)
from repro.fuzz import (
    FuzzCase,
    TopologySpec,
    WorkloadSpec,
    build_scenario,
    check_to_spec,
    predict,
    scenario_to_spec,
)
from repro.fuzz.differential import execute_case
from repro.fuzz.spec import EdgeCountCheck, EdgeStatusCheck

# Fault targets on the user -> a -> b -> c chain.  The entry "a" is
# excluded: its only dependent is the traffic source, which is not a
# graph service, so dependent-decomposing scenarios reject it.
_targets = st.sampled_from(["b", "c"])
_durations = st.sampled_from(["50ms", "100ms", "250ms"])
_binary = st.sampled_from([0.0, 1.0])

_retry_storms = st.builds(
    RetryStorm,
    service=_targets,
    error=st.sampled_from([500, 502, 503]),
    probability=_binary,
)
_gray_failures = st.builds(
    GrayFailure,
    service=_targets,
    interval=_durations,
    slow_fraction=_binary,
)
_misconfigurations = st.builds(
    Misconfiguration,
    service=_targets,
    mode=st.sampled_from(["endpoint", "reply"]),
    error=st.sampled_from([400, 404, 410]),
    replace_bytes=st.sampled_from(["<garbage>", "XX"]),
)
_exhaustions = st.builds(
    ResourceExhaustion,
    service=_targets,
    interval=_durations,
    shed_after=st.integers(min_value=1, max_value=5),
    error=st.sampled_from([429, 503]),
)
_noops = st.builds(NoOpControl, service=_targets)

_new_kind_scenarios = st.one_of(
    _retry_storms, _gray_failures, _misconfigurations, _exhaustions, _noops
)


def chain_case(scenarios, requests=2, case_id="prop-case"):
    """user -> a -> b -> c with the standard agreement checks."""
    topology = TopologySpec(
        kind="dag",
        services=["a", "b", "c"],
        edges=[("a", "b"), ("b", "c")],
        entry="a",
    )
    return FuzzCase(
        case_id=case_id,
        seed=13,
        topology=topology,
        scenarios=[scenario_to_spec(s) for s in scenarios],
        checks=[
            check_to_spec(EdgeStatusCheck("user", "a", 200, with_rule=False)),
            check_to_spec(EdgeCountCheck("b", "c", ">=", 0)),
        ],
        workload=WorkloadSpec(requests=requests),
    )


class TestCodecLosslessness:
    @settings(max_examples=60, deadline=None)
    @given(scenario=_new_kind_scenarios)
    def test_new_kinds_round_trip_through_json(self, scenario):
        spec = scenario_to_spec(scenario)
        rebuilt = build_scenario(json.loads(json.dumps(spec)))
        assert rebuilt == scenario, spec
        assert scenario_to_spec(rebuilt) == spec

    @settings(max_examples=30, deadline=None)
    @given(scenario=_new_kind_scenarios, requests=st.integers(1, 3))
    def test_case_and_recipe_round_trip(self, scenario, requests):
        case = chain_case([scenario], requests=requests)
        rebuilt = FuzzCase.from_dict(json.loads(json.dumps(case.to_dict())))
        assert rebuilt == case
        assert rebuilt.recipe() == case.recipe()


class TestOracleExactness:
    @settings(max_examples=30, deadline=None)
    @given(scenario=_new_kind_scenarios, requests=st.integers(1, 3))
    def test_prediction_matches_execution(self, scenario, requests):
        case = chain_case([scenario], requests=requests)
        assert case.deterministic and case.oracle_eligible
        prediction = predict(case)
        execution = execute_case(case)
        assert [r.key() for r in prediction.records] == execution.records
        assert prediction.samples == execution.samples
        assert prediction.verdicts == execution.verdicts

    @settings(max_examples=15, deadline=None)
    @given(
        first=_new_kind_scenarios,
        second=_new_kind_scenarios,
        requests=st.integers(1, 2),
    )
    def test_stacked_new_kinds_stay_exact(self, first, second, requests):
        case = chain_case([first, second], requests=requests)
        if not case.oracle_eligible:
            return  # e.g. two Misconfiguration(reply) rules stack fine
        prediction = predict(case)
        execution = execute_case(case)
        assert [r.key() for r in prediction.records] == execution.records
        assert prediction.samples == execution.samples
        assert prediction.verdicts == execution.verdicts
