"""Shrinking failing cases to minimal repros.

The stack currently has no real differential failures (the corpus
sweep asserts exactly that), so these tests inject synthetic bugs by
monkeypatching the shrinker's ``run_case`` with predicates that fail
on chosen case features — the standard way to test a minimizer
independently of the defect that feeds it.
"""

import pytest

from repro.fuzz import FuzzGenerator
from repro.fuzz.differential import CaseReport
import importlib

shrink_mod = importlib.import_module("repro.fuzz.shrink")


def fake_battery(monkeypatch, fails_when):
    """Replace the shrinker's battery with a feature predicate."""

    def run(case, app_registry=None):
        report = CaseReport(case=case, digest="synthetic")
        if fails_when(case):
            report.mismatches.append(
                {"kind": "oracle/trace", "detail": "synthetic bug"}
            )
        return report

    monkeypatch.setattr(shrink_mod, "run_case", run)


def corpus_case(predicate, *, seed=7, want_extra=True):
    """First generated case matching ``predicate`` (plus some bulk)."""
    for case in FuzzGenerator(seed).generate(200):
        if not predicate(case):
            continue
        if want_extra and (len(case.scenarios) < 2 or len(case.checks) < 2):
            continue
        return case
    raise AssertionError("no suitable corpus case found")


def has_abort(case):
    return any(spec["kind"] == "abort" for spec in case.scenarios)


class TestShrink:
    def test_minimizes_to_the_failing_feature(self, monkeypatch):
        fake_battery(monkeypatch, has_abort)
        case = corpus_case(has_abort)
        result = shrink_mod.shrink(case)
        assert [s["kind"] for s in result.case.scenarios] == ["abort"]
        assert result.case.checks == []
        assert result.case.workload.requests == 1
        assert result.case.workload.think_time == 0.0
        assert result.report.failed
        assert result.steps

    def test_prunes_unreferenced_services(self, monkeypatch):
        fake_battery(monkeypatch, has_abort)
        case = corpus_case(
            lambda c: has_abort(c)
            and c.topology.kind == "dag"
            and len(c.topology.services) >= 4
        )
        result = shrink_mod.shrink(case)
        # Only the entry and services the surviving scenario names remain.
        survivors = set(result.case.topology.services)
        referenced = shrink_mod._referenced_names(result.case)
        assert survivors <= referenced | {result.case.topology.entry}

    def test_passing_case_is_rejected(self, monkeypatch):
        fake_battery(monkeypatch, lambda case: False)
        case = FuzzGenerator(7).case(0)
        with pytest.raises(ValueError):
            shrink_mod.shrink(case)

    def test_evaluation_budget_is_respected(self, monkeypatch):
        fake_battery(monkeypatch, has_abort)
        case = corpus_case(has_abort)
        result = shrink_mod.shrink(case, max_evaluations=3)
        assert result.evaluations <= 3

    def test_minimal_case_still_replays(self, monkeypatch):
        fake_battery(monkeypatch, has_abort)
        case = corpus_case(has_abort)
        minimal = shrink_mod.shrink(case).case
        # The spec layer keeps the minimal case valid and executable;
        # run it through the *real* battery (clean stack -> no mismatch).
        monkeypatch.undo()
        from repro.fuzz import run_case

        real = run_case(minimal)
        assert real.digest
        assert not real.failed
