"""The reference oracle against hand-built cases and the real stack.

Each test pins the oracle's prediction for a topology/scenario pair
whose expected outcome is derivable by hand from the paper's rule
semantics, then (in the agreement tests) confirms the real execution
matches field-for-field — the core differential-fuzzing loop in
miniature.
"""

import pytest

from repro.core.scenarios import (
    AbortCalls,
    Crash,
    DelayCalls,
    ModifyReplies,
)
from repro.fuzz import (
    FuzzCase,
    OracleError,
    TopologySpec,
    WorkloadSpec,
    check_to_spec,
    predict,
    scenario_to_spec,
)
from repro.fuzz.differential import execute_case
from repro.fuzz.spec import EdgeCountCheck, EdgeStatusCheck


def chain_case(scenarios, checks=(), requests=2, partial_ok=(), case_id="oracle-case"):
    """user -> a -> b -> c."""
    topology = TopologySpec(
        kind="dag",
        services=["a", "b", "c"],
        edges=[("a", "b"), ("b", "c")],
        entry="a",
        partial_ok=list(partial_ok),
    )
    return FuzzCase(
        case_id=case_id,
        seed=13,
        topology=topology,
        scenarios=[scenario_to_spec(s) for s in scenarios],
        checks=[check_to_spec(c) for c in checks],
        workload=WorkloadSpec(requests=requests),
    )


class TestPredictions:
    def test_healthy_chain(self):
        prediction = predict(chain_case([AbortCalls("a", "b", probability=0.0)]))
        # Per request: 3 request records + 3 replies, DFS order.
        assert len(prediction.records) == 12
        assert prediction.samples == [("test-1", 200, None), ("test-2", 200, None)]
        first = [r.key() for r in prediction.records[:6]]
        assert [k[:4] for k in first] == [
            ("request", "user", "a", "test-1"),
            ("request", "a", "b", "test-1"),
            ("request", "b", "c", "test-1"),
            ("reply", "b", "c", "test-1"),
            ("reply", "a", "b", "test-1"),
            ("reply", "user", "a", "test-1"),
        ]

    def test_abort_propagates_up_the_chain(self):
        prediction = predict(chain_case([AbortCalls("b", "c", error=503)], requests=1))
        by_edge = {(r.src, r.dst, r.kind): r for r in prediction.records}
        faulted = by_edge[("b", "c", "request")]
        assert faulted.status == 503
        assert faulted.fault_applied == "abort(503)"
        assert by_edge[("b", "c", "reply")].gremlin_generated
        # b's fanout converts the 503 into a dependency failure...
        assert by_edge[("a", "b", "request")].status == 500
        # ...which bubbles to the user edge.
        assert prediction.samples == [("test-1", 500, None)]

    def test_partial_ok_degrades_instead(self):
        case = chain_case(
            [AbortCalls("b", "c", error=503)], requests=1, partial_ok=["b"]
        )
        prediction = predict(case)
        by_edge = {(r.src, r.dst, r.kind): r for r in prediction.records}
        assert by_edge[("a", "b", "request")].status == 200
        assert prediction.samples == [("test-1", 200, None)]

    def test_delay_accumulates_on_the_record(self):
        prediction = predict(
            chain_case([DelayCalls("a", "b", "250ms")], requests=1)
        )
        delayed = [r for r in prediction.records if r.injected_delay > 0]
        assert delayed
        assert all(abs(r.injected_delay - 0.25) < 1e-9 for r in delayed)

    def test_budget_limits_matches(self):
        prediction = predict(
            chain_case([AbortCalls("a", "b", error=503, max_matches=1)], requests=3)
        )
        statuses = [sample[1] for sample in prediction.samples]
        assert statuses == [500, 200, 200]

    def test_flow_pattern_selects_requests(self):
        prediction = predict(
            chain_case([AbortCalls("a", "b", error=503, pattern="test-2")], requests=3)
        )
        statuses = [sample[1] for sample in prediction.samples]
        assert statuses == [200, 500, 200]

    def test_crash_resets_every_dependent_edge(self):
        prediction = predict(chain_case([Crash("c")], requests=1))
        by_edge = {(r.src, r.dst, r.kind): r for r in prediction.records}
        assert by_edge[("b", "c", "request")].error == "reset"
        assert by_edge[("b", "c", "reply")].error == "reset"
        assert by_edge[("b", "c", "reply")].gremlin_generated

    def test_verdicts_follow_samples(self):
        case = chain_case(
            [AbortCalls("b", "c", error=503)],
            checks=[
                EdgeStatusCheck("b", "c", 503),
                EdgeCountCheck("b", "c", "==", 2),
                EdgeStatusCheck("c", "a", 200),  # edge never exercised
            ],
            requests=2,
        )
        prediction = predict(case)
        assert [(v[1], v[2]) for v in prediction.verdicts] == [
            (True, False),
            (True, False),
            (False, True),  # inconclusive: no data
        ]


class TestDomainGuards:
    def test_fractional_probability_raises(self):
        case = chain_case([AbortCalls("a", "b", probability=0.5)])
        with pytest.raises(OracleError):
            predict(case)

    def test_app_topology_raises(self):
        case = chain_case([AbortCalls("a", "b")])
        case.topology = TopologySpec(kind="app", entry="ServiceA", app="twotier")
        with pytest.raises(OracleError):
            predict(case)


class TestAgreementWithRealStack:
    """Field-for-field agreement between oracle and execution."""

    CASES = [
        ("healthy", [AbortCalls("a", "b", probability=0.0)]),
        ("abort", [AbortCalls("b", "c", error=502)]),
        ("abort-request", [AbortCalls("a", "b", error=500, on="request")]),
        ("delay", [DelayCalls("b", "c", "100ms")]),
        ("modify", [ModifyReplies("b", "c", "ok", "KO")]),
        ("crash", [Crash("b")]),
        ("stack", [DelayCalls("a", "b", "50ms"), AbortCalls("b", "c", error=503)]),
    ]

    @pytest.mark.parametrize("name,scenarios", CASES, ids=[c[0] for c in CASES])
    def test_oracle_matches_execution(self, name, scenarios):
        case = chain_case(
            scenarios,
            checks=[
                EdgeStatusCheck("user", "a", 200, with_rule=False),
                EdgeCountCheck("b", "c", ">=", 0),
            ],
            requests=2,
            case_id=f"agree-{name}",
        )
        prediction = predict(case)
        execution = execute_case(case)
        assert [r.key() for r in prediction.records] == execution.records
        assert prediction.samples == execution.samples
        assert prediction.verdicts == execution.verdicts
