"""The differential runner: battery selection, digests, sensitivity."""

from repro.cli import APPS
from repro.core.scenarios import AbortCalls, DelayCalls
from repro.fuzz import FuzzGenerator, TopologySpec, execute_case, run_case
from tests.fuzz.test_oracle import chain_case


class TestBatterySelection:
    def test_oracle_runs_on_eligible_cases(self):
        report = run_case(chain_case([AbortCalls("a", "b", error=503)]))
        assert report.oracle_checked
        assert "zero-probability" in report.metamorphic_run
        assert not report.failed

    def test_fractional_case_skips_oracle_and_zero_probability(self):
        report = run_case(chain_case([AbortCalls("a", "b", probability=0.5)]))
        assert not report.oracle_checked
        assert "zero-probability" not in report.metamorphic_run
        assert "matcher-strategy" in report.metamorphic_run
        assert not report.failed

    def test_competing_rules_skip_rule_order(self):
        # Two rules on the same (src, dst, direction) slot compete, so
        # install order is semantically meaningful and not checked.
        report = run_case(
            chain_case(
                [
                    AbortCalls("a", "b", error=503, pattern="test-1"),
                    AbortCalls("a", "b", error=500, pattern="test-2"),
                ]
            )
        )
        assert "rule-order" not in report.metamorphic_run
        assert not report.failed

    def test_app_case_runs_metamorphic_only(self):
        case = chain_case([AbortCalls("ServiceA", "ServiceB", error=503)])
        case.topology = TopologySpec(kind="app", entry="ServiceA", app="twotier")
        report = run_case(case, app_registry=APPS)
        assert not report.oracle_checked
        assert "matcher-strategy" in report.metamorphic_run
        assert "shuffle" in report.metamorphic_run
        assert not report.failed


class TestDigestSensitivity:
    def test_same_case_same_digest(self):
        case = chain_case([DelayCalls("a", "b", "100ms")])
        assert execute_case(case).digest == execute_case(case).digest

    def test_digest_sees_rule_changes(self):
        case = chain_case([AbortCalls("b", "c", error=503)])
        base = execute_case(case)
        # Dropping the installed rule must change the observable trace.
        tampered = execute_case(case, rule_transform=lambda rules: [])
        assert tampered.digest != base.digest

    def test_digest_sees_seed_changes(self):
        case = chain_case([AbortCalls("a", "b", error=503, probability=0.5)])
        base = execute_case(case)
        import dataclasses

        reseeded = dataclasses.replace(case, seed=case.seed + 1)
        # Different deployment seed -> different probability draws is
        # *possible*; what must hold is that equal seeds always agree.
        assert execute_case(case).digest == base.digest
        execute_case(reseeded)  # must simply run clean


class TestCorpusSweep:
    def test_generated_corpus_is_clean(self):
        cases = FuzzGenerator(21, app_registry=APPS).generate(25)
        for case in cases:
            report = run_case(case, app_registry=APPS)
            assert not report.failed, (
                case.case_id,
                report.mismatches,
            )
