"""Round-trip coverage for the fuzz spec layer (satellite: recipe
serialization).

A fuzz case must survive ``to_dict -> json -> from_dict`` with nothing
lost: the rebuilt case compares equal, and — the contract repro
artifacts rely on — its ``recipe()`` compares equal to the original's,
which exercises the ``__eq__``/normalization added to ``Recipe``,
``FailureScenario``, and ``PatternCheck``.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import APPS
from repro.core.recipe import Recipe
from repro.core.scenarios import AbortCalls, DelayCalls, ModifyReplies
from repro.fuzz import (
    EdgeCountCheck,
    EdgeStatusCheck,
    FuzzCase,
    FuzzGenerator,
    TopologySpec,
    WorkloadSpec,
    build_check,
    build_scenario,
    check_to_spec,
    scenario_to_spec,
)


def small_case():
    topology = TopologySpec(
        kind="dag",
        services=["a", "b", "c"],
        edges=[("a", "b"), ("a", "c")],
        entry="a",
        partial_ok=["a"],
    )
    return FuzzCase(
        case_id="rt-1",
        seed=7,
        topology=topology,
        scenarios=[
            scenario_to_spec(AbortCalls("a", "b", error=503)),
            scenario_to_spec(ModifyReplies("a", "c", "ok", "KO")),
        ],
        checks=[
            check_to_spec(EdgeStatusCheck("a", "b", 503)),
            check_to_spec(EdgeCountCheck("a", "c", ">=", 1)),
        ],
        workload=WorkloadSpec(requests=3, think_time=0.01),
    )


class TestScenarioCodec:
    def test_round_trips_every_kind(self):
        from repro.core.scenarios import (
            Crash,
            Degrade,
            Disconnect,
            FakeSuccess,
            GrayFailure,
            Hang,
            Misconfiguration,
            NetworkPartition,
            NoOpControl,
            Overload,
            ResourceExhaustion,
            RetryStorm,
        )

        scenarios = [
            AbortCalls("a", "b", error=500, on="request", probability=0.5, max_matches=2),
            DelayCalls("a", "b", "250ms", pattern="test-1"),
            ModifyReplies("a", "b", "ok", "KO", id_pattern="test-*"),
            Disconnect("a", "b", error=502),
            Crash("b", probability=0.0),
            Hang("b", interval="2s"),
            Overload("b", abort_fraction=0.5, interval="50ms"),
            Degrade("b", interval="1s"),
            NetworkPartition(["a"], ["b", "c"]),
            FakeSuccess("b", pattern="ok", replace_bytes="bad"),
            RetryStorm("b", error=502, probability=0.5),
            GrayFailure("b", interval="300ms", slow_fraction=0.25),
            Misconfiguration("b", mode="reply", replace_bytes="XX"),
            Misconfiguration("b", mode="endpoint", error=410),
            ResourceExhaustion("b", interval="75ms", shed_after=3, error=429),
            NoOpControl("b", pattern="test-2"),
        ]
        for scenario in scenarios:
            spec = scenario_to_spec(scenario)
            rebuilt = build_scenario(json.loads(json.dumps(spec)))
            assert rebuilt == scenario, spec["kind"]

    def test_equality_is_type_strict(self):
        abort = AbortCalls("a", "b", error=503)
        delay = DelayCalls("a", "b", "1s")
        assert abort != delay
        assert abort == AbortCalls("a", "b", error=503)
        assert abort != AbortCalls("a", "b", error=500)
        assert hash(abort) == hash(AbortCalls("a", "b", error=503))


class TestCheckCodec:
    def test_round_trips_both_kinds(self):
        checks = [
            EdgeStatusCheck("a", "b", 503, num_match=2, with_rule=False),
            EdgeCountCheck("a", "b", "==", 0, id_pattern="test-1"),
        ]
        for check in checks:
            spec = check_to_spec(check)
            rebuilt = build_check(json.loads(json.dumps(spec)))
            assert rebuilt == check


class TestCaseRoundTrip:
    def test_case_survives_json(self):
        case = small_case()
        rebuilt = FuzzCase.from_dict(json.loads(json.dumps(case.to_dict())))
        assert rebuilt == case
        assert rebuilt.to_dict() == case.to_dict()

    def test_recipe_equality_after_round_trip(self):
        case = small_case()
        rebuilt = FuzzCase.from_dict(json.loads(json.dumps(case.to_dict())))
        assert rebuilt.recipe() == case.recipe()

    def test_recipe_normalizes_list_vs_tuple(self):
        scenarios = [AbortCalls("a", "b", error=503)]
        checks = [EdgeStatusCheck("a", "b", 503)]
        assert Recipe("r", scenarios, checks) == Recipe("r", tuple(scenarios), tuple(checks))

    def test_topology_round_trip_preserves_edge_order(self):
        topology = small_case().topology
        rebuilt = TopologySpec.from_dict(json.loads(json.dumps(topology.to_dict())))
        assert rebuilt == topology
        assert rebuilt.children("a") == ["b", "c"]

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**16), index=st.integers(0, 40))
    def test_generated_cases_round_trip(self, seed, index):
        case = FuzzGenerator(seed, app_registry=APPS).case(index)
        rebuilt = FuzzCase.from_dict(json.loads(json.dumps(case.to_dict())))
        assert rebuilt == case
        assert rebuilt.recipe() == case.recipe()
        assert rebuilt.oracle_eligible == case.oracle_eligible


class TestEligibility:
    def test_fractional_probability_excludes_oracle(self):
        case = small_case()
        case.scenarios.append(
            scenario_to_spec(AbortCalls("a", "b", error=503, probability=0.5))
        )
        assert not case.deterministic
        assert not case.oracle_eligible

    def test_zero_and_one_probability_stay_deterministic(self):
        case = small_case()
        case.scenarios.append(
            scenario_to_spec(AbortCalls("a", "b", error=503, probability=0.0))
        )
        assert case.deterministic and case.oracle_eligible

    def test_app_topology_excludes_oracle(self):
        case = small_case()
        case.topology = TopologySpec(kind="app", entry="ServiceA", app="twotier")
        assert not case.oracle_eligible

    def test_unknown_kind_rejected(self):
        with pytest.raises(Exception):
            build_scenario({"kind": "nope", "params": {}})
        with pytest.raises(Exception):
            build_check({"kind": "nope", "params": {}})
