"""Smoke tests: every shipped example must run cleanly.

Examples are the first thing a downstream user executes; a broken one
is a broken front door.  Each runs in-process (same interpreter) via
``runpy`` so failures carry full tracebacks.
"""

import pathlib
import runpy
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(path.name for path in EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs_cleanly(script, capsys, monkeypatch, tmp_path):
    # Examples are plain scripts: run with __name__ == "__main__".
    # Scripts that write output files (generate_figures) get a tmp dir.
    monkeypatch.syspath_prepend(str(EXAMPLES_DIR))
    monkeypatch.setattr(sys, "argv", [script, str(tmp_path)])
    try:
        runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    except SystemExit as exc:  # an example may exit(0) explicitly
        assert exc.code in (None, 0), f"{script} exited with {exc.code}"
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"


def test_expected_examples_present():
    names = set(EXAMPLES)
    for expected in (
        "quickstart.py",
        "wordpress_elasticpress.py",
        "enterprise_case_study.py",
        "outage_recreations.py",
        "chained_failures.py",
        "auto_recipes.py",
        "pubsub_kafkapocalypse.py",
    ):
        assert expected in names
