"""Property-based tests for transport-level ordering guarantees."""

from hypothesis import given, settings, strategies as st

from repro.network import Address, Network
from repro.simulation import Simulator


class TestFifoDelivery:
    @given(
        payload_count=st.integers(min_value=1, max_value=30),
        latency=st.floats(min_value=0.0, max_value=0.01, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_messages_arrive_in_send_order(self, payload_count, latency):
        """One connection delivers payloads strictly in send order,
        regardless of link latency — the property HTTP pipelining and
        the Fig 6 phased rules both depend on."""
        sim = Simulator(seed=3)
        net = Network(sim, default_latency=latency)
        server_host = net.add_host("server")
        client_host = net.add_host("client")
        listener = server_host.listen(80)
        received = []

        def server(sim):
            conn = yield listener.accept()
            for _ in range(payload_count):
                received.append((yield conn.recv()))

        def client(sim):
            conn = yield client_host.connect(Address("server", 80))
            for index in range(payload_count):
                conn.send(f"m{index}".encode())

        sim.process(server(sim))
        sim.process(client(sim))
        sim.run()
        assert received == [f"m{index}".encode() for index in range(payload_count)]

    @given(counts=st.lists(st.integers(min_value=1, max_value=10), min_size=2, max_size=5))
    @settings(max_examples=40, deadline=None)
    def test_independent_connections_each_fifo(self, counts):
        sim = Simulator(seed=4)
        net = Network(sim, default_latency=0.001)
        server_host = net.add_host("server")
        listener = server_host.listen(80)
        per_connection: dict[int, list[bytes]] = {}

        def server_loop(sim):
            for _ in range(len(counts)):
                conn = yield listener.accept()
                sim.process(reader(sim, conn))

        def reader(sim, conn):
            while True:
                try:
                    payload = yield conn.recv()
                except Exception:  # noqa: BLE001 - closed
                    return
                tag, _, seq = payload.partition(b":")
                per_connection.setdefault(int(tag), []).append(int(seq))

        def one_client(sim, tag, count):
            host = net.add_host(f"client-{tag}")
            conn = yield host.connect(Address("server", 80))
            for index in range(count):
                conn.send(b"%d:%d" % (tag, index))
                yield sim.timeout(0.0005)
            conn.close()

        sim.process(server_loop(sim))
        for tag, count in enumerate(counts):
            sim.process(one_client(sim, tag, count))
        sim.run()
        for tag, count in enumerate(counts):
            assert per_connection[tag] == list(range(count))
