"""Property-based tests: the matcher strategies are equivalent.

Three strategies (linear scan, prefix index, compiled dispatch table)
must be observationally identical: same match for every probe, same
budget accounting, and — the load-bearing part — the same RNG draw
sequence, because the differential fuzzer's strategy-equivalence check
diffs digests byte-for-byte across strategies.
"""

import random
import string

from hypothesis import given, settings, strategies as st

from repro.agent import LinearMatcher, PrefixIndexMatcher, TableMatcher, abort, delay

_service = st.sampled_from(["B", "C", "D"])
_direction = st.sampled_from(["request", "response"])
_prefix = st.sampled_from(["test-", "user-", "canary-"])
_pattern = st.one_of(
    _prefix.map(lambda p: p + "*"),
    st.just("*"),
    st.sampled_from(["test-1", "test-1?", "re-match"]),
)


def _fresh_matchers(seed):
    """One instance of every strategy, identically seeded."""
    return (
        LinearMatcher(random.Random(seed)),
        PrefixIndexMatcher(random.Random(seed)),
        TableMatcher(random.Random(seed)),
    )


@st.composite
def rule_specs(draw):
    dst = draw(_service)
    direction = draw(_direction)
    pattern = draw(_pattern)
    kind = draw(st.sampled_from(["abort", "delay"]))
    if kind == "abort":
        return abort("A", dst, pattern=pattern, on=direction)
    return delay("A", dst, interval=0.1, pattern=pattern, on=direction)


@st.composite
def probabilistic_rule_specs(draw):
    """Rules that exercise the probability draw and budget paths."""
    dst = draw(_service)
    direction = draw(_direction)
    pattern = draw(_pattern)
    probability = draw(st.sampled_from([0.0, 0.25, 0.5, 0.75, 1.0]))
    max_matches = draw(st.sampled_from([None, 1, 2]))
    return abort(
        "A",
        dst,
        pattern=pattern,
        on=direction,
        probability=probability,
        max_matches=max_matches,
    )


@st.composite
def probes(draw):
    dst = draw(_service)
    direction = draw(_direction)
    request_id = draw(
        st.one_of(
            st.none(),
            st.tuples(_prefix, st.integers(0, 99)).map(lambda t: f"{t[0]}{t[1]}"),
            st.text(alphabet=string.ascii_lowercase + "-", min_size=1, max_size=12),
        )
    )
    return dst, direction, request_id


class TestStrategyEquivalence:
    @given(rules=st.lists(rule_specs(), max_size=8), queries=st.lists(probes(), max_size=20))
    @settings(max_examples=200, deadline=None)
    def test_all_strategies_agree(self, rules, queries):
        matchers = _fresh_matchers(0)
        for rule in rules:
            for matcher in matchers:
                matcher.install(rule)
        for dst, direction, request_id in queries:
            hits = [m.match(dst, direction, request_id) for m in matchers]
            assert len({hit is None for hit in hits}) == 1
            if hits[0] is not None:
                assert len({hit.rule.rule_id for hit in hits}) == 1
                # Keep budgets in sync for the next probe.
                for hit in hits:
                    hit.consume()

    @given(
        rules=st.lists(probabilistic_rule_specs(), max_size=8),
        queries=st.lists(probes(), max_size=30),
    )
    @settings(max_examples=200, deadline=None)
    def test_rng_consumption_identical(self, rules, queries):
        """All strategies burn probability draws in lockstep.

        The differential fuzzer's strategy-equivalence check demands
        byte-identical behaviour given the same seeded RNG, which only
        holds if a draw is taken for exactly the same (message, rule)
        pairs in exactly the same order.  Identically seeded PRNGs must
        therefore stay state-synchronized through any probe sequence.
        """
        matchers = _fresh_matchers(1234)
        reference = matchers[0]
        for rule in rules:
            for matcher in matchers:
                matcher.install(rule)
        for dst, direction, request_id in queries:
            hits = [m.match(dst, direction, request_id) for m in matchers]
            assert len({hit is None for hit in hits}) == 1
            if hits[0] is not None:
                assert len({hit.rule.rule_id for hit in hits}) == 1
                for hit in hits:
                    hit.consume()
            # State sync after every probe, not just at the end, so a
            # counterexample shrinks to the first diverging message.
            for other in matchers[1:]:
                assert reference._rng.getstate() == other._rng.getstate()
        for other in matchers[1:]:
            for lrule, orule in zip(reference.rules, other.rules):
                assert lrule.matched == orule.matched
                assert lrule.applied == orule.applied

    @given(
        rules=st.lists(probabilistic_rule_specs(), min_size=1, max_size=6),
        remove_at=st.integers(0, 5),
        queries=st.lists(probes(), max_size=15),
    )
    @settings(max_examples=100, deadline=None)
    def test_equivalence_survives_removal(self, rules, remove_at, queries):
        """Removing a rule mid-stream (recipe teardown) must leave every
        strategy's index consistent — the compiled table recompiles, the
        prefix buckets prune — and the strategies still in lockstep."""
        matchers = _fresh_matchers(99)
        installed_ids = []
        for rule in rules:
            for matcher in matchers:
                handle = matcher.install(rule)
            installed_ids.append(handle.rule.rule_id)
        victim = installed_ids[remove_at % len(installed_ids)]
        for matcher in matchers:
            matcher.remove(victim)
        for dst, direction, request_id in queries:
            hits = [m.match(dst, direction, request_id) for m in matchers]
            assert len({hit is None for hit in hits}) == 1
            if hits[0] is not None:
                assert len({hit.rule.rule_id for hit in hits}) == 1
                assert hits[0].rule.rule_id != victim
                for hit in hits:
                    hit.consume()

    @given(rules=st.lists(rule_specs(), min_size=1, max_size=6))
    @settings(max_examples=100, deadline=None)
    def test_budget_never_oversubscribed(self, rules):
        matcher = LinearMatcher(random.Random(1))
        for rule in rules:
            installed = matcher.install(
                abort(rule.src, rule.dst, pattern=rule.flow_pattern, max_matches=3)
            )
        total_applied = 0
        for _ in range(100):
            hit = matcher.match("B", "request", "test-5")
            if hit is None:
                break
            hit.consume()
            total_applied += 1
        for installed in matcher.rules:
            assert installed.applied <= 3
