"""Property-based tests: the two matcher strategies are equivalent."""

import random
import string

from hypothesis import given, settings, strategies as st

from repro.agent import LinearMatcher, PrefixIndexMatcher, abort, delay

_service = st.sampled_from(["B", "C", "D"])
_direction = st.sampled_from(["request", "response"])
_prefix = st.sampled_from(["test-", "user-", "canary-"])
_pattern = st.one_of(
    _prefix.map(lambda p: p + "*"),
    st.just("*"),
    st.sampled_from(["test-1", "test-1?", "re-match"]),
)


@st.composite
def rule_specs(draw):
    dst = draw(_service)
    direction = draw(_direction)
    pattern = draw(_pattern)
    kind = draw(st.sampled_from(["abort", "delay"]))
    if kind == "abort":
        return abort("A", dst, pattern=pattern, on=direction)
    return delay("A", dst, interval=0.1, pattern=pattern, on=direction)


@st.composite
def probabilistic_rule_specs(draw):
    """Rules that exercise the probability draw and budget paths."""
    dst = draw(_service)
    direction = draw(_direction)
    pattern = draw(_pattern)
    probability = draw(st.sampled_from([0.0, 0.25, 0.5, 0.75, 1.0]))
    max_matches = draw(st.sampled_from([None, 1, 2]))
    return abort(
        "A",
        dst,
        pattern=pattern,
        on=direction,
        probability=probability,
        max_matches=max_matches,
    )


@st.composite
def probes(draw):
    dst = draw(_service)
    direction = draw(_direction)
    request_id = draw(
        st.one_of(
            st.none(),
            st.tuples(_prefix, st.integers(0, 99)).map(lambda t: f"{t[0]}{t[1]}"),
            st.text(alphabet=string.ascii_lowercase + "-", min_size=1, max_size=12),
        )
    )
    return dst, direction, request_id


class TestStrategyEquivalence:
    @given(rules=st.lists(rule_specs(), max_size=8), queries=st.lists(probes(), max_size=20))
    @settings(max_examples=200, deadline=None)
    def test_linear_and_prefix_agree(self, rules, queries):
        linear = LinearMatcher(random.Random(0))
        prefix = PrefixIndexMatcher(random.Random(0))
        for rule in rules:
            linear.install(rule)
            prefix.install(rule)
        for dst, direction, request_id in queries:
            left = linear.match(dst, direction, request_id)
            right = prefix.match(dst, direction, request_id)
            assert (left is None) == (right is None)
            if left is not None:
                assert left.rule.rule_id == right.rule.rule_id
            # Keep budgets in sync for the next probe.
            if left is not None:
                left.consume()
                right.consume()

    @given(
        rules=st.lists(probabilistic_rule_specs(), max_size=8),
        queries=st.lists(probes(), max_size=30),
    )
    @settings(max_examples=200, deadline=None)
    def test_rng_consumption_identical(self, rules, queries):
        """Both strategies burn probability draws in lockstep.

        The differential fuzzer's strategy-equivalence check demands
        byte-identical behaviour given the same seeded RNG, which only
        holds if a draw is taken for exactly the same (message, rule)
        pairs in exactly the same order.  Identically seeded PRNGs must
        therefore stay state-synchronized through any probe sequence.
        """
        linear = LinearMatcher(random.Random(1234))
        prefix = PrefixIndexMatcher(random.Random(1234))
        for rule in rules:
            linear.install(rule)
            prefix.install(rule)
        for dst, direction, request_id in queries:
            left = linear.match(dst, direction, request_id)
            right = prefix.match(dst, direction, request_id)
            assert (left is None) == (right is None)
            if left is not None:
                assert left.rule.rule_id == right.rule.rule_id
                left.consume()
                right.consume()
            # State sync after every probe, not just at the end, so a
            # counterexample shrinks to the first diverging message.
            assert linear._rng.getstate() == prefix._rng.getstate()
        for lrule, prule in zip(linear.rules, prefix.rules):
            assert lrule.matched == prule.matched
            assert lrule.applied == prule.applied

    @given(rules=st.lists(rule_specs(), min_size=1, max_size=6))
    @settings(max_examples=100, deadline=None)
    def test_budget_never_oversubscribed(self, rules):
        matcher = LinearMatcher(random.Random(1))
        for rule in rules:
            installed = matcher.install(
                abort(rule.src, rule.dst, pattern=rule.flow_pattern, max_matches=3)
            )
        total_applied = 0
        for _ in range(100):
            hit = matcher.match("B", "request", "test-5")
            if hit is None:
                break
            hit.consume()
            total_applied += 1
        for installed in matcher.rules:
            assert installed.applied <= 3
