"""Property-based tests for the Combine state machine's invariants."""

from hypothesis import given, settings, strategies as st

from repro.core import AtLeastRequests, AtMostRequests, CheckStatus, Combine
from repro.logstore import ObservationRecord


@st.composite
def rlists(draw):
    count = draw(st.integers(min_value=0, max_value=40))
    records = []
    ts = 0.0
    for index in range(count):
        ts += draw(st.floats(min_value=0.01, max_value=5.0, allow_nan=False))
        status = draw(st.sampled_from([200, 503]))
        records.append(
            ObservationRecord(
                timestamp=ts,
                kind="request",
                src="A",
                dst="B",
                request_id=f"test-{index}",
                status=status,
            )
        )
    return records


class TestCombineInvariants:
    @given(rlist=rlists(), threshold=st.integers(1, 10))
    @settings(max_examples=150, deadline=None)
    def test_consumed_never_exceeds_input(self, rlist, threshold):
        result = Combine(
            CheckStatus(503, threshold, True),
            AtMostRequests("1min", True, 10**9),
        ).evaluate(rlist)
        # Only *passing* steps consume; a failing step short-circuits
        # and leaves the remainder untouched.
        consumed = sum(step.consumed for step in result.steps if step.passed)
        assert consumed <= len(rlist)
        assert len(result.remainder) == len(rlist) - consumed

    @given(rlist=rlists(), threshold=st.integers(1, 10))
    @settings(max_examples=150, deadline=None)
    def test_checkstatus_pass_iff_enough_matches(self, rlist, threshold):
        matches = sum(1 for record in rlist if record.status == 503)
        outcome = CheckStatus(503, threshold, True).evaluate(rlist, None)
        assert outcome.passed == (matches >= threshold)

    @given(rlist=rlists(), window=st.floats(min_value=0.1, max_value=100, allow_nan=False),
           limit=st.integers(0, 40))
    @settings(max_examples=150, deadline=None)
    def test_atmost_atleast_duality(self, rlist, window, limit):
        """AtMost(n) and AtLeast(n+1) over the same window partition
        every outcome: exactly one of them passes."""
        at_most = AtMostRequests(window, True, limit).evaluate(list(rlist), None)
        at_least = AtLeastRequests(window, True, limit + 1).evaluate(list(rlist), None)
        assert at_most.passed != at_least.passed

    @given(rlist=rlists())
    @settings(max_examples=100, deadline=None)
    def test_anchor_monotonically_advances(self, rlist):
        """Each passing step's anchor never moves backwards in time."""
        result = Combine(
            AtMostRequests("10s", True, 10**9),
            AtMostRequests("10s", True, 10**9),
            AtMostRequests("10s", True, 10**9),
        ).evaluate(rlist)
        anchors = [step.anchor for step in result.steps if step.anchor is not None]
        assert anchors == sorted(anchors)
