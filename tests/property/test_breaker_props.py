"""Stateful property-based testing of the circuit breaker.

A hypothesis rule-based state machine drives the breaker through
random sequences of successes, failures, time advances and gate
checks, verifying the safety invariants that the pattern's whole
purpose rests on:

* OPEN always rejects;
* the breaker only opens through failures, never through successes;
* once open, it stays closed to traffic until ``recovery_timeout`` has
  fully elapsed;
* trial traffic in HALF_OPEN is bounded by ``half_open_max_calls``.
"""

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule
import hypothesis.strategies as st

from repro.microservice.resilience.circuit_breaker import BreakerState, CircuitBreaker
from repro.simulation import Simulator

FAILURE_THRESHOLD = 3
RECOVERY_TIMEOUT = 10.0
HALF_OPEN_MAX = 2


class BreakerMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.sim = Simulator(seed=0)
        self.breaker = CircuitBreaker(
            self.sim,
            failure_threshold=FAILURE_THRESHOLD,
            recovery_timeout=RECOVERY_TIMEOUT,
            success_threshold=1,
            half_open_max_calls=HALF_OPEN_MAX,
        )
        #: Permits currently held (allow_request() True without outcome yet).
        self.outstanding = 0
        self.last_open_time = None
        self.consecutive_failures_closed = 0

    # -- actions ---------------------------------------------------------

    @rule()
    def gate(self):
        state_before = self.breaker.state
        allowed = self.breaker.allow_request()
        if state_before == BreakerState.OPEN:
            assert not allowed, "OPEN must reject every request"
        if allowed and self.breaker._state == BreakerState.HALF_OPEN:
            self.outstanding += 1
            assert self.outstanding <= HALF_OPEN_MAX, "half-open trial budget exceeded"

    @precondition(lambda self: self.outstanding > 0 or self.breaker.state == BreakerState.CLOSED)
    @rule()
    def report_success(self):
        if self.breaker._state == BreakerState.HALF_OPEN and self.outstanding == 0:
            return
        was_half_open = self.breaker._state == BreakerState.HALF_OPEN
        self.breaker.record_success()
        if was_half_open:
            if self.breaker._state == BreakerState.HALF_OPEN:
                self.outstanding = max(0, self.outstanding - 1)
            else:
                # Transitioned (closed): trial bookkeeping resets.
                self.outstanding = 0
        self.consecutive_failures_closed = 0
        assert self.breaker._state != BreakerState.OPEN or self.last_open_time is not None

    @precondition(lambda self: self.outstanding > 0 or self.breaker.state == BreakerState.CLOSED)
    @rule()
    def report_failure(self):
        if self.breaker._state == BreakerState.HALF_OPEN and self.outstanding == 0:
            return
        state_before = self.breaker._state
        self.breaker.record_failure()
        if state_before == BreakerState.HALF_OPEN:
            assert self.breaker._state == BreakerState.OPEN, (
                "any half-open failure must re-open"
            )
            # Re-opening resets the trial-slot bookkeeping entirely
            # (Hystrix semantics): outcomes of other still-in-flight
            # trials no longer consume slots of the next half-open phase.
            self.outstanding = 0
        if self.breaker._state == BreakerState.OPEN and state_before != BreakerState.OPEN:
            self.last_open_time = self.sim.now

    @rule(delta=st.floats(min_value=0.1, max_value=30.0))
    def advance_time(self, delta):
        self.sim.run(until=self.sim.now + delta)

    # -- invariants --------------------------------------------------------

    @invariant()
    def open_respects_recovery_timeout(self):
        if self.breaker._state == BreakerState.OPEN and self.last_open_time is not None:
            # Still reporting OPEN implies the window has not elapsed...
            # unless nobody has poked state since it elapsed (the lazy
            # transition).  Poking must then move it to HALF_OPEN:
            if self.sim.now - self.last_open_time >= RECOVERY_TIMEOUT:
                assert self.breaker.state == BreakerState.HALF_OPEN
            else:
                assert self.breaker.state == BreakerState.OPEN
                assert not self.breaker.allow_request()

    @invariant()
    def state_is_always_valid(self):
        assert self.breaker.state in (
            BreakerState.CLOSED,
            BreakerState.OPEN,
            BreakerState.HALF_OPEN,
        )


BreakerMachine.TestCase.settings = settings(
    max_examples=60, stateful_step_count=40, deadline=None
)
TestBreakerStateMachine = BreakerMachine.TestCase
