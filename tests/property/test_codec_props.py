"""Property-based tests for the HTTP wire codec."""

import string

from hypothesis import given, settings, strategies as st

from repro.errors import CodecError
from repro.http import (
    HttpRequest,
    HttpResponse,
    decode_request,
    decode_response,
    encode_request,
    encode_response,
)

_token = st.text(
    alphabet=string.ascii_letters + string.digits + "-_",
    min_size=1,
    max_size=24,
)
_header_value = st.text(
    alphabet=string.ascii_letters + string.digits + " -_./;=",
    min_size=0,
    max_size=40,
).map(str.strip)
_uri = _token.map(lambda s: "/" + s)
_method = st.sampled_from(["GET", "POST", "PUT", "DELETE", "PATCH", "HEAD", "OPTIONS"])
_status = st.integers(min_value=100, max_value=599)
_body = st.binary(max_size=512)
# Header names are case-insensitive, so generate lowercase keys only;
# otherwise {'P': ..., 'p': ...} collapses and the identity check fails
# for reasons unrelated to the codec.  Content-Length is codec-managed
# (always recomputed from the body), so user-supplied values are by
# design not round-tripped — exclude it.
_headers = st.dictionaries(
    _token.map(str.lower).filter(lambda key: key != "content-length"),
    _header_value,
    max_size=5,
)


class TestRequestRoundTrip:
    @given(method=_method, uri=_uri, headers=_headers, body=_body)
    @settings(max_examples=150)
    def test_encode_decode_identity(self, method, uri, headers, body):
        request = HttpRequest(method, uri, headers, body)
        decoded = decode_request(encode_request(request))
        assert decoded.method == method
        assert decoded.uri == uri
        assert decoded.body == body
        for key, value in headers.items():
            assert decoded.headers[key] == value

    @given(body=_body)
    @settings(max_examples=50)
    def test_body_length_always_exact(self, body):
        decoded = decode_request(encode_request(HttpRequest("POST", "/x", body=body)))
        assert len(decoded.body) == len(body)


class TestResponseRoundTrip:
    @given(status=_status, headers=_headers, body=_body)
    @settings(max_examples=150)
    def test_encode_decode_identity(self, status, headers, body):
        response = HttpResponse(status, headers, body)
        decoded = decode_response(encode_response(response))
        assert decoded.status == status
        assert decoded.body == body


class TestDecodeRobustness:
    @given(payload=st.binary(max_size=200))
    @settings(max_examples=200)
    def test_arbitrary_bytes_never_crash_uncontrolled(self, payload):
        """Decoding hostile bytes either parses or raises CodecError —
        never any other exception.  This is what lets Modify faults
        corrupt messages arbitrarily without breaking the simulator."""
        for decoder in (decode_request, decode_response):
            try:
                decoder(payload)
            except CodecError:
                pass

    @given(
        status=_status,
        body=st.binary(min_size=1, max_size=64),
        search=st.binary(min_size=1, max_size=4),
        replace=st.binary(max_size=8),
    )
    @settings(max_examples=100)
    def test_body_modification_keeps_message_parseable_or_codec_error(
        self, status, body, search, replace
    ):
        """Rewriting only the *body* after encoding mirrors what a
        Modify fault does to a decoded message: since Content-Length is
        recomputed on re-encode, the result always parses."""
        from repro.agent import modify
        from repro.agent.faults import modify_response

        rule = modify("A", "B", pattern=search, replace_bytes=replace)
        response = HttpResponse(status, body=body)
        rewritten = modify_response(rule, response)
        decoded = decode_response(encode_response(rewritten))
        assert decoded.body == body.replace(search, replace)
