"""Property-based tests for the simulation kernel's core invariants."""

from hypothesis import given, settings, strategies as st

from repro.simulation import Simulator


class TestClockMonotonicity:
    @given(delays=st.lists(st.floats(min_value=0, max_value=100, allow_nan=False), max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_events_observed_in_nondecreasing_time_order(self, delays):
        sim = Simulator()
        observed = []
        for delay in delays:
            sim.timeout(delay).add_callback(lambda _e: observed.append(sim.now))
        sim.run()
        assert observed == sorted(observed)
        assert len(observed) == len(delays)

    @given(delays=st.lists(st.floats(min_value=0.001, max_value=50, allow_nan=False),
                           min_size=1, max_size=20))
    @settings(max_examples=100, deadline=None)
    def test_final_time_is_max_delay(self, delays):
        sim = Simulator()
        for delay in delays:
            sim.timeout(delay)
        sim.run()
        assert sim.now == max(delays)


class TestProcessCompleteness:
    @given(sleeps=st.lists(st.floats(min_value=0, max_value=5, allow_nan=False),
                           min_size=1, max_size=10))
    @settings(max_examples=100, deadline=None)
    def test_sequential_sleeps_sum(self, sleeps):
        sim = Simulator()

        def sleeper(sim):
            for duration in sleeps:
                yield sim.timeout(duration)
            return sim.now

        process = sim.process(sleeper(sim))
        sim.run()
        assert process.value == sum(sleeps)

    @given(count=st.integers(min_value=1, max_value=50))
    @settings(max_examples=50, deadline=None)
    def test_all_spawned_processes_finish(self, count):
        sim = Simulator()
        finished = []

        def worker(sim, tag):
            yield sim.timeout(tag * 0.1)
            finished.append(tag)

        for tag in range(count):
            sim.process(worker(sim, tag))
        sim.run()
        assert sorted(finished) == list(range(count))


class TestDeterminism:
    @given(seed=st.integers(min_value=0, max_value=2**31), draws=st.integers(1, 20))
    @settings(max_examples=50, deadline=None)
    def test_rng_streams_reproducible(self, seed, draws):
        def sample(seed):
            sim = Simulator(seed=seed)
            return [sim.rng("stream").random() for _ in range(draws)]

        assert sample(seed) == sample(seed)
