"""Property-based tests for histogram and snapshot merge invariants.

The campaign runner's whole metrics design rests on one algebraic
fact: folding per-worker snapshots is associative and commutative, so
the campaign-wide view is independent of worker count, merge order,
and grouping.  Hypothesis drives that fact directly — any partition
of an observation stream across any number of histograms, merged in
any order, must equal the single histogram that observed the whole
stream.
"""

from hypothesis import given, settings, strategies as st

from repro.observability.metrics import (
    Histogram,
    MetricsRegistry,
    merge_histogram_data,
    merge_snapshots,
)

_BOUNDS = (0.01, 0.1, 1.0, 10.0)

#: Integer-valued floats: their addition is exact in IEEE-754, so the
#: merge-equality assertions can be bit-for-bit.  (With arbitrary
#: floats the bucket counts/min/max still merge exactly but the
#: running ``sum`` differs in the last ulp across groupings — an
#: inherent float property, not a merge bug.)
_values = st.lists(
    st.integers(min_value=0, max_value=100).map(float),
    max_size=60,
)

_general_values = st.lists(
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    max_size=60,
)


def _observe_all(values):
    histogram = Histogram(_BOUNDS)
    for value in values:
        histogram.observe(value)
    return histogram.data()


class TestHistogramMerge:
    @given(streams=st.lists(_values, min_size=1, max_size=5))
    @settings(max_examples=150)
    def test_any_partition_equals_single_stream(self, streams):
        """Splitting observations across N histograms then merging is
        indistinguishable from one histogram seeing everything."""
        merged = _observe_all(streams[0])
        for stream in streams[1:]:
            merged = merge_histogram_data(merged, _observe_all(stream))
        combined = _observe_all([v for stream in streams for v in stream])
        assert merged == combined

    @given(left=_values, right=_values)
    @settings(max_examples=150)
    def test_commutative(self, left, right):
        a, b = _observe_all(left), _observe_all(right)
        assert merge_histogram_data(a, b) == merge_histogram_data(b, a)

    @given(a=_values, b=_values, c=_values)
    @settings(max_examples=100)
    def test_associative(self, a, b, c):
        da, db, dc = _observe_all(a), _observe_all(b), _observe_all(c)
        left = merge_histogram_data(merge_histogram_data(da, db), dc)
        right = merge_histogram_data(da, merge_histogram_data(db, dc))
        assert left == right

    @given(values=_general_values)
    @settings(max_examples=100)
    def test_counts_conserve_samples(self, values):
        data = _observe_all(values)
        assert sum(data["counts"]) == data["count"] == len(values)
        if values:
            assert data["min"] == min(values)
            assert data["max"] == max(values)


def _snapshot(counter_values, gauge_value, histogram_values):
    registry = MetricsRegistry()
    for name, amount in counter_values:
        registry.counter(name).inc(amount)
    registry.gauge("state").set(gauge_value)
    histogram = registry.histogram("latency", buckets=_BOUNDS)
    for value in histogram_values:
        histogram.observe(value)
    return registry.snapshot()


_counter_entries = st.lists(
    st.tuples(
        st.sampled_from(["requests", "faults", "retries"]),
        st.integers(min_value=0, max_value=50),
    ),
    max_size=10,
)

_snapshots = st.builds(
    _snapshot,
    counter_values=_counter_entries,
    gauge_value=st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
    histogram_values=_values,
)


class TestSnapshotMerge:
    @given(snaps=st.lists(_snapshots, min_size=2, max_size=4))
    @settings(max_examples=75)
    def test_grouping_invariant(self, snaps):
        """merge(a, b, c, ...) == merge(merge(a, b), c, ...) for any split."""
        all_at_once = merge_snapshots(*snaps)
        incremental = snaps[0]
        for snap in snaps[1:]:
            incremental = merge_snapshots(incremental, snap)
        assert all_at_once == incremental

    @given(snaps=st.lists(_snapshots, min_size=2, max_size=4))
    @settings(max_examples=75)
    def test_order_invariant(self, snaps):
        assert merge_snapshots(*snaps) == merge_snapshots(*reversed(snaps))

    @given(snap=_snapshots)
    @settings(max_examples=50)
    def test_identity(self, snap):
        """Merging with an empty snapshot changes nothing."""
        assert merge_snapshots(snap, merge_snapshots()) == merge_snapshots(snap)
