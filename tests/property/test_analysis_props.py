"""Property-based tests for CDF / percentile invariants."""

from hypothesis import given, settings, strategies as st

from repro.analysis import Cdf, percentile

_samples = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=200
)


class TestPercentileInvariants:
    @given(samples=_samples, q=st.floats(min_value=0, max_value=100))
    @settings(max_examples=200)
    def test_within_sample_bounds(self, samples, q):
        value = percentile(samples, q)
        assert min(samples) <= value <= max(samples)

    @given(samples=_samples,
           q1=st.floats(min_value=0, max_value=100),
           q2=st.floats(min_value=0, max_value=100))
    @settings(max_examples=200)
    def test_monotone_in_q(self, samples, q1, q2):
        low, high = sorted((q1, q2))
        assert percentile(samples, low) <= percentile(samples, high)


class TestCdfInvariants:
    @given(samples=_samples)
    @settings(max_examples=100)
    def test_fraction_below_max_is_one(self, samples):
        cdf = Cdf(samples)
        assert cdf.fraction_below(cdf.max) == 1.0

    @given(samples=_samples, value=st.floats(allow_nan=False, min_value=-1e6, max_value=1e6))
    @settings(max_examples=200)
    def test_fraction_below_matches_manual_count(self, samples, value):
        cdf = Cdf(samples)
        expected = sum(1 for sample in samples if sample <= value) / len(samples)
        assert cdf.fraction_below(value) == expected

    @given(samples=_samples)
    @settings(max_examples=100)
    def test_inverse_cdf_round_trip(self, samples):
        # Linear-interpolated percentiles can undershoot the empirical
        # step function by up to one sample's worth of mass.
        cdf = Cdf(samples)
        slack = 1.0 / len(samples) + 1e-9
        for fraction in (0.0, 0.25, 0.5, 0.75, 1.0):
            value = cdf.value_at(fraction)
            assert cdf.fraction_below(value) >= fraction - slack
