"""Property-based tests for event-store query invariants."""

from hypothesis import given, settings, strategies as st

from repro.logstore import EventStore, ObservationRecord, Query

_kinds = st.sampled_from(["request", "reply"])
_services = st.sampled_from(["A", "B", "C"])
_ids = st.one_of(st.none(), st.sampled_from(["test-1", "test-2", "user-1"]))


@st.composite
def records(draw):
    return ObservationRecord(
        timestamp=draw(st.floats(min_value=0, max_value=1000, allow_nan=False)),
        kind=draw(_kinds),
        src=draw(_services),
        dst=draw(_services),
        request_id=draw(_ids),
        status=draw(st.one_of(st.none(), st.sampled_from([200, 404, 503]))),
    )


class TestStoreInvariants:
    @given(batch=st.lists(records(), max_size=60))
    @settings(max_examples=100, deadline=None)
    def test_search_results_always_time_sorted(self, batch):
        store = EventStore()
        store.extend(batch)
        results = store.search(Query())
        timestamps = [record.timestamp for record in results]
        assert timestamps == sorted(timestamps)
        assert len(results) == len(batch)

    @given(batch=st.lists(records(), max_size=60))
    @settings(max_examples=100, deadline=None)
    def test_pair_index_agrees_with_linear_filter(self, batch):
        store = EventStore()
        store.extend(batch)
        query = Query(src="A", dst="B")
        indexed = store.search(query)
        linear = [record for record in store.all_records() if query.matches(record)]
        assert indexed == linear

    @given(batch=st.lists(records(), max_size=60),
           since=st.floats(min_value=0, max_value=1000, allow_nan=False),
           width=st.floats(min_value=0, max_value=500, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_window_query_is_subset_filter(self, batch, since, width):
        store = EventStore()
        store.extend(batch)
        query = Query(since=since, until=since + width)
        results = store.search(query)
        assert all(since <= record.timestamp <= since + width for record in results)
        expected = sum(1 for record in batch if since <= record.timestamp <= since + width)
        assert len(results) == expected

    @given(batch=st.lists(records(), max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_query_partition_by_kind(self, batch):
        store = EventStore()
        store.extend(batch)
        total = store.count(Query(kind="request")) + store.count(Query(kind="reply"))
        assert total == len(batch)
