"""Property-based tests for event-store query invariants."""

from hypothesis import given, settings, strategies as st

from repro.logstore import EventStore, ObservationRecord, Query

_queries = st.builds(
    Query,
    kind=st.one_of(st.none(), st.sampled_from(["request", "reply"])),
    src=st.one_of(st.none(), st.sampled_from(["A", "B", "C"])),
    dst=st.one_of(st.none(), st.sampled_from(["A", "B", "C"])),
    id_pattern=st.sampled_from(["*", "test-*", "re:.*-1"]),
    since=st.one_of(st.none(), st.floats(min_value=0, max_value=1000, allow_nan=False)),
    status=st.one_of(st.none(), st.sampled_from([200, 404, 503])),
    with_faults_only=st.booleans(),
)

_kinds = st.sampled_from(["request", "reply"])
_services = st.sampled_from(["A", "B", "C"])
_ids = st.one_of(st.none(), st.sampled_from(["test-1", "test-2", "user-1"]))


@st.composite
def records(draw):
    return ObservationRecord(
        timestamp=draw(st.floats(min_value=0, max_value=1000, allow_nan=False)),
        kind=draw(_kinds),
        src=draw(_services),
        dst=draw(_services),
        request_id=draw(_ids),
        status=draw(st.one_of(st.none(), st.sampled_from([200, 404, 503]))),
    )


class TestStoreInvariants:
    @given(batch=st.lists(records(), max_size=60))
    @settings(max_examples=100, deadline=None)
    def test_search_results_always_time_sorted(self, batch):
        store = EventStore()
        store.extend(batch)
        results = store.search(Query())
        timestamps = [record.timestamp for record in results]
        assert timestamps == sorted(timestamps)
        assert len(results) == len(batch)

    @given(batch=st.lists(records(), max_size=60))
    @settings(max_examples=100, deadline=None)
    def test_pair_index_agrees_with_linear_filter(self, batch):
        store = EventStore()
        store.extend(batch)
        query = Query(src="A", dst="B")
        indexed = store.search(query)
        linear = [record for record in store.all_records() if query.matches(record)]
        assert indexed == linear

    @given(batch=st.lists(records(), max_size=60),
           since=st.floats(min_value=0, max_value=1000, allow_nan=False),
           width=st.floats(min_value=0, max_value=500, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_window_query_is_subset_filter(self, batch, since, width):
        store = EventStore()
        store.extend(batch)
        query = Query(since=since, until=since + width)
        results = store.search(query)
        assert all(since <= record.timestamp <= since + width for record in results)
        expected = sum(1 for record in batch if since <= record.timestamp <= since + width)
        assert len(results) == expected

    @given(batch=st.lists(records(), max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_query_partition_by_kind(self, batch):
        store = EventStore()
        store.extend(batch)
        total = store.count(Query(kind="request")) + store.count(Query(kind="reply"))
        assert total == len(batch)

    @given(batch=st.lists(records(), max_size=60), query=_queries)
    @settings(max_examples=150, deadline=None)
    def test_indexed_equals_linear_for_any_query(self, batch, query):
        """Acceptance invariant: the planner's index-driven evaluation
        is byte-identical to the linear full scan for every query."""
        indexed = EventStore(strategy="indexed")
        linear = EventStore(strategy="linear")
        indexed.extend(batch)
        linear.extend(batch)
        assert indexed.search(query) == linear.search(query)
        assert indexed.count(query) == linear.count(query)

    @given(
        batch=st.lists(records(), min_size=1, max_size=40),
        new_statuses=st.lists(st.sampled_from([200, 404, 503, None]), max_size=10),
        query=_queries,
    )
    @settings(max_examples=100, deadline=None)
    def test_equivalence_survives_in_place_mutation(self, batch, new_statuses, query):
        """In-place outcome updates (the agent's document-update
        analogue) must keep the secondary indexes truthful."""
        indexed = EventStore(strategy="indexed")
        indexed.extend(batch)
        # Warm every index the query will consult, then mutate.
        indexed.search(query)
        for offset, status in enumerate(new_statuses):
            record = batch[offset % len(batch)]
            record.status = status
            if status == 503:
                record.fault_applied = "abort(503)"
        linear = EventStore(strategy="linear")
        linear.extend(batch)
        assert indexed.search(query) == linear.search(query)

    @given(batch=st.lists(records(), max_size=50))
    @settings(max_examples=100, deadline=None)
    def test_out_of_order_ingest_keeps_pair_index_consistent(self, batch):
        """_ensure_sorted re-sorts the primary array; every index must
        be remapped so pair queries agree with a fresh store built from
        the already-sorted records."""
        store = EventStore()
        store.extend(batch)
        resorted = store.all_records()  # forces the re-sort + remap
        fresh = EventStore()
        fresh.extend(resorted)
        for src in ("A", "B", "C"):
            for dst in ("A", "B", "C"):
                query = Query(src=src, dst=dst)
                assert store.search(query) == fresh.search(query)

    @given(
        ops=st.lists(
            st.one_of(
                st.tuples(st.just("append"), records()),
                st.tuples(st.just("search"), _queries),
                st.tuples(st.just("clear"), st.none()),
            ),
            max_size=40,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_indexes_survive_interleaved_append_search_clear(self, ops):
        """Arbitrary interleavings of ingest, queries (which trigger
        lazy re-sorts) and clears never desync indexed from linear."""
        indexed = EventStore(strategy="indexed")
        linear = EventStore(strategy="linear")
        for op, payload in ops:
            if op == "append":
                # Distinct objects per store: the index hook binds a
                # record to the store that ingested it.
                indexed.append(ObservationRecord(**payload.to_dict()))
                linear.append(ObservationRecord(**payload.to_dict()))
            elif op == "search":
                assert indexed.search(payload) == linear.search(payload)
                assert indexed.count(payload) == linear.count(payload)
            else:
                indexed.clear()
                linear.clear()
        assert indexed.search(Query()) == linear.search(Query())
