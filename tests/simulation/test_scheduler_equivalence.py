"""The calendar-queue and heap schedulers are bit-for-bit equivalent.

The calendar queue (tentpole of the throughput PR) only counts if it is
*invisible*: identical event processing order, identical RNG draw
order, identical timestamps, identical outcomes — across everything the
repo can express.  Three layers of evidence:

* randomized kernel-level scripts (mixed timeouts, races, joins,
  failures, interrupts, zero delays, far-future overflow) traced on
  both schedulers;
* adversarial horizon settings, so bucket<->overflow migration happens
  constantly and at batch boundaries;
* the fuzz corpus: full-stack executions whose strict digests
  (records + timestamps + latencies + samples + verdicts) must match
  between schedulers — the same property the fuzz battery's
  ``metamorphic/scheduler`` check enforces on every fuzzed case.
"""

import random

import pytest

from repro.cli import APPS
from repro.fuzz import FuzzGenerator, execute_case
from repro.simulation import Simulator
from repro.simulation.kernel import _HeapSimulator
from repro.simulation.process import Interrupt

#: Fixed master seeds naming the reproducible fuzz corpora CI smokes.
CORPUS_SEEDS = (0, 21)
CASES_PER_SEED = 6


def _trace_scenario(sim, script_seed):
    """Run one randomized multi-process scenario; return its trace.

    Every trace entry carries ``sim.now`` plus a draw from a *shared*
    RNG stream, so any difference in cross-process interleaving shows
    up even when per-process behaviour happens to match.
    """
    script = random.Random(script_seed)
    trace = []
    shared = sim.rng("shared")

    def sleeper(name, delays):
        for delay in delays:
            yield sim.timeout(delay)
            trace.append(("sleep", name, sim.now, shared.random()))

    def racer(name, iters, budget):
        for i in range(iters):
            response = sim.event()
            deadline = sim.timeout(budget)
            if shared.random() < 0.5:
                response.succeed(i)
            result = yield sim.any_of([response, deadline])
            trace.append(("race", name, sim.now, response in result))

    def joiner(name, delays):
        result = yield sim.all_of([sim.timeout(d) for d in delays])
        trace.append(("join", name, sim.now, sorted(result.values(), key=str)))

    def failer(name, delay):
        yield sim.timeout(delay)
        trace.append(("fail", name, sim.now))
        raise RuntimeError(name)

    def supervisor(name, child):
        try:
            value = yield child
            trace.append(("sup-ok", name, sim.now, value))
        except RuntimeError as exc:
            trace.append(("sup-caught", name, sim.now, str(exc)))

    def interrupter(name, victim, after):
        yield sim.timeout(after)
        if victim.is_alive:
            victim.interrupt(cause=name)
            trace.append(("intr", name, sim.now))

    def patient(name, nap):
        try:
            yield sim.timeout(nap)
            trace.append(("patient-done", name, sim.now))
        except Interrupt as exc:
            trace.append(("patient-intr", name, sim.now, exc.cause))

    for pid in range(script.randint(6, 14)):
        kind = script.choice(["sleep", "race", "join", "fail", "patient"])
        if kind == "sleep":
            delays = [
                script.choice([0.0, 0.1, 0.5, 0.5, 1.0, 2.0, 300.0, 4000.0])
                for _ in range(script.randint(1, 6))
            ]
            sim.process(sleeper(f"s{pid}", delays))
        elif kind == "race":
            sim.process(
                racer(f"r{pid}", script.randint(1, 5), script.choice([0.5, 2.0]))
            )
        elif kind == "join":
            delays = [script.choice([0.0, 0.5, 1.5, 270.0]) for _ in range(3)]
            sim.process(joiner(f"j{pid}", delays))
        elif kind == "fail":
            child = sim.process(failer(f"f{pid}", script.choice([0.5, 1.0, 350.0])))
            sim.process(supervisor(f"v{pid}", child))
        else:
            victim = sim.process(patient(f"p{pid}", script.choice([1.0, 500.0])))
            sim.process(interrupter(f"i{pid}", victim, script.choice([0.5, 2.0])))

    sim.run()
    return trace


class TestKernelTraceEquivalence:
    @pytest.mark.parametrize("script_seed", range(12))
    def test_randomized_scenarios_trace_identically(self, script_seed):
        calendar = Simulator(seed=script_seed, strict=False, scheduler="calendar")
        heap = Simulator(seed=script_seed, strict=False, scheduler="heap")
        left = _trace_scenario(calendar, script_seed)
        right = _trace_scenario(heap, script_seed)
        assert left == right
        assert calendar.now == heap.now
        assert [repr(ev.value) for ev in calendar.unhandled_failures] == [
            repr(ev.value) for ev in heap.unhandled_failures
        ]

    @pytest.mark.parametrize("horizon", [0.25, 1.0, 300.0])
    def test_adversarial_horizons_trace_identically(self, horizon):
        """Shrinking the calendar horizon forces constant overflow
        migration; the total order must not care."""
        calendar = Simulator(seed=5, strict=False, scheduler="calendar", horizon=horizon)
        heap = Simulator(seed=5, strict=False, scheduler="heap")
        assert _trace_scenario(calendar, 5) == _trace_scenario(heap, 5)
        assert calendar.now == heap.now

    def test_run_until_slicing_is_equivalent(self):
        """Slice one scheduler's run into many run(until=...) windows —
        exactly how the campaign runner drives deployments — and compare
        against the other scheduler's single uninterrupted run."""
        sliced = Simulator(seed=11, strict=False, scheduler="calendar")
        straight = Simulator(seed=11, strict=False, scheduler="heap")

        def drive_sliced(sim):
            trace = _start_mixed(sim)
            while sim.peek() != float("inf"):
                sim.run(until=sim.now + 0.75)
            return trace

        def drive_straight(sim):
            trace = _start_mixed(sim)
            sim.run()
            return trace

        left, right = drive_sliced(sliced), drive_straight(straight)
        assert left == right

    def test_fifo_tie_break_matches_heap(self):
        """A same-timestamp storm (the calendar's batched fast path)
        keeps strict schedule order, like the heap's sequence counter."""
        calendar = Simulator(scheduler="calendar")
        heap = Simulator(scheduler="heap")
        for sim in (calendar, heap):
            order = []
            for tag in range(50):
                ev = sim.event()
                ev.add_callback(lambda _e, t=tag, o=order: o.append(t))
                ev.succeed()
                sim.timeout(0.0, tag).add_callback(
                    lambda e, o=order: o.append(("t", e.value))
                )
            sim.run()
            sim._order = order
        assert calendar._order == heap._order

    def test_scheduler_dispatch_and_env_default(self, monkeypatch):
        assert Simulator(scheduler="calendar").scheduler == "calendar"
        heap = Simulator(scheduler="heap")
        assert heap.scheduler == "heap"
        assert isinstance(heap, _HeapSimulator)
        import repro.simulation.kernel as kernel

        monkeypatch.setattr(kernel, "DEFAULT_SCHEDULER", "heap")
        assert Simulator().scheduler == "heap"
        with pytest.raises(Exception):
            Simulator(scheduler="wheel-of-fortune")


def _start_mixed(sim):
    trace = []

    def worker(wid):
        for i in range(4):
            yield sim.timeout(0.3 + 0.2 * ((wid + i) % 3))
            trace.append((wid, i, sim.now))
        if wid % 3 == 0:
            response = sim.event()
            result = yield sim.any_of([response, sim.timeout(1.0)])
            trace.append((wid, "race", sim.now, response in result))

    for wid in range(8):
        sim.process(worker(wid))
    return trace


class TestFuzzCorpusEquivalence:
    """Full-stack equivalence across the fuzz corpus's fixed seeds."""

    @pytest.mark.parametrize("master_seed", CORPUS_SEEDS)
    def test_corpus_digests_match_across_schedulers(self, master_seed):
        cases = FuzzGenerator(master_seed, app_registry=APPS).generate(CASES_PER_SEED)
        for case in cases:
            calendar = execute_case(
                case, scheduler="calendar", app_registry=APPS
            )
            heap = execute_case(case, scheduler="heap", app_registry=APPS)
            assert calendar.records == heap.records, case.case_id
            assert calendar.samples == heap.samples, case.case_id
            assert calendar.verdicts == heap.verdicts, case.case_id
            assert calendar.digest == heap.digest, case.case_id
