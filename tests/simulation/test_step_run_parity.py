"""``step()``+``peek()`` must replay exactly what ``run()`` does.

``Simulator.run`` is a hand-tuned inline of the ``step`` algorithm
(batch draining, pooling, bound locals); this suite is the drift guard
the two copies are maintained under: a nontrivial scenario driven
entirely one ``step()`` at a time must finish with the identical trace,
clock, and unhandled-failure list as the same scenario under ``run()``
— on both schedulers, and with ``step`` and ``run`` interleaved.
"""

import pytest

from repro.simulation import Simulator

SCHEDULERS = ("calendar", "heap")


def _start_scenario(sim):
    """A scenario touching every kernel feature step() must replay:
    same-time batches, races, joins, caught failures, and an
    unhandled failure."""
    trace = []

    def ticker(name, delay, iters):
        for i in range(iters):
            yield sim.timeout(delay)
            trace.append((name, i, sim.now))

    def racer():
        response = sim.event()
        sim.process(succeed_later(response))
        result = yield sim.any_of([response, sim.timeout(5.0)])
        trace.append(("race", sim.now, response in result))

    def succeed_later(event):
        yield sim.timeout(1.5)
        event.succeed("late")

    def joiner():
        result = yield sim.all_of([sim.timeout(0.5), sim.timeout(2.5)])
        trace.append(("join", sim.now, len(result)))

    def crasher():
        yield sim.timeout(0.25)
        raise RuntimeError("crash")

    def supervisor(child):
        try:
            yield child
        except RuntimeError as exc:
            trace.append(("caught", sim.now, str(exc)))

    def orphan_failure():
        # An event failure nobody consumes: lands in unhandled_failures.
        yield sim.timeout(0.75)
        sim.event().fail(ValueError("orphan"))

    for name, delay in (("a", 0.5), ("b", 0.5), ("c", 1.0)):
        sim.process(ticker(name, delay, 4))
    sim.process(racer())
    sim.process(joiner())
    sim.process(supervisor(sim.process(crasher())))
    sim.process(orphan_failure())
    return trace


def _snapshot(sim, trace):
    return (
        tuple(trace),
        sim.now,
        [repr(ev.value) for ev in sim.unhandled_failures],
    )


@pytest.mark.parametrize("scheduler", SCHEDULERS)
class TestStepRunParity:
    def test_pure_stepping_matches_run(self, scheduler):
        run_sim = Simulator(seed=3, strict=False, scheduler=scheduler)
        run_trace = _start_scenario(run_sim)
        run_sim.run()

        step_sim = Simulator(seed=3, strict=False, scheduler=scheduler)
        step_trace = _start_scenario(step_sim)
        steps = 0
        while step_sim.peek() != float("inf"):
            step_sim.step()
            steps += 1
            assert steps < 100_000, "step() driving diverged into a loop"

        assert _snapshot(step_sim, step_trace) == _snapshot(run_sim, run_trace)

    def test_peek_agrees_with_step_progress(self, scheduler):
        """peek() before each step names the timestamp that step lands
        on, and goes to inf exactly when the schedule drains."""
        sim = Simulator(seed=3, strict=False, scheduler=scheduler)
        _start_scenario(sim)
        while (upcoming := sim.peek()) != float("inf"):
            sim.step()
            assert sim.now == upcoming
        with pytest.raises(IndexError):
            sim.step()

    def test_interleaved_step_and_run_matches_run(self, scheduler):
        """Alternate step() bursts with run(until=...) windows — the
        half-drained-batch handoff between the two loops."""
        mixed = Simulator(seed=3, strict=False, scheduler=scheduler)
        mixed_trace = _start_scenario(mixed)
        burst = 0
        while mixed.peek() != float("inf"):
            burst += 1
            for _ in range(burst % 5):
                if mixed.peek() == float("inf"):
                    break
                mixed.step()
            if mixed.peek() != float("inf"):
                mixed.run(until=mixed.now + 0.4)

        pure = Simulator(seed=3, strict=False, scheduler=scheduler)
        pure_trace = _start_scenario(pure)
        pure.run()

        # Clocks may differ (run(until) rounds the idle tail up), but
        # the processed history and failure list must not.
        assert tuple(mixed_trace) == tuple(pure_trace)
        assert [repr(ev.value) for ev in mixed.unhandled_failures] == [
            repr(ev.value) for ev in pure.unhandled_failures
        ]

    def test_events_seen_by_step_and_run_are_identical(self, scheduler):
        """Count processed events under both drivers via a per-event
        callback, not just the user-visible trace."""
        counts = []
        for driver in ("run", "step"):
            sim = Simulator(seed=7, strict=False, scheduler=scheduler)
            seen = []

            def watcher(n=40):
                for i in range(n):
                    yield sim.timeout(0.1 * (1 + i % 4))
                    seen.append(round(sim.now, 9))

            sim.process(watcher())
            sim.process(watcher(25))
            if driver == "run":
                sim.run()
            else:
                while sim.peek() != float("inf"):
                    sim.step()
            counts.append(seen)
        assert counts[0] == counts[1]
