"""Unit tests for simulation events and conditions."""

import pytest

from repro.errors import SimulationError, StaleEventError
from repro.simulation import AllOf, AnyOf, Simulator

from tests.conftest import run_to_completion


class TestSimEvent:
    def test_initially_untriggered(self, sim):
        ev = sim.event()
        assert not ev.triggered
        assert not ev.processed

    def test_value_before_trigger_raises(self, sim):
        ev = sim.event()
        with pytest.raises(StaleEventError):
            _ = ev.value
        with pytest.raises(StaleEventError):
            _ = ev.ok

    def test_succeed_carries_value(self, sim):
        ev = sim.event()
        ev.succeed(42)
        assert ev.triggered
        assert ev.ok
        assert ev.value == 42

    def test_fail_carries_exception(self, sim):
        ev = sim.event()
        exc = RuntimeError("boom")
        ev.fail(exc)
        ev.defused = True
        assert ev.triggered
        assert not ev.ok
        assert ev.value is exc
        sim.run()

    def test_double_succeed_raises(self, sim):
        ev = sim.event()
        ev.succeed()
        with pytest.raises(StaleEventError):
            ev.succeed()

    def test_succeed_after_fail_raises(self, sim):
        ev = sim.event()
        ev.fail(RuntimeError())
        ev.defused = True
        with pytest.raises(StaleEventError):
            ev.succeed()
        sim.run()

    def test_fail_requires_exception(self, sim):
        ev = sim.event()
        with pytest.raises(TypeError):
            ev.fail("not an exception")

    def test_callback_runs_on_processing(self, sim):
        ev = sim.event()
        seen = []
        ev.add_callback(lambda e: seen.append(e.value))
        ev.succeed("x")
        assert seen == []  # not yet processed
        sim.run()
        assert seen == ["x"]

    def test_callback_after_processed_runs_immediately(self, sim):
        ev = sim.event()
        ev.succeed("y")
        sim.run()
        seen = []
        ev.add_callback(lambda e: seen.append(e.value))
        assert seen == ["y"]


class TestTimeout:
    def test_timeout_advances_clock(self, sim):
        def proc(sim):
            yield sim.timeout(2.5)
            return sim.now

        assert run_to_completion(sim, proc(sim)) == 2.5

    def test_timeout_value(self, sim):
        def proc(sim):
            value = yield sim.timeout(1.0, value="hello")
            return value

        assert run_to_completion(sim, proc(sim)) == "hello"

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.timeout(-1)

    def test_zero_delay_fires_now(self, sim):
        def proc(sim):
            yield sim.timeout(0)
            return sim.now

        assert run_to_completion(sim, proc(sim)) == 0.0

    def test_timeouts_fire_in_order(self, sim):
        order = []

        def waiter(sim, delay, tag):
            yield sim.timeout(delay)
            order.append(tag)

        sim.process(waiter(sim, 3, "c"))
        sim.process(waiter(sim, 1, "a"))
        sim.process(waiter(sim, 2, "b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_cannot_trigger_timeout_manually(self, sim):
        timeout = sim.timeout(1)
        with pytest.raises(StaleEventError):
            timeout.succeed()


class TestAnyOf:
    def test_first_event_wins(self, sim):
        def proc(sim):
            fast = sim.timeout(1, value="fast")
            slow = sim.timeout(5, value="slow")
            result = yield AnyOf(sim, [fast, slow])
            return (fast in result, slow in result, sim.now)

        has_fast, has_slow, now = run_to_completion(sim, proc(sim))
        assert has_fast and not has_slow
        assert now == 1

    def test_failure_of_child_fails_condition(self, sim):
        def proc(sim):
            ev = sim.event()
            sim.timeout(0.5).add_callback(lambda _e: ev.fail(RuntimeError("child died")))
            try:
                yield AnyOf(sim, [ev, sim.timeout(10)])
            except RuntimeError as exc:
                return str(exc)

        assert run_to_completion(sim, proc(sim)) == "child died"

    def test_late_failure_after_win_is_defused(self, sim):
        def proc(sim):
            ev = sim.event()
            sim.timeout(5).add_callback(lambda _e: ev.fail(RuntimeError("late")))
            result = yield AnyOf(sim, [sim.timeout(1), ev])
            return len(result)

        assert run_to_completion(sim, proc(sim)) == 1
        sim.run()  # strict mode: no unhandled failure may remain

    def test_empty_condition_triggers_immediately(self, sim):
        def proc(sim):
            result = yield AnyOf(sim, [])
            return result

        assert run_to_completion(sim, proc(sim)) == {}

    def test_mixed_simulators_rejected(self):
        sim_a = Simulator()
        sim_b = Simulator()
        with pytest.raises(ValueError):
            AnyOf(sim_a, [sim_a.event(), sim_b.event()])


class TestAllOf:
    def test_waits_for_all(self, sim):
        def proc(sim):
            first = sim.timeout(1, value="a")
            second = sim.timeout(3, value="b")
            result = yield AllOf(sim, [first, second])
            return (result[first], result[second], sim.now)

        assert run_to_completion(sim, proc(sim)) == ("a", "b", 3)

    def test_already_triggered_children(self, sim):
        def proc(sim):
            ev = sim.event()
            ev.succeed("pre")
            sim.run_marker = True
            result = yield AllOf(sim, [ev])
            return result[ev]

        assert run_to_completion(sim, proc(sim)) == "pre"
