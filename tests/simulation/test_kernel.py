"""Unit tests for the Simulator run loop, clock and RNG streams."""

import pytest

from repro.errors import SimulationError
from repro.simulation import Simulator


class TestClock:
    def test_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_run_until_advances_clock_even_when_idle(self):
        sim = Simulator()
        sim.run(until=10)
        assert sim.now == 10

    def test_run_until_past_raises(self):
        sim = Simulator()
        sim.run(until=5)
        with pytest.raises(SimulationError):
            sim.run(until=3)

    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.timeout(10).add_callback(lambda _e: fired.append(True))
        sim.run(until=5)
        assert sim.now == 5
        assert fired == []
        sim.run()
        assert fired == [True]

    def test_peek_reports_next_event_time(self):
        sim = Simulator()
        sim.timeout(4)
        assert sim.peek() == 4

    def test_peek_empty_queue_is_inf(self):
        assert Simulator().peek() == float("inf")

    def test_scheduling_in_the_past_raises(self):
        sim = Simulator()
        sim.run(until=10)
        with pytest.raises(SimulationError):
            sim._schedule_at(5, sim.event())


class TestDeterminism:
    def test_same_seed_same_draws(self):
        first = [Simulator(seed=9).rng("x").random() for _ in range(5)]
        second = [Simulator(seed=9).rng("x").random() for _ in range(5)]
        assert first == second

    def test_different_streams_are_independent(self):
        sim = Simulator(seed=9)
        a1 = sim.rng("a").random()
        # Drawing from stream b must not perturb stream a.
        sim2 = Simulator(seed=9)
        sim2.rng("b").random()
        a2 = sim2.rng("a").random()
        assert a1 == a2

    def test_rng_stream_is_cached(self):
        sim = Simulator()
        assert sim.rng("s") is sim.rng("s")

    def test_fifo_order_for_simultaneous_events(self):
        sim = Simulator()
        order = []
        for tag in ("first", "second", "third"):
            ev = sim.event()
            ev.add_callback(lambda _e, t=tag: order.append(t))
            ev.succeed()
        sim.run()
        assert order == ["first", "second", "third"]


class TestStrictMode:
    def test_unhandled_failure_raises_at_run_end(self):
        sim = Simulator(strict=True)
        sim.event().fail(RuntimeError("nobody listening"))
        with pytest.raises(SimulationError, match="unhandled"):
            sim.run()

    def test_defused_failure_is_silent(self):
        sim = Simulator(strict=True)
        ev = sim.event()
        ev.defused = True
        ev.fail(RuntimeError("expected"))
        sim.run()

    def test_non_strict_mode_collects_failures(self):
        sim = Simulator(strict=False)
        sim.event().fail(RuntimeError("collected"))
        sim.run()
        assert len(sim.unhandled_failures) == 1
