"""Tests for the Simulator's condition facade and misc kernel surface."""

import pytest

from repro.simulation import Simulator

from tests.conftest import run_to_completion


class TestConditionFacade:
    def test_any_of_facade(self, sim):
        def proc(sim):
            fast = sim.timeout(1, value="f")
            result = yield sim.any_of([fast, sim.timeout(9)])
            return result[fast]

        assert run_to_completion(sim, proc(sim)) == "f"

    def test_all_of_facade(self, sim):
        def proc(sim):
            first = sim.timeout(1, value=1)
            second = sim.timeout(2, value=2)
            result = yield sim.all_of([first, second])
            return sorted(result.values())

        assert run_to_completion(sim, proc(sim)) == [1, 2]

    def test_nested_conditions(self, sim):
        def proc(sim):
            inner = sim.all_of([sim.timeout(1), sim.timeout(2)])
            outer = sim.any_of([inner, sim.timeout(10)])
            yield outer
            return sim.now

        assert run_to_completion(sim, proc(sim)) == 2


class TestSimulatorSurface:
    def test_seed_property(self):
        assert Simulator(seed=99).seed == 99

    def test_repr_mentions_time(self):
        sim = Simulator()
        sim.run(until=4)
        assert "4" in repr(sim)

    def test_step_processes_single_event(self):
        sim = Simulator()
        fired = []
        sim.timeout(1).add_callback(lambda _e: fired.append(1))
        sim.timeout(2).add_callback(lambda _e: fired.append(2))
        sim.step()
        assert fired == [1]
        assert sim.now == 1
