"""Unit tests for generator-based processes."""

import pytest

from repro.errors import ProcessKilled, SimulationError
from repro.simulation import Interrupt, Simulator

from tests.conftest import run_to_completion


class TestProcessLifecycle:
    def test_return_value(self, sim):
        def proc(sim):
            yield sim.timeout(1)
            return "result"

        assert run_to_completion(sim, proc(sim)) == "result"

    def test_process_is_alive_until_done(self, sim):
        def proc(sim):
            yield sim.timeout(5)

        process = sim.process(proc(sim))
        assert process.is_alive
        sim.run()
        assert not process.is_alive
        assert process.ok

    def test_exception_fails_process(self, sim):
        def proc(sim):
            yield sim.timeout(1)
            raise ValueError("inner")

        with pytest.raises(ValueError, match="inner"):
            run_to_completion(sim, proc(sim))

    def test_process_waits_on_process(self, sim):
        def child(sim):
            yield sim.timeout(2)
            return 21

        def parent(sim):
            value = yield sim.process(child(sim))
            return value * 2

        assert run_to_completion(sim, parent(sim)) == 42

    def test_child_failure_propagates_to_parent(self, sim):
        def child(sim):
            yield sim.timeout(1)
            raise KeyError("gone")

        def parent(sim):
            try:
                yield sim.process(child(sim))
            except KeyError:
                return "handled"

        assert run_to_completion(sim, parent(sim)) == "handled"

    def test_non_generator_rejected(self, sim):
        with pytest.raises(TypeError):
            sim.process(lambda: None)

    def test_yielding_non_event_fails_process(self, sim):
        def proc(sim):
            yield 42

        process = sim.process(proc(sim))
        process.defused = True
        sim.run()
        assert not process.ok
        assert isinstance(process.value, SimulationError)

    def test_yielding_foreign_event_fails_process(self, sim):
        other = Simulator()

        def proc(sim):
            yield other.event()

        process = sim.process(proc(sim))
        process.defused = True
        sim.run()
        assert not process.ok
        assert isinstance(process.value, SimulationError)

    def test_failed_event_throws_at_yield_site(self, sim):
        def proc(sim):
            ev = sim.event()
            sim.timeout(1).add_callback(lambda _e: ev.fail(OSError("io")))
            try:
                yield ev
            except OSError:
                return "caught at yield"

        assert run_to_completion(sim, proc(sim)) == "caught at yield"


class TestInterrupt:
    def test_interrupt_delivers_cause(self, sim):
        def sleeper(sim):
            try:
                yield sim.timeout(100)
            except Interrupt as interrupt:
                return ("interrupted", interrupt.cause, sim.now)

        process = sim.process(sleeper(sim))

        def interrupter(sim):
            yield sim.timeout(3)
            process.interrupt("deadline")

        sim.process(interrupter(sim))
        sim.run()
        assert process.value == ("interrupted", "deadline", 3)

    def test_uncaught_interrupt_fails_process(self, sim):
        def sleeper(sim):
            yield sim.timeout(100)

        process = sim.process(sleeper(sim))

        def interrupter(sim):
            yield sim.timeout(1)
            process.interrupt()

        sim.process(interrupter(sim))
        process.defused = True
        sim.run()
        assert not process.ok
        assert isinstance(process.value, Interrupt)

    def test_interrupt_dead_process_raises(self, sim):
        def quick(sim):
            yield sim.timeout(1)

        process = sim.process(quick(sim))
        sim.run()
        with pytest.raises(SimulationError):
            process.interrupt()

    def test_interrupted_process_can_continue(self, sim):
        def resilient(sim):
            total = 0.0
            try:
                yield sim.timeout(100)
            except Interrupt:
                pass
            yield sim.timeout(2)
            return sim.now

        process = sim.process(resilient(sim))

        def interrupter(sim):
            yield sim.timeout(5)
            process.interrupt()

        sim.process(interrupter(sim))
        sim.run()
        assert process.value == 7  # interrupted at 5, then slept 2 more


class TestKill:
    def test_kill_stops_process(self, sim):
        cleanup = []

        def stubborn(sim):
            try:
                yield sim.timeout(100)
            finally:
                cleanup.append("finally ran")

        process = sim.process(stubborn(sim))

        def killer(sim):
            yield sim.timeout(1)
            process.kill()

        sim.process(killer(sim))
        sim.run()
        assert cleanup == ["finally ran"]
        assert not process.ok
        assert isinstance(process.value, ProcessKilled)

    def test_kill_dead_process_is_noop(self, sim):
        def quick(sim):
            yield sim.timeout(1)

        process = sim.process(quick(sim))
        sim.run()
        process.kill()  # should not raise
        assert process.ok
