"""Unit tests for Channel and Semaphore."""

import pytest

from repro.errors import ConnectionResetError_
from repro.simulation import Channel, ChannelClosed, Semaphore

from tests.conftest import run_to_completion


class TestChannel:
    def test_put_then_get(self, sim):
        channel = Channel(sim)
        channel.put("a")

        def proc(sim):
            value = yield channel.get()
            return value

        assert run_to_completion(sim, proc(sim)) == "a"

    def test_get_blocks_until_put(self, sim):
        channel = Channel(sim)

        def getter(sim):
            value = yield channel.get()
            return (value, sim.now)

        def putter(sim):
            yield sim.timeout(3)
            channel.put("late")

        process = sim.process(getter(sim))
        sim.process(putter(sim))
        sim.run()
        assert process.value == ("late", 3)

    def test_fifo_ordering(self, sim):
        channel = Channel(sim)
        for item in (1, 2, 3):
            channel.put(item)

        def proc(sim):
            out = []
            for _ in range(3):
                out.append((yield channel.get()))
            return out

        assert run_to_completion(sim, proc(sim)) == [1, 2, 3]

    def test_multiple_getters_fifo(self, sim):
        channel = Channel(sim)
        results = []

        def getter(sim, tag):
            value = yield channel.get()
            results.append((tag, value))

        sim.process(getter(sim, "g1"))
        sim.process(getter(sim, "g2"))

        def putter(sim):
            yield sim.timeout(1)
            channel.put("x")
            channel.put("y")

        sim.process(putter(sim))
        sim.run()
        assert results == [("g1", "x"), ("g2", "y")]

    def test_close_fails_waiting_getters(self, sim):
        channel = Channel(sim)

        def getter(sim):
            try:
                yield channel.get()
            except ChannelClosed:
                return "closed"

        process = sim.process(getter(sim))

        def closer(sim):
            yield sim.timeout(1)
            channel.close()

        sim.process(closer(sim))
        sim.run()
        assert process.value == "closed"

    def test_close_with_custom_reason(self, sim):
        channel = Channel(sim)

        def getter(sim):
            try:
                yield channel.get()
            except ConnectionResetError_:
                return "reset"

        process = sim.process(getter(sim))
        channel.close(ConnectionResetError_("rst"))
        sim.run()
        assert process.value == "reset"

    def test_put_on_closed_raises(self, sim):
        channel = Channel(sim)
        channel.close()
        with pytest.raises(ChannelClosed):
            channel.put("x")

    def test_get_drains_before_close_error(self, sim):
        channel = Channel(sim)
        channel.put("buffered")
        channel.close()

        def proc(sim):
            first = yield channel.get()
            try:
                yield channel.get()
            except ChannelClosed:
                return (first, "then closed")

        assert run_to_completion(sim, proc(sim)) == ("buffered", "then closed")

    def test_close_idempotent(self, sim):
        channel = Channel(sim)
        channel.close()
        channel.close()


class TestSemaphore:
    def test_capacity_validation(self, sim):
        with pytest.raises(ValueError):
            Semaphore(sim, 0)

    def test_acquire_release_counts(self, sim):
        semaphore = Semaphore(sim, 2)

        def proc(sim):
            yield semaphore.acquire()
            yield semaphore.acquire()
            return (semaphore.available, semaphore.in_use)

        assert run_to_completion(sim, proc(sim)) == (0, 2)

    def test_acquire_blocks_at_capacity(self, sim):
        semaphore = Semaphore(sim, 1)
        timeline = []

        def holder(sim):
            yield semaphore.acquire()
            yield sim.timeout(5)
            semaphore.release()

        def waiter(sim):
            yield sim.timeout(1)
            yield semaphore.acquire()
            timeline.append(sim.now)

        sim.process(holder(sim))
        sim.process(waiter(sim))
        sim.run()
        assert timeline == [5]

    def test_try_acquire_never_blocks(self, sim):
        semaphore = Semaphore(sim, 1)
        assert semaphore.try_acquire()
        assert not semaphore.try_acquire()
        semaphore.release()
        assert semaphore.try_acquire()

    def test_release_wakes_fifo(self, sim):
        semaphore = Semaphore(sim, 1)
        order = []

        def worker(sim, tag, hold):
            yield semaphore.acquire()
            order.append(tag)
            yield sim.timeout(hold)
            semaphore.release()

        sim.process(worker(sim, "a", 1))
        sim.process(worker(sim, "b", 1))
        sim.process(worker(sim, "c", 1))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_over_release_raises(self, sim):
        semaphore = Semaphore(sim, 1)
        with pytest.raises(ValueError):
            semaphore.release()

    def test_queued_counter(self, sim):
        semaphore = Semaphore(sim, 1)
        assert semaphore.try_acquire()
        semaphore.acquire()  # queued
        assert semaphore.queued == 1
