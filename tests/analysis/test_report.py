"""Tests for text-table rendering."""

import pytest

from repro.analysis import text_table


class TestTextTable:
    def test_alignment(self):
        table = text_table(["name", "n"], [["alpha", 1], ["b", 100]])
        lines = table.splitlines()
        assert lines[0].startswith("name")
        assert "-+-" in lines[1]
        assert len(lines) == 4

    def test_title(self):
        table = text_table(["a"], [["1"]], title="My Table")
        assert table.splitlines()[0] == "My Table"

    def test_ragged_rows_rejected(self):
        with pytest.raises(ValueError):
            text_table(["a", "b"], [["only one"]])

    def test_values_stringified(self):
        table = text_table(["x"], [[3.14159]])
        assert "3.14159" in table
