"""Tests for the KS-based distribution comparison."""

import random

import pytest

from repro.analysis import CdfComparison, compare_cdfs, median_shift


class TestCompareCdfs:
    def test_identical_samples_same_distribution(self):
        sample = [random.Random(1).random() for _ in range(200)]
        comparison = compare_cdfs(sample, list(sample))
        assert comparison.ks_statistic == 0.0
        assert comparison.same_distribution()
        assert comparison.median_shift == 0.0

    def test_shifted_samples_detected(self):
        rng = random.Random(2)
        base = [rng.random() for _ in range(200)]
        shifted = [value + 2.0 for value in base]
        comparison = compare_cdfs(base, shifted)
        assert not comparison.same_distribution()
        assert comparison.ks_statistic == 1.0  # disjoint supports
        assert comparison.median_shift == pytest.approx(2.0)

    def test_same_distribution_different_draws(self):
        rng = random.Random(3)
        sample_a = [rng.gauss(1.0, 0.1) for _ in range(300)]
        sample_b = [rng.gauss(1.0, 0.1) for _ in range(300)]
        comparison = compare_cdfs(sample_a, sample_b)
        assert comparison.same_distribution(alpha=0.001)

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError):
            compare_cdfs([], [1.0])

    def test_str_is_informative(self):
        text = str(compare_cdfs([1.0, 2.0], [1.0, 2.0]))
        assert "KS=" in text and "median-shift" in text

    def test_median_shift_helper(self):
        assert median_shift([1.0, 2.0, 3.0], [2.0, 3.0, 4.0]) == pytest.approx(1.0)


class TestOnExperimentData:
    def test_fig5_curves_shift_by_injected_delay(self):
        """The KS machinery applied to real experiment output: the 1s
        and 3s Fig-5 curves differ, and their median shift is the delay
        difference."""
        from repro.apps import ELASTICSEARCH, WORDPRESS, build_wordpress_app
        from repro.core import DelayCalls, Gremlin
        from repro.loadgen import ClosedLoopLoad

        def run(injected):
            deployment = build_wordpress_app().deploy(seed=221)
            source = deployment.add_traffic_source(WORDPRESS)
            Gremlin(deployment).inject(
                DelayCalls(WORDPRESS, ELASTICSEARCH, interval=injected)
            )
            load = ClosedLoopLoad(num_requests=30)
            load.run(source)
            return load.result.latencies

        comparison = compare_cdfs(run(1.0), run(3.0))
        assert not comparison.same_distribution()
        assert comparison.median_shift == pytest.approx(2.0, abs=0.05)
