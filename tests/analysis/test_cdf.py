"""Tests for CDF computation and latency statistics."""

import pytest

from repro.analysis import Cdf, percentile, summarize
from repro.errors import AnalysisError, ReproError


class TestEdgeCaseErrors:
    """Empty / degenerate input raises a typed, descriptive error.

    AnalysisError subclasses both ReproError (so callers catching the
    repo-wide base see it) and ValueError (so pre-existing callers
    keep working).
    """

    def test_empty_percentile_is_repro_error(self):
        with pytest.raises(AnalysisError, match="empty sample set"):
            percentile([], 50)
        with pytest.raises(ReproError):
            percentile([], 50)

    def test_empty_cdf_is_repro_error(self):
        with pytest.raises(AnalysisError, match="empty sample set"):
            Cdf([])

    def test_empty_summarize_is_repro_error(self):
        with pytest.raises(AnalysisError, match="empty sample set"):
            summarize([])

    def test_q_out_of_range_is_repro_error(self):
        with pytest.raises(AnalysisError, match=r"\[0, 100\]"):
            percentile([1.0], 150)

    def test_nan_samples_rejected(self):
        with pytest.raises(AnalysisError, match="NaN"):
            percentile([1.0, float("nan")], 50)
        with pytest.raises(AnalysisError, match="NaN"):
            Cdf([float("nan")])

    def test_zero_step_points_rejected(self):
        with pytest.raises(AnalysisError, match="at least 1 step"):
            Cdf([1.0, 2.0]).points(steps=0)

    def test_single_sample_still_works(self):
        # A single sample is every percentile of itself — degenerate
        # but well-defined, so it must NOT raise.
        assert percentile([7.0], 0) == 7.0
        assert percentile([7.0], 99) == 7.0
        assert summarize([7.0])["p99"] == 7.0
        cdf = Cdf([7.0])
        assert cdf.median == 7.0
        cdf.ascii_plot()  # zero span must not divide by zero


class TestPercentile:
    def test_median_interpolation(self):
        assert percentile([1, 2, 3, 4], 50) == 2.5

    def test_extremes(self):
        data = [5, 1, 3]
        assert percentile(data, 0) == 1
        assert percentile(data, 100) == 5

    def test_single_sample(self):
        assert percentile([7.0], 50) == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_q_out_of_range(self):
        with pytest.raises(ValueError):
            percentile([1], 101)


class TestCdf:
    def test_basic_properties(self):
        cdf = Cdf([3.0, 1.0, 2.0])
        assert cdf.min == 1.0
        assert cdf.max == 3.0
        assert cdf.median == 2.0
        assert len(cdf) == 3

    def test_fraction_below(self):
        cdf = Cdf([1, 2, 3, 4])
        assert cdf.fraction_below(2) == 0.5
        assert cdf.fraction_below(0.5) == 0.0
        assert cdf.fraction_below(10) == 1.0

    def test_value_at(self):
        cdf = Cdf(list(range(101)))
        assert cdf.value_at(0.9) == pytest.approx(90)

    def test_points_monotonic(self):
        cdf = Cdf([4, 1, 3, 2, 8])
        points = cdf.points(steps=10)
        values = [value for value, _fraction in points]
        assert values == sorted(values)
        assert points[0][1] == 0.0
        assert points[-1][1] == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Cdf([])

    def test_ascii_plot_renders(self):
        plot = Cdf([1, 2, 3]).ascii_plot(label="demo")
        assert "demo" in plot
        assert "p 50" in plot.replace("p50", "p 50") or "p50" in plot

    def test_constant_samples(self):
        cdf = Cdf([2.0, 2.0, 2.0])
        assert cdf.min == cdf.max == cdf.median
        cdf.ascii_plot()  # zero span must not divide by zero


class TestSummarize:
    def test_fields(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary["n"] == 4
        assert summary["min"] == 1.0
        assert summary["max"] == 4.0
        assert summary["median"] == 2.5
        assert summary["mean"] == 2.5
        assert summary["p90"] >= summary["median"]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])
