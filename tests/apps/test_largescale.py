"""Production-scale benchmark apps under the new scenario vocabulary.

Every new scenario primitive (RetryStorm, GrayFailure,
Misconfiguration, ResourceExhaustion) is proven by a pair: the check
that encodes the expected resilience property **conclusively fails**
on the naive build and **survives** on the resilient build of the same
topology under the same fault.  NoOpControl is the calibration pair:
it must pass on *both* builds while still installing real rules —
any check it trips is a false positive of the assertion suite.
"""

import pytest

from repro.apps.hotelreservation import (
    HOTELRESERVATION_SERVICES,
    build_hotelreservation_app,
)
from repro.apps.socialnetwork import SOCIALNETWORK_SERVICES, build_socialnetwork_app
from repro.core import Gremlin
from repro.core.patterns import HasBoundedRetries, HasTimeouts
from repro.core.scenarios import (
    GrayFailure,
    Misconfiguration,
    NoOpControl,
    ResourceExhaustion,
    RetryStorm,
)
from repro.loadgen import ClosedLoopLoad

REQUESTS = 8
THINK = 0.01

#: (app, scenario id) -> (builder, entry, scenario factory, checks
#: factory, name of the check that must conclusively fail on naive).
PAIRS = {
    ("socialnetwork", "retry_storm"): (
        build_socialnetwork_app,
        "nginx",
        lambda: RetryStorm("post-store"),
        lambda: [
            HasBoundedRetries(
                "post-storage", "post-store", max_tries=5, failure_status=None
            )
        ],
        "HasBoundedRetries(post-storage, post-store, 5)",
    ),
    ("socialnetwork", "gray_failure"): (
        build_socialnetwork_app,
        "nginx",
        lambda: GrayFailure("social-graph-store", interval="2s"),
        lambda: [HasTimeouts("social-graph", "1s")],
        "HasTimeouts(social-graph, 1s)",
    ),
    ("socialnetwork", "misconfiguration"): (
        build_socialnetwork_app,
        "nginx",
        lambda: Misconfiguration("user-store", mode="endpoint", error=404),
        # A 404 is not a transport failure, so the retry-bound trigger
        # keys on the misconfigured status itself.
        lambda: [
            HasBoundedRetries(
                "user-service", "user-store", max_tries=5, failure_status=404
            )
        ],
        "HasBoundedRetries(user-service, user-store, 5)",
    ),
    ("socialnetwork", "resource_exhaustion"): (
        build_socialnetwork_app,
        "nginx",
        lambda: ResourceExhaustion("media-store", interval="2s", shed_after=4),
        lambda: [HasTimeouts("media-service", "1s")],
        "HasTimeouts(media-service, 1s)",
    ),
    ("hotelreservation", "retry_storm"): (
        build_hotelreservation_app,
        "frontend",
        lambda: RetryStorm("rate-store"),
        lambda: [
            HasBoundedRetries("rate", "rate-store", max_tries=5, failure_status=None)
        ],
        "HasBoundedRetries(rate, rate-store, 5)",
    ),
    ("hotelreservation", "gray_failure"): (
        build_hotelreservation_app,
        "frontend",
        lambda: GrayFailure("reservation-store", interval="2s"),
        lambda: [HasTimeouts("reservation", "1s")],
        "HasTimeouts(reservation, 1s)",
    ),
    ("hotelreservation", "misconfiguration"): (
        build_hotelreservation_app,
        "frontend",
        lambda: Misconfiguration("auth-store", mode="endpoint", error=404),
        # A 404 is not a transport failure, so the retry-bound trigger
        # keys on the misconfigured status itself.
        lambda: [
            HasBoundedRetries("auth", "auth-store", max_tries=5, failure_status=404)
        ],
        "HasBoundedRetries(auth, auth-store, 5)",
    ),
    ("hotelreservation", "resource_exhaustion"): (
        build_hotelreservation_app,
        "frontend",
        lambda: ResourceExhaustion("profile-store", interval="2s", shed_after=4),
        lambda: [HasTimeouts("profile", "1s")],
        "HasTimeouts(profile, 1s)",
    ),
}

#: NoOpControl calibration targets: (builder, entry, scenario factory,
#: checks factory) — checks must stay green on BOTH builds.
CONTROLS = {
    "socialnetwork": (
        build_socialnetwork_app,
        "nginx",
        lambda: NoOpControl("post-store"),
        lambda: [
            HasBoundedRetries(
                "post-storage", "post-store", max_tries=5, failure_status=None
            ),
            HasTimeouts("social-graph", "1s"),
            HasTimeouts("media-service", "1s"),
        ],
    ),
    "hotelreservation": (
        build_hotelreservation_app,
        "frontend",
        lambda: NoOpControl("geo"),
        lambda: [
            HasBoundedRetries("rate", "rate-store", max_tries=5, failure_status=None),
            HasTimeouts("reservation", "1s"),
            HasTimeouts("profile", "1s"),
        ],
    ),
}


def run_scenario(builder, resilient, entry, scenario, checks):
    """Deploy one build, stage the scenario, drive the workload, and
    return ([(name, passed, inconclusive)], installed rules)."""
    deployment = builder(resilient=resilient).deploy(seed=0)
    source = deployment.add_traffic_source(entry, name="user")
    gremlin = Gremlin(deployment)
    rules = gremlin.translator.translate([scenario])
    gremlin.orchestrator.apply(rules)
    load = ClosedLoopLoad(num_requests=REQUESTS, think_time=THINK)
    deployment.sim.process(load.driver(source), name="largescale")
    deployment.sim.run()
    deployment.pipeline.flush()
    verdicts = [
        (result.name, result.passed, result.inconclusive)
        for result in (check.run(deployment.store) for check in checks)
    ]
    return verdicts, rules


@pytest.mark.parametrize("app,scenario_id", sorted(PAIRS))
class TestScenarioPairs:
    def test_naive_build_conclusively_fails(self, app, scenario_id):
        builder, entry, scenario, checks, failing = PAIRS[(app, scenario_id)]
        verdicts, rules = run_scenario(builder, False, entry, scenario(), checks())
        assert rules, "scenario decomposed to no rules"
        failed = {
            name for name, passed, inconclusive in verdicts
            if not passed and not inconclusive
        }
        assert failing in failed, verdicts

    def test_resilient_build_survives(self, app, scenario_id):
        builder, entry, scenario, checks, _failing = PAIRS[(app, scenario_id)]
        verdicts, rules = run_scenario(builder, True, entry, scenario(), checks())
        assert rules, "scenario decomposed to no rules"
        for name, passed, inconclusive in verdicts:
            assert passed or inconclusive, verdicts


@pytest.mark.parametrize("app", sorted(CONTROLS))
class TestNoOpControlCalibration:
    @pytest.mark.parametrize("resilient", [False, True])
    def test_control_passes_on_both_builds(self, app, resilient):
        builder, entry, scenario, checks = CONTROLS[app]
        verdicts, rules = run_scenario(builder, resilient, entry, scenario(), checks())
        # The machinery ran for real: rules decomposed and installed...
        assert rules
        # ...but with probability 0 nothing fired, so every check is as
        # green as a fault-free run.
        for name, passed, inconclusive in verdicts:
            assert passed or inconclusive, (app, resilient, verdicts)


class TestCatalog:
    def test_service_counts_are_production_scale(self):
        social = build_socialnetwork_app()
        hotel = build_hotelreservation_app()
        assert set(social.definitions) == set(SOCIALNETWORK_SERVICES)
        assert set(hotel.definitions) == set(HOTELRESERVATION_SERVICES)
        assert len(social.definitions) == 28
        assert len(hotel.definitions) == 20

    def test_apps_are_cli_reachable(self):
        from repro.cli import APPS

        assert "socialnetwork" in APPS
        assert "hotelreservation" in APPS

    def test_every_service_is_reachable_from_the_entry(self):
        for builder, entry in (
            (build_socialnetwork_app, "nginx"),
            (build_hotelreservation_app, "frontend"),
        ):
            app = builder()
            graph = app.logical_graph()
            seen = set()
            frontier = [entry]
            while frontier:
                service = frontier.pop()
                if service in seen:
                    continue
                seen.add(service)
                frontier.extend(graph.dependencies(service))
            assert seen == set(app.definitions)

    def test_resilient_flag_changes_policies_not_topology(self):
        for builder in (build_socialnetwork_app, build_hotelreservation_app):
            naive, hard = builder(resilient=False), builder(resilient=True)
            assert {
                (src, dst) for src, dst in naive.logical_graph().edges()
            } == {(src, dst) for src, dst in hard.logical_graph().edges()}
