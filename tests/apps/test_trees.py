"""Tests for the binary-tree benchmark applications (paper Fig 7)."""

import pytest

from repro.apps import TREE_ROOT, build_tree_app, tree_service_names
from repro.core import Gremlin, Hang
from repro.loadgen import ClosedLoopLoad


class TestNaming:
    @pytest.mark.parametrize("depth,count", [(0, 1), (1, 3), (2, 7), (3, 15), (4, 31)])
    def test_paper_sizes(self, depth, count):
        assert len(tree_service_names(depth)) == count

    def test_negative_depth_rejected(self):
        with pytest.raises(ValueError):
            tree_service_names(-1)


class TestTopology:
    def test_heap_shaped_edges(self):
        deployment = build_tree_app(2).deploy()
        graph = deployment.graph
        assert sorted(graph.dependencies("svc-0")) == ["svc-1", "svc-2"]
        assert sorted(graph.dependencies("svc-1")) == ["svc-3", "svc-4"]
        assert graph.dependencies("svc-3") == []

    def test_sidecars_on_internal_nodes_only(self):
        deployment = build_tree_app(2).deploy()
        # 3 internal nodes (svc-0..2) have dependencies -> 3 agents.
        assert len(deployment.agents) == 3

    def test_single_service_tree(self):
        deployment = build_tree_app(0).deploy()
        source = deployment.add_traffic_source(TREE_ROOT)
        load = ClosedLoopLoad(num_requests=2)
        load.run(source)
        assert all(sample.ok for sample in load.result.samples)


class TestEndToEnd:
    def test_request_traverses_whole_tree(self):
        deployment = build_tree_app(3).deploy()
        source = deployment.add_traffic_source(TREE_ROOT)
        load = ClosedLoopLoad(num_requests=1)
        load.run(source)
        assert load.result.samples[0].ok
        served = sum(
            instance.server.requests_served
            for name in tree_service_names(3)
            for instance in deployment.instances_of(name)
        )
        assert served == 15  # every node saw the request exactly once

    def test_leaf_hang_fails_the_root_without_timeouts(self):
        from repro.microservice import PolicySpec

        deployment = build_tree_app(2, client_policy=PolicySpec(timeout=0.5)).deploy()
        source = deployment.add_traffic_source(TREE_ROOT)
        gremlin = Gremlin(deployment)
        gremlin.inject(Hang("svc-3", interval="1h"))
        load = ClosedLoopLoad(num_requests=1)
        load.run(source)
        sample = load.result.samples[0]
        # svc-1's client times out -> degrades -> root degrades.
        assert sample.status == 500
