"""Seeded-resilience-bug fixtures: ground truth for ``fuzz explore``.

Each app must (1) pass its manifest checks fault-free, (2) fail the
bug's evidencing check under the documented trigger fault, and
(3) pass the same trigger once hardened — proving the planted bug, not
the workload, is what the checks detect.
"""

import pytest

from repro.apps import (
    SEEDED_BUG_SUITE,
    build_deepfanout_app,
    build_retrystorm_app,
    build_stuckbreaker_app,
)
from repro.apps.hotelreservation import build_hotelreservation_app
from repro.apps.socialnetwork import build_socialnetwork_app
from repro.core.scenarios import AbortCalls, DelayCalls
from repro.core import Gremlin
from repro.loadgen import ClosedLoopLoad

BUILDERS = {
    "deepfanout": build_deepfanout_app,
    "retrystorm": build_retrystorm_app,
    "stuckbreaker": build_stuckbreaker_app,
    "socialnetwork": build_socialnetwork_app,
    "hotelreservation": build_hotelreservation_app,
}


def run_checks(manifest, application, scenario=None, seed=0):
    """Deploy, optionally stage a fault, drive the workload, and return
    the (name, passed, inconclusive) verdict list."""
    deployment = application.deploy(seed=seed)
    source = deployment.add_traffic_source(manifest.entry, name="user")
    gremlin = Gremlin(deployment)
    if scenario is not None:
        rules = gremlin.translator.translate([scenario])
        gremlin.orchestrator.apply(rules)
    load = ClosedLoopLoad(
        num_requests=manifest.requests, think_time=manifest.think_time
    )
    deployment.sim.process(load.driver(source), name="seeded")
    deployment.sim.run()
    deployment.pipeline.flush()
    return [
        (result.name, result.passed, result.inconclusive)
        for result in (check.run(deployment.store) for check in manifest.checks())
    ]


def trigger_scenario(manifest, bug):
    src, dst = bug.trigger_edge
    if bug.trigger_fault == "delay":
        return DelayCalls(src, dst, interval=manifest.delay_interval)
    return AbortCalls(src, dst, error=503)


@pytest.mark.parametrize("name", sorted(SEEDED_BUG_SUITE))
class TestSeededBugMatrix:
    def test_fault_free_run_is_clean(self, name):
        manifest = SEEDED_BUG_SUITE[name]
        verdicts = run_checks(manifest, manifest.builder())
        for check_name, passed, inconclusive in verdicts:
            assert passed or inconclusive, (name, check_name)
        assert not manifest.bugs_found(verdicts)

    def test_trigger_fault_surfaces_every_planted_bug(self, name):
        manifest = SEEDED_BUG_SUITE[name]
        for bug in manifest.bugs:
            verdicts = run_checks(
                manifest, manifest.builder(), trigger_scenario(manifest, bug)
            )
            assert bug.bug_id in manifest.bugs_found(verdicts), verdicts

    def test_hardened_variant_survives_the_trigger(self, name):
        manifest = SEEDED_BUG_SUITE[name]
        for bug in manifest.bugs:
            verdicts = run_checks(
                manifest,
                BUILDERS[name](hardened=True),
                trigger_scenario(manifest, bug),
            )
            assert bug.bug_id not in manifest.bugs_found(verdicts), verdicts


class TestManifestContracts:
    def test_registry_is_consistent(self):
        assert set(SEEDED_BUG_SUITE) == set(BUILDERS)
        for name, manifest in SEEDED_BUG_SUITE.items():
            assert manifest.name == name
            assert manifest.bugs, name
            check_names = set(_check_names(manifest))
            for bug in manifest.bugs:
                assert set(bug.check_names) & check_names, (
                    f"{bug.bug_id} references no existing check"
                )

    def test_checks_factory_returns_fresh_instances(self):
        for manifest in SEEDED_BUG_SUITE.values():
            first, second = manifest.checks(), manifest.checks()
            assert first is not second
            assert [c.name for c in first] == [c.name for c in second]

    def test_bugs_found_requires_conclusive_failure(self):
        manifest = SEEDED_BUG_SUITE["deepfanout"]
        (bug,) = manifest.bugs
        evidencing = bug.check_names[0]
        assert not manifest.bugs_found([(evidencing, False, True)])
        assert not manifest.bugs_found([(evidencing, True, False)])
        assert manifest.bugs_found([(evidencing, False, False)]) == {bug.bug_id}


def _check_names(manifest):
    return [check.name for check in manifest.checks()]
