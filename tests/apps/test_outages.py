"""Table 1 outage recreations: each recipe fails against the as-deployed
(fragile) system and passes once the missing pattern is added."""

import pytest

from repro.apps import (
    OUTAGE_SUITE,
    billing_recipe,
    build_billing_app,
    build_coreservice_app,
    build_database_app,
    build_messagebus_app,
    coreservice_recipe,
    database_overload_recipe,
    messagebus_recipe,
)
from repro.core import Gremlin
from repro.loadgen import ClosedLoopLoad, OpenLoopLoad


def run_recipe_with_load(app, recipe, entry, load_factory, seed=51):
    deployment = app.deploy(seed=seed)
    source = deployment.add_traffic_source(entry)
    gremlin = Gremlin(deployment)
    load = load_factory()
    recipe_with_load = type(recipe)(
        name=recipe.name,
        scenarios=recipe.scenarios,
        checks=recipe.checks,
        load=lambda deployment: load.driver(source),
    )
    result = gremlin.run_recipe(recipe_with_load)
    return deployment, load, result


class TestMessageBusCascade:
    def drive(self, hardened):
        return run_recipe_with_load(
            build_messagebus_app(hardened=hardened),
            messagebus_recipe(),
            "publisher",
            lambda: OpenLoopLoad(rate=10.0, duration=8.0),
        )

    def test_fragile_bus_fails_checks(self):
        _deployment, load, result = self.drive(hardened=False)
        assert not result.passed
        failed = {check.name.split("(")[0] for check in result.failures}
        assert "HasTimeouts" in failed

    def test_hardened_bus_passes_checks(self):
        _deployment, load, result = self.drive(hardened=True)
        assert result.passed, result.report()
        # Publishers kept getting answers (buffered-for-replay fallback).
        assert load.result.success_rate == 1.0


class TestDatabaseOverload:
    def drive(self, hardened):
        return run_recipe_with_load(
            build_database_app(hardened=hardened),
            database_overload_recipe(),
            "frontend-0",
            lambda: ClosedLoopLoad(num_requests=20, think_time=0.1),
        )

    def test_fragile_frontends_hammer_database(self):
        _deployment, _load, result = self.drive(hardened=False)
        frontend0 = [check for check in result.checks if "frontend-0" in check.name]
        assert frontend0 and not frontend0[0].passed

    def test_hardened_frontends_back_off(self):
        _deployment, _load, result = self.drive(hardened=True)
        frontend0 = [check for check in result.checks if "frontend-0" in check.name]
        assert frontend0[0].passed, frontend0[0].detail


class TestCoreServiceDegradation:
    def drive(self, hardened):
        return run_recipe_with_load(
            build_coreservice_app(hardened=hardened),
            coreservice_recipe(),
            "playlists",
            lambda: ClosedLoopLoad(num_requests=5),
        )

    def test_fragile_edges_drag_latency(self):
        _deployment, load, result = self.drive(hardened=False)
        playlists = [check for check in result.checks if "playlists" in check.name]
        assert playlists and not playlists[0].passed
        assert min(load.result.latencies) >= 2.0

    def test_hardened_edges_answer_fast(self):
        _deployment, load, result = self.drive(hardened=True)
        playlists = [check for check in result.checks if "playlists" in check.name]
        assert playlists[0].passed
        assert max(load.result.latencies) < 0.5


class TestBillingDoubleCharge:
    def charges(self, deployment):
        instance = deployment.instances_of("billingdb")[0]
        return instance.ctx.state.get("charges", {})

    def drive(self, hardened):
        return run_recipe_with_load(
            build_billing_app(hardened=hardened),
            billing_recipe(),
            "billinggateway",
            lambda: ClosedLoopLoad(num_requests=4, think_time=0.05),
        )

    def test_fragile_datastore_double_charges(self):
        deployment, _load, _result = self.drive(hardened=False)
        charges = self.charges(deployment)
        # The confirmation was aborted on the response path, the gateway
        # retried, and every retry charged again (Twilio 2013).
        assert charges, "charges should have been applied"
        assert max(charges.values()) > 1

    def test_idempotent_datastore_charges_once(self):
        deployment, _load, _result = self.drive(hardened=True)
        charges = self.charges(deployment)
        assert charges
        assert max(charges.values()) == 1

    def test_retries_stay_bounded_either_way(self):
        # HasBoundedRetries counts every wire request after the first
        # failures, so the bounded-retry verification uses a single
        # logical charge (whose 1+4 attempts must stay within bounds).
        for hardened in (False, True):
            _deployment, _load, result = run_recipe_with_load(
                build_billing_app(hardened=hardened),
                billing_recipe(),
                "billinggateway",
                lambda: ClosedLoopLoad(num_requests=1),
            )
            assert result.passed, result.report()


class TestSuiteRegistry:
    def test_all_four_outages_listed(self):
        labels = [label for label, _build, _recipe in OUTAGE_SUITE]
        assert len(labels) == 4
        assert "twilio-billing" in labels

    @pytest.mark.parametrize("label,build,recipe_factory", OUTAGE_SUITE)
    def test_every_entry_builds_and_translates(self, label, build, recipe_factory):
        deployment = build().deploy()
        recipe = recipe_factory()
        from repro.core import RecipeTranslator

        rules = RecipeTranslator(deployment.graph).translate(list(recipe.scenarios))
        assert rules, f"{label} produced no rules"
