"""Case-study tests: WordPress + ElasticPress (paper Section 7.1)."""

import pytest

from repro.analysis import percentile
from repro.apps import ELASTICSEARCH, MYSQL, WORDPRESS, build_wordpress_app
from repro.core import (
    AbortCalls,
    Crash,
    DelayCalls,
    Gremlin,
    HasCircuitBreaker,
    HasTimeouts,
)
from repro.loadgen import ClosedLoopLoad


def deploy(hardened=False, seed=21):
    deployment = build_wordpress_app(hardened=hardened).deploy(seed=seed)
    source = deployment.add_traffic_source(WORDPRESS)
    return deployment, source, Gremlin(deployment)


class TestHealthyBehaviour:
    def test_search_uses_elasticsearch(self):
        deployment, source, _g = deploy()
        load = ClosedLoopLoad(num_requests=3)
        load.run(source)
        assert all(sample.ok for sample in load.result.samples)
        assert deployment.instances_of(ELASTICSEARCH)[0].server.requests_served == 3
        assert deployment.instances_of(MYSQL)[0].server.requests_served == 0


class TestGracefulFallback:
    """The paper: "ElasticPress handled failure gracefully and fell back
    to the default (MySQL-powered) search method when Elasticsearch ...
    was unreachable or returned an error."""

    def test_fallback_on_error_response(self):
        deployment, source, gremlin = deploy()
        gremlin.inject(AbortCalls(WORDPRESS, ELASTICSEARCH, error=503))
        load = ClosedLoopLoad(num_requests=5)
        load.run(source)
        assert all(sample.ok for sample in load.result.samples)
        assert deployment.instances_of(MYSQL)[0].server.requests_served == 5

    def test_fallback_on_unreachable(self):
        deployment, source, gremlin = deploy()
        gremlin.inject(Crash(ELASTICSEARCH))
        load = ClosedLoopLoad(num_requests=5)
        load.run(source)
        assert all(sample.ok for sample in load.result.samples)
        assert deployment.instances_of(MYSQL)[0].server.requests_served == 5


class TestMissingTimeout:
    """Fig 5: response times offset by exactly the injected delay."""

    @pytest.mark.parametrize("injected", [1.0, 2.0])
    def test_naive_plugin_latency_offset_by_delay(self, injected):
        deployment, source, gremlin = deploy()
        gremlin.inject(DelayCalls(WORDPRESS, ELASTICSEARCH, interval=injected))
        load = ClosedLoopLoad(num_requests=10)
        load.run(source)
        fastest = min(load.result.latencies)
        # "Quickest response times were dictated by the delay."
        assert fastest >= injected
        assert percentile(load.result.latencies, 50) == pytest.approx(injected, rel=0.05)

    def test_hardened_plugin_bounded_by_timeout(self):
        deployment, source, gremlin = deploy(hardened=True)
        gremlin.inject(DelayCalls(WORDPRESS, ELASTICSEARCH, interval=3.0))
        load = ClosedLoopLoad(num_requests=10)
        load.run(source)
        # 1s ES timeout + MySQL fallback; never anywhere near 3s.
        assert max(load.result.latencies) < 1.5
        assert all(sample.ok for sample in load.result.samples)

    def test_gremlin_detects_missing_timeout(self):
        deployment, source, gremlin = deploy()
        gremlin.inject(DelayCalls(WORDPRESS, ELASTICSEARCH, interval=2.0))
        ClosedLoopLoad(num_requests=5).run(source)
        assert not gremlin.check(HasTimeouts(WORDPRESS, "1s")).passed

    def test_gremlin_confirms_fixed_timeout(self):
        deployment, source, gremlin = deploy(hardened=True)
        gremlin.inject(DelayCalls(WORDPRESS, ELASTICSEARCH, interval=2.0))
        ClosedLoopLoad(num_requests=5).run(source)
        assert gremlin.check(HasTimeouts(WORDPRESS, "1.5s")).passed


class TestMissingCircuitBreaker:
    """Fig 6: 100 aborts then 100 delayed-by-3s requests; without a
    breaker, every delayed request waits the full 3 seconds."""

    def run_fig6(self, hardened, aborts=20, delays=20):
        deployment, source, gremlin = deploy(hardened=hardened)
        gremlin.inject(
            AbortCalls(WORDPRESS, ELASTICSEARCH, error=503, max_matches=aborts),
            DelayCalls(WORDPRESS, ELASTICSEARCH, interval=3.0, max_matches=delays),
        )
        load = ClosedLoopLoad(num_requests=aborts + delays)
        load.run(source)
        return load.result.latencies[:aborts], load.result.latencies[aborts:]

    def test_naive_plugin_all_delayed_requests_wait(self):
        aborted, delayed = self.run_fig6(hardened=False)
        assert max(aborted) < 0.5
        # "None of the delayed requests returned without delay."
        assert min(delayed) >= 3.0

    def test_hardened_plugin_short_circuits_delayed_requests(self):
        aborted, delayed = self.run_fig6(hardened=True)
        assert max(aborted) < 0.5
        # Breaker tripped during the abort phase; delayed-phase requests
        # mostly fail fast onto the MySQL fallback.
        fast = [latency for latency in delayed if latency < 1.5]
        assert len(fast) >= len(delayed) - 2  # allow breaker probes

    def test_gremlin_detects_missing_breaker(self):
        deployment, source, gremlin = deploy()
        window_start = deployment.sim.now
        gremlin.inject(AbortCalls(WORDPRESS, ELASTICSEARCH, error=503))
        ClosedLoopLoad(num_requests=30, think_time=0.1).run(source)
        result = gremlin.check(
            HasCircuitBreaker(WORDPRESS, ELASTICSEARCH, threshold=5, tdelta="2s"),
            since=window_start,
        )
        assert not result.passed
