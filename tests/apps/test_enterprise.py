"""Case-study tests: the IBM enterprise application (paper Fig 4)."""

from repro.apps import build_enterprise_app
from repro.apps.enterprise import ACTIVITY, GITHUB, SEARCH, SERVICEDB, STACKOVERFLOW, WEBAPP
from repro.core import Crash, Disconnect, Gremlin, Hang
from repro.loadgen import ClosedLoopLoad


def deploy(fixed_unirest=False, seed=31):
    deployment = build_enterprise_app(fixed_unirest=fixed_unirest).deploy(seed=seed)
    source = deployment.add_traffic_source(WEBAPP)
    return deployment, source, Gremlin(deployment)


class TestTopology:
    def test_graph_matches_figure_4(self):
        deployment, _source, _g = deploy()
        graph = deployment.graph
        assert set(graph.dependencies(WEBAPP)) == {SEARCH, ACTIVITY}
        assert graph.dependencies(SEARCH) == [SERVICEDB]
        assert set(graph.dependencies(ACTIVITY)) == {GITHUB, STACKOVERFLOW}

    def test_healthy_page_renders(self):
        _deployment, source, _g = deploy()
        load = ClosedLoopLoad(num_requests=3)
        load.run(source)
        assert all(sample.ok for sample in load.result.samples)


class TestGracefulDegradation:
    def test_activity_outage_degrades_gracefully(self):
        """Losing the decorative activity data must not kill the page —
        an HTTP-level failure is absorbed even by the buggy library."""
        _deployment, source, gremlin = deploy()
        gremlin.inject(Disconnect(WEBAPP, ACTIVITY, error=503))
        load = ClosedLoopLoad(num_requests=5)
        load.run(source)
        assert [sample.status for sample in load.result.samples] == [200] * 5

    def test_search_outage_degrades_to_503(self):
        _deployment, source, gremlin = deploy()
        gremlin.inject(Disconnect(WEBAPP, SEARCH, error=503))
        load = ClosedLoopLoad(num_requests=5)
        load.run(source)
        assert [sample.status for sample in load.result.samples] == [503] * 5

    def test_external_api_failure_absorbed_by_activity_service(self):
        _deployment, source, gremlin = deploy()
        gremlin.inject(Crash(GITHUB))
        load = ClosedLoopLoad(num_requests=5)
        load.run(source)
        # stackoverflow still reachable -> page fine.
        assert all(sample.ok for sample in load.result.samples)


class TestUnirestBug:
    """Paper Section 7.1: "the Unirest library's implementation of the
    timeout resiliency pattern did not gracefully handle corner cases
    involving TCP connection timeout; instead the errors percolated to
    other parts of the microservice."""

    def test_tcp_reset_percolates_in_buggy_build(self):
        _deployment, source, gremlin = deploy(fixed_unirest=False)
        gremlin.inject(Crash(ACTIVITY))  # TCP-level reset on the edge
        load = ClosedLoopLoad(num_requests=5)
        load.run(source)
        # The reset escapes the wrapper and crashes the handler -> 500.
        assert [sample.status for sample in load.result.samples] == [500] * 5

    def test_plain_hang_is_handled_by_timeout(self):
        """The ordinary timeout path works — which is exactly why the
        bug stayed hidden until Gremlin staged the TCP corner case."""
        _deployment, source, gremlin = deploy(fixed_unirest=False)
        gremlin.inject(Hang(ACTIVITY, interval="1h"))
        load = ClosedLoopLoad(num_requests=3)
        load.run(source)
        assert [sample.status for sample in load.result.samples] == [200] * 3

    def test_fixed_library_absorbs_reset(self):
        _deployment, source, gremlin = deploy(fixed_unirest=True)
        gremlin.inject(Crash(ACTIVITY))
        load = ClosedLoopLoad(num_requests=5)
        load.run(source)
        assert [sample.status for sample in load.result.samples] == [200] * 5
