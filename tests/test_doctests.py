"""Run the doctests embedded in public-API docstrings.

Keeps the examples in the documentation honest: if an API changes, the
docstring snippets fail here instead of silently rotting.
"""

import doctest

import pytest

import repro.analysis.cdf
import repro.analysis.report
import repro.microservice.graph
import repro.network.address
import repro.util

MODULES = [
    repro.analysis.cdf,
    repro.analysis.report,
    repro.microservice.graph,
    repro.network.address,
    repro.util,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"
    assert results.attempted > 0, f"{module.__name__} has no doctests to run"
