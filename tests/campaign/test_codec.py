"""The compact outcome codec: round-trip fidelity, interning, fallback.

The codec's contract is narrow but strict: ``decode(encode(x))``
reconstructs ``x`` exactly (types included — bool vs int, int vs
float, NaN and the infinities) for *any* value, because anything
outside the codec's native domain must transparently become a pickle
fallback message.  Encoder and decoder are a stateful FIFO pair: shape
definitions and interned strings ship once and are referenced
thereafter, and that shared state must survive interleaved fallbacks.
"""

import math
import pickle
import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.campaign.codec import (
    KIND_CODEC,
    KIND_PICKLE,
    MAX_DEPTH,
    MAX_SHAPES,
    CodecError,
    ResultDecoder,
    ResultEncoder,
    derive_shape,
    parse_shape_def,
    shape_def_bytes,
)


def same(a, b):
    """Equality that distinguishes types and treats NaN as equal."""
    if type(a) is not type(b):
        return False
    if isinstance(a, float):
        return (math.isnan(a) and math.isnan(b)) or a == b
    if isinstance(a, dict):
        return list(a) == list(b) and all(same(a[k], b[k]) for k in a)
    if isinstance(a, (list, tuple)):
        return len(a) == len(b) and all(same(x, y) for x, y in zip(a, b))
    return a == b


scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**63), max_value=2**63 - 1),
    st.integers(),  # occasionally beyond 64 bits: exercises fallback
    st.floats(allow_nan=True, allow_infinity=True),
    st.text(max_size=16),  # may contain NULs/surrogates: fallback
)
documents = st.recursive(
    scalars,
    lambda inner: st.one_of(
        st.lists(inner, max_size=4),
        st.dictionaries(st.text(max_size=6), inner, max_size=4),
    ),
    max_leaves=25,
)


def outcome_doc(index, status="pass", latencies=(), attributions=()):
    """A RecipeOutcome.to_dict-shaped document."""
    return {
        "index": index,
        "name": f"abort@frontend#{index}",
        "pattern": "abort",
        "service": "frontend",
        "seed": 7_000 + index,
        "status": status,
        "latencies": list(latencies),
        "checks": [
            {"name": "status_ok", "passed": status == "pass", "inconclusive": False},
            {"name": "latency_p99", "passed": True, "inconclusive": False},
        ],
        "metrics": {"frontend": {"requests": 120 + index, "errors": 0}},
        "attributions": list(attributions),
        "wall_time": 0.25 + index * 1e-3,
        "worker": None,
    }


class TestRoundTrip:
    def test_outcome_doc_with_nan_inf_latencies_and_empty_attributions(self):
        doc = outcome_doc(
            0,
            status="fail",
            latencies=[0.1, float("nan"), float("inf"), -float("inf"), 0.0],
            attributions=[],
        )
        encoder, decoder = ResultEncoder(), ResultDecoder()
        body = encoder.encode(doc)
        assert body[0] == KIND_CODEC
        assert same(decoder.decode(body), doc)

    @given(value=documents)
    @settings(max_examples=150, deadline=None)
    def test_any_value_round_trips(self, value):
        encoder, decoder = ResultEncoder(), ResultDecoder()
        assert same(decoder.decode(encoder.encode(value)), value)

    @given(values=st.lists(documents, min_size=2, max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_streams_round_trip_with_shared_state(self, values):
        # The FIFO-pair contract: interning and shape tables stay in
        # sync across an arbitrary mix of codec and fallback messages.
        encoder, decoder = ResultEncoder(), ResultDecoder()
        for value in values:
            assert same(decoder.decode(encoder.encode(value)), value)

    def test_empty_containers(self):
        encoder, decoder = ResultEncoder(), ResultDecoder()
        for value in ({}, [], {"a": []}, [{}, {}]):
            assert same(decoder.decode(encoder.encode(value)), value)

    def test_int_float_bool_leaves_keep_their_types(self):
        encoder, decoder = ResultEncoder(), ResultDecoder()
        for doc in ({"x": 1}, {"x": 1.0}, {"x": True}, {"x": 1}):
            out = decoder.decode(encoder.encode(doc))
            assert type(out["x"]) is type(doc["x"])
            assert out == doc


class TestInterning:
    def test_repeat_messages_reference_shape_and_strings(self):
        encoder = ResultEncoder()
        decoder = ResultDecoder()
        first = encoder.encode(outcome_doc(0))
        second = encoder.encode(outcome_doc(1))
        assert first[0] == second[0] == KIND_CODEC
        # The second message carries neither a shape definition nor the
        # repeated strings: it must be much smaller.
        assert len(second) < len(first) / 2
        a = decoder.decode(first)
        b = decoder.decode(second)
        # Interned strings decode to the *same* objects the decoder
        # already holds.
        assert a["status"] is b["status"]
        assert a["pattern"] is b["pattern"]

    def test_shape_flip_is_handled_not_corrupted(self):
        # Alternating shapes (pass vs fail docs) exercises the MRU and
        # the shape table; every message still decodes exactly.
        encoder, decoder = ResultEncoder(), ResultDecoder()
        docs = [
            outcome_doc(i, status=("pass", "fail")[i % 2], latencies=[1.0] * (i % 3))
            for i in range(12)
        ]
        for doc in docs:
            assert same(decoder.decode(encoder.encode(doc)), doc)

    def test_shape_table_overflow_degrades_to_pickle(self):
        encoder, decoder = ResultEncoder(), ResultDecoder()
        for index in range(MAX_SHAPES):
            body = encoder.encode({f"key{index}": index})
            assert body[0] == KIND_CODEC
            decoder.decode(body)
        overflow = encoder.encode({"one-shape-too-many": 1})
        assert overflow[0] == KIND_PICKLE
        assert decoder.decode(overflow) == {"one-shape-too-many": 1}


class TestFallback:
    @pytest.mark.parametrize(
        "value",
        [
            ("a", "tuple"),
            {1: "non-string key"},
            {"big": 2**100},
            {"nul": "a\x00b"},
            {"surrogate": "\ud800"},
            object,
        ],
        ids=["tuple", "int-key", "big-int", "nul", "lone-surrogate", "class"],
    )
    def test_out_of_domain_values_fall_back_and_round_trip(self, value):
        encoder, decoder = ResultEncoder(), ResultDecoder()
        body = encoder.encode(value)
        assert body[0] == KIND_PICKLE
        assert same(decoder.decode(body), value)

    def test_deep_nesting_falls_back(self):
        value = leaf = {}
        for _ in range(MAX_DEPTH + 2):
            leaf["deeper"] = {}
            leaf = leaf["deeper"]
        body = ResultEncoder().encode(value)
        assert body[0] == KIND_PICKLE

    def test_fallback_never_desynchronizes_the_pair(self):
        encoder, decoder = ResultEncoder(), ResultDecoder()
        stream = [
            outcome_doc(0),
            {"bad": 2**80},  # fallback between two codec messages
            outcome_doc(1),
            ("tuple", "fallback"),
            outcome_doc(2),
        ]
        for value in stream:
            assert same(decoder.decode(encoder.encode(value)), value)


class TestPendingCommit:
    """``encode_pending`` defers state: an encoded-but-undelivered
    message (slab write or pipe send failed, sender degraded to another
    lane) must leave the pair in sync for every later message."""

    def test_uncommitted_body_leaves_pair_in_sync(self):
        encoder, decoder = ResultEncoder(), ResultDecoder()
        # A delivered message first, so the tables are non-empty.
        assert same(decoder.decode(encoder.encode(outcome_doc(0))), outcome_doc(0))
        # This message is encoded but never delivered: the transport
        # failed, the commit callback is (correctly) never run.
        body, _commit = encoder.encode_pending(
            outcome_doc(1, status="beta", latencies=[1.0])
        )
        assert body[0] == KIND_CODEC
        # Every subsequent message still decodes exactly — including
        # ones whose interned strings would have clashed with the
        # dropped message's table entries.
        for doc in (
            outcome_doc(2, status="gamma", latencies=[2.0]),
            outcome_doc(3, status="beta", latencies=[1.0]),
            outcome_doc(4),
        ):
            assert same(decoder.decode(encoder.encode(doc)), doc)

    def test_committed_pending_body_matches_encode(self):
        # encode() is exactly encode_pending() + commit().
        plain, pending = ResultEncoder(), ResultEncoder()
        decoder = ResultDecoder()
        for doc in (outcome_doc(0), outcome_doc(1), {"bad": 2**80}):
            body, commit = pending.encode_pending(doc)
            commit()
            assert body == plain.encode(doc)
            assert same(decoder.decode(body), doc)

    def test_uncommitted_new_shape_is_not_registered(self):
        encoder = ResultEncoder()
        body, _commit = encoder.encode_pending({"only": 1})
        assert body[0] == KIND_CODEC
        # Undelivered, so the shape never registered: re-encoding the
        # same shape must re-emit the full definition (identical body),
        # which a fresh decoder can consume standalone.
        again = encoder.encode({"only": 2})
        assert ResultDecoder().decode(again) == {"only": 2}


class TestShapeWireForm:
    @given(value=documents)
    @settings(max_examples=80, deadline=None)
    def test_shape_definition_round_trips(self, value):
        try:
            shape = derive_shape(value)
        except Exception:
            return  # out of domain: no shape to serialize
        assert parse_shape_def(shape_def_bytes(shape)) == shape

    def test_bool_shapes_differ_from_int_shapes(self):
        assert derive_shape({"a": True}) != derive_shape({"a": 1})
        assert derive_shape({"a": 1}) != derive_shape({"a": 1.0})


class TestStrictDecoding:
    def test_unknown_kind_rejected(self):
        with pytest.raises(CodecError, match="kind"):
            ResultDecoder().decode(bytes([7]) + b"junk")

    def test_empty_body_rejected(self):
        with pytest.raises(CodecError, match="empty"):
            ResultDecoder().decode(b"")

    def test_unknown_shape_ref_rejected(self):
        encoder = ResultEncoder()
        encoder.encode({"a": 1})  # register shape 0 on the encoder only
        second = encoder.encode({"a": 2})  # references shape 0
        fresh = ResultDecoder()  # never saw the definition
        with pytest.raises(CodecError, match="shape"):
            fresh.decode(second)

    def test_truncation_rejected(self):
        encoder, decoder = ResultEncoder(), ResultDecoder()
        body = encoder.encode(outcome_doc(0))
        with pytest.raises(CodecError):
            decoder.decode(body[: len(body) - 3])

    def test_corrupt_pickle_fallback_rejected(self):
        with pytest.raises(CodecError, match="pickle"):
            ResultDecoder().decode(bytes([KIND_PICKLE]) + b"\x80junk")

    def test_numeric_blob_length_mismatch_rejected(self):
        encoder, decoder = ResultEncoder(), ResultDecoder()
        body = encoder.encode({"a": 1, "b": 2.0})
        with pytest.raises(CodecError):
            decoder.decode(body + struct.pack("<d", 3.0))


class TestCompactness:
    def test_steady_state_beats_pickle_on_outcome_docs(self):
        # The whole point: after the first message, a payload-heavy
        # outcome doc must ship smaller than its pickle.
        encoder = ResultEncoder()
        doc = outcome_doc(0, latencies=[0.001 * i for i in range(200)])
        encoder.encode(doc)
        steady = encoder.encode(outcome_doc(1, latencies=[0.002 * i for i in range(200)]))
        reference = pickle.dumps(
            outcome_doc(1, latencies=[0.002 * i for i in range(200)]),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        assert len(steady) < len(reference)
