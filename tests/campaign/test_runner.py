"""Tests for fleet execution: isolation, determinism, flake detection."""

import threading

import pytest

from repro.apps import build_twotier, build_wordpress_app
from repro.campaign import CampaignRunner, RecipeExecutor, derive_seed, plan_campaign
from repro.campaign.results import CheckOutcome, RecipeOutcome
from repro.campaign.runner import _classify
from repro.errors import CampaignError


def outcome_key(outcome):
    return (
        outcome.name,
        outcome.status,
        outcome.seed,
        outcome.classification,
        tuple(round(sample, 9) for sample in outcome.latencies),
        tuple(check.passed for check in outcome.checks),
    )


class TestClassify:
    def check(self, passed, inconclusive=False):
        return CheckOutcome(name="c", passed=passed, inconclusive=inconclusive, detail="")

    def test_empty_is_inconclusive(self):
        assert _classify([]) == "inconclusive"

    def test_all_pass(self):
        assert _classify([self.check(True), self.check(True)]) == "pass"

    def test_any_conclusive_failure_fails(self):
        assert _classify([self.check(True), self.check(False)]) == "fail"

    def test_inconclusive_does_not_fail(self):
        checks = [self.check(True), self.check(False, inconclusive=True)]
        assert _classify(checks) == "inconclusive"


class TestRecipeExecutor:
    def test_executes_one_recipe(self):
        plan = plan_campaign(lambda: build_twotier(), requests=5)
        executor = RecipeExecutor(build_twotier)
        outcome = executor.execute(plan.entries[0])
        assert outcome.status in ("pass", "fail", "inconclusive")
        assert outcome.checks, "checks should have been evaluated"
        assert outcome.latencies, "the load driver should have produced samples"
        assert outcome.window[1] > outcome.window[0]
        assert outcome.seed == plan.entries[0].seed

    def test_timeout_produces_timeout_outcome(self):
        plan = plan_campaign(lambda: build_twotier(), requests=5)
        executor = RecipeExecutor(build_twotier, timeout=1e-9, slice_virtual=0.01)
        outcome = executor.execute(plan.entries[0])
        assert outcome.status == "timeout"
        assert "wall-clock budget" in outcome.error

    def test_factory_error_is_isolated(self):
        plan = plan_campaign(lambda: build_twotier(), requests=5)

        def exploding_factory():
            raise RuntimeError("infrastructure on fire")

        outcome = RecipeExecutor(exploding_factory).execute(plan.entries[0])
        assert outcome.status == "error"
        assert "RuntimeError: infrastructure on fire" in outcome.error

    def test_seed_override(self):
        plan = plan_campaign(lambda: build_twotier(), requests=3)
        outcome = RecipeExecutor(build_twotier).execute(plan.entries[0], seed=777)
        assert outcome.seed == 777

    def test_parameter_validation(self):
        with pytest.raises(CampaignError):
            RecipeExecutor(build_twotier, timeout=0)
        with pytest.raises(CampaignError):
            RecipeExecutor(build_twotier, pacing=-1)
        with pytest.raises(CampaignError):
            RecipeExecutor(build_twotier, slice_virtual=0)


class TestDeterminism:
    def test_outcomes_independent_of_worker_count(self):
        """The determinism contract: same plan + factory + seed =>
        identical outcomes whether run serially or on a fleet."""
        factory = build_wordpress_app
        plan = plan_campaign(factory, seed=31, requests=8)
        serial = CampaignRunner(factory, workers=1).run(plan)
        fleet = CampaignRunner(factory, workers=4).run(plan)
        assert [outcome_key(o) for o in serial.outcomes] == [
            outcome_key(o) for o in fleet.outcomes
        ]

    def test_outcomes_reported_in_plan_order(self):
        factory = build_wordpress_app
        plan = plan_campaign(factory, seed=31, requests=5)
        result = CampaignRunner(factory, workers=3).run(plan)
        assert [o.name for o in result.outcomes] == [e.name for e in plan.entries]

    def test_fleet_actually_uses_multiple_workers(self):
        factory = build_wordpress_app
        plan = plan_campaign(factory, seed=31, requests=5)
        # Pacing makes each recipe hold its worker for real time, so the
        # fleet visibly spreads work instead of one thread draining all.
        result = CampaignRunner(factory, workers=3, pacing=0.05).run(plan)
        assert len({o.worker for o in result.outcomes}) > 1


class _StubExecutor:
    """Scripted executor: returns canned statuses per recipe name."""

    def __init__(self, script):
        self.script = script  # name -> list of statuses, consumed in order
        self.calls = []  # (name, seed) of every execution
        self._lock = threading.Lock()

    def execute(self, planned, seed=None):
        with self._lock:
            self.calls.append((planned.name, planned.seed if seed is None else seed))
            statuses = self.script[planned.name]
            status = statuses.pop(0) if len(statuses) > 1 else statuses[0]
        return RecipeOutcome(
            index=planned.index,
            name=planned.name,
            pattern=planned.pattern,
            service=planned.service,
            seed=planned.seed if seed is None else seed,
            status=status,
        )


class _StubRunner(CampaignRunner):
    def __init__(self, stub, **kwargs):
        super().__init__(build_twotier, **kwargs)
        self._stub = stub

    def _executor(self, stop_event=None):
        return self._stub


def twotier_plan(**kwargs):
    return plan_campaign(lambda: build_twotier(), seed=1, **kwargs)


class TestFlakeDetection:
    def test_broken_vs_flaky_classification(self):
        plan = twotier_plan()
        first, second = plan.entries[0].name, plan.entries[1].name
        stub = _StubExecutor(
            {
                first: ["fail", "fail", "fail"],  # fails under every seed
                second: ["fail", "fail", "pass"],  # seed-sensitive
            }
        )
        result = _StubRunner(stub, workers=1, rerun_failures=2).run(plan)
        broken = result.outcome(first)
        flaky = result.outcome(second)
        assert broken.classification == "broken"
        assert broken.attempts == ["fail", "fail", "fail"]
        assert flaky.classification == "flaky"
        assert flaky.attempts == ["fail", "fail", "pass"]
        assert [o.name for o in result.broken] == [first]
        assert [o.name for o in result.flaky] == [second]

    def test_reruns_use_perturbed_seeds(self):
        plan = twotier_plan()
        name = plan.entries[0].name
        stub = _StubExecutor(
            {entry.name: ["fail"] if entry.name == name else ["pass"] for entry in plan}
        )
        _StubRunner(stub, workers=1, rerun_failures=2).run(plan)
        rerun_seeds = [seed for called, seed in stub.calls[len(plan) :] if called == name]
        assert rerun_seeds == [
            derive_seed(plan.seed, name, attempt) for attempt in (1, 2)
        ]
        assert all(seed != derive_seed(plan.seed, name) for seed in rerun_seeds)

    def test_passing_campaign_skips_reruns(self):
        plan = twotier_plan()
        stub = _StubExecutor({entry.name: ["pass"] for entry in plan})
        result = _StubRunner(stub, workers=1, rerun_failures=3).run(plan)
        assert len(stub.calls) == len(plan)
        assert result.passed
        assert all(o.attempts == ["pass"] for o in result.outcomes)


class TestFailFast:
    def test_remaining_entries_skipped(self):
        plan = twotier_plan()
        first = plan.entries[0].name
        stub = _StubExecutor({entry.name: ["fail"] for entry in plan})
        result = _StubRunner(stub, workers=1, fail_fast=True).run(plan)
        assert result.outcome(first).status == "fail"
        others = [o for o in result.outcomes if o.name != first]
        assert others and all(o.status == "skipped" for o in others)
        assert not result.passed

    def test_skipped_outcomes_keep_plan_metadata(self):
        plan = twotier_plan()
        stub = _StubExecutor({entry.name: ["fail"] for entry in plan})
        result = _StubRunner(stub, workers=1, fail_fast=True).run(plan)
        skipped = result.outcomes[-1]
        entry = plan.entries[-1]
        assert (skipped.pattern, skipped.service, skipped.seed) == (
            entry.pattern,
            entry.service,
            entry.seed,
        )


class TestSharding:
    """``run_sharded``: N independent round-robin partitions, one merged
    result.  Sharding is an execution detail — outcomes, order, and
    scorecards must match the unsharded run exactly."""

    def test_sharded_matches_unsharded(self):
        factory = build_wordpress_app
        plan = plan_campaign(factory, seed=31, requests=5)
        baseline = CampaignRunner(factory, workers=1).run(plan)
        sharded = CampaignRunner(factory, workers=3).run_sharded(plan, shards=3)
        assert [outcome_key(o) for o in sharded.outcomes] == [
            outcome_key(o) for o in baseline.outcomes
        ]
        assert sharded.name == plan.name
        assert sharded.workers == 3

    def test_sharded_outcomes_in_plan_order(self):
        factory = build_wordpress_app
        plan = plan_campaign(factory, seed=31, requests=5)
        result = CampaignRunner(factory, workers=2).run_sharded(plan, shards=2)
        assert [o.index for o in result.outcomes] == [e.index for e in plan.entries]

    def test_sharded_scorecard_merges_across_shards(self):
        factory = build_wordpress_app
        plan = plan_campaign(factory, seed=31, requests=5)
        baseline = CampaignRunner(factory, workers=1).run(plan)
        sharded = CampaignRunner(factory, workers=2).run_sharded(plan, shards=4)
        assert sharded.scorecard().text() == baseline.scorecard().text()
        assert sharded.counts() == baseline.counts()

    def test_one_shard_degenerates_to_plain_run(self):
        plan = twotier_plan(requests=3)
        result = CampaignRunner(build_twotier, workers=1).run_sharded(plan, shards=1)
        assert len(result.outcomes) == len(plan)
        assert result.name == plan.name

    def test_more_shards_than_entries_is_clamped(self):
        plan = twotier_plan(requests=3)
        result = CampaignRunner(build_twotier, workers=1).run_sharded(
            plan, shards=len(plan.entries) + 50
        )
        assert [o.index for o in result.outcomes] == [e.index for e in plan.entries]

    def test_invalid_shard_count_rejected(self):
        plan = twotier_plan(requests=2)
        with pytest.raises(CampaignError, match="shards"):
            CampaignRunner(build_twotier).run_sharded(plan, shards=0)

    def test_sharded_flake_detection_runs_per_shard(self):
        plan = twotier_plan()
        # Every recipe fails once then passes on rerun => flaky, in
        # whichever shard it landed.
        stub = _StubExecutor({entry.name: ["fail", "pass"] for entry in plan})
        result = _StubRunner(stub, workers=1, rerun_failures=1).run_sharded(
            plan, shards=2
        )
        assert len(result.outcomes) == len(plan)
        assert all(o.classification == "flaky" for o in result.outcomes)


class TestValidation:
    def test_worker_count(self):
        with pytest.raises(CampaignError):
            CampaignRunner(build_twotier, workers=0)

    def test_rerun_count(self):
        with pytest.raises(CampaignError):
            CampaignRunner(build_twotier, rerun_failures=-1)

    def test_batch_size(self):
        with pytest.raises(CampaignError):
            CampaignRunner(build_twotier, batch_size=0)


class TestErrorIsolation:
    def test_fleet_survives_a_factory_that_always_raises(self):
        def exploding_factory():
            raise RuntimeError("boom")

        plan = twotier_plan(requests=2)
        result = CampaignRunner(exploding_factory, workers=2).run(plan)
        assert len(result.outcomes) == len(plan)
        assert all(o.status == "error" for o in result.outcomes)
        assert not result.passed
