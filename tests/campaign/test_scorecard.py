"""Tests for the per-service/per-pattern resilience scorecard."""

from repro.campaign import RecipeOutcome, Scorecard
from repro.campaign.scorecard import PatternScore


def outcome(name, pattern, service, status, classification=None):
    return RecipeOutcome(
        index=0,
        name=name,
        pattern=pattern,
        service=service,
        seed=0,
        status=status,
        classification=classification,
    )


def sample_outcomes():
    return [
        outcome("a", "overload", "db", "pass"),
        outcome("b", "overload", "db", "fail", classification="broken"),
        outcome("c", "hang", "db", "pass"),
        outcome("d", "overload", "cache", "fail", classification="flaky"),
        outcome("e", "hang", "cache", "inconclusive"),
        outcome("f", "crash", "db", "timeout"),
    ]


class TestPatternScore:
    def test_tally(self):
        score = PatternScore()
        for sample in sample_outcomes():
            score.add(sample)
        assert score.total == 6
        assert score.passed == 2
        assert score.failed == 2
        assert score.inconclusive == 1
        assert score.unscored == 1
        assert score.flaky == 1
        assert score.broken == 1
        assert score.conclusive == 4

    def test_cell_markers(self):
        assert PatternScore().cell() == "-"
        assert PatternScore(total=2, passed=2).cell() == "2/2"
        assert PatternScore(total=2, passed=1, failed=1, flaky=1).cell() == "1/2~"
        assert PatternScore(total=2, passed=1, failed=1, broken=1).cell() == "1/2!"
        assert PatternScore(total=3, passed=1, inconclusive=2).cell() == "1/3?"

    def test_merge(self):
        left = PatternScore(total=1, passed=1)
        left.merge(PatternScore(total=2, failed=2, broken=1))
        assert (left.total, left.passed, left.failed, left.broken) == (3, 1, 2, 1)


class TestScorecard:
    def test_cells_keyed_by_service_and_pattern(self):
        card = Scorecard.from_outcomes(sample_outcomes())
        assert card.cells[("db", "overload")].total == 2
        assert card.cells[("db", "overload")].passed == 1
        assert card.cells[("cache", "hang")].inconclusive == 1

    def test_axis_ordering(self):
        card = Scorecard.from_outcomes(sample_outcomes())
        assert card.services == ["cache", "db"]
        # Hard-failure patterns come first.
        assert card.patterns == ["crash", "overload", "hang"]

    def test_aggregations(self):
        card = Scorecard.from_outcomes(sample_outcomes())
        assert card.service_score("db").total == 4
        assert card.pattern_score("overload").failed == 2
        totals = card.totals()
        assert (totals.total, totals.passed) == (6, 2)

    def test_text_table(self):
        text = Scorecard.from_outcomes(sample_outcomes()).text()
        lines = text.splitlines()
        assert any("service" in line and "score" in line for line in lines)
        db_row = next(line for line in lines if line.strip().startswith("db"))
        assert "1/2!" in db_row  # broken overload marker
        total_row = next(line for line in lines if "TOTAL" in line)
        assert "2/4" in total_row  # passed/conclusive campaign headline
        # cache never saw a crash recipe.
        cache_row = next(line for line in lines if line.strip().startswith("cache"))
        assert "-" in cache_row

    def test_empty_scorecard_renders(self):
        assert "service" in Scorecard().text()

    def test_to_dict(self):
        doc = Scorecard.from_outcomes(sample_outcomes()).to_dict()
        assert doc["services"]["db"]["overload"]["broken"] == 1
        assert doc["totals"]["total"] == 6
