"""Byte-equality across result transports: shm is invisible in output.

The shm lane re-encodes every outcome through the compact codec and a
shared-memory slab, so this suite pins the strongest possible claim:
campaign scorecards, campaign dumps, and explore digests are
*byte-identical* across ``pickle`` vs ``shm`` transports, at 1 and 4
workers, on both fleet backends.  Dump JSON is compared after
stripping only the fields that legitimately vary between any two runs
(wall-clock timings, worker attribution) — everything else, float
bits included, must match exactly.
"""

import json

import pytest

from repro.apps import build_twotier
from repro.campaign import CampaignRunner, dumps, plan_campaign

LANES = [
    (backend, workers, transport)
    for backend in ("threads", "processes")
    for workers in (1, 4)
    for transport in ("pickle", "shm")
]

#: Fields that legitimately differ between lanes: wall-clock timings,
#: worker attribution, and the configured fleet size itself.
VOLATILE = ("wall_time", "orchestration_time", "assertion_time", "worker", "workers")


def normalized_dump_bytes(result):
    """The campaign dump with per-run timing variance removed, re-frozen
    to canonical bytes so comparison is exact, not approximate."""
    lines = []
    for line in dumps(result).splitlines():
        doc = json.loads(line)
        for key in VOLATILE:
            doc.pop(key, None)
        lines.append(json.dumps(doc, sort_keys=True))
    return "\n".join(lines).encode("utf-8")


@pytest.fixture(scope="module")
def plan():
    return plan_campaign(build_twotier, seed=9, requests=5, max_recipes=6)


@pytest.fixture(scope="module")
def reference(plan):
    result = CampaignRunner(build_twotier, workers=1, timeout=None).run(plan)
    return result.scorecard().text().encode("utf-8"), normalized_dump_bytes(result)


class TestCampaignByteEquality:
    @pytest.mark.parametrize(
        "backend, workers, transport",
        LANES,
        ids=[f"{b}-w{w}-{t}" for b, w, t in LANES],
    )
    def test_scorecard_and_dump_identical(
        self, plan, reference, backend, workers, transport
    ):
        result = CampaignRunner(
            build_twotier,
            workers=workers,
            timeout=None,
            backend=backend,
            batch_size=2,
            result_transport=transport,
        ).run(plan)
        scorecard_bytes, dump_bytes = reference
        assert result.scorecard().text().encode("utf-8") == scorecard_bytes
        assert normalized_dump_bytes(result) == dump_bytes


class TestExploreByteEquality:
    @pytest.mark.slow
    def test_digests_identical_across_lanes(self):
        from repro.explore import run_explore

        executed = {}
        for backend, workers, transport in (
            ("threads", 1, "pickle"),
            ("threads", 4, "shm"),
            ("processes", 1, "shm"),
            ("processes", 4, "pickle"),
            ("processes", 4, "shm"),
        ):
            result = run_explore(
                "stuckbreaker",
                budget=12,
                seed=0,
                workers=workers,
                backend=backend,
                batch_size=2,
                result_transport=transport,
            )
            executed[(backend, workers, transport)] = result.executed
        assert len({tuple(v) for v in executed.values()}) == 1, executed.keys()
