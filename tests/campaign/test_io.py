"""Tests for campaign JSON-lines export/import."""

import pytest

from repro.campaign import CampaignResult, CheckOutcome, RecipeOutcome, dumps, loads
from repro.campaign.io import dump_jsonl, load_jsonl
from repro.errors import CampaignError


def sample_result():
    return CampaignResult(
        name="nightly",
        app="wordpress",
        seed=42,
        workers=4,
        wall_time=12.5,
        rerun_failures=2,
        outcomes=[
            RecipeOutcome(
                index=0,
                name="auto/overload-mysql",
                pattern="overload",
                service="mysql",
                seed=101,
                status="pass",
                checks=[
                    CheckOutcome(
                        name="HasBoundedRetries", passed=True, inconclusive=False, detail="ok"
                    )
                ],
                orchestration_time=0.001,
                assertion_time=0.002,
                wall_time=0.3,
                window=(0.0, 8.25),
                latencies=[0.05, 0.07, 0.06],
                attempts=["pass"],
                worker=2,
            ),
            RecipeOutcome(
                index=1,
                name="auto/hang-mysql",
                pattern="hang",
                service="mysql",
                seed=102,
                status="fail",
                error=None,
                attempts=["fail", "pass"],
                classification="flaky",
                worker=0,
            ),
        ],
    )


class TestRoundTrip:
    def test_loads_inverts_dumps(self):
        original = sample_result()
        restored = loads(dumps(original))
        assert restored == original

    def test_dump_is_stable(self):
        text = dumps(sample_result())
        assert dumps(loads(text)) == text

    def test_header_carries_aggregate_fields(self):
        restored = loads(dumps(sample_result()))
        assert (restored.name, restored.app, restored.seed) == ("nightly", "wordpress", 42)
        assert restored.workers == 4
        assert restored.rerun_failures == 2
        assert restored.wall_time == pytest.approx(12.5)

    def test_derived_views_survive(self):
        restored = loads(dumps(sample_result()))
        assert restored.counts()["fail"] == 1
        assert [o.name for o in restored.flaky] == ["auto/hang-mysql"]
        assert restored.outcome("auto/overload-mysql").window == (0.0, 8.25)

    def test_blank_lines_skipped(self):
        assert loads(dumps(sample_result()) + "\n\n") == sample_result()

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        written = dump_jsonl(sample_result(), path)
        assert written == 2
        assert load_jsonl(path) == sample_result()


class TestMalformedInput:
    def test_bad_json_names_line(self):
        text = dumps(sample_result()) + "\n{broken"
        with pytest.raises(CampaignError, match="line 4"):
            loads(text)

    def test_non_object_line(self):
        with pytest.raises(CampaignError, match="expected an object"):
            loads('[1, 2, 3]')

    def test_first_record_must_be_header(self):
        lines = dumps(sample_result()).splitlines()
        with pytest.raises(CampaignError, match="first record must be the campaign header"):
            loads("\n".join(lines[1:]))

    def test_unknown_record_kind(self):
        text = dumps(sample_result()) + '\n{"record": "mystery"}'
        with pytest.raises(CampaignError, match="unknown record kind 'mystery'"):
            loads(text)

    def test_bad_outcome_fields(self):
        text = dumps(sample_result()) + '\n{"record": "outcome", "nope": true}'
        with pytest.raises(CampaignError, match="line 4"):
            loads(text)

    def test_empty_dump(self):
        with pytest.raises(CampaignError, match="no header record"):
            loads("")
        with pytest.raises(CampaignError, match="no header record"):
            loads("\n\n")
