"""Tests for campaign planning: dedup, ordering, seeding."""

import pytest

from repro.apps import build_enterprise_app, build_tree_app, build_wordpress_app
from repro.campaign import (
    derive_seed,
    plan_campaign,
    recipe_signature,
    scenario_target,
)
from repro.core import Crash, Disconnect, EdgeAnnotation, Hang, NetworkPartition, Overload, Recipe
from repro.errors import CampaignError


class TestScenarioTarget:
    def test_service_scoped(self):
        assert scenario_target(Crash("db")) == "db"
        assert scenario_target(Hang("db")) == "db"
        assert scenario_target(Overload("db")) == "db"

    def test_edge_scoped(self):
        assert scenario_target(Disconnect("a", "b")) == "b"

    def test_cut_scoped_has_no_single_target(self):
        assert scenario_target(NetworkPartition(["a"], ["b"])) == "*"


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "auto/crash-db") == derive_seed(42, "auto/crash-db")

    def test_independent_per_recipe_and_attempt(self):
        seeds = {
            derive_seed(42, "auto/crash-db"),
            derive_seed(42, "auto/crash-db", attempt=1),
            derive_seed(42, "auto/hang-db"),
            derive_seed(43, "auto/crash-db"),
        }
        assert len(seeds) == 4


class TestPlanCampaign:
    def test_expands_autogen(self):
        plan = plan_campaign(lambda: build_tree_app(3), seed=7)
        assert len(plan) == 42
        assert {entry.pattern for entry in plan} == {"overload", "hang", "degrade"}
        # Indexes are stable plan positions.
        assert [entry.index for entry in plan] == list(range(42))

    def test_seeds_derive_from_campaign_seed_and_name(self):
        plan = plan_campaign(lambda: build_wordpress_app(), seed=5)
        for entry in plan:
            assert entry.seed == derive_seed(5, entry.name)

    def test_entry_defaults_to_graph_entry_service(self):
        plan = plan_campaign(lambda: build_wordpress_app())
        assert all(entry.load.entry == "wordpress" for entry in plan)

    def test_unknown_entry_rejected(self):
        with pytest.raises(CampaignError, match="unknown entry"):
            plan_campaign(lambda: build_wordpress_app(), entry="ghost")

    def test_operator_recipes_take_precedence_over_autogen(self):
        app = build_wordpress_app
        auto = plan_campaign(lambda: app())
        duplicate_of_auto = next(
            entry.recipe for entry in auto if entry.pattern == "overload"
        )
        mine = Recipe(
            name="mine/overload",
            scenarios=list(duplicate_of_auto.scenarios),
            checks=list(duplicate_of_auto.checks),
        )
        plan = plan_campaign(lambda: app(), extra_recipes=[mine])
        names = [entry.name for entry in plan]
        assert "mine/overload" in names
        assert duplicate_of_auto.name not in names
        assert plan.deduplicated == 1

    def test_duplicate_names_rejected(self):
        recipe = Recipe(name="auto/overload-mysql", scenarios=[Overload("mysql")])
        with pytest.raises(CampaignError, match="duplicate recipe name"):
            plan_campaign(lambda: build_wordpress_app(), extra_recipes=[recipe])

    def test_unknown_fault_target_rejected(self):
        recipe = Recipe(name="x", scenarios=[Crash("ghost")])
        with pytest.raises(CampaignError, match="unknown service 'ghost'"):
            plan_campaign(lambda: build_wordpress_app(), extra_recipes=[recipe])

    def test_high_criticality_targets_run_first(self):
        annotations = {"servicedb": EdgeAnnotation(criticality="high")}
        plan = plan_campaign(lambda: build_enterprise_app(), annotations=annotations)
        first_services = {entry.service for entry in plan.entries[:3]}
        assert first_services == {"servicedb"}
        # The crash/breaker probe exists and precedes slow-failure probes.
        assert plan.entries[0].pattern == "crash"

    def test_limit_keeps_priority_prefix(self):
        plan = plan_campaign(lambda: build_tree_app(3))
        capped = plan.limit(5)
        assert len(capped) == 5
        assert [e.name for e in capped] == [e.name for e in plan.entries[:5]]
        with pytest.raises(CampaignError):
            plan.limit(0)

    def test_summary_mentions_counts(self):
        plan = plan_campaign(lambda: build_tree_app(2), seed=3)
        text = plan.summary()
        assert "seed=3" in text
        assert "overload=" in text


class TestRecipeSignature:
    def test_order_insensitive(self):
        a = Recipe(name="a", scenarios=[Crash("x"), Hang("x")])
        b = Recipe(name="b", scenarios=[Hang("x"), Crash("x")])
        assert recipe_signature(a) == recipe_signature(b)
