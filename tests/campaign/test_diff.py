"""Tests for campaign-to-campaign regression diffing."""

from repro.campaign import CampaignResult, RecipeOutcome, diff_campaigns


def outcome(name, status, classification=None, latencies=()):
    return RecipeOutcome(
        index=0,
        name=name,
        pattern="overload",
        service="db",
        seed=0,
        status=status,
        classification=classification,
        latencies=list(latencies),
    )


def result(name, outcomes):
    return CampaignResult(name=name, app="app", seed=0, workers=1, outcomes=outcomes)


class TestStatusChanges:
    def test_regressions_fixes_and_other_changes(self):
        baseline = result(
            "base",
            [
                outcome("r1", "pass"),
                outcome("r2", "fail"),
                outcome("r3", "inconclusive"),
                outcome("r4", "pass"),
            ],
        )
        candidate = result(
            "cand",
            [
                outcome("r1", "timeout"),  # pass -> conclusive failure
                outcome("r2", "pass"),  # conclusive failure -> pass
                outcome("r3", "pass"),  # neither: other change
                outcome("r4", "pass"),  # unchanged
            ],
        )
        diff = diff_campaigns(baseline, candidate)
        assert [str(c) for c in diff.regressions] == ["r1: pass -> timeout"]
        assert [c.name for c in diff.fixes] == ["r2"]
        assert [c.name for c in diff.other_changes] == ["r3"]
        assert diff.has_regressions
        assert not diff.clean

    def test_added_and_removed_recipes(self):
        diff = diff_campaigns(
            result("base", [outcome("old", "pass"), outcome("both", "pass")]),
            result("cand", [outcome("both", "pass"), outcome("new", "pass")]),
        )
        assert diff.added == ["new"]
        assert diff.removed == ["old"]

    def test_newly_flaky(self):
        diff = diff_campaigns(
            result("base", [outcome("r", "fail", classification="broken")]),
            result("cand", [outcome("r", "fail", classification="flaky")]),
        )
        assert diff.newly_flaky == ["r"]
        assert not diff.regressions  # status itself did not change

    def test_identical_campaigns_are_clean(self):
        baseline = result("base", [outcome("r", "pass", latencies=[0.1, 0.2])])
        candidate = result("cand", [outcome("r", "pass", latencies=[0.1, 0.2])])
        diff = diff_campaigns(baseline, candidate)
        assert diff.clean
        assert not diff.has_regressions
        assert "no differences" in diff.text()


class TestLatencyComparison:
    def test_pooled_latencies_go_through_ks(self):
        baseline = result("base", [outcome("r", "pass", latencies=[0.1] * 30)])
        candidate = result("cand", [outcome("r", "pass", latencies=[5.0] * 30)])
        diff = diff_campaigns(baseline, candidate)
        assert diff.latency is not None
        assert not diff.latency.same_distribution()
        assert "distribution shifted" in diff.text()

    def test_no_samples_no_comparison(self):
        diff = diff_campaigns(
            result("base", [outcome("r", "error")]),
            result("cand", [outcome("r", "error")]),
        )
        assert diff.latency is None


class TestReporting:
    def test_text_lists_each_change(self):
        diff = diff_campaigns(
            result("base", [outcome("r1", "pass")]),
            result("cand", [outcome("r1", "fail"), outcome("r2", "pass")]),
        )
        text = diff.text()
        assert "campaign diff: 'base' -> 'cand'" in text
        assert "r1: pass -> fail" in text
        assert "recipes added: r2" in text

    def test_to_dict(self):
        doc = diff_campaigns(
            result("base", [outcome("r1", "pass")]),
            result("cand", [outcome("r1", "fail")]),
        ).to_dict()
        assert doc["has_regressions"] is True
        assert doc["regressions"] == [
            {"name": "r1", "baseline": "pass", "candidate": "fail"}
        ]
