"""Shared-memory slabs: growth, generations, integrity, resolution.

Pins the transport-safety properties the fleet relies on: a record a
worker wrote is readable exactly as written; a region *reused* after a
batch rewind can never decode silently (generation tagging); torn or
corrupted payloads fail the CRC; segments are unlinked when retired or
closed; and the transport knob resolves arg → env → default with an
automatic pickle fallback where shared memory does not exist.
"""

import os

import pytest

from repro.campaign.shm import (
    DEFAULT_SLAB_BYTES,
    RESULT_TRANSPORTS,
    TRANSPORT_ENV,
    SlabError,
    SlabReader,
    SlabRef,
    SlabWriter,
    resolve_result_transport,
)
from repro.errors import CampaignError


def shm_exists(name):
    return os.path.exists(f"/dev/shm/{name}")


@pytest.fixture
def writer():
    w = SlabWriter(initial_bytes=4096)
    yield w
    w.close()


@pytest.fixture
def reader():
    r = SlabReader()
    yield r
    r.close()


class TestWriteRead:
    def test_payload_round_trips_with_exact_ref(self, writer, reader):
        payload = b"result-bytes" * 10
        ref = writer.write(payload)
        assert ref.name == writer.name
        assert ref.length == len(payload)
        view = reader.read(ref)
        assert bytes(view) == payload
        view.release()

    def test_many_records_per_batch_stay_distinct(self, writer, reader):
        payloads = [bytes([i]) * (i + 1) for i in range(40)]
        refs = [writer.write(p) for p in payloads]
        for ref, payload in zip(refs, payloads):
            view = reader.read(ref)
            assert bytes(view) == payload
            view.release()

    def test_rotation_grows_the_slab_and_keeps_prior_records_readable(
        self, writer, reader
    ):
        small = writer.write(b"small")
        big_payload = b"x" * (8 * 4096)  # outgrows the 4 KiB slab
        big = writer.write(big_payload)
        assert big.name != small.name  # rotated to a fresh segment
        assert big.generation > small.generation
        # Mid-batch, the retired segment still holds unread records.
        view = reader.read(small)
        assert bytes(view) == b"small"
        view.release()
        view = reader.read(big)
        assert bytes(view) == big_payload
        view.release()

    def test_rotation_size_is_at_least_default(self, writer):
        writer.write(b"y" * (2 * 4096))
        ref = writer.write(b"z")
        from multiprocessing import shared_memory

        segment = shared_memory.SharedMemory(name=ref.name)
        try:
            assert segment.size >= DEFAULT_SLAB_BYTES
        finally:
            segment.close()


class TestGenerations:
    def test_reused_region_is_rejected_not_misread(self, writer, reader):
        stale = writer.write(b"batch-one-record")
        writer.new_batch()
        fresh = writer.write(b"batch-two!")  # overwrites offset 0
        view = reader.read(fresh)
        assert bytes(view) == b"batch-two!"
        view.release()
        with pytest.raises(SlabError, match="stale"):
            reader.read(stale)

    def test_crc_rejects_corrupted_payload(self, writer, reader):
        from repro.campaign.shm import SLAB_RECORD_HEADER

        ref = writer.write(b"precious-bytes")
        # Flip one payload byte behind the reader's back.
        offset = ref.offset + SLAB_RECORD_HEADER.size + 2
        writer._segment.buf[offset] ^= 0xFF
        with pytest.raises(SlabError, match="crc"):
            reader.read(ref)

    def test_out_of_bounds_ref_rejected(self, writer, reader):
        ref = writer.write(b"ok")
        bogus = SlabRef(ref.name, ref.generation, 4096 - 2, 4096, ref.crc)
        with pytest.raises(SlabError, match="outside"):
            reader.read(bogus)


class TestLifecycle:
    def test_new_batch_unlinks_retired_segments(self, writer):
        first_name = writer.name
        writer.write(b"x" * (8 * 4096))  # rotate: first segment retired
        assert shm_exists(first_name)  # still readable mid-batch
        writer.new_batch()
        assert not shm_exists(first_name)
        assert shm_exists(writer.name)

    def test_close_unlinks_everything_and_is_idempotent(self):
        w = SlabWriter(initial_bytes=4096)
        first_name = w.name
        w.write(b"x" * (8 * 4096))
        second_name = w.name
        w.close()
        w.close()
        assert not shm_exists(first_name)
        assert not shm_exists(second_name)

    def test_reader_read_after_unlink_is_an_error_for_new_readers(self, writer):
        ref = writer.write(b"gone soon")
        writer.close()
        with pytest.raises(SlabError, match="gone"):
            SlabReader().read(ref)

    def test_reader_unlink_sweeps_a_dead_workers_segment(self, reader):
        w = SlabWriter(initial_bytes=4096)
        name = w.name
        w.write(b"orphaned")
        # Simulate the worker dying without cleanup: the parent sweeps.
        reader.unlink(name)
        assert not shm_exists(name)
        reader.unlink(name)  # idempotent on a gone segment


class TestResolveTransport:
    def test_registry(self):
        assert RESULT_TRANSPORTS == ("pickle", "shm")

    def test_default_is_pickle(self, monkeypatch):
        monkeypatch.delenv(TRANSPORT_ENV, raising=False)
        assert resolve_result_transport(None) == "pickle"

    def test_explicit_arg_wins(self, monkeypatch):
        monkeypatch.setenv(TRANSPORT_ENV, "pickle")
        assert resolve_result_transport("shm") == "shm"

    def test_env_consulted_when_unset(self, monkeypatch):
        monkeypatch.setenv(TRANSPORT_ENV, "shm")
        assert resolve_result_transport(None) == "shm"

    @pytest.mark.parametrize("bad", ["mmap", "SHM", ""])
    def test_unknown_names_rejected(self, monkeypatch, bad):
        with pytest.raises(CampaignError, match="result transport"):
            resolve_result_transport(bad)
        if bad:  # empty env means "unset", not an error
            monkeypatch.setenv(TRANSPORT_ENV, bad)
            with pytest.raises(CampaignError, match="result transport"):
                resolve_result_transport(None)

    def test_empty_env_means_default(self, monkeypatch):
        monkeypatch.setenv(TRANSPORT_ENV, "")
        assert resolve_result_transport(None) == "pickle"

    def test_shm_degrades_where_shared_memory_is_unavailable(self, monkeypatch):
        import repro.campaign.shm as shm_module

        monkeypatch.setattr(shm_module, "shared_memory_available", lambda: False)
        assert shm_module.resolve_result_transport("shm") == "pickle"
        assert shm_module.resolve_result_transport("pickle") == "pickle"
