"""Regression: campaign planning and execution are seed-deterministic.

The campaign contract (see ``repro/campaign/runner.py``) is that a
plan depends only on ``(factory, master seed, knobs)`` and an outcome
only on ``(factory, recipe, seed)``.  These tests pin both halves: the
planner must emit the identical ordered, deduplicated, seeded plan on
every invocation, and running that plan must produce identical
outcomes whatever the worker count — and, since the fleet grew a
``processes`` backend, whatever the execution backend.
"""

from repro.apps import build_twotier, build_wordpress_app
from repro.campaign import CampaignRunner, diff_campaigns, plan_campaign


def plan_fingerprint(plan):
    """Everything that identifies a plan: order, dedup, names, seeds."""
    return (
        plan.name,
        plan.app,
        plan.seed,
        plan.deduplicated,
        tuple(
            (
                entry.index,
                entry.name,
                entry.pattern,
                entry.service,
                entry.seed,
                entry.load,
                tuple(s.describe() for s in entry.recipe.scenarios),
                tuple(type(c).__name__ for c in entry.recipe.checks),
            )
            for entry in plan.entries
        ),
    )


def outcome_fingerprint(result):
    return tuple(
        (
            outcome.index,
            outcome.name,
            outcome.status,
            outcome.seed,
            tuple((check.name, check.passed, check.inconclusive) for check in outcome.checks),
            tuple(round(latency, 9) for latency in outcome.latencies),
        )
        for outcome in result.outcomes
    )


class TestPlanDeterminism:
    def test_same_seed_identical_plan(self):
        plans = [plan_campaign(build_wordpress_app, seed=5) for _ in range(3)]
        fingerprints = {plan_fingerprint(plan) for plan in plans}
        assert len(fingerprints) == 1
        # Indices are dense and ordered; seeds are pinned per name.
        plan = plans[0]
        assert [entry.index for entry in plan.entries] == list(range(len(plan.entries)))

    def test_different_seed_same_structure_different_seeds(self):
        base = plan_campaign(build_wordpress_app, seed=5)
        other = plan_campaign(build_wordpress_app, seed=6)
        assert [e.name for e in base.entries] == [e.name for e in other.entries]
        assert [e.seed for e in base.entries] != [e.seed for e in other.entries]

    def test_dedup_is_stable(self):
        first = plan_campaign(build_wordpress_app, seed=5)
        second = plan_campaign(build_wordpress_app, seed=5)
        assert first.deduplicated == second.deduplicated
        names = [entry.name for entry in first.entries]
        assert len(names) == len(set(names))


class TestExecutionDeterminism:
    def test_outcomes_identical_across_worker_counts(self):
        plan = plan_campaign(build_twotier, seed=9, requests=5, max_recipes=6)
        results = [
            CampaignRunner(build_twotier, workers=workers, timeout=None).run(plan)
            for workers in (1, 2, 5)
        ]
        fingerprints = {outcome_fingerprint(result) for result in results}
        assert len(fingerprints) == 1

    def test_outcomes_identical_across_repeat_runs(self):
        plan = plan_campaign(build_twotier, seed=9, requests=5, max_recipes=4)
        runner = CampaignRunner(build_twotier, workers=3, timeout=None)
        assert outcome_fingerprint(runner.run(plan)) == outcome_fingerprint(
            runner.run(plan)
        )


def outcome_doc(outcome):
    """An outcome's full serialized form minus what legitimately varies
    between runs: wall-clock timings and worker attribution."""
    doc = outcome.to_dict()
    for volatile in ("wall_time", "orchestration_time", "assertion_time", "worker"):
        doc.pop(volatile, None)
    return doc


class TestBackendEquivalence:
    """The ``processes`` backend is an execution detail, not a semantic
    one: everything a campaign reports — statuses, checks, metrics
    snapshots, fault attributions, scorecards, diff verdicts — must be
    bit-for-bit identical to the thread backend at any worker count.

    ``build_twotier`` is module-level (picklable), which is all the
    process backend asks of a factory.
    """

    def test_full_outcome_docs_identical_across_backends_and_workers(self):
        plan = plan_campaign(build_twotier, seed=9, requests=5, max_recipes=6)
        baseline = CampaignRunner(build_twotier, workers=1, timeout=None).run(plan)
        docs = [outcome_doc(o) for o in baseline.outcomes]
        for backend, workers in (("threads", 3), ("processes", 1), ("processes", 3)):
            result = CampaignRunner(
                build_twotier, workers=workers, timeout=None, backend=backend
            ).run(plan)
            assert [outcome_doc(o) for o in result.outcomes] == docs, (
                backend,
                workers,
            )

    def test_batched_and_sharded_execution_identical_too(self):
        """Dispatch batching and campaign sharding are wire/topology
        details; the reported outcome docs cannot move."""
        plan = plan_campaign(build_twotier, seed=9, requests=5, max_recipes=6)
        baseline = CampaignRunner(build_twotier, workers=1, timeout=None).run(plan)
        docs = [outcome_doc(o) for o in baseline.outcomes]
        batched = CampaignRunner(
            build_twotier, workers=2, timeout=None, backend="processes", batch_size=3
        ).run(plan)
        assert [outcome_doc(o) for o in batched.outcomes] == docs
        sharded = CampaignRunner(
            build_twotier, workers=2, timeout=None, backend="processes", batch_size=2
        ).run_sharded(plan, shards=2)
        assert [outcome_doc(o) for o in sharded.outcomes] == docs

    def test_scorecard_and_diff_verdicts_agree_across_backends(self):
        plan = plan_campaign(build_twotier, seed=9, requests=5, max_recipes=6)
        threads = CampaignRunner(build_twotier, workers=2, timeout=None).run(plan)
        procs = CampaignRunner(
            build_twotier, workers=2, timeout=None, backend="processes"
        ).run(plan)
        assert threads.scorecard().text() == procs.scorecard().text()
        # A regression diff across backends of the same plan+seed must
        # be a no-op in both directions.
        assert diff_campaigns(threads, procs).clean
        assert diff_campaigns(procs, threads).clean
