"""The process fleet backend: isolation, crash containment, fail-fast.

The thread backend's contract (results keyed by job position, stop_when
fail-fast, execute-never-raises) is pinned by the campaign runner
tests; this module pins what the ``processes`` backend adds on top:

* job payloads and contexts round-trip through spawn workers,
* a worker process that *dies* mid-job costs exactly the jobs it held
  unanswered (one job at the default ``batch_size=1``) — those jobs
  are converted via ``on_crash``, a replacement worker is spawned,
  every other job completes, and the fleet exits (no hang, no silently
  shrunken fleet),
* a target that raises, or a result that cannot be pickled, degrades
  to the same ``on_crash`` path instead of killing the worker,
* fail-fast stops dispatching but lets in-flight jobs finish,
* batched dispatch changes only the wire traffic, never the results,
* a :class:`ProcessPool` keeps its workers warm across runs and its
  ``close()`` force-terminates even a wedged worker within a bounded
  wall-clock budget.

Every target below is module-level: spawn workers import the target by
qualified name, which is the one structural requirement the backend
puts on callers (lambdas and closures are rejected by pickle).
"""

import os
import signal
import time

import pytest

from repro.campaign.fleet import (
    BACKENDS,
    ProcessPool,
    ProcessWorkerSpec,
    resolve_workers,
    run_fleet,
)
from repro.errors import CampaignError


def echo_target(worker_id, job, context):
    return {"job": job, "context": context, "pid": os.getpid()}


def double_target(worker_id, job, context):
    return job * 2


def poison_target(worker_id, job, context):
    if job == context["poison"]:
        os._exit(13)  # simulate a segfault/OOM-kill: no exception, no cleanup
    return job * 2


def raising_target(worker_id, job, context):
    if job == "boom":
        raise ValueError("bad job")
    return job


def unpicklable_target(worker_id, job, context):
    if job == "weird":
        return lambda: None  # cannot ship back through the pipe
    return job


def stubborn_target(worker_id, job, context):
    if job == "wedge":
        # Simulate a worker stuck in uninterruptible work: it never
        # returns to the recv loop (so the polite shutdown message goes
        # unread) and shrugs off SIGTERM, leaving kill() as the only out.
        signal.signal(signal.SIGTERM, signal.SIG_IGN)
        time.sleep(300)
    return job


def on_crash(job, detail):
    return ("crashed", job, detail)


def heavy_doc_target(worker_id, job, context):
    """Outcome-dict-shaped payload: exercises the shm codec lane."""
    return {
        "index": job,
        "name": f"job-{job}",
        "status": "pass",
        "latencies": [float(job) + i * 0.5 for i in range(32)],
        "checks": {"latency_p99": {"ok": True, "detail": f"p99 for {job}"}},
    }


class _ExitOnPickle:
    """Pickling this object kills the interpreter: the worker dies
    *inside* result encoding (codec pickle-fallback and plain pickle
    lane alike), after the target already returned successfully."""

    def __reduce__(self):
        os._exit(17)


def exit_on_encode_target(worker_id, job, context):
    if job == "die":
        return _ExitOnPickle()
    return job


class TestResolveWorkers:
    def test_auto_sizes_to_the_machine(self):
        assert resolve_workers("auto") == max(1, os.cpu_count() or 1)

    def test_integers_and_integer_strings_pass_through(self):
        assert resolve_workers(3) == 3
        assert resolve_workers("3") == 3

    @pytest.mark.parametrize("bad", [0, -1, "none", None])
    def test_invalid_counts_rejected(self, bad):
        with pytest.raises(CampaignError):
            resolve_workers(bad)


class TestRunFleetValidation:
    def test_backends_registry(self):
        assert BACKENDS == ("threads", "processes")

    def test_unknown_backend_rejected(self):
        with pytest.raises(CampaignError, match="unknown fleet backend"):
            run_fleet([1], lambda w, j: j, backend="greenlets")

    def test_processes_requires_spec(self):
        with pytest.raises(CampaignError, match="process_spec"):
            run_fleet([1], None, backend="processes")

    def test_threads_requires_execute(self):
        with pytest.raises(CampaignError, match="execute"):
            run_fleet([1], None, backend="threads")


class TestProcessFleet:
    def test_results_keyed_by_position_with_context(self):
        jobs = ["a", "b", "c"]
        results = run_fleet(
            jobs,
            None,
            workers=2,
            backend="processes",
            process_spec=ProcessWorkerSpec(
                target=echo_target, context={"k": 1}, on_crash=on_crash
            ),
        )
        assert sorted(results) == [0, 1, 2]
        for position, job in enumerate(jobs):
            assert results[position]["job"] == job
            assert results[position]["context"] == {"k": 1}
            # Isolation: the job really ran in another interpreter.
            assert results[position]["pid"] != os.getpid()

    def test_matches_thread_backend_results(self):
        jobs = list(range(7))
        threads = run_fleet(jobs, lambda w, j: j * 2, workers=3)
        procs = run_fleet(
            jobs,
            None,
            workers=3,
            backend="processes",
            process_spec=ProcessWorkerSpec(target=double_target, on_crash=on_crash),
        )
        assert procs == threads

    def test_worker_crash_fails_only_its_job_and_fleet_recovers(self):
        jobs = list(range(6))
        results = run_fleet(
            jobs,
            None,
            workers=2,
            backend="processes",
            process_spec=ProcessWorkerSpec(
                target=poison_target, context={"poison": 2}, on_crash=on_crash
            ),
        )
        # Every job is accounted for: the fleet neither hung nor lost
        # queued work when the worker holding job 2 died.
        assert sorted(results) == jobs
        assert results[2][0] == "crashed"
        assert results[2][1] == 2
        assert "exited with code" in results[2][2]
        for position in (0, 1, 3, 4, 5):
            assert results[position] == position * 2

    def test_raising_target_degrades_to_on_crash(self):
        results = run_fleet(
            ["ok", "boom"],
            None,
            workers=1,
            backend="processes",
            process_spec=ProcessWorkerSpec(target=raising_target, on_crash=on_crash),
        )
        assert results[0] == "ok"
        assert results[1][0] == "crashed"
        assert "ValueError: bad job" in results[1][2]

    def test_unpicklable_result_degrades_to_on_crash(self):
        results = run_fleet(
            ["fine", "weird"],
            None,
            workers=1,
            backend="processes",
            process_spec=ProcessWorkerSpec(
                target=unpicklable_target, on_crash=on_crash
            ),
        )
        assert results[0] == "fine"
        assert results[1][0] == "crashed"
        assert "not serializable" in results[1][2]

    def test_crash_without_handler_is_an_error(self):
        with pytest.raises(CampaignError, match="on_crash"):
            run_fleet(
                [0, 1, 2],
                None,
                workers=1,
                backend="processes",
                process_spec=ProcessWorkerSpec(
                    target=poison_target, context={"poison": 1}
                ),
            )

    def test_fail_fast_stops_dispatching(self):
        jobs = list(range(8))
        results = run_fleet(
            jobs,
            None,
            workers=1,
            backend="processes",
            process_spec=ProcessWorkerSpec(target=double_target, on_crash=on_crash),
            stop_when=lambda result: result == 4,  # job 2's doubled value
        )
        # One worker drains in order: jobs 0..2 ran, 3..7 never
        # dispatched once stop_when tripped.
        assert sorted(results) == [0, 1, 2]
        assert results[2] == 4


class TestBatchedDispatch:
    """``batch_size`` amortizes dispatch round-trips without changing
    any observable result: same result map at every batch size, crash
    attribution still per job (only the unanswered slice of a dead
    worker's batch is lost)."""

    @pytest.mark.parametrize("batch_size", [1, 3, 10, 100])
    def test_results_identical_at_every_batch_size(self, batch_size):
        jobs = list(range(10))
        results = run_fleet(
            jobs,
            None,
            workers=2,
            backend="processes",
            process_spec=ProcessWorkerSpec(target=double_target, on_crash=on_crash),
            batch_size=batch_size,
        )
        assert results == {position: job * 2 for position, job in enumerate(jobs)}

    def test_invalid_batch_size_rejected(self):
        with pytest.raises(CampaignError, match="batch_size"):
            run_fleet(
                [1],
                None,
                backend="processes",
                process_spec=ProcessWorkerSpec(target=double_target, on_crash=on_crash),
                batch_size=0,
            )

    def test_crash_mid_batch_loses_only_unanswered_jobs(self):
        # One worker gets all six jobs in a single batch and dies on
        # job 2.  Jobs 0 and 1 already streamed their results back, so
        # only the unanswered slice (2..5) degrades to on_crash.
        results = run_fleet(
            list(range(6)),
            None,
            workers=1,
            backend="processes",
            process_spec=ProcessWorkerSpec(
                target=poison_target, context={"poison": 2}, on_crash=on_crash
            ),
            batch_size=10,
        )
        assert sorted(results) == [0, 1, 2, 3, 4, 5]
        assert results[0] == 0
        assert results[1] == 2
        for position in (2, 3, 4, 5):
            assert results[position][0] == "crashed"
            assert "exited with code" in results[position][2]

    def test_fail_fast_with_batches_skips_undispatched_batches(self):
        jobs = list(range(9))
        results = run_fleet(
            jobs,
            None,
            workers=1,
            backend="processes",
            process_spec=ProcessWorkerSpec(target=double_target, on_crash=on_crash),
            stop_when=lambda result: result == 2,  # job 1's doubled value
            batch_size=3,
        )
        # The first batch (0..2) was already shipped when stop_when
        # tripped, so it completes; batches two and three never leave
        # the parent.
        assert sorted(results) == [0, 1, 2]


class TestResultTransport:
    """The shm result lane is an optimization, never a new behavior:
    identical results, identical crash attribution (including a worker
    dying *mid-encode*), identical degradation for unpicklable results,
    and no leaked ``/dev/shm`` segments."""

    @staticmethod
    def _shm_segments():
        try:
            return {name for name in os.listdir("/dev/shm") if name.startswith("psm_")}
        except FileNotFoundError:  # pragma: no cover - non-Linux
            return set()

    def test_results_identical_across_transports(self):
        jobs = list(range(12))
        by_transport = {
            transport: run_fleet(
                jobs,
                None,
                workers=2,
                backend="processes",
                process_spec=ProcessWorkerSpec(
                    target=heavy_doc_target, on_crash=on_crash
                ),
                batch_size=3,
                result_transport=transport,
            )
            for transport in ("pickle", "shm")
        }
        assert by_transport["shm"] == by_transport["pickle"]

    @pytest.mark.parametrize("transport", ["pickle", "shm"])
    def test_worker_death_mid_encode_degrades_to_on_crash(self, transport):
        # The target *returns* fine; the worker dies while serializing
        # the result.  Both lanes must surface the same on_crash result
        # and spawn a replacement that finishes the remaining jobs.
        results = run_fleet(
            ["a", "die", "b", "c"],
            None,
            workers=1,
            backend="processes",
            process_spec=ProcessWorkerSpec(
                target=exit_on_encode_target, on_crash=on_crash
            ),
            result_transport=transport,
        )
        assert sorted(results) == [0, 1, 2, 3]
        assert results[1][0] == "crashed"
        assert "exited with code 17" in results[1][2]
        assert results[0] == "a"
        assert results[2] == "b"
        assert results[3] == "c"

    @pytest.mark.parametrize("transport", ["pickle", "shm"])
    def test_worker_crash_parity(self, transport):
        results = run_fleet(
            list(range(6)),
            None,
            workers=2,
            backend="processes",
            process_spec=ProcessWorkerSpec(
                target=poison_target, context={"poison": 2}, on_crash=on_crash
            ),
            result_transport=transport,
        )
        assert sorted(results) == list(range(6))
        assert results[2][0] == "crashed"
        assert "exited with code" in results[2][2]

    @pytest.mark.parametrize("transport", ["pickle", "shm"])
    def test_unpicklable_result_parity(self, transport):
        # shm lane: the codec's pickle fallback raises mid-encode, the
        # worker degrades to the pipe, and the pipe raises the same
        # "not serializable" it always did.
        results = run_fleet(
            ["fine", "weird"],
            None,
            workers=1,
            backend="processes",
            process_spec=ProcessWorkerSpec(
                target=unpicklable_target, on_crash=on_crash
            ),
            result_transport=transport,
        )
        assert results[0] == "fine"
        assert results[1][0] == "crashed"
        assert "not serializable" in results[1][2]

    def test_no_slab_leak_after_clean_run_and_after_crash(self):
        before = self._shm_segments()
        run_fleet(
            list(range(8)),
            None,
            workers=2,
            backend="processes",
            process_spec=ProcessWorkerSpec(target=heavy_doc_target, on_crash=on_crash),
            batch_size=2,
            result_transport="shm",
        )
        run_fleet(
            list(range(4)),
            None,
            workers=1,
            backend="processes",
            process_spec=ProcessWorkerSpec(
                target=poison_target, context={"poison": 1}, on_crash=on_crash
            ),
            result_transport="shm",
        )
        assert self._shm_segments() <= before

    def test_unknown_transport_rejected(self):
        with pytest.raises(CampaignError, match="result transport"):
            run_fleet(
                [1],
                None,
                backend="processes",
                process_spec=ProcessWorkerSpec(target=double_target, on_crash=on_crash),
                result_transport="carrier-pigeon",
            )


class TestProcessPool:
    """The warm pool: workers persist across runs, crashes replace,
    close() is bounded and idempotent."""

    def test_workers_stay_warm_across_runs(self):
        spec = ProcessWorkerSpec(target=echo_target, context={"k": 1}, on_crash=on_crash)
        with ProcessPool(spec, size=2) as pool:
            first = pool.run(["a", "b", "c", "d"])
            first_pids = {result["pid"] for result in first.values()}
            assert pool.workers_alive == 2
            second = pool.run(["e", "f", "g", "h"])
            second_pids = {result["pid"] for result in second.values()}
            # Same interpreters served both waves: no respawn between runs.
            assert first_pids == second_pids
        assert pool.workers_alive == 0

    def test_crashed_worker_replaced_and_pool_stays_usable(self):
        spec = ProcessWorkerSpec(
            target=poison_target, context={"poison": "die"}, on_crash=on_crash
        )
        with ProcessPool(spec, size=1) as pool:
            results = pool.run(["die", 1, 2])
            assert results[0][0] == "crashed"
            assert results[1] == 2
            assert results[2] == 4
            # The replacement worker survives into the next wave.
            assert pool.run([5]) == {0: 10}

    def test_run_after_close_rejected(self):
        pool = ProcessPool(
            ProcessWorkerSpec(target=echo_target, on_crash=on_crash), size=1
        )
        pool.close()
        pool.close()  # idempotent
        with pytest.raises(CampaignError, match="closed"):
            pool.run([1])

    @pytest.mark.parametrize("bad_size, bad_batch", [(0, 1), (1, 0)])
    def test_invalid_knobs_rejected(self, bad_size, bad_batch):
        with pytest.raises(CampaignError):
            ProcessPool(
                ProcessWorkerSpec(target=echo_target, on_crash=on_crash),
                size=bad_size,
                batch_size=bad_batch,
            )

    def test_close_force_kills_a_wedged_worker(self):
        """Shutdown hardening: a worker that never reads the shutdown
        message and ignores SIGTERM still cannot wedge close() — the
        join deadline expires and the escalation ends in kill()."""
        spec = ProcessWorkerSpec(target=stubborn_target, on_crash=on_crash)
        pool = ProcessPool(spec, size=1)
        assert pool.run(["warm"]) == {0: "warm"}
        worker = pool._workers[0]
        # Wedge the worker mid-job so the polite shutdown goes unread.
        worker.send_batch([(0, "wedge")])
        time.sleep(0.5)  # let the child install its SIGTERM ignore
        started = time.monotonic()
        pool.close(timeout=1.0)
        elapsed = time.monotonic() - started
        assert not worker.process.is_alive()
        assert elapsed < 10.0
