"""The process fleet backend: isolation, crash containment, fail-fast.

The thread backend's contract (results keyed by job position, stop_when
fail-fast, execute-never-raises) is pinned by the campaign runner
tests; this module pins what the ``processes`` backend adds on top:

* job payloads and contexts round-trip through spawn workers,
* a worker process that *dies* mid-job costs exactly the jobs it held
  unanswered (one job at the default ``batch_size=1``) — those jobs
  are converted via ``on_crash``, a replacement worker is spawned,
  every other job completes, and the fleet exits (no hang, no silently
  shrunken fleet),
* a target that raises, or a result that cannot be pickled, degrades
  to the same ``on_crash`` path instead of killing the worker,
* fail-fast stops dispatching but lets in-flight jobs finish,
* batched dispatch changes only the wire traffic, never the results,
* a :class:`ProcessPool` keeps its workers warm across runs and its
  ``close()`` force-terminates even a wedged worker within a bounded
  wall-clock budget.

Every target below is module-level: spawn workers import the target by
qualified name, which is the one structural requirement the backend
puts on callers (lambdas and closures are rejected by pickle).
"""

import os
import signal
import time
import types

import pytest

from repro.campaign.fleet import (
    BACKENDS,
    ProcessPool,
    ProcessWorkerSpec,
    _process_worker_main,
    resolve_workers,
    run_fleet,
)
from repro.campaign.shm import SlabError, SlabRef
from repro.errors import CampaignError


def echo_target(worker_id, job, context):
    return {"job": job, "context": context, "pid": os.getpid()}


def double_target(worker_id, job, context):
    return job * 2


def poison_target(worker_id, job, context):
    if job == context["poison"]:
        os._exit(13)  # simulate a segfault/OOM-kill: no exception, no cleanup
    return job * 2


def raising_target(worker_id, job, context):
    if job == "boom":
        raise ValueError("bad job")
    return job


def unpicklable_target(worker_id, job, context):
    if job == "weird":
        return lambda: None  # cannot ship back through the pipe
    return job


def stubborn_target(worker_id, job, context):
    if job == "wedge":
        # Simulate a worker stuck in uninterruptible work: it never
        # returns to the recv loop (so the polite shutdown message goes
        # unread) and shrugs off SIGTERM, leaving kill() as the only out.
        signal.signal(signal.SIGTERM, signal.SIG_IGN)
        time.sleep(300)
    return job


def on_crash(job, detail):
    return ("crashed", job, detail)


def heavy_doc_target(worker_id, job, context):
    """Outcome-dict-shaped payload: exercises the shm codec lane."""
    return {
        "index": job,
        "name": f"job-{job}",
        "status": "pass",
        "latencies": [float(job) + i * 0.5 for i in range(32)],
        "checks": {"latency_p99": {"ok": True, "detail": f"p99 for {job}"}},
    }


def rotating_doc_target(worker_id, job, context):
    """One payload big enough to outgrow the initial 1 MiB slab."""
    if job == "big":
        return {"latencies": [0.5] * 170_000}
    return {"latencies": [float(job)]}


class _ExitOnPickle:
    """Pickling this object kills the interpreter: the worker dies
    *inside* result encoding (codec pickle-fallback and plain pickle
    lane alike), after the target already returned successfully."""

    def __reduce__(self):
        os._exit(17)


def exit_on_encode_target(worker_id, job, context):
    if job == "die":
        return _ExitOnPickle()
    return job


class TestResolveWorkers:
    def test_auto_sizes_to_the_machine(self):
        assert resolve_workers("auto") == max(1, os.cpu_count() or 1)

    def test_integers_and_integer_strings_pass_through(self):
        assert resolve_workers(3) == 3
        assert resolve_workers("3") == 3

    @pytest.mark.parametrize("bad", [0, -1, "none", None])
    def test_invalid_counts_rejected(self, bad):
        with pytest.raises(CampaignError):
            resolve_workers(bad)


class TestRunFleetValidation:
    def test_backends_registry(self):
        assert BACKENDS == ("threads", "processes")

    def test_unknown_backend_rejected(self):
        with pytest.raises(CampaignError, match="unknown fleet backend"):
            run_fleet([1], lambda w, j: j, backend="greenlets")

    def test_processes_requires_spec(self):
        with pytest.raises(CampaignError, match="process_spec"):
            run_fleet([1], None, backend="processes")

    def test_threads_requires_execute(self):
        with pytest.raises(CampaignError, match="execute"):
            run_fleet([1], None, backend="threads")


class TestProcessFleet:
    def test_results_keyed_by_position_with_context(self):
        jobs = ["a", "b", "c"]
        results = run_fleet(
            jobs,
            None,
            workers=2,
            backend="processes",
            process_spec=ProcessWorkerSpec(
                target=echo_target, context={"k": 1}, on_crash=on_crash
            ),
        )
        assert sorted(results) == [0, 1, 2]
        for position, job in enumerate(jobs):
            assert results[position]["job"] == job
            assert results[position]["context"] == {"k": 1}
            # Isolation: the job really ran in another interpreter.
            assert results[position]["pid"] != os.getpid()

    def test_matches_thread_backend_results(self):
        jobs = list(range(7))
        threads = run_fleet(jobs, lambda w, j: j * 2, workers=3)
        procs = run_fleet(
            jobs,
            None,
            workers=3,
            backend="processes",
            process_spec=ProcessWorkerSpec(target=double_target, on_crash=on_crash),
        )
        assert procs == threads

    def test_worker_crash_fails_only_its_job_and_fleet_recovers(self):
        jobs = list(range(6))
        results = run_fleet(
            jobs,
            None,
            workers=2,
            backend="processes",
            process_spec=ProcessWorkerSpec(
                target=poison_target, context={"poison": 2}, on_crash=on_crash
            ),
        )
        # Every job is accounted for: the fleet neither hung nor lost
        # queued work when the worker holding job 2 died.
        assert sorted(results) == jobs
        assert results[2][0] == "crashed"
        assert results[2][1] == 2
        assert "exited with code" in results[2][2]
        for position in (0, 1, 3, 4, 5):
            assert results[position] == position * 2

    def test_raising_target_degrades_to_on_crash(self):
        results = run_fleet(
            ["ok", "boom"],
            None,
            workers=1,
            backend="processes",
            process_spec=ProcessWorkerSpec(target=raising_target, on_crash=on_crash),
        )
        assert results[0] == "ok"
        assert results[1][0] == "crashed"
        assert "ValueError: bad job" in results[1][2]

    def test_unpicklable_result_degrades_to_on_crash(self):
        results = run_fleet(
            ["fine", "weird"],
            None,
            workers=1,
            backend="processes",
            process_spec=ProcessWorkerSpec(
                target=unpicklable_target, on_crash=on_crash
            ),
        )
        assert results[0] == "fine"
        assert results[1][0] == "crashed"
        assert "not serializable" in results[1][2]

    def test_crash_without_handler_is_an_error(self):
        with pytest.raises(CampaignError, match="on_crash"):
            run_fleet(
                [0, 1, 2],
                None,
                workers=1,
                backend="processes",
                process_spec=ProcessWorkerSpec(
                    target=poison_target, context={"poison": 1}
                ),
            )

    def test_fail_fast_stops_dispatching(self):
        jobs = list(range(8))
        results = run_fleet(
            jobs,
            None,
            workers=1,
            backend="processes",
            process_spec=ProcessWorkerSpec(target=double_target, on_crash=on_crash),
            stop_when=lambda result: result == 4,  # job 2's doubled value
        )
        # One worker drains in order: jobs 0..2 ran, 3..7 never
        # dispatched once stop_when tripped.
        assert sorted(results) == [0, 1, 2]
        assert results[2] == 4


class TestBatchedDispatch:
    """``batch_size`` amortizes dispatch round-trips without changing
    any observable result: same result map at every batch size, crash
    attribution still per job (only the unanswered slice of a dead
    worker's batch is lost)."""

    @pytest.mark.parametrize("batch_size", [1, 3, 10, 100])
    def test_results_identical_at_every_batch_size(self, batch_size):
        jobs = list(range(10))
        results = run_fleet(
            jobs,
            None,
            workers=2,
            backend="processes",
            process_spec=ProcessWorkerSpec(target=double_target, on_crash=on_crash),
            batch_size=batch_size,
        )
        assert results == {position: job * 2 for position, job in enumerate(jobs)}

    def test_invalid_batch_size_rejected(self):
        with pytest.raises(CampaignError, match="batch_size"):
            run_fleet(
                [1],
                None,
                backend="processes",
                process_spec=ProcessWorkerSpec(target=double_target, on_crash=on_crash),
                batch_size=0,
            )

    def test_crash_mid_batch_loses_only_unanswered_jobs(self):
        # One worker gets all six jobs in a single batch and dies on
        # job 2.  Jobs 0 and 1 already streamed their results back, so
        # only the unanswered slice (2..5) degrades to on_crash.
        results = run_fleet(
            list(range(6)),
            None,
            workers=1,
            backend="processes",
            process_spec=ProcessWorkerSpec(
                target=poison_target, context={"poison": 2}, on_crash=on_crash
            ),
            batch_size=10,
        )
        assert sorted(results) == [0, 1, 2, 3, 4, 5]
        assert results[0] == 0
        assert results[1] == 2
        for position in (2, 3, 4, 5):
            assert results[position][0] == "crashed"
            assert "exited with code" in results[position][2]

    def test_fail_fast_with_batches_skips_undispatched_batches(self):
        jobs = list(range(9))
        results = run_fleet(
            jobs,
            None,
            workers=1,
            backend="processes",
            process_spec=ProcessWorkerSpec(target=double_target, on_crash=on_crash),
            stop_when=lambda result: result == 2,  # job 1's doubled value
            batch_size=3,
        )
        # The first batch (0..2) was already shipped when stop_when
        # tripped, so it completes; batches two and three never leave
        # the parent.
        assert sorted(results) == [0, 1, 2]


class TestResultTransport:
    """The shm result lane is an optimization, never a new behavior:
    identical results, identical crash attribution (including a worker
    dying *mid-encode*), identical degradation for unpicklable results,
    and no leaked ``/dev/shm`` segments."""

    @staticmethod
    def _shm_segments():
        try:
            return {name for name in os.listdir("/dev/shm") if name.startswith("psm_")}
        except FileNotFoundError:  # pragma: no cover - non-Linux
            return set()

    def test_results_identical_across_transports(self):
        jobs = list(range(12))
        by_transport = {
            transport: run_fleet(
                jobs,
                None,
                workers=2,
                backend="processes",
                process_spec=ProcessWorkerSpec(
                    target=heavy_doc_target, on_crash=on_crash
                ),
                batch_size=3,
                result_transport=transport,
            )
            for transport in ("pickle", "shm")
        }
        assert by_transport["shm"] == by_transport["pickle"]

    @pytest.mark.parametrize("transport", ["pickle", "shm"])
    def test_worker_death_mid_encode_degrades_to_on_crash(self, transport):
        # The target *returns* fine; the worker dies while serializing
        # the result.  Both lanes must surface the same on_crash result
        # and spawn a replacement that finishes the remaining jobs.
        results = run_fleet(
            ["a", "die", "b", "c"],
            None,
            workers=1,
            backend="processes",
            process_spec=ProcessWorkerSpec(
                target=exit_on_encode_target, on_crash=on_crash
            ),
            result_transport=transport,
        )
        assert sorted(results) == [0, 1, 2, 3]
        assert results[1][0] == "crashed"
        assert "exited with code 17" in results[1][2]
        assert results[0] == "a"
        assert results[2] == "b"
        assert results[3] == "c"

    @pytest.mark.parametrize("transport", ["pickle", "shm"])
    def test_worker_crash_parity(self, transport):
        results = run_fleet(
            list(range(6)),
            None,
            workers=2,
            backend="processes",
            process_spec=ProcessWorkerSpec(
                target=poison_target, context={"poison": 2}, on_crash=on_crash
            ),
            result_transport=transport,
        )
        assert sorted(results) == list(range(6))
        assert results[2][0] == "crashed"
        assert "exited with code" in results[2][2]

    @pytest.mark.parametrize("transport", ["pickle", "shm"])
    def test_unpicklable_result_parity(self, transport):
        # shm lane: the codec's pickle fallback raises mid-encode, the
        # worker degrades to the pipe, and the pipe raises the same
        # "not serializable" it always did.
        results = run_fleet(
            ["fine", "weird"],
            None,
            workers=1,
            backend="processes",
            process_spec=ProcessWorkerSpec(
                target=unpicklable_target, on_crash=on_crash
            ),
            result_transport=transport,
        )
        assert results[0] == "fine"
        assert results[1][0] == "crashed"
        assert "not serializable" in results[1][2]

    def test_no_slab_leak_after_clean_run_and_after_crash(self):
        before = self._shm_segments()
        run_fleet(
            list(range(8)),
            None,
            workers=2,
            backend="processes",
            process_spec=ProcessWorkerSpec(target=heavy_doc_target, on_crash=on_crash),
            batch_size=2,
            result_transport="shm",
        )
        run_fleet(
            list(range(4)),
            None,
            workers=1,
            backend="processes",
            process_spec=ProcessWorkerSpec(
                target=poison_target, context={"poison": 1}, on_crash=on_crash
            ),
            result_transport="shm",
        )
        assert self._shm_segments() <= before

    def test_unknown_transport_rejected(self):
        with pytest.raises(CampaignError, match="result transport"):
            run_fleet(
                [1],
                None,
                backend="processes",
                process_spec=ProcessWorkerSpec(target=double_target, on_crash=on_crash),
                result_transport="carrier-pigeon",
            )


class _ScriptedConn:
    """In-process stand-in for a worker's pipe end: scripted batches in,
    sent messages captured out.  shm refs are copied out of the slab at
    send time (the worker unlinks its segments on the way out), decode
    happens later in the test body — outside the worker's exception
    handling, so a codec desync fails the test instead of being
    swallowed by the worker's own degrade path."""

    def __init__(self, batches, reader):
        self._incoming = [list(batch) for batch in batches] + [None]
        self._reader = reader
        self.sent = []

    def recv(self):
        return self._incoming.pop(0)

    def send(self, message):
        key, kind, payload = message
        if kind == "shm":
            view = self._reader.read(payload)
            try:
                payload = bytes(view)
            finally:
                view.release()
        self.sent.append((key, kind, payload))

    def close(self):
        pass


class TestShmDegradeStaysInSync:
    """A slab-write failure degrades exactly one result to the pipe and
    must not desync the codec FIFO pair: the encoder commits its
    shape/string state only after the slab write and header send both
    succeed, so the parent's decoder never misses a message."""

    def test_failed_slab_write_degrades_one_result_only(self, monkeypatch):
        from repro.campaign import shm as shm_module
        from repro.campaign.codec import ResultDecoder

        real_writer = shm_module.SlabWriter

        class FlakyWriter(real_writer):
            failures = [1]  # fail the very first write, then recover

            def write(self, payload):
                if FlakyWriter.failures and FlakyWriter.failures[0]:
                    FlakyWriter.failures[0] -= 1
                    raise OSError("no space left on /dev/shm")
                return super().write(payload)

        monkeypatch.setattr(shm_module, "SlabWriter", FlakyWriter)
        reader = shm_module.SlabReader()
        jobs = [(key, key) for key in range(4)]
        conn = _ScriptedConn([jobs], reader)
        _process_worker_main(conn, heavy_doc_target, None, 0, "shm")

        kinds = {key: kind for key, kind, _ in conn.sent}
        # Job 0's slab write failed: that one result rode the pipe.
        assert kinds == {0: "ok", 1: "shm", 2: "shm", 3: "shm"}
        # Every later shm message decodes exactly — the dropped codec
        # message was never committed, so the stream never skewed.
        decoder = ResultDecoder()
        for key, kind, payload in conn.sent:
            value = decoder.decode(payload) if kind == "shm" else payload
            assert value == heavy_doc_target(0, key, None)
        reader.close()

    def test_failed_header_send_degrades_without_desync(self, monkeypatch):
        from repro.campaign import shm as shm_module
        from repro.campaign.codec import ResultDecoder

        reader = shm_module.SlabReader()
        jobs = [(key, key) for key in range(3)]
        conn = _ScriptedConn([jobs], reader)
        real_send = conn.send
        state = {"failed": False}

        def flaky_send(message):
            # Refuse the first shm header: the worker must fall back to
            # the pipe for that result and keep its codec uncommitted.
            if message[1] == "shm" and not state["failed"]:
                state["failed"] = True
                raise OSError("pipe hiccup")
            real_send(message)

        monkeypatch.setattr(conn, "send", flaky_send)
        _process_worker_main(conn, heavy_doc_target, None, 0, "shm")

        kinds = {key: kind for key, kind, _ in conn.sent}
        assert kinds == {0: "ok", 1: "shm", 2: "shm"}
        decoder = ResultDecoder()
        for key, kind, payload in conn.sent:
            value = decoder.decode(payload) if kind == "shm" else payload
            assert value == heavy_doc_target(0, key, None)
        reader.close()


class TestSlabHousekeeping:
    """Parent-side slab bookkeeping: rotated-away segments are dropped
    from the reader cache mid-run, and a segment is tracked for the
    retire-path unlink even when its very first read fails."""

    def test_rotated_away_segment_dropped_from_parent_cache(self):
        spec = ProcessWorkerSpec(target=rotating_doc_target, on_crash=on_crash)
        with ProcessPool(
            spec, size=1, batch_size=4, result_transport="shm"
        ) as pool:
            results = pool.run([1, "big", 2])
            assert results[0] == {"latencies": [1.0]}
            assert results[1] == {"latencies": [0.5] * 170_000}
            assert results[2] == {"latencies": [2.0]}
            worker = pool._workers[0]
            # The oversized payload rotated the worker onto a bigger
            # slab; once a ref named the successor, the parent forgot
            # its mapping of the original instead of holding the
            # unlinked segment's memory until close().
            assert len(worker.slab_names) == 2
            assert set(pool._reader._segments) == {worker.current_slab}

    def test_first_read_failure_still_tracks_segment_for_cleanup(self):
        pool = ProcessPool(
            ProcessWorkerSpec(target=double_target, on_crash=on_crash),
            size=1,
            result_transport="shm",
        )

        class _TornReader:
            def read(self, ref):
                raise SlabError("torn record")

            def forget(self, name):
                pass

            def close(self):
                pass

        pool._reader = _TornReader()
        worker = types.SimpleNamespace(
            slab_names=set(), current_slab=None, decoder=None
        )
        ref = SlabRef("psm_fleet_test_gone", 1, 0, 8, 0)
        with pytest.raises(SlabError):
            pool._resolve_shm(worker, ref)
        # The attach happened before the read raised: the retire path
        # must know to unlink this segment even though no record from
        # it ever decoded.
        assert ref.name in worker.slab_names
        pool.close()


class TestProcessPool:
    """The warm pool: workers persist across runs, crashes replace,
    close() is bounded and idempotent."""

    def test_workers_stay_warm_across_runs(self):
        spec = ProcessWorkerSpec(target=echo_target, context={"k": 1}, on_crash=on_crash)
        with ProcessPool(spec, size=2) as pool:
            first = pool.run(["a", "b", "c", "d"])
            first_pids = {result["pid"] for result in first.values()}
            assert pool.workers_alive == 2
            second = pool.run(["e", "f", "g", "h"])
            second_pids = {result["pid"] for result in second.values()}
            # Same interpreters served both waves: no respawn between runs.
            assert first_pids == second_pids
        assert pool.workers_alive == 0

    def test_crashed_worker_replaced_and_pool_stays_usable(self):
        spec = ProcessWorkerSpec(
            target=poison_target, context={"poison": "die"}, on_crash=on_crash
        )
        with ProcessPool(spec, size=1) as pool:
            results = pool.run(["die", 1, 2])
            assert results[0][0] == "crashed"
            assert results[1] == 2
            assert results[2] == 4
            # The replacement worker survives into the next wave.
            assert pool.run([5]) == {0: 10}

    def test_run_after_close_rejected(self):
        pool = ProcessPool(
            ProcessWorkerSpec(target=echo_target, on_crash=on_crash), size=1
        )
        pool.close()
        pool.close()  # idempotent
        with pytest.raises(CampaignError, match="closed"):
            pool.run([1])

    @pytest.mark.parametrize("bad_size, bad_batch", [(0, 1), (1, 0)])
    def test_invalid_knobs_rejected(self, bad_size, bad_batch):
        with pytest.raises(CampaignError):
            ProcessPool(
                ProcessWorkerSpec(target=echo_target, on_crash=on_crash),
                size=bad_size,
                batch_size=bad_batch,
            )

    def test_close_force_kills_a_wedged_worker(self):
        """Shutdown hardening: a worker that never reads the shutdown
        message and ignores SIGTERM still cannot wedge close() — the
        join deadline expires and the escalation ends in kill()."""
        spec = ProcessWorkerSpec(target=stubborn_target, on_crash=on_crash)
        pool = ProcessPool(spec, size=1)
        assert pool.run(["warm"]) == {0: "warm"}
        worker = pool._workers[0]
        # Wedge the worker mid-job so the polite shutdown goes unread.
        worker.send_batch([(0, "wedge")])
        time.sleep(0.5)  # let the child install its SIGTERM ignore
        started = time.monotonic()
        pool.close(timeout=1.0)
        elapsed = time.monotonic() - started
        assert not worker.process.is_alive()
        assert elapsed < 10.0
