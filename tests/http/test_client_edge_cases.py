"""Edge cases for the HTTP client's deadline handling."""

import pytest

from repro.errors import RequestTimeoutError
from repro.http import HttpClient, HttpResponse, HttpServer
from repro.http.client import await_with_deadline
from repro.network import Address, Network

from tests.conftest import run_to_completion


@pytest.fixture
def net(sim):
    return Network(sim, default_latency=0.001)


class TestAwaitWithDeadline:
    def test_no_deadline_waits_indefinitely(self, sim):
        def proc(sim):
            ev = sim.timeout(100.0, value="eventually")
            value = yield from await_with_deadline(sim, ev, None)
            return (value, sim.now)

        assert run_to_completion(sim, proc(sim)) == ("eventually", 100.0)

    def test_deadline_already_past_raises_immediately(self, sim):
        def proc(sim):
            yield sim.timeout(5.0)
            ev = sim.event()
            try:
                yield from await_with_deadline(sim, ev, 2.0)  # in the past
            except RequestTimeoutError:
                return sim.now

        assert run_to_completion(sim, proc(sim)) == 5.0

    def test_event_failure_propagates_not_timeout(self, sim):
        def proc(sim):
            ev = sim.event()
            sim.timeout(0.1).add_callback(lambda _e: ev.fail(OSError("broken")))
            try:
                yield from await_with_deadline(sim, ev, sim.now + 10.0)
            except OSError:
                return "event failure"

        assert run_to_completion(sim, proc(sim)) == "event failure"

    def test_exact_tie_resolves_deterministically(self, sim):
        """Event and deadline at the same instant: the event was
        scheduled first, so FIFO ordering lets it win."""

        def proc(sim):
            ev = sim.timeout(1.0, value="photo finish")
            value = yield from await_with_deadline(sim, ev, sim.now + 1.0)
            return value

        assert run_to_completion(sim, proc(sim)) == "photo finish"


class TestClientConnectionHygiene:
    def test_timed_out_call_leaves_no_dangling_reply(self, sim, net):
        """After a timeout, the late server reply is dropped and the
        next call gets its own fresh exchange."""
        host = net.add_host("server")
        calls = {"n": 0}

        def handler(request):
            calls["n"] += 1
            delay = 1.0 if calls["n"] == 1 else 0.001
            yield sim.timeout(delay)
            return HttpResponse(200, body=f"reply-{calls['n']}".encode())

        HttpServer(host, 80, handler).start()
        client = HttpClient(net.add_host("client"))

        def scenario(sim):
            try:
                yield from client.get(Address("server", 80), "/slow", timeout=0.1)
            except RequestTimeoutError:
                pass
            response = yield from client.get(Address("server", 80), "/fast")
            return response.body

        assert run_to_completion(sim, scenario(sim)) == b"reply-2"

    def test_zero_timeout_rejected_by_timeout_event(self, sim, net):
        host = net.add_host("server")
        HttpServer(host, 80, lambda request: iter(())).start()
        client = HttpClient(net.add_host("client"))

        def scenario(sim):
            try:
                yield from client.get(Address("server", 80), "/x", timeout=0.0)
            except RequestTimeoutError:
                return "rejected fast"

        # A 0-second budget expires during the connect phase.
        assert run_to_completion(sim, scenario(sim)) == "rejected fast"
