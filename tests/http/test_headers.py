"""Unit tests for the case-insensitive header map."""

from repro.http import Headers, REQUEST_ID_HEADER


class TestHeaders:
    def test_case_insensitive_get(self):
        headers = Headers({"Content-Type": "text/plain"})
        assert headers["content-type"] == "text/plain"
        assert headers.get("CONTENT-TYPE") == "text/plain"

    def test_original_casing_preserved(self):
        headers = Headers()
        headers["X-Custom-Header"] = "v"
        assert list(headers) == ["X-Custom-Header"]

    def test_overwrite_same_key_different_case(self):
        headers = Headers()
        headers["Accept"] = "a"
        headers["ACCEPT"] = "b"
        assert headers["accept"] == "b"
        assert len(headers) == 1

    def test_contains(self):
        headers = Headers({"A": "1"})
        assert "a" in headers
        assert "b" not in headers
        assert 42 not in headers

    def test_get_default(self):
        assert Headers().get("missing", "dflt") == "dflt"
        assert Headers().get("missing") is None

    def test_setdefault(self):
        headers = Headers({"A": "1"})
        assert headers.setdefault("A", "2") == "1"
        assert headers.setdefault("B", "3") == "3"
        assert headers["B"] == "3"

    def test_delete(self):
        headers = Headers({"A": "1"})
        del headers["a"]
        assert "A" not in headers

    def test_values_coerced_to_str(self):
        headers = Headers()
        headers["Content-Length"] = 42
        assert headers["content-length"] == "42"

    def test_copy_is_independent(self):
        original = Headers({"A": "1"})
        duplicate = original.copy()
        duplicate["A"] = "2"
        assert original["A"] == "1"

    def test_equality_ignores_case(self):
        assert Headers({"A": "1"}) == Headers({"a": "1"})
        assert Headers({"A": "1"}) != Headers({"A": "2"})

    def test_items_order(self):
        headers = Headers([("B", "2"), ("A", "1")])
        assert list(headers.items()) == [("B", "2"), ("A", "1")]

    def test_from_iterable_of_pairs(self):
        headers = Headers([("X", "y")])
        assert headers["x"] == "y"

    def test_request_id_header_constant(self):
        assert REQUEST_ID_HEADER.lower().startswith("x-")
