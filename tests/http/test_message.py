"""Unit tests for HttpRequest / HttpResponse."""

import pytest

from repro.http import HttpRequest, HttpResponse, REQUEST_ID_HEADER


class TestHttpRequest:
    def test_basic_construction(self):
        request = HttpRequest("GET", "/search?q=x")
        assert request.method == "GET"
        assert request.uri == "/search?q=x"
        assert request.body == b""

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            HttpRequest("FETCH", "/x")

    def test_relative_uri_rejected(self):
        with pytest.raises(ValueError):
            HttpRequest("GET", "no-leading-slash")

    def test_str_body_encoded(self):
        request = HttpRequest("POST", "/x", body="hello")
        assert request.body == b"hello"

    def test_dict_headers_coerced(self):
        request = HttpRequest("GET", "/x", headers={"A": "1"})
        assert request.headers["a"] == "1"

    def test_request_id_property(self):
        request = HttpRequest("GET", "/x")
        assert request.request_id is None
        request.request_id = "test-7"
        assert request.request_id == "test-7"
        assert request.headers[REQUEST_ID_HEADER] == "test-7"

    def test_copy_independent(self):
        request = HttpRequest("GET", "/x", body=b"abc")
        request.request_id = "test-1"
        duplicate = request.copy()
        duplicate.request_id = "test-2"
        duplicate.body = b"xyz"
        assert request.request_id == "test-1"
        assert request.body == b"abc"


class TestHttpResponse:
    def test_basic_construction(self):
        response = HttpResponse(200, body=b"ok")
        assert response.ok
        assert not response.is_error
        assert response.reason == "OK"

    def test_error_classification(self):
        assert HttpResponse(503).is_error
        assert HttpResponse(404).is_error
        assert not HttpResponse(301).is_error

    @pytest.mark.parametrize("status", [99, 600, 1000])
    def test_status_range_enforced(self, status):
        with pytest.raises(ValueError):
            HttpResponse(status)

    def test_text_decoding(self):
        assert HttpResponse(200, body="héllo").text() == "héllo"

    def test_error_constructor(self):
        response = HttpResponse.error(503, "down", request_id="test-9")
        assert response.status == 503
        assert response.request_id == "test-9"
        assert b"down" in response.body

    def test_error_constructor_default_body(self):
        assert b"Service Unavailable" in HttpResponse.error(503).body

    def test_copy_independent(self):
        response = HttpResponse(200, body=b"abc")
        duplicate = response.copy()
        duplicate.body = b"changed"
        assert response.body == b"abc"
