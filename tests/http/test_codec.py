"""Unit tests for the HTTP wire codec."""

import pytest

from repro.errors import CodecError
from repro.http import (
    HttpRequest,
    HttpResponse,
    decode,
    decode_request,
    decode_response,
    encode,
    encode_request,
    encode_response,
)


class TestRoundTrip:
    def test_request_round_trip(self):
        request = HttpRequest("POST", "/api/charge", {"X-K": "v"}, body=b"amount=5")
        request.request_id = "test-3"
        decoded = decode_request(encode_request(request))
        assert decoded.method == "POST"
        assert decoded.uri == "/api/charge"
        assert decoded.headers["x-k"] == "v"
        assert decoded.request_id == "test-3"
        assert decoded.body == b"amount=5"

    def test_response_round_trip(self):
        response = HttpResponse(503, {"Retry-After": "30"}, body=b"overloaded")
        decoded = decode_response(encode_response(response))
        assert decoded.status == 503
        assert decoded.headers["retry-after"] == "30"
        assert decoded.body == b"overloaded"

    def test_generic_encode_decode(self):
        request_wire = encode(HttpRequest("GET", "/x"))
        response_wire = encode(HttpResponse(200))
        assert isinstance(decode(request_wire), HttpRequest)
        assert isinstance(decode(response_wire), HttpResponse)

    def test_encode_rejects_unknown_type(self):
        with pytest.raises(TypeError):
            encode("not a message")

    def test_empty_body(self):
        decoded = decode_request(encode_request(HttpRequest("GET", "/")))
        assert decoded.body == b""

    def test_binary_body_preserved(self):
        body = bytes(range(256))
        decoded = decode_response(encode_response(HttpResponse(200, body=body)))
        assert decoded.body == body

    def test_content_length_always_derived(self):
        request = HttpRequest("POST", "/x", {"Content-Length": "999"}, body=b"ab")
        decoded = decode_request(encode_request(request))
        assert decoded.body == b"ab"


class TestMalformedInput:
    def test_no_separator(self):
        with pytest.raises(CodecError):
            decode_request(b"GET /x HTTP/1.1")

    def test_bad_request_line(self):
        with pytest.raises(CodecError):
            decode_request(b"GETx\r\n\r\n")

    def test_wrong_version(self):
        with pytest.raises(CodecError):
            decode_request(b"GET /x HTTP/9.9\r\n\r\n")

    def test_bad_status_line(self):
        with pytest.raises(CodecError):
            decode_response(b"HTTP/1.1 abc OK\r\n\r\n")

    def test_bad_header_line(self):
        with pytest.raises(CodecError):
            decode_request(b"GET /x HTTP/1.1\r\nnocolonhere\r\n\r\n")

    def test_bad_content_length(self):
        with pytest.raises(CodecError):
            decode_request(b"GET /x HTTP/1.1\r\nContent-Length: many\r\n\r\n")

    def test_content_length_exceeds_payload(self):
        with pytest.raises(CodecError):
            decode_request(b"GET /x HTTP/1.1\r\nContent-Length: 100\r\n\r\nshort")

    def test_non_bytes_payload(self):
        with pytest.raises(CodecError):
            decode_request("a string")

    def test_corrupted_status_code_out_of_range(self):
        # A Modify fault can turn "200" into garbage; parsing must fail
        # loudly (the paper's "invalid responses" failure mode).
        wire = encode_response(HttpResponse(200)).replace(b" 200 ", b" 999 ")
        with pytest.raises(CodecError):
            decode_response(wire)
