"""Integration tests: HttpClient against HttpServer over the transport."""

import pytest

from repro.errors import (
    ConnectionRefusedError_,
    RequestTimeoutError,
)
from repro.http import HttpClient, HttpRequest, HttpResponse, HttpServer
from repro.network import Address, Network

from tests.conftest import run_to_completion


@pytest.fixture
def net(sim):
    return Network(sim, default_latency=0.001)


def make_server(sim, net, name="server", port=80, service_time=0.01, status=200):
    host = net.add_host(name)

    def handler(request):
        yield sim.timeout(service_time)
        return HttpResponse(status, body=b"echo:" + request.uri.encode())

    server = HttpServer(host, port, handler).start()
    return host, server


class TestBasicExchange:
    def test_get_round_trip(self, sim, net):
        make_server(sim, net)
        client_host = net.add_host("client")
        client = HttpClient(client_host)

        def scenario(sim):
            response = yield from client.get(Address("server", 80), "/hello")
            return (response.status, response.body)

        assert run_to_completion(sim, scenario(sim)) == (200, b"echo:/hello")

    def test_sequential_requests_same_client(self, sim, net):
        make_server(sim, net)
        client = HttpClient(net.add_host("client"))

        def scenario(sim):
            statuses = []
            for index in range(3):
                response = yield from client.get(Address("server", 80), f"/{index}")
                statuses.append(response.status)
            return statuses

        assert run_to_completion(sim, scenario(sim)) == [200, 200, 200]

    def test_concurrent_clients(self, sim, net):
        make_server(sim, net, service_time=0.05)
        done = []

        def one_client(sim, name):
            client = HttpClient(net.add_host(name))
            response = yield from client.get(Address("server", 80), "/x")
            done.append((name, response.status, sim.now))

        for index in range(4):
            sim.process(one_client(sim, f"c{index}"))
        sim.run()
        assert len(done) == 4
        # All four served concurrently: everyone finishes ~at the same time.
        finish_times = {round(t, 3) for _n, _s, t in done}
        assert len(finish_times) == 1

    def test_request_id_echoed(self, sim, net):
        make_server(sim, net)
        client = HttpClient(net.add_host("client"))

        def scenario(sim):
            request = HttpRequest("GET", "/x")
            request.request_id = "test-55"
            response = yield from client.call(Address("server", 80), request)
            return response.request_id

        assert run_to_completion(sim, scenario(sim)) == "test-55"

    def test_server_counts_requests(self, sim, net):
        _host, server = make_server(sim, net)
        client = HttpClient(net.add_host("client"))

        def scenario(sim):
            for _ in range(5):
                yield from client.get(Address("server", 80), "/x")

        run_to_completion(sim, scenario(sim))
        assert server.requests_served == 5


class TestTimeouts:
    def test_per_call_timeout(self, sim, net):
        make_server(sim, net, service_time=1.0)
        client = HttpClient(net.add_host("client"))

        def scenario(sim):
            try:
                yield from client.get(Address("server", 80), "/slow", timeout=0.1)
            except RequestTimeoutError:
                return sim.now

        assert run_to_completion(sim, scenario(sim)) == pytest.approx(0.1)

    def test_default_timeout_from_client(self, sim, net):
        make_server(sim, net, service_time=1.0)
        client = HttpClient(net.add_host("client"), default_timeout=0.2)

        def scenario(sim):
            try:
                yield from client.get(Address("server", 80), "/slow")
            except RequestTimeoutError:
                return sim.now

        assert run_to_completion(sim, scenario(sim)) == pytest.approx(0.2)

    def test_no_timeout_waits_forever_shape(self, sim, net):
        """Without a timeout the client waits out the full service time
        — the Fig 5 anti-pattern."""
        make_server(sim, net, service_time=3.0)
        client = HttpClient(net.add_host("client"))

        def scenario(sim):
            response = yield from client.get(Address("server", 80), "/slow")
            return (response.status, sim.now)

        status, now = run_to_completion(sim, scenario(sim))
        assert status == 200
        assert now == pytest.approx(3.004)

    def test_timeout_covers_connect_phase(self, sim, net):
        net.add_host("server")  # host exists, nothing listening... use partition
        client_host = net.add_host("client")
        net.partition("client", "server")
        client = HttpClient(client_host)

        def scenario(sim):
            try:
                yield from client.get(Address("server", 80), "/x", timeout=0.5)
            except RequestTimeoutError:
                return sim.now

        assert run_to_completion(sim, scenario(sim)) == pytest.approx(0.5)


class TestErrorPaths:
    def test_refused_connection_surfaces(self, sim, net):
        net.add_host("server")
        client = HttpClient(net.add_host("client"))

        def scenario(sim):
            try:
                yield from client.get(Address("server", 80), "/x")
            except ConnectionRefusedError_:
                return "refused"

        assert run_to_completion(sim, scenario(sim)) == "refused"

    def test_handler_exception_becomes_500(self, sim, net):
        host = net.add_host("server")

        def broken_handler(request):
            yield sim.timeout(0.001)
            raise RuntimeError("bug in business logic")

        HttpServer(host, 80, broken_handler).start()
        client = HttpClient(net.add_host("client"))

        def scenario(sim):
            response = yield from client.get(Address("server", 80), "/x")
            return (response.status, b"RuntimeError" in response.body)

        assert run_to_completion(sim, scenario(sim)) == (500, True)

    def test_handler_returning_wrong_type_becomes_500(self, sim, net):
        host = net.add_host("server")

        def bad_handler(request):
            yield sim.timeout(0.001)
            return "not a response"

        HttpServer(host, 80, bad_handler).start()
        client = HttpClient(net.add_host("client"))

        def scenario(sim):
            response = yield from client.get(Address("server", 80), "/x")
            return response.status

        assert run_to_completion(sim, scenario(sim)) == 500

    def test_malformed_request_becomes_400(self, sim, net):
        make_server(sim, net)

        def scenario(sim):
            host = net.add_host("rawclient")
            conn = yield host.connect(Address("server", 80))
            conn.send(b"garbage that is not HTTP\r\n\r\n")
            payload = yield conn.recv()
            return payload.split(b" ")[1]

        assert run_to_completion(sim, scenario(sim)) == b"400"

    def test_server_stop_refuses_new_connections(self, sim, net):
        _host, server = make_server(sim, net)
        client = HttpClient(net.add_host("client"))

        def scenario(sim):
            first = yield from client.get(Address("server", 80), "/x")
            server.stop()
            try:
                yield from client.get(Address("server", 80), "/x")
            except ConnectionRefusedError_:
                return first.status

        assert run_to_completion(sim, scenario(sim)) == 200
