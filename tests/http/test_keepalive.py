"""Keep-alive behaviour: several exchanges over one connection."""

import pytest

from repro.http import HttpResponse, HttpServer, decode_response, encode_request, HttpRequest
from repro.network import Address, Network

from tests.conftest import run_to_completion


@pytest.fixture
def net(sim):
    return Network(sim, default_latency=0.001)


class TestKeepAlive:
    def test_sequential_requests_one_connection(self, sim, net):
        host = net.add_host("server")
        hits = []

        def handler(request):
            yield sim.timeout(0.001)
            hits.append(request.uri)
            return HttpResponse(200, body=request.uri.encode())

        HttpServer(host, 80, handler).start()
        client_host = net.add_host("client")

        def scenario(sim):
            conn = yield client_host.connect(Address("server", 80))
            bodies = []
            for index in range(3):
                conn.send(encode_request(HttpRequest("GET", f"/req{index}")))
                payload = yield conn.recv()
                bodies.append(decode_response(payload).body)
            conn.close()
            return bodies

        bodies = run_to_completion(sim, scenario(sim))
        assert bodies == [b"/req0", b"/req1", b"/req2"]
        assert hits == ["/req0", "/req1", "/req2"]

    def test_interleaved_connections_do_not_cross_streams(self, sim, net):
        host = net.add_host("server")

        def handler(request):
            # Slow down the first stream so replies would cross if the
            # server mixed connections up.
            delay = 0.05 if request.uri == "/slow" else 0.001
            yield sim.timeout(delay)
            return HttpResponse(200, body=request.uri.encode())

        HttpServer(host, 80, handler).start()
        client_host = net.add_host("client")
        results = {}

        def one(sim, uri):
            conn = yield client_host.connect(Address("server", 80))
            conn.send(encode_request(HttpRequest("GET", uri)))
            payload = yield conn.recv()
            results[uri] = decode_response(payload).body
            conn.close()

        sim.process(one(sim, "/slow"))
        sim.process(one(sim, "/fast"))
        sim.run()
        assert results == {"/slow": b"/slow", "/fast": b"/fast"}

    def test_pipelined_requests_answered_in_order(self, sim, net):
        """Two requests sent before reading any reply: the per-connection
        server loop answers them strictly in order."""
        host = net.add_host("server")

        def handler(request):
            yield sim.timeout(0.01)
            return HttpResponse(200, body=request.uri.encode())

        HttpServer(host, 80, handler).start()
        client_host = net.add_host("client")

        def scenario(sim):
            conn = yield client_host.connect(Address("server", 80))
            conn.send(encode_request(HttpRequest("GET", "/first")))
            conn.send(encode_request(HttpRequest("GET", "/second")))
            replies = []
            for _ in range(2):
                payload = yield conn.recv()
                replies.append(decode_response(payload).body)
            conn.close()
            return replies

        assert run_to_completion(sim, scenario(sim)) == [b"/first", b"/second"]
