"""Unit tests for request-ID generation and propagation."""

from repro.http import HttpRequest, REQUEST_ID_HEADER
from repro.tracing import (
    RequestIdGenerator,
    TEST_ID_PREFIX,
    is_test_request_id,
    propagate,
)


class TestRequestIdGenerator:
    def test_ids_are_unique_and_sequential(self):
        ids = RequestIdGenerator()
        assert ids.next_id() == "test-1"
        assert ids.next_id() == "test-2"

    def test_custom_prefix(self):
        ids = RequestIdGenerator(prefix="user-")
        assert ids.next_id() == "user-1"

    def test_custom_start(self):
        ids = RequestIdGenerator(start=100)
        assert ids.next_id() == "test-100"

    def test_independent_generators(self):
        a = RequestIdGenerator()
        b = RequestIdGenerator()
        assert a.next_id() == b.next_id() == "test-1"


class TestClassification:
    def test_test_traffic_detected(self):
        assert is_test_request_id("test-42")

    def test_production_traffic_not_test(self):
        assert not is_test_request_id("user-42")

    def test_none_is_not_test(self):
        assert not is_test_request_id(None)

    def test_prefix_constant_matches_paper(self):
        assert TEST_ID_PREFIX == "test-"


class TestPropagation:
    def test_id_copied_downstream(self):
        incoming = HttpRequest("GET", "/in")
        incoming.request_id = "test-9"
        outgoing = HttpRequest("GET", "/out")
        returned = propagate(incoming, outgoing)
        assert returned is outgoing
        assert outgoing.request_id == "test-9"

    def test_untagged_incoming_leaves_outgoing_untouched(self):
        incoming = HttpRequest("GET", "/in")
        outgoing = HttpRequest("GET", "/out")
        propagate(incoming, outgoing)
        assert REQUEST_ID_HEADER not in outgoing.headers
