"""Trace-header propagation through retry and timeout wrappers.

The retry loop re-issues a *copy* of the original request for each
attempt; if that copy dropped the trace headers, retried attempts
would appear in the log as anonymous traffic — unattributable to the
user request that caused them and invisible to trace reconstruction.
These tests pin the contract: the request ID survives every re-issued
attempt, each attempt becomes its own span, and all attempt spans
share the caller's span as their parent.
"""

from repro.agent.rules import abort, delay
from repro.core import Gremlin
from repro.http import HttpRequest, HttpResponse, REQUEST_ID_HEADER, SPAN_ID_HEADER
from repro.loadgen import ClosedLoopLoad
from repro.logstore import ObservationKind, Query
from repro.microservice import Application, PolicySpec, ServiceDefinition
from repro.tracing import SpanIdGenerator, propagate


def build_retry_app(max_retries=2, timeout=None):
    """front -> backend with a retrying (optionally timing-out) client."""

    def front_handler(ctx, request):
        yield from ctx.work()
        reply = yield from ctx.call(
            "backend", HttpRequest("GET", "/data"), parent=request
        )
        return HttpResponse(reply.status)

    def backend_handler(ctx, request):
        yield from ctx.work()
        return HttpResponse(200, body=b"ok")

    app = Application("retry-propagation")
    app.add_service(
        ServiceDefinition(
            "front",
            handler=front_handler,
            dependencies={
                "backend": PolicySpec(timeout=timeout, max_retries=max_retries)
            },
        )
    )
    app.add_service(ServiceDefinition("backend", handler=backend_handler))
    return app


def edge_requests(deployment, request_id):
    """The front->backend request records for one request ID, in order."""
    deployment.pipeline.flush()
    records = deployment.store.search(
        Query(src="front", dst="backend", kind=ObservationKind.REQUEST)
    )
    return [r for r in records if r.request_id == request_id]


class TestRetryPropagation:
    def test_request_id_survives_reissued_attempts(self):
        deployment = build_retry_app(max_retries=2).deploy(seed=7)
        source = deployment.add_traffic_source("front")
        gremlin = Gremlin(deployment)
        # Abort every front->backend message: all 3 attempts fail.
        gremlin.orchestrator.apply(
            [abort(src="front", dst="backend", error=503)]
        )
        ClosedLoopLoad(num_requests=1).run(source)
        attempts = edge_requests(deployment, "test-1")
        assert len(attempts) == 3  # initial + 2 retries
        assert all(r.request_id == "test-1" for r in attempts)

    def test_each_attempt_is_its_own_span_with_shared_parent(self):
        deployment = build_retry_app(max_retries=2).deploy(seed=7)
        source = deployment.add_traffic_source("front")
        gremlin = Gremlin(deployment)
        gremlin.orchestrator.apply(
            [abort(src="front", dst="backend", error=503)]
        )
        ClosedLoopLoad(num_requests=1).run(source)
        attempts = edge_requests(deployment, "test-1")
        span_ids = [r.span_id for r in attempts]
        assert len(set(span_ids)) == 3, "every retry attempt gets a fresh span"
        parents = {r.parent_span for r in attempts}
        assert len(parents) == 1, "all attempts share the caller's span as parent"
        # The shared parent is the user->front span for the same request.
        deployment.pipeline.flush()
        entry = [
            r
            for r in deployment.store.search(
                Query(src="user", dst="front", kind=ObservationKind.REQUEST)
            )
            if r.request_id == "test-1"
        ]
        assert len(entry) == 1
        assert parents == {entry[0].span_id}

    def test_timeout_reissue_preserves_trace_headers(self):
        deployment = build_retry_app(max_retries=1, timeout=0.05).deploy(seed=7)
        source = deployment.add_traffic_source("front")
        gremlin = Gremlin(deployment)
        # Delay far beyond the attempt timeout: the first attempt times
        # out client-side and the wrapper re-issues the call.
        gremlin.orchestrator.apply(
            [delay(src="front", dst="backend", interval=1.0)]
        )
        ClosedLoopLoad(num_requests=1, think_time=0.0).run(source)
        attempts = edge_requests(deployment, "test-1")
        assert len(attempts) == 2  # timed-out initial + 1 retry
        assert all(r.request_id == "test-1" for r in attempts)
        assert len({r.span_id for r in attempts}) == 2
        assert len({r.parent_span for r in attempts}) == 1


class TestPropagateUnit:
    def test_copies_both_trace_headers(self):
        incoming = HttpRequest("GET", "/in")
        incoming.headers[REQUEST_ID_HEADER] = "test-5"
        incoming.headers[SPAN_ID_HEADER] = "front-0#9"
        outgoing = propagate(incoming, HttpRequest("GET", "/out"))
        assert outgoing.headers[REQUEST_ID_HEADER] == "test-5"
        assert outgoing.headers[SPAN_ID_HEADER] == "front-0#9"

    def test_request_copy_preserves_trace_headers(self):
        # The retry loop re-issues request.copy(); a copy that dropped
        # headers would break attempt-level attribution.
        request = HttpRequest("GET", "/data")
        request.headers[REQUEST_ID_HEADER] = "test-5"
        request.headers[SPAN_ID_HEADER] = "front-0#9"
        duplicate = request.copy()
        assert duplicate.headers[REQUEST_ID_HEADER] == "test-5"
        assert duplicate.headers[SPAN_ID_HEADER] == "front-0#9"

    def test_span_ids_are_scoped_and_unique(self):
        a = SpanIdGenerator("svc-1-0")
        b = SpanIdGenerator("svc-2-0")
        assert a.next_id() == "svc-1-0#1"
        assert a.next_id() == "svc-1-0#2"
        assert b.next_id() == "svc-2-0#1"
