"""Robustness under observation loss: checks degrade safely.

If the log-shipping pipeline drops records (lossy collector), the
assertion checker sees fewer observations.  The safety property: a
check must degrade toward *inconclusive* ("fault not exercised") or
keep its verdict — never flip a FAIL into a PASS merely because the
evidence vanished in transit.
"""

import pytest

from repro.apps import build_twotier
from repro.core import Disconnect, Gremlin, HasBoundedRetries
from repro.loadgen import ClosedLoopLoad
from repro.logstore import EventStore, LogPipeline
from repro.microservice import PolicySpec
from repro.simulation import Simulator

from tests.logstore.test_record import make_record


class TestPipelineLoss:
    def test_loss_probability_validated(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            LogPipeline(sim, EventStore(), loss_probability=1.0)
        with pytest.raises(ValueError):
            LogPipeline(sim, EventStore(), loss_probability=-0.1)

    def test_loss_counter(self):
        sim = Simulator(seed=5)
        store = EventStore()
        pipeline = LogPipeline(sim, store, loss_probability=0.5)
        for _ in range(200):
            pipeline.emit(make_record())
        assert pipeline.emitted == 200
        assert 60 <= pipeline.lost <= 140
        assert len(store) == 200 - pipeline.lost

    def test_zero_loss_is_lossless(self):
        sim = Simulator()
        store = EventStore()
        pipeline = LogPipeline(sim, store)
        for _ in range(50):
            pipeline.emit(make_record())
        assert pipeline.lost == 0
        assert len(store) == 50

    def test_loss_is_deterministic_per_seed(self):
        def lost(seed):
            sim = Simulator(seed=seed)
            pipeline = LogPipeline(sim, EventStore(), loss_probability=0.3)
            for _ in range(100):
                pipeline.emit(make_record())
            return pipeline.lost

        assert lost(9) == lost(9)


class TestChecksDegradeSafely:
    def run_unbounded_retry_case(self, loss):
        """A client with a genuine retry-storm bug, observed through a
        pipeline losing ``loss`` of all records."""
        deployment = build_twotier(
            policy=PolicySpec(timeout=1.0, max_retries=50, retry_backoff_base=0.001,
                              retry_backoff_factor=1.0)
        ).deploy(seed=181, log_loss_probability=loss)
        source = deployment.add_traffic_source("ServiceA")
        gremlin = Gremlin(deployment)
        gremlin.inject(Disconnect("ServiceA", "ServiceB"))
        ClosedLoopLoad(num_requests=1).run(source)
        return gremlin.check(HasBoundedRetries("ServiceA", "ServiceB", 5, window="30s"))

    def test_bug_detected_without_loss(self):
        result = self.run_unbounded_retry_case(loss=0.0)
        assert not result.passed and not result.inconclusive

    def test_moderate_loss_still_detects_the_storm(self):
        # Half the evidence gone; 51 wire requests leave plenty.
        result = self.run_unbounded_retry_case(loss=0.5)
        assert not result.passed and not result.inconclusive

    def test_extreme_loss_goes_inconclusive_not_pass(self):
        # With ~99% of records lost the trigger failures are no longer
        # observable.  The check must say "fault not exercised", not
        # certify the pattern.
        result = self.run_unbounded_retry_case(loss=0.99)
        assert not result.passed
        if result.inconclusive:
            assert "observed" in result.detail
