"""The paper's fault model (Section 3.1), observable by observable.

    "From the perspective of a microservice making an API call,
    failures in a remote microservice or the network manifests in the
    form of delayed responses, error responses (e.g., HTTP 404, HTTP
    503), invalid responses, connection timeouts and failure to
    establish the connection."

One test per manifestation: each is staged with a Gremlin primitive
(or the transport, for the two connection-level cases) and asserted
from the caller's perspective — the matrix that justifies the claim
that Gremlin's three primitives cover the fault model.
"""

import pytest

from repro.agent import TCP_RESET, abort, delay, modify
from repro.apps import build_twotier
from repro.errors import (
    CodecError,
    ConnectionRefusedError_,
    ConnectionResetError_,
    ConnectionTimeoutError,
    RequestTimeoutError,
)
from repro.http import HttpRequest
from repro.microservice import PolicySpec


def deploy(policy=None, seed=211):
    deployment = build_twotier(policy=policy or PolicySpec()).deploy(seed=seed)
    source = deployment.add_traffic_source("ServiceA")
    return deployment, source


def raw_call(deployment, instance, rid="test-1", timeout=None):
    """One call from ServiceA's own dependency client, raw outcome."""
    sim = deployment.sim
    box = {}

    def scenario(sim):
        request = HttpRequest("GET", "/probe")
        request.request_id = rid
        start = sim.now
        try:
            response = yield from instance.clients["ServiceB"].call(request)
            box["outcome"] = response.status
        except Exception as exc:  # noqa: BLE001
            box["outcome"] = type(exc)
        box["elapsed"] = sim.now - start

    sim.process(scenario(sim))
    sim.run()
    return box


class TestFaultModelMatrix:
    def test_delayed_responses(self):
        """Manifestation 1: delayed responses (Delay primitive)."""
        deployment, _source = deploy()
        instance = deployment.instances_of("ServiceA")[0]
        deployment.agents_of("ServiceA")[0].install_rule(
            delay("ServiceA", "ServiceB", interval=1.5)
        )
        box = raw_call(deployment, instance)
        assert box["outcome"] == 200
        assert box["elapsed"] == pytest.approx(1.5, abs=0.1)

    @pytest.mark.parametrize("status", [404, 503])
    def test_error_responses(self, status):
        """Manifestation 2: error responses (Abort with an HTTP code)."""
        deployment, _source = deploy()
        instance = deployment.instances_of("ServiceA")[0]
        deployment.agents_of("ServiceA")[0].install_rule(
            abort("ServiceA", "ServiceB", error=status)
        )
        box = raw_call(deployment, instance)
        assert box["outcome"] == status

    def test_invalid_responses(self):
        """Manifestation 3: invalid responses (Modify corrupting the
        payload the caller then fails to interpret)."""
        deployment, _source = deploy()
        instance = deployment.instances_of("ServiceA")[0]
        # Corrupt the reply body so the caller's parse of its expected
        # key=value shape fails (checked at the application layer here:
        # the body no longer contains what the service sent).
        deployment.agents_of("ServiceA")[0].install_rule(
            modify("ServiceA", "ServiceB", pattern="ok", replace_bytes="\x00garbage\x00")
        )
        sim = deployment.sim
        box = {}

        def scenario(sim):
            request = HttpRequest("GET", "/probe")
            request.request_id = "test-1"
            response = yield from instance.clients["ServiceB"].call(request)
            box["body"] = response.body

        sim.process(scenario(sim))
        sim.run()
        assert b"\x00garbage\x00" in box["body"]
        assert b"ok" not in box["body"]

    def test_connection_reset(self):
        """Manifestation 4a: abrupt connection termination
        (Abort with Error=-1 — the paper's crash emulation)."""
        deployment, _source = deploy()
        instance = deployment.instances_of("ServiceA")[0]
        deployment.agents_of("ServiceA")[0].install_rule(
            abort("ServiceA", "ServiceB", error=TCP_RESET)
        )
        box = raw_call(deployment, instance)
        assert box["outcome"] is ConnectionResetError_

    def test_connection_timeout(self):
        """Manifestation 4b: connection timeout (network partition —
        SYN blackholed; the caller's own deadline is the only signal)."""
        deployment, _source = deploy(policy=PolicySpec(timeout=0.5))
        instance = deployment.instances_of("ServiceA")[0]
        host = instance.host
        for target in deployment.instances_of("ServiceB"):
            deployment.network.partition(host.name, target.host.name)
        box = raw_call(deployment, instance)
        assert box["outcome"] is RequestTimeoutError
        assert box["elapsed"] == pytest.approx(0.5, abs=0.05)

    def test_failure_to_establish_connection(self):
        """Manifestation 5: connection refused (the destination process
        is gone — here: really stopped, not emulated)."""
        deployment, _source = deploy()
        instance = deployment.instances_of("ServiceA")[0]
        for target in deployment.instances_of("ServiceB"):
            target.stop()
        box = raw_call(deployment, instance)
        # The sidecar translates upstream refusal into 503 (Envoy-style).
        assert box["outcome"] == 503
