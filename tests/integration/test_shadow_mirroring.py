"""Shadow-traffic mirroring: production request shapes, zero user impact.

Paper Section 1 positions Gremlin for "production or production-like
environments (e.g., shadow deployments)".  The agent's ``add_mirror``
duplicates production flows onto a destination's shadow (canary) pool
under fresh ``shadow-*`` request IDs, so faults scoped to those IDs
exercise real traffic shapes without users noticing.
"""

import pytest

from repro.agent import abort, delay
from repro.errors import OrchestrationError
from repro.loadgen import ClosedLoopLoad
from repro.logstore import Query
from repro.microservice import Application, PolicySpec, ServiceDefinition, fanout_handler
from repro.tracing import RequestIdGenerator


def build(shadow_instances=1, mirror_fraction=1.0, seed=201):
    app = Application("shadow-demo")
    app.add_service(
        ServiceDefinition(
            "ServiceA",
            handler=fanout_handler(["ServiceB"]),
            dependencies={"ServiceB": PolicySpec(timeout=1.0)},
        )
    )
    app.add_service(
        ServiceDefinition("ServiceB", canary_instances=shadow_instances)
    )
    deployment = app.deploy(seed=seed)
    source = deployment.add_traffic_source("ServiceA")
    agent = deployment.agents_of("ServiceA")[0]
    agent.add_mirror("ServiceB", fraction=mirror_fraction)
    return deployment, source, agent


def production_load(source, n=5):
    load = ClosedLoopLoad(num_requests=n, ids=RequestIdGenerator(prefix="user-"))
    load.run(source)
    return load.result


class TestMirroring:
    def test_production_requests_duplicated_to_shadow(self):
        deployment, source, agent = build()
        result = production_load(source)
        assert result.success_rate == 1.0
        production = deployment.production_instances_of("ServiceB")[0]
        shadow = deployment.canaries_of("ServiceB")[0]
        assert production.server.requests_served == 5
        assert shadow.server.requests_served == 5
        assert agent.mirrored == 5

    def test_shadow_observations_logged_with_shadow_ids(self):
        deployment, source, _agent = build()
        production_load(source, n=3)
        shadow_records = deployment.store.search(
            Query(kind="request", src="ServiceA", dst="ServiceB", id_pattern="shadow-*")
        )
        assert len(shadow_records) == 3
        assert all(record.request_id.startswith("shadow-user-") for record in shadow_records)

    def test_test_traffic_not_mirrored(self):
        deployment, source, agent = build()
        ClosedLoopLoad(num_requests=4).run(source)  # test-* IDs -> canary pool
        assert agent.mirrored == 0

    def test_faults_on_shadow_ids_spare_production(self):
        deployment, source, agent = build()
        agent.install_rule(abort("ServiceA", "ServiceB", error=503, pattern="shadow-*"))
        result = production_load(source)
        # Users unaffected; the mirrored copies were aborted pre-shadow.
        assert result.success_rate == 1.0
        shadow = deployment.canaries_of("ServiceB")[0]
        assert shadow.server.requests_served == 0
        aborted = deployment.store.search(
            Query(kind="request", id_pattern="shadow-*", with_faults_only=True)
        )
        assert len(aborted) == 5

    def test_shadow_delay_does_not_slow_users(self):
        deployment, source, agent = build()
        agent.install_rule(delay("ServiceA", "ServiceB", interval=2.0, pattern="shadow-*"))
        result = production_load(source)
        assert max(result.latencies) < 0.5  # users never wait on the shadow
        shadow = deployment.canaries_of("ServiceB")[0]
        assert shadow.server.requests_served == 5  # delivered, late

    def test_fraction_sampling(self):
        deployment, source, agent = build(mirror_fraction=0.5, seed=202)
        production_load(source, n=40)
        assert 10 <= agent.mirrored <= 30

    def test_no_shadow_pool_skips_quietly(self):
        deployment, source, agent = build(shadow_instances=0)
        result = production_load(source)
        assert result.success_rate == 1.0
        assert agent.mirrored == 0
        assert agent.mirror_skipped == 5

    def test_mirror_requires_route(self):
        deployment, _source, agent = build()
        with pytest.raises(OrchestrationError):
            agent.add_mirror("Unknown")

    def test_fraction_validated(self):
        deployment, _source, agent = build()
        with pytest.raises(OrchestrationError):
            agent.add_mirror("ServiceB", fraction=0.0)

    def test_remove_mirror(self):
        deployment, source, agent = build()
        agent.remove_mirror("ServiceB")
        production_load(source)
        assert agent.mirrored == 0

    def test_shadow_service_failure_invisible_to_users(self):
        deployment, source, _agent = build()
        for shadow in deployment.canaries_of("ServiceB"):
            shadow.stop()  # the shadow copy crashes outright
        result = production_load(source)
        assert result.success_rate == 1.0
        errors = deployment.store.search(Query(id_pattern="shadow-*", kind="reply"))
        assert all(record.error == "shadow-error" for record in errors)
