"""Gremlin assertions applied to publish-subscribe flows.

Observation O2 of the paper: pub-sub is just another standard
interaction pattern over the network, so the same fault primitives and
pattern checks apply.  These tests verify that claim end to end against
the :mod:`repro.bus` broker.
"""

import pytest

from repro.bus import BrokerConfig, broker_definition, publish
from repro.core import Crash, Gremlin, HasBoundedRetries, Hang, HasTimeouts
from repro.http import HttpResponse
from repro.loadgen import ClosedLoopLoad
from repro.microservice import Application, PolicySpec, ServiceDefinition


def build(max_redeliveries=3, redelivery_delay=0.2):
    app = Application("pubsub-gremlin")

    def publisher_handler(ctx, request):
        yield from ctx.work()
        response = yield from publish(ctx, "bus", "events", b"e", parent=request)
        return HttpResponse(response.status)

    def consumer_handler(ctx, request):
        yield from ctx.work()
        ctx.state["n"] = ctx.state.get("n", 0) + 1
        return HttpResponse(200)

    app.add_service(
        ServiceDefinition(
            "producer",
            handler=publisher_handler,
            dependencies={"bus": PolicySpec(timeout=2.0)},
        )
    )
    app.add_service(
        broker_definition(
            "bus",
            topics={"events": ["consumer"]},
            subscriber_policy=PolicySpec(timeout=0.5),
            config=BrokerConfig(
                max_redeliveries=max_redeliveries, redelivery_delay=redelivery_delay
            ),
        )
    )
    app.add_service(ServiceDefinition("consumer", handler=consumer_handler))
    deployment = app.deploy(seed=171)
    source = deployment.add_traffic_source("producer")
    return deployment, source, Gremlin(deployment)


class TestChecksOnBrokerEdges:
    def test_redelivery_bound_validated_as_bounded_retries(self):
        """The broker's per-message redelivery budget is observable as
        the bounded-retry pattern on the bus -> consumer edge."""
        deployment, source, gremlin = build(max_redeliveries=3)
        gremlin.inject(Crash("consumer"))
        ClosedLoopLoad(num_requests=2).run(source)
        # 2 messages x (1 + 3 redeliveries) = 8 pushes total; after the
        # first 5 failures, only 3 more pushes may follow.
        result = gremlin.check(
            HasBoundedRetries(
                "bus", "consumer", max_tries=3, failure_status=None, window="1min"
            )
        )
        assert result.passed, result.data.get("trace")

    def test_unbounded_redelivery_detected(self):
        deployment, source, gremlin = build(max_redeliveries=None, redelivery_delay=0.05)
        sim = deployment.sim
        gremlin.inject(Crash("consumer"))
        load = ClosedLoopLoad(num_requests=2)
        sim.process(load.driver(source))
        sim.run(until=10.0)  # bounded run: the retry loop never stops
        result = gremlin.check(
            HasBoundedRetries(
                "bus", "consumer", max_tries=5, failure_status=None, window="8s"
            )
        )
        assert not result.passed
        assert not result.inconclusive

    def test_broker_answers_publishers_quickly_despite_dead_consumer(self):
        deployment, source, gremlin = build()
        gremlin.inject(Crash("consumer"))
        ClosedLoopLoad(num_requests=5).run(source)
        # Publishes are acked before delivery (fire-and-forget), so the
        # bus keeps its latency bound even while the consumer is dead.
        result = gremlin.check(HasTimeouts("bus", "500ms"))
        assert result.passed, result.detail

    def test_hang_on_publish_edge_blocks_producer(self):
        deployment, source, gremlin = build()
        gremlin.inject(Hang("bus", interval="1h"))
        load = ClosedLoopLoad(num_requests=2)
        load.run(source)
        # Producer's 2s timeout fires; its edge replies degrade.
        assert all(status in (503, 500) or status is None
                   for status in load.result.statuses)
