"""Scale smoke tests: deployments beyond the paper's largest (31).

The Fig 7 benchmark stops at 31 services, like the paper; these tests
push to 63 and exercise a full recipe there, guarding against
accidental O(n^2) blowups in deployment assembly, orchestration or the
assertion checker.
"""

import pytest

from repro.apps import TREE_ROOT, build_tree_app, tree_service_names
from repro.core import DelayCalls, Gremlin, HasTimeouts, Recipe
from repro.loadgen import ClosedLoopLoad
from repro.microservice import PolicySpec


class TestLargeTree:
    def test_63_service_deployment_and_recipe(self):
        depth = 5  # 63 services
        deployment = build_tree_app(depth, client_policy=PolicySpec(timeout=30.0)).deploy(
            seed=231
        )
        names = tree_service_names(depth)
        assert len(deployment.registry) == 63
        assert len(deployment.agents) == 31  # internal nodes only

        source = deployment.add_traffic_source(TREE_ROOT)
        gremlin = Gremlin(deployment)
        load = ClosedLoopLoad(num_requests=20)
        recipe = Recipe(
            name="scale-63",
            scenarios=[
                DelayCalls(caller, callee, interval="2ms")
                for caller, callee in deployment.graph.edges()
                if caller in names and callee in names
            ],
            checks=[HasTimeouts(TREE_ROOT, "5s")],
            load=lambda deployment: load.driver(source),
        )
        result = gremlin.run_recipe(recipe)
        assert result.passed, result.report()
        assert load.result.success_rate == 1.0
        # 62 edges x (request+reply) x 20 calls, plus the source edge.
        assert len(deployment.store) == (62 * 20 + 20) * 2
        # Control-plane work stays fast even at twice the paper's size.
        assert result.orchestration_time < 1.0
        assert result.assertion_time < 1.0

    def test_deep_chain_latency_accumulates_linearly(self):
        """A request through depth d of the tree pays ~d sequential
        service times + hops; sanity-checks the simulated call fan-out."""
        shallow = build_tree_app(1, service_time=0.01).deploy(seed=232)
        deep = build_tree_app(4, service_time=0.01).deploy(seed=232)

        def one_latency(deployment):
            source = deployment.add_traffic_source(TREE_ROOT)
            load = ClosedLoopLoad(num_requests=1)
            load.run(source)
            return load.result.latencies[0]

        shallow_latency = one_latency(shallow)
        deep_latency = one_latency(deep)
        assert deep_latency > shallow_latency * 3
