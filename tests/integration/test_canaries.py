"""Canary routing (paper Section 9, the state-cleanup proposal).

    "Even when faults are injected only on synthetic test requests,
    implementation bugs could cause the microservice to crash,
    affecting real users. ... One possible solution is the use of
    canaries — copies of a microservice dedicated to handling test
    requests."

With ``canary_instances`` on a service definition, sidecars route
test-tagged flows to the canary pool and everything else to the
production pool — so destructive experiments exercise real code on
isolated state.
"""

import pytest

from repro.apps.outages import _billing_db_handler, _billing_gateway_handler
from repro.core import AbortCalls, Disconnect, Gremlin
from repro.http import HttpRequest
from repro.loadgen import ClosedLoopLoad
from repro.microservice import Application, PolicySpec, ServiceDefinition, fanout_handler
from repro.tracing import RequestIdGenerator


def build(canaries=1, instances_b=2):
    app = Application("canary-demo")
    app.add_service(
        ServiceDefinition(
            "ServiceA",
            handler=fanout_handler(["ServiceB"]),
            dependencies={"ServiceB": PolicySpec(timeout=1.0)},
        )
    )
    app.add_service(
        ServiceDefinition("ServiceB", instances=instances_b, canary_instances=canaries)
    )
    deployment = app.deploy(seed=101)
    source = deployment.add_traffic_source("ServiceA")
    return deployment, source


def served(instances):
    return [instance.server.requests_served for instance in instances]


class TestRouting:
    def test_test_traffic_lands_on_canaries_only(self):
        deployment, source = build()
        ClosedLoopLoad(num_requests=4).run(source)  # test-* IDs
        assert served(deployment.production_instances_of("ServiceB")) == [0, 0]
        assert served(deployment.canaries_of("ServiceB")) == [4]

    def test_production_traffic_never_touches_canaries(self):
        deployment, source = build()
        load = ClosedLoopLoad(num_requests=4, ids=RequestIdGenerator(prefix="user-"))
        load.run(source)
        assert sum(served(deployment.production_instances_of("ServiceB"))) == 4
        assert served(deployment.canaries_of("ServiceB")) == [0]

    def test_mixed_traffic_split_correctly(self):
        deployment, source = build()
        ClosedLoopLoad(num_requests=3).run(source)
        ClosedLoopLoad(num_requests=5, ids=RequestIdGenerator(prefix="user-")).run(source)
        assert sum(served(deployment.production_instances_of("ServiceB"))) == 5
        assert sum(served(deployment.canaries_of("ServiceB"))) == 3

    def test_untagged_traffic_goes_to_production(self):
        deployment, source = build()
        sim = deployment.sim

        def one(sim):
            yield from source.client.call(HttpRequest("GET", "/x"))  # no ID

        sim.process(one(sim))
        sim.run()
        assert sum(served(deployment.production_instances_of("ServiceB"))) == 1

    def test_no_canaries_falls_back_to_production(self):
        deployment, source = build(canaries=0)
        ClosedLoopLoad(num_requests=4).run(source)
        assert sum(served(deployment.production_instances_of("ServiceB"))) == 4

    def test_canary_pool_round_robins(self):
        deployment, source = build(canaries=2)
        ClosedLoopLoad(num_requests=6).run(source)
        assert served(deployment.canaries_of("ServiceB")) == [3, 3]


class TestFaultsStillApply:
    def test_rules_fire_on_canary_bound_flows(self):
        deployment, source = build()
        gremlin = Gremlin(deployment)
        gremlin.inject(Disconnect("ServiceA", "ServiceB"))
        load = ClosedLoopLoad(num_requests=3)
        load.run(source)
        # Aborted at the sidecar: neither pool saw anything.
        assert load.result.statuses == [500] * 3
        assert sum(served(deployment.instances_of("ServiceB"))) == 0


class TestStateIsolation:
    def test_destructive_experiment_spares_production_state(self):
        """The Twilio double-charge experiment, run against a canary:
        the duplicate charges land on the canary's ledger while the
        production ledger stays clean."""
        app = Application("billing-canary")
        app.add_service(
            ServiceDefinition(
                "billinggateway",
                handler=_billing_gateway_handler,
                dependencies={
                    "billingdb": PolicySpec(timeout=1.0, max_retries=4, retry_backoff_base=0.01)
                },
            )
        )
        app.add_service(
            ServiceDefinition(
                "billingdb",
                handler=_billing_db_handler(idempotent=False),
                canary_instances=1,
            )
        )
        deployment = app.deploy(seed=102)
        source = deployment.add_traffic_source("billinggateway")
        gremlin = Gremlin(deployment)

        # Background production traffic first.
        ClosedLoopLoad(num_requests=3, ids=RequestIdGenerator(prefix="user-")).run(source)

        # Now the destructive response-path experiment on test traffic.
        gremlin.inject(AbortCalls("billinggateway", "billingdb", error=503, on="response"))
        ClosedLoopLoad(num_requests=2).run(source)

        production_db = deployment.production_instances_of("billingdb")[0]
        canary_db = deployment.canaries_of("billingdb")[0]
        production_charges = production_db.ctx.state.get("charges", {})
        canary_charges = canary_db.ctx.state.get("charges", {})
        # Production ledger: one clean charge per user request.
        assert all(count == 1 for count in production_charges.values())
        assert len(production_charges) == 3
        # The double-billing bug reproduced — but only on the canary.
        assert canary_charges
        assert max(canary_charges.values()) > 1
