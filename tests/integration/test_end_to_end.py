"""End-to-end integration tests across the whole stack.

These tests exercise complete operator workflows — deploy, inject,
load, assert, clean — including the scenarios the unit layers cover
only piecewise (partitions, FakeSuccess, withRule accounting across a
multi-fault run, log-pipeline lag).
"""

import pytest

from repro.apps import build_enterprise_app, build_twotier
from repro.core import (
    Crash,
    DelayCalls,
    Disconnect,
    FakeSuccess,
    Gremlin,
    HasBoundedRetries,
    NetworkPartition,
    Overload,
    num_requests,
    reply_latency,
)
from repro.http import HttpRequest, HttpResponse
from repro.loadgen import ClosedLoopLoad
from repro.microservice import Application, PolicySpec, ServiceDefinition


class TestNetworkPartitionScenario:
    def test_partition_cuts_cross_group_edges_only(self):
        deployment = build_enterprise_app().deploy(seed=41)
        source = deployment.add_traffic_source("webapp")
        gremlin = Gremlin(deployment)
        # Partition the external services away from the rest.
        gremlin.inject(
            NetworkPartition(
                ["webapp", "searchservice", "activityservice", "servicedb"],
                ["github", "stackoverflow"],
            )
        )
        load = ClosedLoopLoad(num_requests=5)
        load.run(source)
        # activity degrades (both externals reset) but the page holds.
        assert all(sample.ok for sample in load.result.samples)
        activity_replies = gremlin.get_replies("activityservice", "github")
        assert activity_replies
        assert all(reply.error == "reset" for reply in activity_replies)
        # Internal edges untouched.
        search_replies = gremlin.get_replies("searchservice", "servicedb")
        assert all(reply.error is None for reply in search_replies)


class TestFakeSuccessScenario:
    def test_corrupted_reply_triggers_validation_gap(self):
        """A service that trusts its dependency's payload blindly
        propagates corruption — FakeSuccess makes that observable."""

        def trusting_handler(ctx, request):
            yield from ctx.work()
            reply = yield from ctx.call("provider", HttpRequest("GET", "/kv"), parent=request)
            # No input validation: blindly parse key=value.
            key, _, value = reply.text().partition("=")
            return HttpResponse(200, body=f"parsed:{key}".encode())

        def provider_handler(ctx, request):
            yield from ctx.work()
            return HttpResponse(200, body=b"key=42")

        app = Application("fake-success-demo")
        app.add_service(
            ServiceDefinition(
                "consumer",
                handler=trusting_handler,
                dependencies={"provider": PolicySpec(timeout=1.0)},
            )
        )
        app.add_service(ServiceDefinition("provider", handler=provider_handler))
        deployment = app.deploy(seed=42)
        source = deployment.add_traffic_source("consumer")
        gremlin = Gremlin(deployment)

        baseline = ClosedLoopLoad(num_requests=1)
        baseline.run(source)
        assert baseline.result.samples[0].ok

        gremlin.inject(FakeSuccess("provider", pattern="key", replace_bytes="badkey"))
        corrupted = ClosedLoopLoad(num_requests=1)
        corrupted.run(source)
        sample = corrupted.result.samples[0]
        assert sample.ok  # still 200 — the bug is silent corruption
        # The consumer passed the corrupted key through unvalidated.
        records = gremlin.get_replies("consumer", "provider")
        assert any(record.fault_applied == "modify" for record in records)


class TestWithRuleAccountingEndToEnd:
    def test_delay_plus_abort_accounting(self):
        """Fig-style multi-fault run: delayed requests' untampered
        latency recovers the callee's true timing; synthesized replies
        vanish from the callee-actual view."""
        deployment = build_twotier(
            policy=PolicySpec(timeout=10.0), service_time_b=0.01
        ).deploy(seed=43)
        source = deployment.add_traffic_source("ServiceA")
        gremlin = Gremlin(deployment)
        gremlin.inject(
            DelayCalls("ServiceA", "ServiceB", interval=1.0, max_matches=5),
        )
        ClosedLoopLoad(num_requests=5).run(source)

        replies = gremlin.get_replies("ServiceA", "ServiceB")
        observed = reply_latency(replies, with_rule=True)
        actual = reply_latency(replies, with_rule=False)
        assert all(latency >= 1.0 for latency in observed)
        assert all(latency < 0.1 for latency in actual)
        assert len(observed) == len(actual) == 5

    def test_request_counts_same_in_both_views_for_aborts(self):
        deployment = build_twotier(policy=PolicySpec(timeout=1.0)).deploy(seed=44)
        source = deployment.add_traffic_source("ServiceA")
        gremlin = Gremlin(deployment)
        gremlin.inject(Disconnect("ServiceA", "ServiceB"))
        ClosedLoopLoad(num_requests=4).run(source)
        requests = gremlin.get_requests("ServiceA", "ServiceB")
        assert num_requests(requests, with_rule=True) == 4
        assert num_requests(requests, with_rule=False) == 4  # really sent
        replies = gremlin.get_replies("ServiceA", "ServiceB")
        assert num_requests(replies, with_rule=True) == 4
        assert num_requests(replies, with_rule=False) == 0  # all synthesized


class TestLogPipelineLag:
    def test_recipe_waits_for_shipped_logs(self):
        app = build_twotier(policy=PolicySpec(timeout=1.0, max_retries=5,
                                              retry_backoff_base=0.02))
        deployment = app.deploy(seed=45, log_shipping_delay=0.5)
        source = deployment.add_traffic_source("ServiceA")
        gremlin = Gremlin(deployment)
        from repro.core import Recipe

        load = ClosedLoopLoad(num_requests=1)
        result = gremlin.run_recipe(
            Recipe(
                name="with-lag",
                scenarios=[Disconnect("ServiceA", "ServiceB")],
                checks=[HasBoundedRetries("ServiceA", "ServiceB", 5, window="30s")],
                load=lambda deployment: load.driver(source),
            )
        )
        # Despite the 0.5s shipping lag, the checker saw every record.
        assert result.passed, result.report()


class TestEmulatedVsRealCrash:
    def test_gremlin_crash_emulation_matches_real_stop(self):
        """The paper's premise: an emulated crash elicits the same
        caller-observable reaction as actually killing the service.
        (Emulated reset vs. stopped listener differ only in the error
        flavour: reset vs. refused — both are 'connection failed'.)"""

        def run(crash_for_real):
            deployment = build_twotier(policy=PolicySpec(timeout=1.0)).deploy(seed=46)
            source = deployment.add_traffic_source("ServiceA")
            gremlin = Gremlin(deployment)
            if crash_for_real:
                for instance in deployment.instances_of("ServiceB"):
                    instance.stop()
            else:
                gremlin.inject(Crash("ServiceB"))
            load = ClosedLoopLoad(num_requests=3)
            load.run(source)
            return load.result

        emulated = run(crash_for_real=False)
        real = run(crash_for_real=True)
        assert [s.status for s in emulated.samples] == [s.status for s in real.samples]
        assert emulated.success_rate == real.success_rate == 0.0


class TestMultiInstanceFaultCoverage:
    def test_rules_fire_on_every_caller_instance(self):
        """Paper Fig 3: with two ServiceA instances, the orchestrator
        must program both sidecars, or half the flows escape the test."""
        deployment = build_twotier(
            policy=PolicySpec(timeout=1.0), instances_a=2
        ).deploy(seed=47)
        gremlin = Gremlin(deployment)
        gremlin.inject(Overload("ServiceB", abort_fraction=1.0))

        sim = deployment.sim
        statuses = []

        def call_via(instance, rid):
            request = HttpRequest("GET", "/api")
            request.request_id = rid
            response = yield from instance.clients["ServiceB"].call(request)
            statuses.append(response.status)

        for index, instance in enumerate(deployment.instances_of("ServiceA")):
            sim.process(call_via(instance, f"test-{index}"))
        sim.run()
        assert statuses == [503, 503]
