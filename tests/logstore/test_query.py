"""Unit tests for the query DSL."""

import pytest

from repro.errors import AssertionQueryError
from repro.logstore import ObservationRecord, Query, compile_id_pattern

from tests.logstore.test_record import make_record


class TestIdPattern:
    def test_glob_compiles(self):
        regex = compile_id_pattern("test-*")
        assert regex.match("test-1")
        assert not regex.match("user-1")

    def test_star_means_no_constraint(self):
        assert compile_id_pattern("*") is None
        assert compile_id_pattern(None) is None

    def test_regex_escape_hatch(self):
        regex = compile_id_pattern("re:test-(1|2)$")
        assert regex.match("test-1")
        assert not regex.match("test-3")

    def test_bad_regex_rejected(self):
        with pytest.raises(AssertionQueryError):
            compile_id_pattern("re:(unclosed")


class TestQueryMatching:
    def test_empty_query_matches_all(self):
        assert Query().matches(make_record())

    def test_kind_filter(self):
        assert Query(kind="request").matches(make_record(kind="request"))
        assert not Query(kind="reply").matches(make_record(kind="request"))

    def test_kind_validated(self):
        with pytest.raises(AssertionQueryError):
            Query(kind="bogus")

    def test_src_dst_filters(self):
        query = Query(src="ServiceA", dst="ServiceB")
        assert query.matches(make_record())
        assert not query.matches(make_record(src="Other"))
        assert not query.matches(make_record(dst="Other"))

    def test_status_filter(self):
        assert Query(status=503).matches(make_record(status=503))
        assert not Query(status=503).matches(make_record(status=200))

    def test_time_window_inclusive(self):
        query = Query(since=1.0, until=2.0)
        assert query.matches(make_record(timestamp=1.0))
        assert query.matches(make_record(timestamp=2.0))
        assert not query.matches(make_record(timestamp=0.999))
        assert not query.matches(make_record(timestamp=2.001))

    def test_empty_window_rejected(self):
        with pytest.raises(AssertionQueryError):
            Query(since=5.0, until=1.0)

    def test_id_pattern_filter(self):
        query = Query(id_pattern="test-*")
        assert query.matches(make_record(request_id="test-9"))
        assert not query.matches(make_record(request_id="user-9"))
        assert not query.matches(make_record(request_id=None))

    def test_bad_pattern_rejected_eagerly(self):
        with pytest.raises(AssertionQueryError):
            Query(id_pattern="re:(bad")

    def test_with_faults_only(self):
        query = Query(with_faults_only=True)
        assert query.matches(make_record(fault_applied="delay(3)"))
        assert not query.matches(make_record())

    def test_fluent_refinement(self):
        query = Query().between("A", "B").requests().in_window(0.0, 10.0)
        assert query.src == "A"
        assert query.kind == "request"
        assert query.until == 10.0
        # original is immutable
        assert Query().src is None
