"""Unit tests for the event store."""

from repro.logstore import EventStore, Query

from tests.logstore.test_record import make_record


class TestEventStore:
    def test_append_and_len(self):
        store = EventStore()
        store.append(make_record())
        assert len(store) == 1

    def test_extend(self):
        store = EventStore()
        store.extend(make_record(timestamp=float(i)) for i in range(5))
        assert len(store) == 5

    def test_all_records_sorted(self):
        store = EventStore()
        for ts in (3.0, 1.0, 2.0):
            store.append(make_record(timestamp=ts))
        assert [r.timestamp for r in store.all_records()] == [1.0, 2.0, 3.0]

    def test_search_by_pair_uses_index(self):
        store = EventStore()
        store.append(make_record(src="A", dst="B", timestamp=1.0))
        store.append(make_record(src="A", dst="C", timestamp=2.0))
        store.append(make_record(src="A", dst="B", timestamp=3.0))
        results = store.search(Query(src="A", dst="B"))
        assert [r.timestamp for r in results] == [1.0, 3.0]

    def test_search_time_range_without_pair(self):
        store = EventStore()
        for ts in range(10):
            store.append(make_record(timestamp=float(ts)))
        results = store.search(Query(since=3.0, until=6.0))
        assert [r.timestamp for r in results] == [3.0, 4.0, 5.0, 6.0]

    def test_search_pair_with_out_of_order_ingest(self):
        store = EventStore()
        store.append(make_record(timestamp=5.0))
        store.append(make_record(timestamp=1.0))
        results = store.search(Query(src="ServiceA", dst="ServiceB"))
        assert [r.timestamp for r in results] == [1.0, 5.0]

    def test_count(self):
        store = EventStore()
        store.append(make_record(status=503))
        store.append(make_record(status=200))
        assert store.count(Query(status=503)) == 1

    def test_clear(self):
        store = EventStore()
        store.append(make_record())
        store.clear()
        assert len(store) == 0
        assert store.search(Query()) == []

    def test_mutated_record_visible_in_search(self):
        store = EventStore()
        record = make_record()
        store.append(record)
        record.status = 503
        assert store.count(Query(status=503)) == 1
