"""Unit tests for the event store (both evaluation strategies)."""

import pytest

from repro.logstore import STORE_STRATEGIES, EventStore, ObservationRecord, Query

from tests.logstore.test_record import make_record


@pytest.fixture(params=STORE_STRATEGIES)
def store(request):
    return EventStore(strategy=request.param)


class TestEventStore:
    def test_append_and_len(self, store):
        store.append(make_record())
        assert len(store) == 1

    def test_extend(self, store):
        store.extend(make_record(timestamp=float(i)) for i in range(5))
        assert len(store) == 5

    def test_all_records_sorted(self, store):
        for ts in (3.0, 1.0, 2.0):
            store.append(make_record(timestamp=ts))
        assert [r.timestamp for r in store.all_records()] == [1.0, 2.0, 3.0]

    def test_search_by_pair_uses_index(self, store):
        store.append(make_record(src="A", dst="B", timestamp=1.0))
        store.append(make_record(src="A", dst="C", timestamp=2.0))
        store.append(make_record(src="A", dst="B", timestamp=3.0))
        results = store.search(Query(src="A", dst="B"))
        assert [r.timestamp for r in results] == [1.0, 3.0]

    def test_search_time_range_without_pair(self, store):
        for ts in range(10):
            store.append(make_record(timestamp=float(ts)))
        results = store.search(Query(since=3.0, until=6.0))
        assert [r.timestamp for r in results] == [3.0, 4.0, 5.0, 6.0]

    def test_search_pair_with_out_of_order_ingest(self, store):
        store.append(make_record(timestamp=5.0))
        store.append(make_record(timestamp=1.0))
        results = store.search(Query(src="ServiceA", dst="ServiceB"))
        assert [r.timestamp for r in results] == [1.0, 5.0]

    def test_count(self, store):
        store.append(make_record(status=503))
        store.append(make_record(status=200))
        assert store.count(Query(status=503)) == 1

    def test_clear(self, store):
        store.append(make_record())
        store.clear()
        assert len(store) == 0
        assert store.search(Query()) == []

    def test_mutated_record_visible_in_search(self, store):
        record = make_record()
        store.append(record)
        record.status = 503
        assert store.count(Query(status=503)) == 1

    def test_mutation_after_prior_status_query_still_visible(self, store):
        """The hard case for secondary indexes: the status index is
        consulted, *then* a record's status changes in place — the
        additive update must keep the index a superset of the truth."""
        record = make_record(status=200)
        other = make_record(status=200, timestamp=2.0)
        store.append(record)
        store.append(other)
        assert store.count(Query(status=503)) == 0  # index now warm
        record.status = 503
        assert store.count(Query(status=503)) == 1
        assert store.count(Query(status=200)) == 1  # stale entry filtered out

    def test_fault_mutation_visible_to_faults_only_query(self, store):
        record = make_record()
        store.append(record)
        assert store.count(Query(with_faults_only=True)) == 0
        record.fault_applied = "abort(503)"
        assert store.count(Query(with_faults_only=True)) == 1

    def test_search_iter_is_lazy(self, store):
        for ts in range(10):
            store.append(make_record(timestamp=float(ts)))
        iterator = store.search_iter(Query())
        assert next(iterator).timestamp == 0.0  # no list materialized

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            EventStore(strategy="quantum")


class TestQueryPlanner:
    def test_pair_query_prunes_time_range_in_candidates(self):
        """Regression: with src+dst bound, since/until must narrow the
        candidate set (bisect on the pair posting list), not merely be
        post-filtered after walking the whole pair bucket."""
        store = EventStore()
        for ts in range(100):
            store.append(make_record(timestamp=float(ts)))
        plan = store.plan(Query(src="ServiceA", dst="ServiceB", since=10.0, until=19.0))
        assert plan.driver == "pair"
        assert plan.candidates == 10

    def test_most_selective_index_wins(self):
        store = EventStore()
        for index in range(50):
            store.append(
                make_record(
                    timestamp=float(index),
                    kind="request" if index % 2 else "reply",
                    status=503 if index == 7 else 200,
                )
            )
        plan = store.plan(Query(kind="request", status=503))
        assert plan.driver == "status"
        assert plan.candidates == 1

    def test_unbound_query_scans_time_range(self):
        store = EventStore()
        for ts in range(20):
            store.append(make_record(timestamp=float(ts)))
        plan = store.plan(Query(since=5.0, until=9.0))
        assert plan.driver == "time"
        assert plan.candidates == 5

    def test_linear_strategy_always_scans(self):
        store = EventStore(strategy="linear")
        for ts in range(20):
            store.append(make_record(timestamp=float(ts)))
        plan = store.plan(Query(src="ServiceA", dst="ServiceB"))
        assert plan.driver == "scan"
        assert plan.candidates == 20

    def test_empty_bucket_yields_empty_plan(self):
        store = EventStore()
        store.append(make_record())
        plan = store.plan(Query(src="Nobody", dst="Nowhere"))
        assert plan.candidates == 0
        assert store.search(Query(src="Nobody", dst="Nowhere")) == []


class TestStrategyEquivalence:
    """Acceptance: indexed search/count must match the linear scan
    exactly (same records, same order) across representative queries."""

    QUERIES = [
        Query(),
        Query(kind="request"),
        Query(src="A", dst="B"),
        Query(src="A"),
        Query(dst="C"),
        Query(status=503),
        Query(with_faults_only=True),
        Query(kind="reply", src="A", dst="B", since=2.0, until=8.0),
        Query(id_pattern="test-*", status=200),
        Query(since=3.5),
        Query(until=4.5),
    ]

    @staticmethod
    def _populate(store):
        for index in range(40):
            record = ObservationRecord(
                timestamp=float(index % 10) + index * 0.01,
                kind="request" if index % 2 else "reply",
                src="A" if index % 3 else "X",
                dst="B" if index % 4 else "C",
                request_id=f"test-{index}" if index % 5 else None,
                status=[None, 200, 503][index % 3],
                fault_applied="abort(503)" if index % 7 == 0 else None,
            )
            store.append(record)
        # In-place outcome updates, as the agent performs them.
        for record in store.all_records()[::6]:
            record.status = 500

    @pytest.mark.parametrize("query_index", range(len(QUERIES)))
    def test_search_and_count_identical(self, query_index):
        indexed = EventStore(strategy="indexed")
        linear = EventStore(strategy="linear")
        self._populate(indexed)
        self._populate(linear)
        query = self.QUERIES[query_index]
        indexed_results = indexed.search(query)
        linear_results = linear.search(query)
        assert indexed_results == linear_results
        assert [id(r) for r in indexed.search(query)] == [
            id(r) for r in indexed.search(query)
        ]  # stable across repeated evaluation
        assert indexed.count(query) == len(linear_results)
