"""Unit tests for the log-shipping pipeline."""

import pytest

from repro.logstore import EventStore, LogPipeline

from tests.conftest import run_to_completion
from tests.logstore.test_record import make_record


class TestImmediatePipeline:
    def test_zero_delay_lands_immediately(self, sim):
        store = EventStore()
        pipeline = LogPipeline(sim, store)
        pipeline.emit(make_record())
        assert len(store) == 1
        assert pipeline.in_flight == 0

    def test_drained_succeeds_immediately_when_empty(self, sim):
        pipeline = LogPipeline(sim, EventStore())
        assert pipeline.drained().triggered


class TestDelayedPipeline:
    def test_records_land_after_shipping_delay(self, sim):
        store = EventStore()
        pipeline = LogPipeline(sim, store, shipping_delay=0.5)
        pipeline.emit(make_record())
        assert len(store) == 0
        assert pipeline.in_flight == 1
        sim.run()
        assert len(store) == 1
        assert sim.now == 0.5

    def test_drained_event_waits_for_landing(self, sim):
        store = EventStore()
        pipeline = LogPipeline(sim, store, shipping_delay=1.0)

        def scenario(sim):
            pipeline.emit(make_record())
            pipeline.emit(make_record(timestamp=2.0))
            yield pipeline.drained()
            return (sim.now, len(store))

        assert run_to_completion(sim, scenario(sim)) == (1.0, 2)

    def test_emitted_counter(self, sim):
        pipeline = LogPipeline(sim, EventStore(), shipping_delay=0.1)
        for _ in range(3):
            pipeline.emit(make_record())
        assert pipeline.emitted == 3

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            LogPipeline(sim, EventStore(), shipping_delay=-1)
