"""Unit tests for the log-shipping pipeline."""

import pytest

from repro.logstore import EventStore, LogPipeline

from tests.conftest import run_to_completion
from tests.logstore.test_record import make_record


class TestImmediatePipeline:
    def test_zero_delay_lands_immediately(self, sim):
        store = EventStore()
        pipeline = LogPipeline(sim, store)
        pipeline.emit(make_record())
        assert len(store) == 1
        assert pipeline.in_flight == 0

    def test_drained_succeeds_immediately_when_empty(self, sim):
        pipeline = LogPipeline(sim, EventStore())
        assert pipeline.drained().triggered


class TestDelayedPipeline:
    def test_records_land_after_shipping_delay(self, sim):
        store = EventStore()
        pipeline = LogPipeline(sim, store, shipping_delay=0.5)
        pipeline.emit(make_record())
        assert len(store) == 0
        assert pipeline.in_flight == 1
        sim.run()
        assert len(store) == 1
        assert sim.now == 0.5

    def test_drained_event_waits_for_landing(self, sim):
        store = EventStore()
        pipeline = LogPipeline(sim, store, shipping_delay=1.0)

        def scenario(sim):
            pipeline.emit(make_record())
            pipeline.emit(make_record(timestamp=2.0))
            yield pipeline.drained()
            return (sim.now, len(store))

        assert run_to_completion(sim, scenario(sim)) == (1.0, 2)

    def test_emitted_counter(self, sim):
        pipeline = LogPipeline(sim, EventStore(), shipping_delay=0.1)
        for _ in range(3):
            pipeline.emit(make_record())
        assert pipeline.emitted == 3

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            LogPipeline(sim, EventStore(), shipping_delay=-1)


class TestBatchedPipeline:
    def test_records_buffer_until_flush_size(self, sim):
        store = EventStore()
        pipeline = LogPipeline(sim, store, flush_size=3)
        pipeline.emit(make_record())
        pipeline.emit(make_record())
        assert len(store) == 0
        assert pipeline.in_flight == 2
        pipeline.emit(make_record())
        assert len(store) == 3
        assert pipeline.in_flight == 0
        assert pipeline.flushes == 1

    def test_explicit_flush_lands_partial_batch(self, sim):
        store = EventStore()
        pipeline = LogPipeline(sim, store, flush_size=10)
        pipeline.emit(make_record())
        assert pipeline.flush() == 1
        assert len(store) == 1
        assert pipeline.flush() == 0  # idempotent when empty

    def test_drained_flushes_buffer(self, sim):
        store = EventStore()
        pipeline = LogPipeline(sim, store, flush_size=10)
        pipeline.emit(make_record())
        pipeline.emit(make_record())
        assert pipeline.drained().triggered
        assert len(store) == 2
        assert pipeline.in_flight == 0

    def test_shipping_delay_composes_with_batching(self, sim):
        store = EventStore()
        pipeline = LogPipeline(sim, store, shipping_delay=0.5, flush_size=100)

        def scenario(sim):
            for _ in range(4):
                pipeline.emit(make_record())
            yield pipeline.drained()
            return len(store)

        assert run_to_completion(sim, scenario(sim)) == 4

    def test_bad_flush_size_rejected(self, sim):
        with pytest.raises(ValueError):
            LogPipeline(sim, EventStore(), flush_size=0)
