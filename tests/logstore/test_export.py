"""Tests for JSON-lines export/import of observation logs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AssertionQueryError
from repro.logstore import EventStore, ObservationRecord, Query, dump_jsonl, dumps, load_jsonl, loads

from tests.logstore.test_record import make_record


def populated_store():
    store = EventStore()
    store.append(make_record(timestamp=1.0, status=200))
    store.append(
        make_record(
            timestamp=2.0,
            kind="reply",
            status=503,
            latency=0.5,
            injected_delay=0.4,
            fault_applied="delay(0.4)",
            gremlin_generated=True,
        )
    )
    return store


class TestTextRoundTrip:
    def test_dumps_loads_identity(self):
        original = populated_store()
        restored = loads(dumps(original))
        assert restored.all_records() == original.all_records()

    def test_empty_store(self):
        assert dumps(EventStore()) == ""
        assert len(loads("")) == 0

    def test_blank_lines_skipped(self):
        text = dumps(populated_store()) + "\n\n"
        assert len(loads(text)) == 2

    def test_malformed_line_fails_loudly(self):
        with pytest.raises(AssertionQueryError, match="line 1"):
            loads("{not json")

    def test_wrong_schema_fails_loudly(self):
        with pytest.raises(AssertionQueryError):
            loads('{"unexpected": "fields"}')

    def test_queries_work_on_restored_store(self):
        restored = loads(dumps(populated_store()))
        assert restored.count(Query(status=503)) == 1
        reply = restored.search(Query(kind="reply"))[0]
        assert reply.actual_latency == pytest.approx(0.1)


_names = st.text(
    alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd"), max_codepoint=0x2FF),
    min_size=1,
    max_size=12,
)
_timestamps = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)

_records = st.builds(
    ObservationRecord,
    timestamp=_timestamps,
    kind=st.sampled_from(["request", "reply"]),
    src=_names,
    dst=_names,
    src_instance=_names,
    request_id=st.one_of(st.none(), _names),
    method=st.one_of(st.none(), st.sampled_from(["GET", "POST"])),
    uri=st.one_of(st.none(), st.sampled_from(["/", "/search", "/x?q=1"])),
    status=st.one_of(st.none(), st.integers(min_value=100, max_value=599)),
    latency=st.one_of(st.none(), _timestamps),
    injected_delay=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    fault_applied=st.one_of(st.none(), st.sampled_from(["abort(503)", "delay(3.0)", "modify"])),
    gremlin_generated=st.booleans(),
    error=st.one_of(st.none(), st.sampled_from(["reset", "timeout", "refused", "unreachable"])),
)


class TestRoundTripProperty:
    """Hypothesis: dump -> load reproduces the store byte-identically."""

    @settings(max_examples=50, deadline=None)
    @given(records=st.lists(_records, max_size=20), statuses=st.data())
    def test_dump_load_byte_identical(self, records, statuses):
        store = EventStore()
        for record in records:
            store.append(record)
        # Mutate some records after ingestion, the way agents update
        # outcomes in place — exports must reflect the mutated state.
        for index, record in enumerate(records):
            if statuses.draw(st.booleans(), label=f"mutate-{index}"):
                record.status = statuses.draw(
                    st.one_of(st.none(), st.integers(min_value=100, max_value=599)),
                    label=f"status-{index}",
                )
                record.fault_applied = statuses.draw(
                    st.one_of(st.none(), st.just("abort(503)")),
                    label=f"fault-{index}",
                )
        text = dumps(store)
        restored = loads(text)
        assert restored.all_records() == store.all_records()
        # Byte-identical: re-dumping the restored store reproduces the text.
        assert dumps(restored) == text

    @settings(max_examples=25, deadline=None)
    @given(records=st.lists(_records, max_size=10))
    def test_queries_agree_after_round_trip(self, records):
        store = EventStore()
        for record in records:
            store.append(record)
        restored = loads(dumps(store))
        for query in (Query(kind="request"), Query(status=503), Query(kind="reply")):
            assert restored.count(query) == store.count(query)


class TestMalformedLines:
    def test_error_names_line_number_and_payload(self):
        good = dumps(populated_store())
        with pytest.raises(AssertionQueryError) as excinfo:
            loads(good + "\n{broken json\n")
        message = str(excinfo.value)
        assert "malformed observation log at line 3" in message
        # The underlying JSON decoder's complaint is preserved.
        assert "Expecting" in message

    def test_unknown_field_error_is_loud(self):
        with pytest.raises(AssertionQueryError, match="line 1"):
            loads('{"timestamp": 1.0, "kind": "request", "nope": 1}')


class TestFileRoundTrip:
    def test_dump_and_load_file(self, tmp_path):
        store = populated_store()
        path = tmp_path / "observations.jsonl"
        written = dump_jsonl(store, path)
        assert written == 2
        restored = load_jsonl(path)
        assert restored.all_records() == store.all_records()

    def test_end_to_end_offline_assertions(self, tmp_path):
        """Dump a live deployment's logs and re-run a check offline."""
        from repro.apps import build_twotier
        from repro.core import Disconnect, Gremlin, HasBoundedRetries
        from repro.loadgen import ClosedLoopLoad
        from repro.microservice import PolicySpec

        deployment = build_twotier(
            policy=PolicySpec(timeout=1.0, max_retries=5, retry_backoff_base=0.02)
        ).deploy(seed=151)
        source = deployment.add_traffic_source("ServiceA")
        gremlin = Gremlin(deployment)
        gremlin.inject(Disconnect("ServiceA", "ServiceB"))
        ClosedLoopLoad(num_requests=1).run(source)

        path = tmp_path / "run.jsonl"
        dump_jsonl(deployment.store, path)
        offline_store = load_jsonl(path)
        result = HasBoundedRetries("ServiceA", "ServiceB", 5, window="30s").run(offline_store)
        assert result.passed, result.detail
