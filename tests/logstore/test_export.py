"""Tests for JSON-lines export/import of observation logs."""

import pytest

from repro.errors import AssertionQueryError
from repro.logstore import EventStore, Query, dump_jsonl, dumps, load_jsonl, loads

from tests.logstore.test_record import make_record


def populated_store():
    store = EventStore()
    store.append(make_record(timestamp=1.0, status=200))
    store.append(
        make_record(
            timestamp=2.0,
            kind="reply",
            status=503,
            latency=0.5,
            injected_delay=0.4,
            fault_applied="delay(0.4)",
            gremlin_generated=True,
        )
    )
    return store


class TestTextRoundTrip:
    def test_dumps_loads_identity(self):
        original = populated_store()
        restored = loads(dumps(original))
        assert restored.all_records() == original.all_records()

    def test_empty_store(self):
        assert dumps(EventStore()) == ""
        assert len(loads("")) == 0

    def test_blank_lines_skipped(self):
        text = dumps(populated_store()) + "\n\n"
        assert len(loads(text)) == 2

    def test_malformed_line_fails_loudly(self):
        with pytest.raises(AssertionQueryError, match="line 1"):
            loads("{not json")

    def test_wrong_schema_fails_loudly(self):
        with pytest.raises(AssertionQueryError):
            loads('{"unexpected": "fields"}')

    def test_queries_work_on_restored_store(self):
        restored = loads(dumps(populated_store()))
        assert restored.count(Query(status=503)) == 1
        reply = restored.search(Query(kind="reply"))[0]
        assert reply.actual_latency == pytest.approx(0.1)


class TestFileRoundTrip:
    def test_dump_and_load_file(self, tmp_path):
        store = populated_store()
        path = tmp_path / "observations.jsonl"
        written = dump_jsonl(store, path)
        assert written == 2
        restored = load_jsonl(path)
        assert restored.all_records() == store.all_records()

    def test_end_to_end_offline_assertions(self, tmp_path):
        """Dump a live deployment's logs and re-run a check offline."""
        from repro.apps import build_twotier
        from repro.core import Disconnect, Gremlin, HasBoundedRetries
        from repro.loadgen import ClosedLoopLoad
        from repro.microservice import PolicySpec

        deployment = build_twotier(
            policy=PolicySpec(timeout=1.0, max_retries=5, retry_backoff_base=0.02)
        ).deploy(seed=151)
        source = deployment.add_traffic_source("ServiceA")
        gremlin = Gremlin(deployment)
        gremlin.inject(Disconnect("ServiceA", "ServiceB"))
        ClosedLoopLoad(num_requests=1).run(source)

        path = tmp_path / "run.jsonl"
        dump_jsonl(deployment.store, path)
        offline_store = load_jsonl(path)
        result = HasBoundedRetries("ServiceA", "ServiceB", 5, window="30s").run(offline_store)
        assert result.passed, result.detail
