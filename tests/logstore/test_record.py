"""Unit tests for the observation-record schema."""

import pytest

from repro.logstore import ObservationKind, ObservationRecord


def make_record(**overrides):
    defaults = dict(
        timestamp=1.0,
        kind=ObservationKind.REQUEST,
        src="ServiceA",
        dst="ServiceB",
        src_instance="servicea-0",
        request_id="test-1",
        method="GET",
        uri="/x",
    )
    defaults.update(overrides)
    return ObservationRecord(**defaults)


class TestObservationRecord:
    def test_kind_validation(self):
        with pytest.raises(ValueError):
            make_record(kind="sideways")

    def test_direction_helpers(self):
        assert make_record(kind="request").is_request
        assert make_record(kind="reply").is_reply

    def test_actual_latency_subtracts_injected_delay(self):
        record = make_record(kind="reply", latency=3.05, injected_delay=3.0)
        assert record.actual_latency == pytest.approx(0.05)

    def test_actual_latency_clamped_at_zero(self):
        record = make_record(kind="reply", latency=0.9, injected_delay=1.0)
        assert record.actual_latency == 0.0

    def test_actual_latency_none_without_latency(self):
        assert make_record().actual_latency is None

    def test_mutation_models_es_document_update(self):
        record = make_record()
        assert record.status is None
        record.status = 503  # outcome learned later
        assert record.status == 503

    def test_to_dict_round_trip_fields(self):
        record = make_record(status=200, latency=0.01)
        doc = record.to_dict()
        assert doc["src"] == "ServiceA"
        assert doc["status"] == 200
        assert ObservationRecord(**doc) == record
