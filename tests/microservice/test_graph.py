"""Unit tests for the logical application graph."""

import pytest

from repro.errors import RecipeError
from repro.microservice import ApplicationGraph


@pytest.fixture
def diamond():
    #      web
    #     /   \
    #  search  activity
    #     \   /
    #      db
    return ApplicationGraph.from_edges(
        [("web", "search"), ("web", "activity"), ("search", "db"), ("activity", "db")]
    )


class TestConstruction:
    def test_from_edges(self, diamond):
        assert set(diamond.services()) == {"web", "search", "activity", "db"}
        assert len(diamond) == 4

    def test_add_service_idempotent(self):
        graph = ApplicationGraph()
        graph.add_service("a")
        graph.add_service("a")
        assert graph.services() == ["a"]

    def test_empty_name_rejected(self):
        with pytest.raises(RecipeError):
            ApplicationGraph().add_service("")

    def test_self_dependency_rejected(self):
        with pytest.raises(RecipeError):
            ApplicationGraph().add_dependency("a", "a")

    def test_contains(self, diamond):
        assert "web" in diamond
        assert "ghost" not in diamond
        assert 42 not in diamond


class TestQueries:
    def test_dependents(self, diamond):
        assert sorted(diamond.dependents("db")) == ["activity", "search"]
        assert diamond.dependents("web") == []

    def test_dependencies(self, diamond):
        assert sorted(diamond.dependencies("web")) == ["activity", "search"]
        assert diamond.dependencies("db") == []

    def test_unknown_service_raises(self, diamond):
        with pytest.raises(RecipeError):
            diamond.dependents("ghost")

    def test_downstream_closure(self, diamond):
        assert diamond.downstream_closure("web") == {"search", "activity", "db"}
        assert diamond.downstream_closure("db") == set()

    def test_upstream_closure(self, diamond):
        assert diamond.upstream_closure("db") == {"search", "activity", "web"}

    def test_entry_and_leaf_services(self, diamond):
        assert diamond.entry_services() == ["web"]
        assert diamond.leaf_services() == ["db"]

    def test_validate_services(self, diamond):
        diamond.validate_services(["web", "db"])
        with pytest.raises(RecipeError, match="ghost"):
            diamond.validate_services(["web", "ghost"])


class TestCuts:
    def test_edges_across_cut(self, diamond):
        crossing = diamond.edges_across(["web", "search", "activity"], ["db"])
        assert sorted(crossing) == [("activity", "db"), ("search", "db")]

    def test_edges_across_counts_both_directions(self):
        graph = ApplicationGraph.from_edges([("a", "b"), ("b", "a_peer")])
        graph.add_service("a_peer")
        crossing = graph.edges_across(["a", "a_peer"], ["b"])
        assert sorted(crossing) == [("a", "b"), ("b", "a_peer")]

    def test_overlapping_groups_rejected(self, diamond):
        with pytest.raises(RecipeError, match="overlap"):
            diamond.edges_across(["web", "db"], ["db"])

    def test_unknown_member_rejected(self, diamond):
        with pytest.raises(RecipeError):
            diamond.edges_across(["web"], ["ghost"])

    def test_to_networkx_is_a_copy(self, diamond):
        nx_graph = diamond.to_networkx()
        nx_graph.add_node("extra")
        assert "extra" not in diamond
