"""Tests for Application/Deployment assembly and the service runtime."""

import pytest

from repro.errors import RecipeError
from repro.http import HttpRequest, HttpResponse
from repro.loadgen import ClosedLoopLoad
from repro.microservice import (
    Application,
    PolicySpec,
    ServiceDefinition,
    fanout_handler,
    static_handler,
)

from tests.conftest import run_to_completion


def build_chain_app():
    app = Application("chain")
    app.add_service(
        ServiceDefinition(
            "front",
            handler=fanout_handler(["mid"]),
            dependencies={"mid": PolicySpec(timeout=2.0)},
        )
    )
    app.add_service(
        ServiceDefinition(
            "mid",
            handler=fanout_handler(["back"]),
            dependencies={"back": PolicySpec(timeout=2.0)},
        )
    )
    app.add_service(ServiceDefinition("back"))
    return app


class TestApplicationDefinition:
    def test_duplicate_service_rejected(self):
        app = Application("x")
        app.add_service(ServiceDefinition("a"))
        with pytest.raises(RecipeError):
            app.add_service(ServiceDefinition("a"))

    def test_undefined_dependency_rejected_at_deploy(self):
        app = Application("x")
        app.add_service(
            ServiceDefinition("a", dependencies={"ghost": PolicySpec.naive()})
        )
        with pytest.raises(RecipeError, match="ghost"):
            app.deploy()

    def test_logical_graph_derived(self):
        graph = build_chain_app().logical_graph()
        assert graph.dependents("back") == ["mid"]
        assert graph.dependencies("front") == ["mid"]

    def test_definition_validation(self):
        with pytest.raises(ValueError):
            ServiceDefinition("")
        with pytest.raises(ValueError):
            ServiceDefinition("a", instances=0)
        with pytest.raises(ValueError):
            ServiceDefinition("a", worker_pool=0)


class TestDeployment:
    def test_instances_and_agents_created(self):
        app = build_chain_app()
        deployment = app.deploy(seed=3)
        assert len(deployment.instances_of("front")) == 1
        # front and mid have dependencies -> sidecars; back does not.
        assert len(deployment.agents) == 2
        assert deployment.agents_of("back") == []

    def test_replicas_get_distinct_hosts(self):
        app = Application("x")
        app.add_service(ServiceDefinition("a", instances=3))
        deployment = app.deploy()
        hosts = {instance.host.name for instance in deployment.instances_of("a")}
        assert len(hosts) == 3

    def test_registry_contains_all_instances(self):
        app = Application("x")
        app.add_service(ServiceDefinition("a", instances=2))
        deployment = app.deploy()
        assert len(deployment.registry.instances("a")) == 2

    def test_unknown_service_lookup_raises(self):
        deployment = build_chain_app().deploy()
        with pytest.raises(RecipeError):
            deployment.instances_of("ghost")
        with pytest.raises(RecipeError):
            deployment.agents_of("ghost")

    def test_end_to_end_chain_call(self):
        deployment = build_chain_app().deploy(seed=1)
        source = deployment.add_traffic_source("front")
        result = ClosedLoopLoad(num_requests=3).run(source)
        assert result.success_rate == 1.0
        # Every hop was observed by a sidecar.
        assert len(deployment.store) > 0
        front_mid = [
            r
            for r in deployment.store.all_records()
            if r.src == "front" and r.dst == "mid"
        ]
        assert len(front_mid) == 6  # 3 requests + 3 replies

    def test_round_robin_across_replicas(self):
        app = Application("x")
        app.add_service(
            ServiceDefinition(
                "front",
                handler=fanout_handler(["back"]),
                dependencies={"back": PolicySpec.naive()},
            )
        )
        app.add_service(ServiceDefinition("back", instances=2))
        deployment = app.deploy()
        source = deployment.add_traffic_source("front")
        ClosedLoopLoad(num_requests=4).run(source)
        served = [
            instance.server.requests_served
            for instance in deployment.instances_of("back")
        ]
        assert served == [2, 2]

    def test_traffic_source_in_graph_and_agents(self):
        deployment = build_chain_app().deploy()
        deployment.add_traffic_source("front", name="user")
        assert "user" in deployment.graph
        assert len(deployment.agents_of("user")) == 1

    def test_duplicate_traffic_source_rejected(self):
        deployment = build_chain_app().deploy()
        deployment.add_traffic_source("front")
        with pytest.raises(RecipeError):
            deployment.add_traffic_source("front")

    def test_traffic_source_unknown_target_rejected(self):
        deployment = build_chain_app().deploy()
        with pytest.raises(RecipeError):
            deployment.add_traffic_source("ghost")


class TestWorkerPool:
    def test_worker_pool_queues_excess_requests(self):
        app = Application("x")
        app.add_service(
            ServiceDefinition("slow", service_time=1.0, worker_pool=1)
        )
        deployment = app.deploy()
        source = deployment.add_traffic_source("slow")
        sim = deployment.sim
        finish_times = []

        def one(sim):
            request = HttpRequest("GET", "/x")
            request.request_id = "test-1"
            yield from source.client.call(request)
            finish_times.append(sim.now)

        sim.process(one(sim))
        sim.process(one(sim))
        sim.run()
        # Second request waited for the single worker: ~2s not ~1s.
        assert sorted(round(t) for t in finish_times) == [1, 2]
        assert deployment.instances_of("slow")[0].queued_requests == 1


class TestServiceContext:
    def test_undeclared_dependency_raises(self):
        app = Application("x")

        def handler(ctx, request):
            yield from ctx.work()
            yield from ctx.call("ghost", HttpRequest("GET", "/x"))
            return HttpResponse(200)

        app.add_service(ServiceDefinition("a", handler=handler))
        deployment = app.deploy()
        source = deployment.add_traffic_source("a")
        result = ClosedLoopLoad(num_requests=1).run(source)
        # KeyError inside the handler surfaces as a 500 to the caller.
        assert result.statuses == [500]

    def test_state_shared_across_requests(self):
        app = Application("x")

        def handler(ctx, request):
            yield from ctx.work()
            count = ctx.state.get("hits", 0) + 1
            ctx.state["hits"] = count
            return HttpResponse(200, body=str(count).encode())

        app.add_service(ServiceDefinition("counter", handler=handler))
        deployment = app.deploy()
        source = deployment.add_traffic_source("counter")
        load = ClosedLoopLoad(num_requests=3)
        load.run(source)
        assert [s.status for s in load.result.samples] == [200, 200, 200]
        instance = deployment.instances_of("counter")[0]
        assert instance.ctx.state["hits"] == 3

    def test_request_id_propagates_through_chain(self):
        deployment = build_chain_app().deploy()
        source = deployment.add_traffic_source("front")
        sim = deployment.sim

        def one(sim):
            request = HttpRequest("GET", "/x")
            request.request_id = "test-777"
            yield from source.client.call(request)

        run_to_completion(sim, one(sim))
        mid_back = [
            r
            for r in deployment.store.all_records()
            if r.src == "mid" and r.dst == "back"
        ]
        assert mid_back
        assert all(r.request_id == "test-777" for r in mid_back)
