"""Sidecar-less deployments: the proxy-overhead ablation baseline."""

import pytest

from repro.apps import build_twotier
from repro.core import Gremlin, Overload
from repro.errors import OrchestrationError
from repro.loadgen import ClosedLoopLoad


def deploy(instances_b=2):
    deployment = build_twotier(instances_b=instances_b).deploy(seed=55, sidecars=False)
    source = deployment.add_traffic_source("ServiceA")
    return deployment, source


class TestDirectWiring:
    def test_calls_work_without_agents(self):
        deployment, source = deploy()
        result = ClosedLoopLoad(num_requests=4).run(source)
        assert result.success_rate == 1.0
        assert deployment.agents == []

    def test_client_side_round_robin(self):
        deployment, source = deploy(instances_b=2)
        ClosedLoopLoad(num_requests=6).run(source)
        served = [i.server.requests_served for i in deployment.instances_of("ServiceB")]
        assert served == [3, 3]

    def test_nothing_is_observed(self):
        deployment, source = deploy()
        ClosedLoopLoad(num_requests=3).run(source)
        # No agents -> no observation records: the deployment is blind,
        # which is exactly why the paper deploys sidecars.
        assert len(deployment.store) == 0

    def test_fault_injection_impossible(self):
        deployment, _source = deploy()
        gremlin = Gremlin(deployment)
        with pytest.raises(OrchestrationError, match="no Gremlin agent"):
            gremlin.inject(Overload("ServiceB"))
