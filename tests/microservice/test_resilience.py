"""Unit tests for the four resilience patterns."""

import pytest

from repro.errors import BulkheadFullError
from repro.microservice import (
    BreakerState,
    Bulkhead,
    CircuitBreaker,
    PolicySpec,
    RetryPolicy,
    TimeoutPolicy,
)


class TestTimeoutPolicy:
    def test_holds_value(self):
        assert TimeoutPolicy(1.5).timeout == 1.5

    @pytest.mark.parametrize("bad", [0, -1])
    def test_rejects_non_positive(self, bad):
        with pytest.raises(ValueError):
            TimeoutPolicy(bad)


class TestRetryPolicy:
    def test_attempt_accounting(self):
        policy = RetryPolicy(max_retries=5)
        assert policy.max_attempts == 6

    def test_exponential_backoff(self):
        policy = RetryPolicy(3, backoff_base=0.1, backoff_factor=2.0)
        assert policy.backoff(0) == pytest.approx(0.1)
        assert policy.backoff(1) == pytest.approx(0.2)
        assert policy.backoff(2) == pytest.approx(0.4)

    def test_backoff_clamped(self):
        policy = RetryPolicy(10, backoff_base=1.0, backoff_factor=10.0, max_backoff=5.0)
        assert policy.backoff(5) == 5.0

    def test_zero_retries_allowed(self):
        assert RetryPolicy(0).max_attempts == 1

    def test_jitter_adds_bounded_noise(self):
        import random

        policy = RetryPolicy(1, backoff_base=1.0, jitter=0.5)
        rng = random.Random(0)
        for _ in range(20):
            value = policy.backoff(0, rng=rng)
            assert 1.0 <= value <= 1.5

    def test_no_jitter_is_deterministic_without_rng(self):
        policy = RetryPolicy(1, backoff_base=1.0)
        assert policy.backoff(0) == policy.backoff(0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(max_retries=-1),
            dict(max_retries=1, backoff_base=-1),
            dict(max_retries=1, backoff_factor=0.5),
            dict(max_retries=1, jitter=2.0),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_negative_retry_index_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(1).backoff(-1)


class TestCircuitBreaker:
    def test_starts_closed(self, sim):
        assert CircuitBreaker(sim).state == BreakerState.CLOSED

    def test_trips_after_threshold(self, sim):
        breaker = CircuitBreaker(sim, failure_threshold=3)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == BreakerState.CLOSED
        breaker.record_failure()
        assert breaker.state == BreakerState.OPEN
        assert not breaker.allow_request()

    def test_success_resets_consecutive_count(self, sim):
        breaker = CircuitBreaker(sim, failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == BreakerState.CLOSED

    def test_half_open_after_recovery_timeout(self, sim):
        breaker = CircuitBreaker(sim, failure_threshold=1, recovery_timeout=10.0)
        breaker.record_failure()
        assert breaker.state == BreakerState.OPEN
        sim.run(until=10.0)
        assert breaker.state == BreakerState.HALF_OPEN
        assert breaker.allow_request()

    def test_half_open_limits_trial_calls(self, sim):
        breaker = CircuitBreaker(
            sim, failure_threshold=1, recovery_timeout=1.0, half_open_max_calls=1
        )
        breaker.record_failure()
        sim.run(until=1.0)
        assert breaker.allow_request()
        assert not breaker.allow_request()  # trial slot taken

    def test_half_open_success_closes(self, sim):
        breaker = CircuitBreaker(sim, failure_threshold=1, recovery_timeout=1.0)
        breaker.record_failure()
        sim.run(until=1.0)
        assert breaker.allow_request()
        breaker.record_success()
        assert breaker.state == BreakerState.CLOSED

    def test_half_open_needs_success_threshold(self, sim):
        breaker = CircuitBreaker(
            sim,
            failure_threshold=1,
            recovery_timeout=1.0,
            success_threshold=2,
            half_open_max_calls=2,
        )
        breaker.record_failure()
        sim.run(until=1.0)
        assert breaker.allow_request()
        breaker.record_success()
        assert breaker.state == BreakerState.HALF_OPEN
        assert breaker.allow_request()
        breaker.record_success()
        assert breaker.state == BreakerState.CLOSED

    def test_half_open_failure_reopens(self, sim):
        breaker = CircuitBreaker(sim, failure_threshold=1, recovery_timeout=1.0)
        breaker.record_failure()
        sim.run(until=1.0)
        assert breaker.allow_request()
        breaker.record_failure()
        assert breaker.state == BreakerState.OPEN
        # Timer restarted: still open shortly after.
        sim.run(until=1.5)
        assert breaker.state == BreakerState.OPEN
        sim.run(until=2.0)
        assert breaker.state == BreakerState.HALF_OPEN

    def test_transition_log(self, sim):
        breaker = CircuitBreaker(sim, failure_threshold=1, recovery_timeout=1.0)
        breaker.record_failure()
        sim.run(until=1.0)
        _ = breaker.state
        states = [state for _t, state in breaker.transitions]
        assert states == [BreakerState.OPEN, BreakerState.HALF_OPEN]

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(failure_threshold=0),
            dict(recovery_timeout=0),
            dict(success_threshold=0),
            dict(half_open_max_calls=0),
        ],
    )
    def test_validation(self, sim, kwargs):
        with pytest.raises(ValueError):
            CircuitBreaker(sim, **kwargs)


class TestBulkhead:
    def test_acquire_release(self, sim):
        bulkhead = Bulkhead(sim, 2)
        bulkhead.acquire()
        bulkhead.acquire()
        assert bulkhead.in_use == 2
        bulkhead.release()
        assert bulkhead.available == 1

    def test_rejects_when_full(self, sim):
        bulkhead = Bulkhead(sim, 1)
        bulkhead.acquire()
        with pytest.raises(BulkheadFullError):
            bulkhead.acquire()
        assert bulkhead.rejected == 1

    def test_capacity_validation(self, sim):
        with pytest.raises(ValueError):
            Bulkhead(sim, 0)


class TestPolicySpec:
    def test_naive_builds_empty_policy(self, sim):
        policy = PolicySpec.naive().build(sim)
        assert policy.timeout is None
        assert policy.retry is None
        assert policy.breaker is None
        assert policy.bulkhead is None
        assert policy.max_attempts == 1
        assert policy.attempt_timeout is None
        assert policy.describe() == "naive"

    def test_hardened_builds_all_patterns(self, sim):
        policy = PolicySpec.hardened().build(sim)
        assert policy.timeout is not None
        assert policy.retry is not None
        assert policy.breaker is not None
        assert policy.bulkhead is not None
        assert "timeout" in policy.describe()

    def test_partial_spec(self, sim):
        policy = PolicySpec(timeout=2.0, max_retries=3).build(sim)
        assert policy.attempt_timeout == 2.0
        assert policy.max_attempts == 4
        assert policy.breaker is None

    def test_fallback_carried(self, sim):
        fallback = lambda request: None  # noqa: E731
        policy = PolicySpec(fallback=fallback).build(sim)
        assert policy.fallback is fallback
