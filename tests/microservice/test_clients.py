"""Unit tests for the policy-wrapped DependencyClient.

Uses a bare HTTP server (no agent in between) so the behaviours of the
resilience policies can be asserted in isolation.
"""

import pytest

from repro.errors import (
    BulkheadFullError,
    CircuitOpenError,
    ConnectionRefusedError_,
)
from repro.http import HttpClient, HttpRequest, HttpResponse, HttpServer
from repro.microservice import PolicySpec
from repro.microservice.clients import DependencyClient
from repro.network import Address, Network

from tests.conftest import run_to_completion


@pytest.fixture
def net(sim):
    return Network(sim, default_latency=0.001)


class FlakyServer:
    """Fails the first ``failures`` requests with 503, then succeeds."""

    def __init__(self, sim, net, failures, name="backend", service_time=0.005):
        self.remaining_failures = failures
        self.requests_seen = 0
        host = net.add_host(name)

        def handler(request):
            yield sim.timeout(service_time)
            self.requests_seen += 1
            if self.remaining_failures > 0:
                self.remaining_failures -= 1
                return HttpResponse(503, body=b"down")
            return HttpResponse(200, body=b"up")

        HttpServer(host, 8080, handler).start()
        self.address = Address(name, 8080)


def make_client(sim, net, spec, target=None, caller_host="caller"):
    host = net.add_host(caller_host)
    return DependencyClient(
        sim,
        HttpClient(host),
        caller="Caller",
        dependency="Backend",
        target=target or Address("backend", 8080),
        policy=spec.build(sim),
    )


def call(sim, client, request=None):
    return run_to_completion(sim, client.call(request or HttpRequest("GET", "/x")))


class TestRetries:
    def test_retries_until_success(self, sim, net):
        server = FlakyServer(sim, net, failures=2)
        client = make_client(sim, net, PolicySpec(max_retries=3, retry_backoff_base=0.01))
        response = call(sim, client)
        assert response.status == 200
        assert server.requests_seen == 3
        assert client.stats.retries == 2

    def test_exhausted_retries_return_last_error_response(self, sim, net):
        server = FlakyServer(sim, net, failures=100)
        client = make_client(sim, net, PolicySpec(max_retries=2, retry_backoff_base=0.01))
        response = call(sim, client)
        assert response.status == 503
        assert server.requests_seen == 3  # 1 + 2 retries, bounded

    def test_no_retry_policy_single_attempt(self, sim, net):
        server = FlakyServer(sim, net, failures=1)
        client = make_client(sim, net, PolicySpec())
        response = call(sim, client)
        assert response.status == 503
        assert server.requests_seen == 1

    def test_4xx_is_not_retried(self, sim, net):
        host = net.add_host("backend")

        def handler(request):
            yield sim.timeout(0.001)
            return HttpResponse(404)

        server = HttpServer(host, 8080, handler).start()
        client = make_client(sim, net, PolicySpec(max_retries=5, retry_backoff_base=0.01))
        response = call(sim, client)
        assert response.status == 404
        assert server.requests_served == 1

    def test_backoff_spacing_is_exponential(self, sim, net):
        FlakyServer(sim, net, failures=100, service_time=0.0)
        client = make_client(
            sim, net, PolicySpec(max_retries=3, retry_backoff_base=0.1, retry_backoff_factor=2.0)
        )
        call(sim, client)
        # 4 attempts; backoffs 0.1 + 0.2 + 0.4 = 0.7 plus small RTTs.
        assert sim.now == pytest.approx(0.7, abs=0.05)

    def test_network_error_retried_then_raised(self, sim, net):
        net.add_host("backend")  # nothing listening -> refused
        client = make_client(sim, net, PolicySpec(max_retries=2, retry_backoff_base=0.01))
        with pytest.raises(ConnectionRefusedError_):
            call(sim, client)
        assert client.stats.attempts == 3


class TestTimeoutPolicyIntegration:
    def test_per_attempt_timeout(self, sim, net):
        FlakyServer(sim, net, failures=0, service_time=2.0)
        client = make_client(sim, net, PolicySpec(timeout=0.1))
        from repro.errors import RequestTimeoutError

        def scenario(sim):
            try:
                yield from client.call(HttpRequest("GET", "/x"))
            except RequestTimeoutError:
                return sim.now

        # The caller gave up at 0.1s even though the server kept going.
        assert run_to_completion(sim, scenario(sim)) == pytest.approx(0.1, abs=0.01)

    def test_timeout_restarts_per_retry(self, sim, net):
        FlakyServer(sim, net, failures=0, service_time=2.0)
        client = make_client(
            sim, net, PolicySpec(timeout=0.1, max_retries=1, retry_backoff_base=0.0)
        )
        from repro.errors import RequestTimeoutError

        def scenario(sim):
            try:
                yield from client.call(HttpRequest("GET", "/x"))
            except RequestTimeoutError:
                return sim.now

        assert run_to_completion(sim, scenario(sim)) == pytest.approx(0.2, abs=0.02)


class TestBreakerIntegration:
    def test_breaker_opens_and_rejects_locally(self, sim, net):
        server = FlakyServer(sim, net, failures=100, service_time=0.001)
        client = make_client(
            sim,
            net,
            PolicySpec(breaker_failure_threshold=3, breaker_recovery_timeout=60.0),
        )
        for _ in range(3):
            response = call(sim, client)
            assert response.status == 503
        with pytest.raises(CircuitOpenError):
            call(sim, client)
        # The open breaker kept the wire silent.
        assert server.requests_seen == 3
        assert client.stats.breaker_rejections == 1

    def test_breaker_open_uses_fallback(self, sim, net):
        server = FlakyServer(sim, net, failures=100, service_time=0.001)
        fallback = lambda request: HttpResponse(200, body=b"cached")  # noqa: E731
        client = make_client(
            sim,
            net,
            PolicySpec(
                breaker_failure_threshold=2,
                breaker_recovery_timeout=60.0,
                fallback=fallback,
            ),
        )
        # Exhausted attempts also fall back, so every call returns the
        # cached body; the third never reaches the wire (breaker open).
        for _ in range(3):
            response = call(sim, client)
            assert response.body == b"cached"
        assert client.stats.fallbacks == 3
        assert client.stats.breaker_rejections == 1
        assert server.requests_seen == 2

    def test_breaker_recovers_after_window(self, sim, net):
        server = FlakyServer(sim, net, failures=2, service_time=0.001)
        client = make_client(
            sim,
            net,
            PolicySpec(breaker_failure_threshold=2, breaker_recovery_timeout=5.0),
        )
        call(sim, client)
        call(sim, client)  # breaker now open; server healthy again
        with pytest.raises(CircuitOpenError):
            call(sim, client)
        sim.run(until=sim.now + 5.0)
        response = call(sim, client)  # half-open probe succeeds
        assert response.status == 200
        response = call(sim, client)  # breaker closed again
        assert response.status == 200
        assert server.requests_seen == 4


class TestBulkheadIntegration:
    def test_bulkhead_rejects_excess_concurrency(self, sim, net):
        FlakyServer(sim, net, failures=0, service_time=1.0)
        client = make_client(sim, net, PolicySpec(bulkhead_max_concurrent=2))
        outcomes = []

        def one_call(sim):
            try:
                response = yield from client.call(HttpRequest("GET", "/x"))
                outcomes.append(response.status)
            except BulkheadFullError:
                outcomes.append("rejected")

        for _ in range(4):
            sim.process(one_call(sim))
        sim.run()
        assert outcomes.count("rejected") == 2
        assert outcomes.count(200) == 2

    def test_bulkhead_full_uses_fallback(self, sim, net):
        FlakyServer(sim, net, failures=0, service_time=1.0)
        fallback = lambda request: HttpResponse(200, body=b"degraded")  # noqa: E731
        client = make_client(
            sim, net, PolicySpec(bulkhead_max_concurrent=1, fallback=fallback)
        )
        bodies = []

        def one_call(sim):
            response = yield from client.call(HttpRequest("GET", "/x"))
            bodies.append(response.body)

        sim.process(one_call(sim))
        sim.process(one_call(sim))
        sim.run()
        assert sorted(bodies) == [b"degraded", b"up"]

    def test_bulkhead_slot_released_after_failure(self, sim, net):
        net.add_host("backend")  # refused connections
        client = make_client(sim, net, PolicySpec(bulkhead_max_concurrent=1))
        for _ in range(3):
            with pytest.raises(ConnectionRefusedError_):
                call(sim, client)
        assert client.policy.bulkhead.in_use == 0


class TestStats:
    def test_stats_accumulate(self, sim, net):
        FlakyServer(sim, net, failures=1, service_time=0.001)
        client = make_client(sim, net, PolicySpec(max_retries=2, retry_backoff_base=0.001))
        call(sim, client)
        assert client.stats.calls == 1
        assert client.stats.attempts == 2
        assert client.stats.successes == 1
        assert client.stats.failures == 1
