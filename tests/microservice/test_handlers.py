"""Unit tests for the reusable handler factories."""

import pytest

from repro.core import Crash, Gremlin, Hang
from repro.loadgen import ClosedLoopLoad
from repro.microservice import (
    Application,
    PolicySpec,
    ServiceDefinition,
    chain_handler,
    fanout_handler,
    proxy_handler,
    static_handler,
)


def deploy_single(handler, extra_services=(), dependencies=None, seed=241):
    app = Application("handlers-demo")
    app.add_service(
        ServiceDefinition(
            "front", handler=handler, dependencies=dependencies or {}
        )
    )
    for definition in extra_services:
        app.add_service(definition)
    deployment = app.deploy(seed=seed)
    source = deployment.add_traffic_source("front")
    return deployment, source


class TestStaticHandler:
    def test_fixed_status_and_body(self):
        _deployment, source = deploy_single(static_handler(status=204, body=b""))
        load = ClosedLoopLoad(num_requests=2)
        load.run(source)
        assert load.result.statuses == [204, 204]


class TestChainHandler:
    def make_chain(self, length=3, seed=242):
        app = Application("chain")
        names = [f"hop-{index}" for index in range(length)]
        for index, name in enumerate(names):
            next_name = names[index + 1] if index + 1 < length else None
            dependencies = (
                {next_name: PolicySpec(timeout=2.0)} if next_name else {}
            )
            app.add_service(
                ServiceDefinition(
                    name, handler=chain_handler(next_name), dependencies=dependencies
                )
            )
        deployment = app.deploy(seed=seed)
        source = deployment.add_traffic_source("hop-0")
        return deployment, source

    def test_chain_relays_success(self):
        _deployment, source = self.make_chain()
        load = ClosedLoopLoad(num_requests=2)
        load.run(source)
        assert load.result.statuses == [200, 200]

    def test_broken_link_becomes_502(self):
        deployment, source = self.make_chain()
        gremlin = Gremlin(deployment)
        gremlin.inject(Crash("hop-2"))
        load = ClosedLoopLoad(num_requests=2)
        load.run(source)
        # hop-1 reports the broken chain; hop-0 relays its status.
        assert load.result.statuses == [502, 502]

    def test_terminator_is_static(self):
        deployment, source = self.make_chain(length=1)
        load = ClosedLoopLoad(num_requests=1)
        load.run(source)
        assert load.result.statuses == [200]


class TestProxyHandler:
    def test_forwards_verbatim(self):
        backend = ServiceDefinition("backend", handler=static_handler(body=b"from-backend"))
        _deployment, source = deploy_single(
            proxy_handler("backend"),
            extra_services=[backend],
            dependencies={"backend": PolicySpec(timeout=2.0)},
        )
        load = ClosedLoopLoad(num_requests=1)
        load.run(source)
        assert load.result.samples[0].status == 200


class TestFanoutHandler:
    def make_fanout(self, partial_ok, seed=243):
        deps = [ServiceDefinition("left"), ServiceDefinition("right")]
        deployment, source = deploy_single(
            fanout_handler(["left", "right"], partial_ok=partial_ok),
            extra_services=deps,
            dependencies={
                "left": PolicySpec(timeout=0.5),
                "right": PolicySpec(timeout=0.5),
            },
            seed=seed,
        )
        return deployment, source

    def test_strict_mode_degrades_on_first_failure(self):
        deployment, source = self.make_fanout(partial_ok=False)
        Gremlin(deployment).inject(Hang("left", interval="1h"))
        load = ClosedLoopLoad(num_requests=1)
        load.run(source)
        assert load.result.statuses == [500]

    def test_partial_ok_mode_reports_degraded_200(self):
        deployment, source = self.make_fanout(partial_ok=True)
        Gremlin(deployment).inject(Hang("left", interval="1h"))
        load = ClosedLoopLoad(num_requests=1)
        load.run(source)
        sample = load.result.samples[0]
        assert sample.status == 200

    def test_all_healthy_is_plain_ok(self):
        _deployment, source = self.make_fanout(partial_ok=True)
        load = ClosedLoopLoad(num_requests=1)
        load.run(source)
        assert load.result.samples[0].ok
