"""Unit tests for latency models."""

import pytest

from repro.network import (
    FixedLatency,
    LognormalLatency,
    NoLatency,
    UniformLatency,
    as_latency,
)
from repro.simulation import Simulator


class TestModels:
    def test_no_latency(self, sim):
        assert NoLatency().sample(sim) == 0.0

    def test_fixed_latency(self, sim):
        assert FixedLatency(0.25).sample(sim) == 0.25

    def test_fixed_rejects_negative(self):
        with pytest.raises(ValueError):
            FixedLatency(-0.1)

    def test_uniform_bounds(self, sim):
        model = UniformLatency(0.001, 0.002)
        for _ in range(100):
            assert 0.001 <= model.sample(sim) <= 0.002

    def test_uniform_validates_range(self):
        with pytest.raises(ValueError):
            UniformLatency(0.5, 0.1)
        with pytest.raises(ValueError):
            UniformLatency(-0.1, 0.2)

    def test_lognormal_floor(self, sim):
        model = LognormalLatency(mu=-10, sigma=0.1, floor=0.005)
        for _ in range(50):
            assert model.sample(sim) >= 0.005

    def test_lognormal_validates(self):
        with pytest.raises(ValueError):
            LognormalLatency(0, -1)
        with pytest.raises(ValueError):
            LognormalLatency(0, 1, floor=-1)

    def test_determinism_across_runs(self):
        def draws(seed):
            sim = Simulator(seed=seed)
            model = UniformLatency(0, 1)
            return [model.sample(sim) for _ in range(10)]

        assert draws(3) == draws(3)
        assert draws(3) != draws(4)


class TestCoercion:
    def test_none_becomes_no_latency(self):
        assert isinstance(as_latency(None), NoLatency)

    def test_float_becomes_fixed(self):
        model = as_latency(0.004)
        assert isinstance(model, FixedLatency)
        assert model.delay == 0.004

    def test_model_passes_through(self):
        model = FixedLatency(0.1)
        assert as_latency(model) is model
