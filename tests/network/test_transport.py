"""Unit tests for the simulated transport: connect, send/recv, faults."""

import pytest

from repro.errors import (
    ConnectionRefusedError_,
    ConnectionResetError_,
    ConnectionTimeoutError,
    HostUnreachableError,
    NetworkError,
)
from repro.network import Address, Network
from repro.simulation import ChannelClosed

from tests.conftest import run_to_completion


@pytest.fixture
def net(sim):
    return Network(sim, default_latency=0.001)


@pytest.fixture
def two_hosts(net):
    return net.add_host("alpha"), net.add_host("beta")


class TestTopology:
    def test_duplicate_host_rejected(self, net):
        net.add_host("x")
        with pytest.raises(NetworkError):
            net.add_host("x")

    def test_unknown_host_lookup_raises(self, net):
        with pytest.raises(HostUnreachableError):
            net.host("ghost")

    def test_has_host(self, net):
        net.add_host("x")
        assert net.has_host("x")
        assert not net.has_host("y")

    def test_duplicate_port_bind_rejected(self, net):
        host = net.add_host("x")
        host.listen(80)
        with pytest.raises(NetworkError):
            host.listen(80)

    def test_rebind_after_close(self, net):
        host = net.add_host("x")
        listener = host.listen(80)
        listener.close()
        host.listen(80)  # must not raise


class TestConnect:
    def test_connect_and_exchange(self, sim, net, two_hosts):
        alpha, beta = two_hosts
        listener = beta.listen(80)
        exchanges = []

        def server(sim):
            conn = yield listener.accept()
            data = yield conn.recv()
            conn.send(b"pong:" + data)

        def client(sim):
            conn = yield alpha.connect(Address("beta", 80))
            conn.send(b"ping")
            reply = yield conn.recv()
            exchanges.append((reply, sim.now))

        sim.process(server(sim))
        sim.process(client(sim))
        sim.run()
        # 1 RTT handshake + 1 RTT exchange = 4 x 1ms one-way latency.
        assert exchanges == [(b"pong:ping", pytest.approx(0.004))]

    def test_connect_refused_when_no_listener(self, sim, net, two_hosts):
        alpha, _beta = two_hosts

        def client(sim):
            try:
                yield alpha.connect(Address("beta", 81))
            except ConnectionRefusedError_:
                return sim.now

        # Refusal arrives after one RTT, not after the full timeout.
        assert run_to_completion(sim, client(sim)) == pytest.approx(0.002)

    def test_connect_unknown_host_times_out(self, sim, net, two_hosts):
        alpha, _ = two_hosts

        def client(sim):
            try:
                yield alpha.connect(Address("ghost", 80), timeout=2.0)
            except HostUnreachableError:
                return sim.now

        assert run_to_completion(sim, client(sim)) == pytest.approx(2.0)

    def test_connect_to_closed_listener_refused(self, sim, net, two_hosts):
        alpha, beta = two_hosts
        listener = beta.listen(80)
        listener.close()

        def client(sim):
            try:
                yield alpha.connect(Address("beta", 80))
            except ConnectionRefusedError_:
                return "refused"

        assert run_to_completion(sim, client(sim)) == "refused"

    def test_loopback_connect(self, sim, net):
        host = net.add_host("solo")
        listener = host.listen(9000)
        results = []

        def server(sim):
            conn = yield listener.accept()
            data = yield conn.recv()
            conn.send(data.upper())

        def client(sim):
            conn = yield host.connect(Address("localhost", 9000))
            conn.send(b"hi")
            results.append((yield conn.recv()))

        sim.process(server(sim))
        sim.process(client(sim))
        sim.run()
        assert results == [b"HI"]


class TestPartition:
    def test_connect_blackholed_by_partition(self, sim, net, two_hosts):
        alpha, beta = two_hosts
        beta.listen(80)
        net.partition("alpha", "beta")

        def client(sim):
            try:
                yield alpha.connect(Address("beta", 80), timeout=1.5)
            except ConnectionTimeoutError:
                return sim.now

        assert run_to_completion(sim, client(sim)) == pytest.approx(1.5)

    def test_in_flight_messages_dropped(self, sim, net, two_hosts):
        alpha, beta = two_hosts
        listener = beta.listen(80)
        received = []

        def server(sim):
            conn = yield listener.accept()
            while True:
                try:
                    received.append((yield conn.recv()))
                except (ChannelClosed, ConnectionResetError_):
                    return

        def client(sim):
            conn = yield alpha.connect(Address("beta", 80))
            conn.send(b"before")
            yield sim.timeout(0.01)
            net.partition("alpha", "beta")
            conn.send(b"during")  # dropped silently
            yield sim.timeout(0.01)
            net.heal("alpha", "beta")
            conn.send(b"after")
            yield sim.timeout(0.01)
            conn.close()

        sim.process(server(sim))
        sim.process(client(sim))
        sim.run()
        assert received == [b"before", b"after"]

    def test_heal_all(self, net):
        net.partition("a", "b")
        net.partition("c", "d")
        net.heal_all()
        assert not net.is_partitioned("a", "b")
        assert not net.is_partitioned("c", "d")

    def test_partition_is_symmetric(self, net):
        net.partition("a", "b")
        assert net.is_partitioned("b", "a")


class TestCloseAndReset:
    def test_orderly_close_delivers_channel_closed(self, sim, net, two_hosts):
        alpha, beta = two_hosts
        listener = beta.listen(80)

        def server(sim):
            conn = yield listener.accept()
            try:
                yield conn.recv()
            except ChannelClosed:
                return "orderly"

        def client(sim):
            conn = yield alpha.connect(Address("beta", 80))
            conn.close()

        server_proc = sim.process(server(sim))
        sim.process(client(sim))
        sim.run()
        assert server_proc.value == "orderly"

    def test_reset_delivers_reset_error(self, sim, net, two_hosts):
        alpha, beta = two_hosts
        listener = beta.listen(80)

        def server(sim):
            conn = yield listener.accept()
            try:
                yield conn.recv()
            except ConnectionResetError_:
                return "reset"

        def client(sim):
            conn = yield alpha.connect(Address("beta", 80))
            conn.reset()

        server_proc = sim.process(server(sim))
        sim.process(client(sim))
        sim.run()
        assert server_proc.value == "reset"

    def test_send_on_closed_end_raises(self, sim, net, two_hosts):
        alpha, beta = two_hosts
        beta.listen(80)

        def client(sim):
            conn = yield alpha.connect(Address("beta", 80))
            conn.close()
            try:
                conn.send(b"too late")
            except ConnectionResetError_:
                return "rejected"

        assert run_to_completion(sim, client(sim)) == "rejected"

    def test_send_requires_bytes(self, sim, net, two_hosts):
        alpha, beta = two_hosts
        beta.listen(80)

        def client(sim):
            conn = yield alpha.connect(Address("beta", 80))
            try:
                conn.send("text")
            except TypeError:
                return "typeerror"

        assert run_to_completion(sim, client(sim)) == "typeerror"

    def test_send_after_peer_departed_raises_epipe_style(self, sim, net, two_hosts):
        """Writing after the peer closed surfaces as a reset (EPIPE)."""
        alpha, beta = two_hosts
        listener = beta.listen(80)

        def server(sim):
            conn = yield listener.accept()
            yield conn.recv()
            yield sim.timeout(0.5)  # client closes while we think
            try:
                conn.send(b"late reply")
            except ConnectionResetError_:
                return "epipe"

        def client(sim):
            conn = yield alpha.connect(Address("beta", 80))
            conn.send(b"req")
            yield sim.timeout(0.1)
            conn.close()

        server_proc = sim.process(server(sim))
        sim.process(client(sim))
        sim.run()
        assert server_proc.value == "epipe"


class TestLatencyOverrides:
    def test_per_pair_override(self, sim, net):
        alpha = net.add_host("alpha")
        beta = net.add_host("beta")
        net.set_latency("alpha", "beta", 0.5)
        listener = beta.listen(80)
        times = []

        def server(sim):
            conn = yield listener.accept()
            data = yield conn.recv()
            conn.send(data)

        def client(sim):
            conn = yield alpha.connect(Address("beta", 80))
            conn.send(b"x")
            yield conn.recv()
            times.append(sim.now)

        sim.process(server(sim))
        sim.process(client(sim))
        sim.run()
        assert times == [pytest.approx(2.0)]  # 4 one-way hops x 0.5s
