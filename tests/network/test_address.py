"""Unit tests for Address parsing and validation."""

import pytest

from repro.network import LOOPBACK, Address


class TestAddress:
    def test_basic_fields(self):
        address = Address("10.1.1.1", 8080)
        assert address.host == "10.1.1.1"
        assert address.port == 8080

    def test_str_round_trip(self):
        address = Address("db", 5432)
        assert str(address) == "db:5432"
        assert Address.parse(str(address)) == address

    def test_parse_with_default_port(self):
        assert Address.parse("cache", default_port=6379) == Address("cache", 6379)

    def test_parse_missing_port_no_default_raises(self):
        with pytest.raises(ValueError):
            Address.parse("nohost")

    def test_parse_bad_port_raises(self):
        with pytest.raises(ValueError):
            Address.parse("host:notaport")

    def test_empty_host_rejected(self):
        with pytest.raises(ValueError):
            Address("", 80)

    @pytest.mark.parametrize("port", [0, -1, 65536, 100000])
    def test_port_range_enforced(self, port):
        with pytest.raises(ValueError):
            Address("h", port)

    def test_loopback_detection(self):
        assert Address(LOOPBACK, 9000).is_loopback
        assert not Address("10.0.0.1", 9000).is_loopback

    def test_equality_and_hash(self):
        assert Address("a", 1) == Address("a", 1)
        assert Address("a", 1) != Address("a", 2)
        assert len({Address("a", 1), Address("a", 1)}) == 1

    def test_ordering(self):
        assert Address("a", 1) < Address("a", 2) < Address("b", 1)
