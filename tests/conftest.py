"""Shared pytest fixtures and helpers for the test suite."""

from __future__ import annotations

import typing as _t

import pytest

from repro.simulation import Simulator


@pytest.fixture
def sim() -> Simulator:
    """A fresh deterministic simulator."""
    return Simulator(seed=1234)


def run_to_completion(sim: Simulator, generator: _t.Generator, until: float | None = None):
    """Run ``generator`` as a process to completion; return its value.

    Raises the process's failure exception, so tests read naturally::

        response = run_to_completion(sim, client.get(addr, "/x"))
    """
    process = sim.process(generator)
    # The helper consumes the outcome itself, so a failure must not
    # also trip the simulator's strict unhandled-failure accounting.
    process.defused = True
    sim.run(until=until)
    if process.is_alive:
        raise AssertionError(f"process still alive at t={sim.now}")
    if not process.ok:
        raise process.value
    return process.value
