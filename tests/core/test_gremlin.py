"""Tests for the Gremlin facade: declarative recipes and chained use."""

import pytest

from repro.apps import build_twotier
from repro.core import (
    Crash,
    Disconnect,
    Gremlin,
    HasBoundedRetries,
    HasCircuitBreaker,
    Overload,
    Recipe,
)
from repro.errors import RecipeError
from repro.http import HttpResponse
from repro.loadgen import ClosedLoopLoad
from repro.microservice import PolicySpec


def make(policy=None, seed=3):
    deployment = build_twotier(
        policy=policy or PolicySpec(timeout=1.0, max_retries=5, retry_backoff_base=0.02)
    ).deploy(seed=seed)
    source = deployment.add_traffic_source("ServiceA")
    return deployment, source, Gremlin(deployment)


class TestRecipeValidation:
    def test_recipe_requires_scenarios(self):
        with pytest.raises(RecipeError):
            Recipe(name="empty", scenarios=[])

    def test_recipe_requires_name(self):
        with pytest.raises(RecipeError):
            Recipe(name="", scenarios=[Crash("x")])

    def test_recipe_type_checks_scenarios(self):
        with pytest.raises(RecipeError):
            Recipe(name="x", scenarios=["boom"])

    def test_recipe_type_checks_checks(self):
        with pytest.raises(RecipeError):
            Recipe(name="x", scenarios=[Crash("b")], checks=["not a check"])


class TestRunRecipe:
    def test_full_cycle_pass(self):
        deployment, source, gremlin = make()
        load = ClosedLoopLoad(num_requests=1)
        recipe = Recipe(
            name="example-1",
            scenarios=[Disconnect("ServiceA", "ServiceB")],
            checks=[HasBoundedRetries("ServiceA", "ServiceB", 5, window="30s")],
            load=lambda deployment: load.driver(source),
        )
        result = gremlin.run_recipe(recipe)
        assert result.passed
        assert result.orchestration_time > 0
        assert result.assertion_time > 0
        assert result.window[1] > result.window[0]
        # Faults were cleaned up afterwards.
        for agent in deployment.agents:
            assert agent.list_rules() == []

    def test_report_is_readable(self):
        _deployment, source, gremlin = make()
        load = ClosedLoopLoad(num_requests=1)
        recipe = Recipe(
            name="report-demo",
            scenarios=[Overload("ServiceB")],
            checks=[HasBoundedRetries("ServiceA", "ServiceB", 5, window="30s")],
            load=lambda deployment: load.driver(source),
        )
        report = gremlin.run_recipe(recipe).report()
        assert "report-demo" in report
        assert "orchestration" in report
        assert "HasBoundedRetries" in report

    def test_checks_scoped_to_recipe_window(self):
        """Traffic from an earlier recipe must not leak into the next."""
        deployment, source, gremlin = make(
            policy=PolicySpec(timeout=1.0, max_retries=50, retry_backoff_base=0.001,
                              retry_backoff_factor=1.0)
        )
        load1 = ClosedLoopLoad(num_requests=1)
        bad = gremlin.run_recipe(
            Recipe(
                name="unbounded-run",
                scenarios=[Disconnect("ServiceA", "ServiceB")],
                checks=[HasBoundedRetries("ServiceA", "ServiceB", 5, window="30s")],
                load=lambda deployment: load1.driver(source),
            )
        )
        assert not bad.passed
        # Second recipe: no load at all -> inconclusive, not polluted by
        # the 51 requests of the previous run.
        second = gremlin.run_recipe(
            Recipe(
                name="empty-window",
                scenarios=[Disconnect("ServiceA", "ServiceB")],
                checks=[HasBoundedRetries("ServiceA", "ServiceB", 5, window="30s")],
            )
        )
        assert second.checks[0].inconclusive

    def test_failures_listed(self):
        _deployment, source, gremlin = make(policy=PolicySpec(timeout=1.0, max_retries=50,
                                                              retry_backoff_base=0.001,
                                                              retry_backoff_factor=1.0))
        load = ClosedLoopLoad(num_requests=1)
        result = gremlin.run_recipe(
            Recipe(
                name="fails",
                scenarios=[Disconnect("ServiceA", "ServiceB")],
                checks=[HasBoundedRetries("ServiceA", "ServiceB", 5, window="30s")],
                load=lambda deployment: load.driver(source),
            )
        )
        assert len(result.failures) == 1


class TestChainedFailures:
    def test_paper_section_4_2_chained_style(self):
        """Overload -> bounded retries? -> Crash -> circuit breaker?

        The imperative chaining of paper Section 4.2, written exactly as
        an operator would.
        """
        deployment, source, gremlin = make(
            policy=PolicySpec(
                timeout=0.5,
                max_retries=5,
                retry_backoff_base=0.02,
                breaker_failure_threshold=5,
                breaker_recovery_timeout=5.0,
                fallback=lambda request: HttpResponse(200, body=b"cached"),
            ),
            seed=13,
        )
        sim = deployment.sim

        # Step 1: overload, verify bounded retries.
        gremlin.inject(Overload("ServiceB", abort_fraction=1.0))
        ClosedLoopLoad(num_requests=1).run(source)
        step1 = gremlin.check(HasBoundedRetries("ServiceA", "ServiceB", 5, window="30s"))
        gremlin.clear()
        assert step1.passed, step1.detail

        # Step 1 tripped ServiceA's breaker; give it healthy traffic
        # past the recovery window so the circuit closes again before
        # the next experiment (state persists across faults — as in a
        # real deployment).
        sim.run(until=sim.now + 6.0)
        ClosedLoopLoad(num_requests=3, think_time=0.1, uri="/warm").run(source)

        # Step 2: escalate to a crash, verify the circuit breaker.
        window_start = sim.now
        gremlin.inject(Crash("ServiceB"))
        ClosedLoopLoad(num_requests=60, think_time=0.2).run(source)
        step2 = gremlin.check(
            HasCircuitBreaker("ServiceA", "ServiceB", threshold=5, tdelta="4s"),
            since=window_start,
        )
        gremlin.clear()
        assert step2.passed, step2.data.get("trace")

    def test_query_helpers(self):
        deployment, source, gremlin = make()
        ClosedLoopLoad(num_requests=2).run(source)
        assert len(gremlin.get_requests("ServiceA", "ServiceB")) == 2
        assert len(gremlin.get_replies("ServiceA", "ServiceB")) == 2
        assert gremlin.get_requests("ServiceA", "ServiceB", id_pattern="user-*") == []
