"""Unit tests for scenario decomposition (paper Section 5 recipes)."""

import pytest

from repro.agent import FaultType, TCP_RESET
from repro.core import (
    AbortCalls,
    Crash,
    Degrade,
    DelayCalls,
    Disconnect,
    FakeSuccess,
    Hang,
    ModifyReplies,
    NetworkPartition,
    Overload,
)
from repro.errors import RecipeError
from repro.microservice import ApplicationGraph


@pytest.fixture
def graph():
    # publishers -> messagebus -> cassandra; dashboard -> cassandra
    return ApplicationGraph.from_edges(
        [
            ("publisher", "messagebus"),
            ("messagebus", "cassandra"),
            ("dashboard", "cassandra"),
        ]
    )


class TestPrimitiveScenarios:
    def test_abort_calls(self, graph):
        rules = AbortCalls("messagebus", "cassandra", error=503).decompose(graph)
        assert len(rules) == 1
        assert rules[0].fault_type == FaultType.ABORT
        assert (rules[0].src, rules[0].dst) == ("messagebus", "cassandra")

    def test_delay_calls_accepts_duration_strings(self, graph):
        rules = DelayCalls("messagebus", "cassandra", interval="250ms").decompose(graph)
        assert rules[0].interval == pytest.approx(0.25)

    def test_modify_replies(self, graph):
        rules = ModifyReplies("messagebus", "cassandra", "key", "badkey").decompose(graph)
        assert rules[0].fault_type == FaultType.MODIFY
        assert rules[0].on == "response"

    def test_unknown_service_fails_fast(self, graph):
        with pytest.raises(RecipeError):
            AbortCalls("ghost", "cassandra").decompose(graph)


class TestDisconnect:
    def test_single_edge_abort(self, graph):
        rules = Disconnect("messagebus", "cassandra").decompose(graph)
        assert len(rules) == 1
        assert rules[0].error == 503
        assert rules[0].probability == 1.0


class TestCrash:
    def test_resets_from_all_dependents(self, graph):
        rules = Crash("cassandra").decompose(graph)
        assert {rule.src for rule in rules} == {"messagebus", "dashboard"}
        assert all(rule.error == TCP_RESET for rule in rules)
        assert all(rule.probability == 1.0 for rule in rules)

    def test_transient_crash_via_probability(self, graph):
        rules = Crash("cassandra", probability=0.3).decompose(graph)
        assert all(rule.probability == 0.3 for rule in rules)

    def test_crash_without_dependents_rejected(self, graph):
        with pytest.raises(RecipeError, match="dependents"):
            Crash("publisher").decompose(graph)


class TestHangAndDegrade:
    def test_hang_uses_long_delay(self, graph):
        rules = Hang("cassandra").decompose(graph)
        assert all(rule.fault_type == FaultType.DELAY for rule in rules)
        assert all(rule.interval == 3600.0 for rule in rules)

    def test_degrade_is_delay_only(self, graph):
        rules = Degrade("cassandra", interval="2s").decompose(graph)
        assert all(rule.fault_type == FaultType.DELAY for rule in rules)
        assert all(rule.interval == 2.0 for rule in rules)


class TestOverload:
    def test_decomposes_to_abort_then_delay(self, graph):
        rules = Overload("cassandra").decompose(graph)
        by_src = {}
        for rule in rules:
            by_src.setdefault(rule.src, []).append(rule)
        for src, src_rules in by_src.items():
            assert [r.fault_type for r in src_rules] == [FaultType.ABORT, FaultType.DELAY]
            assert src_rules[0].probability == 0.25
            assert src_rules[1].probability == 1.0  # disjoint 25/75 split
            assert src_rules[1].interval == pytest.approx(0.1)

    def test_pure_abort_overload(self, graph):
        rules = Overload("cassandra", abort_fraction=1.0).decompose(graph)
        assert all(rule.fault_type == FaultType.ABORT for rule in rules)

    def test_pure_delay_overload(self, graph):
        rules = Overload("cassandra", abort_fraction=0.0).decompose(graph)
        assert all(rule.fault_type == FaultType.DELAY for rule in rules)

    def test_fraction_validated(self):
        with pytest.raises(RecipeError):
            Overload("x", abort_fraction=1.5)


class TestNetworkPartition:
    def test_cut_edges_get_resets(self, graph):
        rules = NetworkPartition(
            ["publisher", "messagebus", "dashboard"], ["cassandra"]
        ).decompose(graph)
        pairs = {(rule.src, rule.dst) for rule in rules}
        assert pairs == {("messagebus", "cassandra"), ("dashboard", "cassandra")}
        assert all(rule.error == TCP_RESET for rule in rules)

    def test_empty_cut_rejected(self, graph):
        with pytest.raises(RecipeError, match="no edges"):
            NetworkPartition(["publisher"], ["dashboard"]).decompose(graph)


class TestFakeSuccess:
    def test_modify_rules_toward_all_dependents(self, graph):
        rules = FakeSuccess("cassandra", pattern="key", replace_bytes="badkey").decompose(graph)
        assert {rule.src for rule in rules} == {"messagebus", "dashboard"}
        assert all(rule.fault_type == FaultType.MODIFY for rule in rules)
        assert all(rule.on == "response" for rule in rules)

    def test_describe_strings(self, graph):
        for scenario in (
            Crash("cassandra"),
            Overload("cassandra"),
            Hang("cassandra"),
            Disconnect("messagebus", "cassandra"),
            FakeSuccess("cassandra"),
        ):
            assert scenario.kind in scenario.describe() or "(" in scenario.describe()
