"""End-to-end tests for the pattern checks (Table 3, bottom block).

Every check is exercised both ways: against a service that *has* the
pattern (check passes) and one that lacks it (check fails) — the
pass/fail contrast is the paper's entire value proposition.
"""

import pytest

from repro.apps import build_twotier
from repro.core import (
    Crash,
    Degrade,
    Disconnect,
    Gremlin,
    HasBoundedRetries,
    HasBulkhead,
    HasCircuitBreaker,
    HasTimeouts,
    Overload,
)
from repro.http import HttpRequest, HttpResponse
from repro.loadgen import ClosedLoopLoad
from repro.microservice import (
    Application,
    PolicySpec,
    ServiceDefinition,
    fanout_handler,
)


def run_load(deployment, source, n=20, think=0.01):
    load = ClosedLoopLoad(num_requests=n, think_time=think)
    load.run(source)
    return load.result


class TestHasBoundedRetries:
    def make(self, policy):
        deployment = build_twotier(policy=policy).deploy(seed=5)
        source = deployment.add_traffic_source("ServiceA")
        return deployment, source, Gremlin(deployment)

    def test_bounded_client_passes(self):
        deployment, source, gremlin = self.make(
            PolicySpec(timeout=1.0, max_retries=5, retry_backoff_base=0.02)
        )
        gremlin.inject(Disconnect("ServiceA", "ServiceB"))
        run_load(deployment, source, n=1)
        result = gremlin.check(HasBoundedRetries("ServiceA", "ServiceB", 5, window="30s"))
        assert result.passed, result.detail

    def test_unbounded_client_fails(self):
        deployment, source, gremlin = self.make(
            PolicySpec(timeout=1.0, max_retries=50, retry_backoff_base=0.001, retry_backoff_factor=1.0)
        )
        gremlin.inject(Disconnect("ServiceA", "ServiceB"))
        run_load(deployment, source, n=1)
        result = gremlin.check(HasBoundedRetries("ServiceA", "ServiceB", 5, window="30s"))
        assert not result.passed
        assert not result.inconclusive

    def test_inconclusive_without_failures(self):
        deployment, source, gremlin = self.make(PolicySpec(max_retries=2))
        run_load(deployment, source, n=3)  # no fault injected
        result = gremlin.check(HasBoundedRetries("ServiceA", "ServiceB", 5))
        assert not result.passed
        assert result.inconclusive

    def test_inconclusive_without_traffic(self):
        deployment, _source, gremlin = self.make(PolicySpec(max_retries=2))
        result = gremlin.check(HasBoundedRetries("ServiceA", "ServiceB", 5))
        assert result.inconclusive


class TestHasCircuitBreaker:
    def make(self, policy):
        deployment = build_twotier(policy=policy).deploy(seed=6)
        source = deployment.add_traffic_source("ServiceA")
        return deployment, source, Gremlin(deployment)

    def test_breaker_client_passes(self):
        deployment, source, gremlin = self.make(
            PolicySpec(
                timeout=1.0,
                breaker_failure_threshold=5,
                breaker_recovery_timeout=10.0,
                fallback=lambda request: HttpResponse(200, body=b"cached"),
            )
        )
        gremlin.inject(Crash("ServiceB"))
        # Drive steady load: the breaker trips after 5 failures, keeps
        # the wire silent for its 10s window, then probes again.
        run_load(deployment, source, n=60, think=0.25)
        result = gremlin.check(
            HasCircuitBreaker("ServiceA", "ServiceB", threshold=5, tdelta="9s")
        )
        assert result.passed, result.data.get("trace")

    def test_naive_client_fails(self):
        deployment, source, gremlin = self.make(PolicySpec(timeout=1.0))
        gremlin.inject(Crash("ServiceB"))
        run_load(deployment, source, n=60, think=0.25)
        result = gremlin.check(
            HasCircuitBreaker("ServiceA", "ServiceB", threshold=5, tdelta="9s")
        )
        assert not result.passed
        assert not result.inconclusive

    def test_inconclusive_without_enough_failures(self):
        deployment, source, gremlin = self.make(PolicySpec(timeout=1.0))
        run_load(deployment, source, n=3)
        result = gremlin.check(HasCircuitBreaker("ServiceA", "ServiceB", threshold=5, tdelta="5s"))
        assert result.inconclusive


class TestHasTimeouts:
    def make(self, policy):
        deployment = build_twotier(policy=policy).deploy(seed=7)
        source = deployment.add_traffic_source("ServiceA")
        return deployment, source, Gremlin(deployment)

    def test_timeout_client_passes(self):
        deployment, source, gremlin = self.make(
            PolicySpec(timeout=0.3, fallback=lambda request: HttpResponse(200, body=b"degraded"))
        )
        gremlin.inject(Degrade("ServiceB", interval="5s"))
        run_load(deployment, source, n=5)
        result = gremlin.check(HasTimeouts("ServiceA", "1s"))
        assert result.passed, result.detail

    def test_naive_client_fails(self):
        deployment, source, gremlin = self.make(PolicySpec())
        gremlin.inject(Degrade("ServiceB", interval="5s"))
        run_load(deployment, source, n=5)
        result = gremlin.check(HasTimeouts("ServiceA", "1s"))
        assert not result.passed
        assert result.data["slow"] == 5

    def test_inconclusive_without_upstream_observations(self):
        deployment = build_twotier().deploy()
        gremlin = Gremlin(deployment)
        result = gremlin.check(HasTimeouts("ServiceA", "1s"))
        assert result.inconclusive


class TestHasBulkhead:
    def make(self, bulkhead):
        """front calls slow + fast; optional per-dependency bulkhead."""
        slow_policy = PolicySpec(
            timeout=None if not bulkhead else 10.0,
            bulkhead_max_concurrent=2 if bulkhead else None,
            fallback=(lambda request: HttpResponse(200, body=b"shed")) if bulkhead else None,
        )
        app = Application("bulkhead-demo")

        def front_handler(ctx, request):
            yield from ctx.work()
            # Query both backends; the page tolerates a failed slow call.
            try:
                yield from ctx.call("slow", HttpRequest("GET", "/s"), parent=request)
            except Exception:  # noqa: BLE001
                pass
            reply = yield from ctx.call("fast", HttpRequest("GET", "/f"), parent=request)
            return HttpResponse(reply.status, body=b"page")

        app.add_service(
            ServiceDefinition(
                "front",
                handler=front_handler,
                dependencies={"slow": slow_policy, "fast": PolicySpec(timeout=1.0)},
                worker_pool=4,
            )
        )
        app.add_service(ServiceDefinition("slow"))
        app.add_service(ServiceDefinition("fast"))
        deployment = app.deploy(seed=8)
        source = deployment.add_traffic_source("front")
        return deployment, source, Gremlin(deployment)

    def drive_open_loop(self, deployment, source, rate=20.0, duration=5.0):
        from repro.loadgen import OpenLoopLoad

        OpenLoopLoad(rate=rate, duration=duration).run(source)

    def test_bulkhead_keeps_other_dependents_served(self):
        deployment, source, gremlin = self.make(bulkhead=True)
        gremlin.inject(Degrade("slow", interval="10s"))
        self.drive_open_loop(deployment, source)
        result = gremlin.check(HasBulkhead("front", "slow", rate=5.0))
        assert result.passed, result.detail

    def test_no_bulkhead_starves_other_dependents(self):
        deployment, source, gremlin = self.make(bulkhead=False)
        gremlin.inject(Degrade("slow", interval="10s"))
        self.drive_open_loop(deployment, source)
        result = gremlin.check(HasBulkhead("front", "slow", rate=5.0))
        assert not result.passed

    def test_inconclusive_without_other_dependents(self):
        deployment = build_twotier().deploy()
        source = deployment.add_traffic_source("ServiceA")
        gremlin = Gremlin(deployment)
        run_load(deployment, source, n=2)
        result = gremlin.check(HasBulkhead("ServiceA", "ServiceB", rate=1.0))
        assert result.inconclusive

    def test_rate_validated(self):
        with pytest.raises(ValueError):
            HasBulkhead("a", "b", rate=0)
