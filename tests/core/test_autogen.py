"""Tests for automatic recipe generation (paper Section 9 future work)."""

from repro.apps import build_enterprise_app, build_twotier
from repro.core import EdgeAnnotation, Gremlin, generate_recipes
from repro.loadgen import ClosedLoopLoad
from repro.microservice import ApplicationGraph


class TestGeneration:
    def test_generates_overload_recipe_per_called_service(self):
        graph = ApplicationGraph.from_edges([("a", "b"), ("b", "c")])
        recipes = generate_recipes(graph)
        names = [recipe.name for recipe in recipes]
        assert "auto/overload-b" in names
        assert "auto/overload-c" in names
        assert "auto/overload-a" not in names  # nothing calls a

    def test_skip_annotation_respected(self):
        graph = ApplicationGraph.from_edges([("a", "b")])
        recipes = generate_recipes(graph, annotations={"b": EdgeAnnotation(skip=True)})
        assert recipes == []

    def test_high_criticality_adds_crash_recipe(self):
        graph = ApplicationGraph.from_edges([("a", "b")])
        default = generate_recipes(graph)
        critical = generate_recipes(
            graph, annotations={"b": EdgeAnnotation(criticality="high")}
        )
        assert not any("crash" in recipe.name for recipe in default)
        assert any(recipe.name == "auto/crash-b" for recipe in critical)

    def test_bulkhead_recipe_only_for_multi_dependency_callers(self):
        single = ApplicationGraph.from_edges([("a", "b")])
        multi = ApplicationGraph.from_edges([("a", "b"), ("a", "c")])
        assert not any("degrade" in r.name for r in generate_recipes(single))
        assert any(r.name == "auto/degrade-b" for r in generate_recipes(multi))

    def test_high_criticality_adds_storm_and_gray_recipes(self):
        graph = ApplicationGraph.from_edges([("a", "b"), ("b", "c")])
        critical = generate_recipes(
            graph, annotations={"c": EdgeAnnotation(criticality="high")}
        )
        names = [recipe.name for recipe in critical]
        assert "auto/retrystorm-c" in names
        # c's only caller b is an intermediate node, so the gray-failure
        # recipe has a timeout check to carry.
        assert "auto/grayfailure-c" in names

    def test_shed_capacity_adds_exhaustion_recipe(self):
        graph = ApplicationGraph.from_edges([("a", "b")])
        assert not any(
            "exhaust" in recipe.name for recipe in generate_recipes(graph)
        )
        recipes = generate_recipes(
            graph, annotations={"b": EdgeAnnotation(shed_capacity=3)}
        )
        exhaust = next(r for r in recipes if r.name == "auto/exhaust-b")
        assert exhaust.scenarios[0].shed_after == 3

    def test_config_risk_and_control_annotations(self):
        graph = ApplicationGraph.from_edges([("a", "b")])
        recipes = generate_recipes(
            graph,
            annotations={"b": EdgeAnnotation(config_risk=True, control=True)},
        )
        names = [recipe.name for recipe in recipes]
        assert "auto/misconfig-b" in names
        control = next(r for r in recipes if r.name == "auto/control-b")
        assert control.checks, "a control recipe without checks calibrates nothing"

    def test_enterprise_graph_coverage(self):
        deployment = build_enterprise_app().deploy()
        recipes = generate_recipes(deployment.graph)
        faulted = {recipe.name.split("-", 1)[1] for recipe in recipes}
        # Every called service gets at least one generated recipe.
        for service in ("searchservice", "activityservice", "servicedb", "github"):
            assert service in faulted


class TestGeneratedRecipesExecute:
    def test_generated_overload_recipe_runs_end_to_end(self):
        deployment = build_twotier().deploy(seed=9)
        source = deployment.add_traffic_source("ServiceA")
        gremlin = Gremlin(deployment)
        recipes = generate_recipes(deployment.graph)
        overload = next(r for r in recipes if r.name == "auto/overload-ServiceB")

        load = ClosedLoopLoad(num_requests=1)
        from repro.core import Recipe

        runnable = Recipe(
            name=overload.name,
            scenarios=overload.scenarios,
            checks=overload.checks,
            load=lambda deployment: load.driver(source),
        )
        result = gremlin.run_recipe(runnable)
        # The default twotier client retries 5 times -> check passes.
        assert result.checks, "generated recipe must carry checks"
