"""Tests for the Chaos-Monkey baseline injector."""

import pytest

from repro.apps import build_enterprise_app, build_twotier
from repro.core.chaos import ChaosMonkey
from repro.loadgen import ClosedLoopLoad


class TestConstruction:
    def test_defaults_to_all_services(self):
        deployment = build_enterprise_app().deploy(seed=121)
        monkey = ChaosMonkey(deployment)
        assert set(monkey.candidates) == set(deployment.instances)

    def test_validation(self):
        deployment = build_twotier().deploy(seed=122)
        with pytest.raises(ValueError):
            ChaosMonkey(deployment, mean_interval=0)
        with pytest.raises(ValueError):
            ChaosMonkey(deployment, outage_duration=0)
        with pytest.raises(ValueError):
            ChaosMonkey(deployment, candidates=[])


class TestKills:
    def test_kill_once_stops_and_restarts(self):
        deployment = build_twotier().deploy(seed=123)
        sim = deployment.sim
        monkey = ChaosMonkey(deployment, candidates=["ServiceB"], outage_duration=1.0)
        event = monkey.kill_once()
        assert event.service == "ServiceB"
        assert not deployment.instances_of("ServiceB")[0].running
        sim.run(until=1.5)
        assert deployment.instances_of("ServiceB")[0].running

    def test_killed_service_refuses_traffic(self):
        deployment = build_twotier().deploy(seed=124)
        source = deployment.add_traffic_source("ServiceA")
        monkey = ChaosMonkey(deployment, candidates=["ServiceB"], outage_duration=30.0)
        monkey.kill_once()
        load = ClosedLoopLoad(num_requests=2)
        load.run(source)
        # ServiceA's bounded retries exhausted against the dead service.
        assert all(status == 500 for status in load.result.statuses)

    def test_rampage_records_events(self):
        deployment = build_enterprise_app().deploy(seed=125)
        source = deployment.add_traffic_source("webapp")
        monkey = ChaosMonkey(deployment, mean_interval=2.0, outage_duration=1.0)
        monkey.unleash(duration=30.0)
        ClosedLoopLoad(num_requests=50, think_time=0.5).run(source)
        assert monkey.events, "randomized injector should have killed something"
        assert all(0 <= event.start <= 30.0 for event in monkey.events)

    def test_double_unleash_rejected(self):
        deployment = build_twotier().deploy(seed=126)
        monkey = ChaosMonkey(deployment)
        monkey.unleash(duration=5.0)
        with pytest.raises(RuntimeError):
            monkey.unleash(duration=5.0)
        deployment.sim.run()

    def test_explicit_seed_determinism_regression(self):
        """Same monkey seed => identical ChaosEvent sequence.

        The kill schedule is the monkey's own draws only, so it must
        reproduce exactly even across deployments with *different*
        simulator seeds.
        """

        def kills(monkey_seed, sim_seed):
            deployment = build_enterprise_app().deploy(seed=sim_seed)
            monkey = ChaosMonkey(
                deployment, mean_interval=2.0, outage_duration=0.5, seed=monkey_seed
            )
            monkey.unleash(duration=40.0)
            deployment.sim.run()
            return monkey.events

        assert kills(11, sim_seed=1) == kills(11, sim_seed=2)
        assert kills(11, sim_seed=1) != kills(12, sim_seed=1)

    def test_explicit_seed_does_not_draw_from_sim_stream(self):
        deployment = build_twotier().deploy(seed=130)
        stream = deployment.sim.rng("chaosmonkey")
        before = stream.getstate()
        monkey = ChaosMonkey(deployment, candidates=["ServiceB"], seed=99)
        monkey.unleash(duration=10.0)
        deployment.sim.run()
        assert monkey.events
        assert stream.getstate() == before

    def test_deterministic_given_seed(self):
        def kills(seed):
            deployment = build_enterprise_app().deploy(seed=seed)
            source = deployment.add_traffic_source("webapp")
            monkey = ChaosMonkey(deployment, mean_interval=2.0, outage_duration=0.5)
            monkey.unleash(duration=20.0)
            ClosedLoopLoad(num_requests=30, think_time=0.5).run(source)
            return [(event.service, round(event.start, 6)) for event in monkey.events]

        assert kills(7) == kills(7)
        assert kills(7) != kills(8)
