"""Tests for the Recipe Translator and Failure Orchestrator."""

import pytest

from repro.apps import build_twotier
from repro.core import Crash, Overload, RecipeTranslator
from repro.core.orchestrator import FailureOrchestrator
from repro.errors import OrchestrationError, RecipeError
from repro.microservice import ApplicationGraph, PolicySpec


@pytest.fixture
def graph():
    return ApplicationGraph.from_edges([("ServiceA", "ServiceB")])


class TestTranslator:
    def test_single_scenario(self, graph):
        rules = RecipeTranslator(graph).translate(Overload("ServiceB"))
        assert len(rules) == 2  # abort + delay

    def test_scenario_sequence_preserves_order(self, graph):
        translator = RecipeTranslator(graph)
        rules = translator.translate([Overload("ServiceB"), Crash("ServiceB")])
        assert [rule.fault_type for rule in rules] == ["abort", "delay", "abort"]

    def test_empty_recipe_rejected(self, graph):
        with pytest.raises(RecipeError):
            RecipeTranslator(graph).translate([])

    def test_non_scenario_rejected(self, graph):
        with pytest.raises(RecipeError):
            RecipeTranslator(graph).translate(["not a scenario"])

    def test_affected_sources_deduplicated(self, graph):
        translator = RecipeTranslator(graph)
        rules = translator.translate([Overload("ServiceB"), Crash("ServiceB")])
        assert translator.affected_sources(rules) == ["ServiceA"]


class TestOrchestrator:
    def test_rules_reach_every_instance_of_source(self):
        deployment = build_twotier(instances_a=2).deploy()
        orchestrator = FailureOrchestrator(deployment.agents)
        rules = RecipeTranslator(deployment.graph).translate(Overload("ServiceB"))
        report = orchestrator.apply(rules)
        # Paper Fig 3: both ServiceA instances' agents get programmed.
        assert report.agents_programmed == 2
        assert report.rules_installed == 4  # 2 rules x 2 agents
        assert report.wall_time > 0
        for agent in deployment.agents_of("ServiceA"):
            assert len(agent.list_rules()) == 2

    def test_missing_agent_is_hard_error(self):
        deployment = build_twotier().deploy()
        orchestrator = FailureOrchestrator(deployment.agents)
        from repro.agent import abort

        with pytest.raises(OrchestrationError, match="no Gremlin agent"):
            orchestrator.apply([abort("ServiceB", "ServiceA")])  # B has no sidecar

    def test_clear_all(self):
        deployment = build_twotier().deploy()
        orchestrator = FailureOrchestrator(deployment.agents)
        rules = RecipeTranslator(deployment.graph).translate(Overload("ServiceB"))
        orchestrator.apply(rules)
        orchestrator.clear_all()
        for agent in deployment.agents:
            assert agent.list_rules() == []

    def test_channels_for(self):
        deployment = build_twotier(instances_a=3).deploy()
        orchestrator = FailureOrchestrator(deployment.agents)
        assert len(orchestrator.channels_for("ServiceA")) == 3
        assert orchestrator.channels_for("ServiceB") == []

    def test_partial_failure_rolls_back(self):
        """If rule 2 cannot be placed, rule 1 must not stay injected."""
        deployment = build_twotier().deploy()
        orchestrator = FailureOrchestrator(deployment.agents)
        from repro.agent import abort

        good = abort("ServiceA", "ServiceB")
        bad = abort("ServiceB", "ServiceA")  # ServiceB has no sidecar
        with pytest.raises(OrchestrationError):
            orchestrator.apply([good, bad])
        for agent in deployment.agents:
            assert agent.list_rules() == [], "failed apply must roll back"

    def test_rules_cross_wire_boundary(self):
        """Installed rules are re-parsed copies, not shared objects."""
        deployment = build_twotier().deploy()
        orchestrator = FailureOrchestrator(deployment.agents)
        rules = RecipeTranslator(deployment.graph).translate(Overload("ServiceB"))
        orchestrator.apply(rules)
        installed = deployment.agents_of("ServiceA")[0].list_rules()
        assert installed[0] is not rules[0]
        assert installed[0].fault_type == rules[0].fault_type
