"""Unit tests for the memoizing QueryCache and check scope grouping."""

from repro.core import (
    HasBoundedRetries,
    HasCircuitBreaker,
    HasTimeouts,
    QueryCache,
)
from repro.core.queries import get_requests
from repro.logstore import EventStore, ObservationKind, Query

from tests.core.test_assertions import request_record


class _CountingStore(EventStore):
    """EventStore that counts how many scans it actually performs."""

    def __init__(self):
        super().__init__()
        self.searches = 0

    def search(self, query):
        self.searches += 1
        return super().search(query)


def _store_with_failures():
    store = _CountingStore()
    for index in range(8):
        store.append(
            request_record(float(index), status=503 if index < 5 else 200, rid=f"test-{index}")
        )
    return store


class TestQueryCache:
    def test_distinct_query_fetched_once(self):
        store = _store_with_failures()
        cache = QueryCache(store)
        query = Query(kind=ObservationKind.REQUEST, src="A", dst="B")
        first = cache.search(query)
        second = cache.search(query)
        assert first is second  # the shared slice, not a refetch
        assert store.searches == 1
        assert cache.misses == 1 and cache.hits == 1

    def test_empty_result_is_cached_too(self):
        store = _store_with_failures()
        cache = QueryCache(store)
        query = Query(src="X", dst="Y")
        assert cache.search(query) == []
        assert cache.search(query) == []
        assert store.searches == 1

    def test_count_shares_the_cached_fetch(self):
        store = _store_with_failures()
        cache = QueryCache(store)
        query = Query(kind=ObservationKind.REQUEST, src="A", dst="B")
        assert cache.count(query) == 8
        cache.search(query)
        assert store.searches == 1

    def test_get_requests_accepts_cache(self):
        store = _store_with_failures()
        cache = QueryCache(store)
        via_cache = get_requests(cache, "A", "B")
        via_store = get_requests(store, "A", "B")
        assert via_cache == via_store


class TestScopeGrouping:
    def test_same_edge_checks_share_one_fetch(self):
        """HasBoundedRetries and HasCircuitBreaker on one edge declare
        the same (src, dst, kind) scope and must share a single scan."""
        store = _store_with_failures()
        cache = QueryCache(store)
        retries = HasBoundedRetries("A", "B", max_tries=10, window="10s")
        breaker = HasCircuitBreaker("A", "B", tdelta="1s", check_recovery=False)
        assert retries.scopes() == breaker.scopes()
        retries.run(cache)
        breaker.run(cache)
        assert store.searches == 1
        assert cache.hits >= 1

    def test_scopes_match_the_queries_run_issues(self):
        """Every check's declared scopes are exactly what run() fetches
        — required for the facade's prefetch to dedupe correctly."""
        checks = [
            HasBoundedRetries("A", "B", max_tries=10, window="10s"),
            HasCircuitBreaker("A", "B", tdelta="1s", check_recovery=False),
            HasTimeouts("B", "1s"),
        ]
        for check in checks:
            store = _store_with_failures()
            cache = QueryCache(store)
            for scope in check.scopes(since=None, until=None):
                cache.search(scope)
            warmed = store.searches
            check.run(cache)
            assert store.searches == warmed, check.name

    def test_results_identical_through_cache_and_store(self):
        checks = [
            HasBoundedRetries("A", "B", max_tries=10, window="10s"),
            HasCircuitBreaker("A", "B", tdelta="1s", check_recovery=False),
            HasTimeouts("B", "1s"),
        ]
        for check in checks:
            direct = check.run(_store_with_failures())
            cached = check.run(QueryCache(_store_with_failures()))
            assert direct.passed == cached.passed
            assert direct.detail == cached.detail
