"""Tests for the batch recipe runner and suite report."""

from repro.apps import build_twotier
from repro.core import Disconnect, Gremlin, HasBoundedRetries, Overload, Recipe
from repro.loadgen import ClosedLoopLoad
from repro.microservice import PolicySpec


def build(max_retries=5):
    deployment = build_twotier(
        policy=PolicySpec(timeout=1.0, max_retries=max_retries, retry_backoff_base=0.02)
    ).deploy(seed=191)
    source = deployment.add_traffic_source("ServiceA")
    return deployment, source, Gremlin(deployment)


def make_recipe(name, source, scenario):
    load = ClosedLoopLoad(num_requests=1)
    return Recipe(
        name=name,
        scenarios=[scenario],
        checks=[HasBoundedRetries("ServiceA", "ServiceB", 5, window="30s")],
        load=lambda deployment: load.driver(source),
    )


class TestRunRecipes:
    def test_suite_runs_in_order(self):
        _deployment, source, gremlin = build()
        recipes = [
            make_recipe("r1", source, Disconnect("ServiceA", "ServiceB")),
            make_recipe("r2", source, Overload("ServiceB", abort_fraction=1.0)),
        ]
        results = gremlin.run_recipes(recipes, settle_between=1.0)
        assert [result.recipe.name for result in results] == ["r1", "r2"]
        assert all(result.passed for result in results)
        # Windows must not overlap.
        assert results[0].window[1] <= results[1].window[0]

    def test_settle_between_advances_clock(self):
        deployment, source, gremlin = build()
        recipes = [
            make_recipe("r1", source, Disconnect("ServiceA", "ServiceB")),
            make_recipe("r2", source, Disconnect("ServiceA", "ServiceB")),
        ]
        results = gremlin.run_recipes(recipes, settle_between=10.0)
        assert results[1].window[0] - results[0].window[1] >= 10.0

    def test_suite_report_format(self):
        _deployment, source, gremlin = build(max_retries=50)
        recipes = [make_recipe("storm", source, Disconnect("ServiceA", "ServiceB"))]
        results = gremlin.run_recipes(recipes)
        text = Gremlin.suite_report(results)
        assert "[FAIL] storm" in text
        assert "0/1 recipes passed" in text
