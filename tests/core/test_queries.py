"""Direct unit tests for the query layer (GetRequests / GetReplies)."""

import pytest

from repro.core.queries import get_replies, get_requests, observed_latency, observed_status
from repro.logstore import EventStore

from tests.core.test_assertions import reply_record, request_record


@pytest.fixture
def store():
    store = EventStore()
    store.append(request_record(1.0, status=200, rid="test-1"))
    store.append(reply_record(1.1))
    store.append(request_record(2.0, status=503, fault="abort(503)", rid="test-2"))
    store.append(reply_record(2.1, status=503, gremlin=True))
    store.append(request_record(3.0, status=200, rid="user-7"))
    store.append(reply_record(3.1))
    return store


class TestGetRequests:
    def test_all_requests_sorted(self, store):
        rlist = get_requests(store, "A", "B")
        assert [record.timestamp for record in rlist] == [1.0, 2.0, 3.0]

    def test_id_pattern_filter(self, store):
        rlist = get_requests(store, "A", "B", id_pattern="test-*")
        assert len(rlist) == 2

    def test_time_window(self, store):
        rlist = get_requests(store, "A", "B", since=1.5, until=2.5)
        assert [record.timestamp for record in rlist] == [2.0]

    def test_unknown_pair_empty(self, store):
        assert get_requests(store, "X", "Y") == []


class TestGetReplies:
    def test_replies_only(self, store):
        rlist = get_replies(store, "A", "B")
        assert all(record.is_reply for record in rlist)
        assert len(rlist) == 3

    def test_window_and_pattern_compose(self, store):
        rlist = get_replies(store, "A", "B", id_pattern="test-*", until=1.5)
        assert len(rlist) == 1


class TestObservedViews:
    def test_status_none_stays_none(self):
        record = request_record(1.0)
        assert observed_status(record, True) is None
        assert observed_status(record, False) is None

    def test_latency_on_request_record_is_none(self):
        record = request_record(1.0, status=200)
        assert observed_latency(record, True) is None

    def test_delay_fault_keeps_status_in_untampered_view(self):
        # A delayed-but-delivered call's status is the callee's own.
        record = request_record(1.0, status=200, fault="delay(1)")
        assert observed_status(record, False) == 200

    def test_abort_fault_blanks_status_in_untampered_view(self):
        record = request_record(1.0, status=503, fault="delay(1)+abort(503)")
        assert observed_status(record, False) is None
