"""Unit tests for queries, base assertions and Combine (Table 3)."""

import pytest

from repro.core import (
    AtLeastRequests,
    AtMostRequests,
    CheckStatus,
    Combine,
    NoRequestsFor,
    combine,
    num_requests,
    reply_latency,
    request_rate,
)
from repro.core.queries import observed_latency, observed_status
from repro.logstore import ObservationRecord


def request_record(ts, status=None, fault=None, rid="test-1", gremlin=False):
    return ObservationRecord(
        timestamp=ts,
        kind="request",
        src="A",
        dst="B",
        request_id=rid,
        status=status,
        fault_applied=fault,
        gremlin_generated=gremlin,
    )


def reply_record(ts, status=200, latency=0.01, injected=0.0, gremlin=False):
    return ObservationRecord(
        timestamp=ts,
        kind="reply",
        src="A",
        dst="B",
        request_id="test-1",
        status=status,
        latency=latency,
        injected_delay=injected,
        gremlin_generated=gremlin,
    )


class TestObservedViews:
    def test_caller_view_includes_gremlin_status(self):
        record = request_record(1.0, status=503, fault="abort(503)")
        assert observed_status(record, with_rule=True) == 503
        assert observed_status(record, with_rule=False) is None

    def test_callee_view_keeps_real_status(self):
        record = request_record(1.0, status=503)  # real 503 from the callee
        assert observed_status(record, with_rule=False) == 503

    def test_delayed_but_delivered_status_counts_in_both_views(self):
        record = request_record(1.0, status=200, fault="delay(3)")
        assert observed_status(record, with_rule=True) == 200
        assert observed_status(record, with_rule=False) == 200

    def test_latency_views(self):
        record = reply_record(1.0, latency=3.05, injected=3.0)
        assert observed_latency(record, with_rule=True) == pytest.approx(3.05)
        assert observed_latency(record, with_rule=False) == pytest.approx(0.05)

    def test_synthesized_reply_excluded_from_callee_view(self):
        record = reply_record(1.0, status=503, gremlin=True)
        assert observed_latency(record, with_rule=False) is None
        assert observed_status(record, with_rule=False) is None


class TestNumRequests:
    def test_counts_all(self):
        rlist = [request_record(float(i)) for i in range(5)]
        assert num_requests(rlist) == 5

    def test_tdelta_window_from_first_record(self):
        rlist = [request_record(t) for t in (0.0, 10.0, 30.0, 61.0)]
        assert num_requests(rlist, tdelta="1min") == 3

    def test_with_rule_false_excludes_synthesized(self):
        rlist = [reply_record(0.0), reply_record(1.0, gremlin=True)]
        assert num_requests(rlist, with_rule=True) == 2
        assert num_requests(rlist, with_rule=False) == 1

    def test_aborted_requests_still_count(self):
        # The caller really sent them — both views count request records.
        rlist = [request_record(0.0, status=503, fault="abort(503)")]
        assert num_requests(rlist, with_rule=False) == 1

    def test_empty_list(self):
        assert num_requests([]) == 0


class TestReplyLatency:
    def test_observed_latencies(self):
        rlist = [reply_record(0.0, latency=1.0), reply_record(1.0, latency=2.0)]
        assert reply_latency(rlist) == [1.0, 2.0]

    def test_untampered_latencies(self):
        rlist = [
            reply_record(0.0, latency=3.01, injected=3.0),
            reply_record(1.0, latency=0.5, gremlin=True),
        ]
        assert reply_latency(rlist, with_rule=False) == [pytest.approx(0.01)]

    def test_records_without_latency_skipped(self):
        assert reply_latency([request_record(0.0)]) == []


class TestRequestRate:
    def test_rate_computed_over_span(self):
        rlist = [request_record(float(i)) for i in range(11)]  # 10s span, 11 reqs
        assert request_rate(rlist) == pytest.approx(1.0)

    def test_degenerate_lists(self):
        assert request_rate([]) == 0.0
        assert request_rate([request_record(1.0)]) == 0.0
        assert request_rate([request_record(1.0), request_record(1.0)]) == 0.0


class TestCheckStatus:
    def test_standalone_pass_fail(self):
        rlist = [request_record(float(i), status=503, fault="abort(503)") for i in range(5)]
        assert CheckStatus(503, 5, True)(rlist)
        assert not CheckStatus(503, 6, True)(rlist)

    def test_with_rule_false_ignores_synthesized(self):
        rlist = [request_record(float(i), status=503, fault="abort(503)") for i in range(5)]
        assert not CheckStatus(503, 1, False)(rlist)

    def test_consumes_through_nth_match(self):
        rlist = (
            [request_record(0.0, status=200)]
            + [request_record(float(i + 1), status=503) for i in range(3)]
            + [request_record(10.0, status=200)]
        )
        outcome = CheckStatus(503, 3, True).evaluate(rlist, None)
        assert outcome.passed
        assert outcome.consumed == 4  # the leading 200 + three 503s
        assert outcome.anchor == 3.0

    def test_num_match_validated(self):
        with pytest.raises(ValueError):
            CheckStatus(503, 0)


class TestWindowAssertions:
    def test_at_most_requests(self):
        rlist = [request_record(t) for t in (0.0, 1.0, 2.0, 100.0)]
        assert AtMostRequests("1min", True, 3)(rlist)
        assert not AtMostRequests("1min", True, 2)(rlist)

    def test_at_least_requests(self):
        rlist = [request_record(t) for t in (0.0, 1.0)]
        assert AtLeastRequests("1min", True, 2)(rlist)
        assert not AtLeastRequests("1min", True, 3)(rlist)

    def test_no_requests_for(self):
        assert NoRequestsFor("1min")([])
        assert not NoRequestsFor("1min")([request_record(0.0)])

    def test_anchor_shifts_window(self):
        rlist = [request_record(t) for t in (10.0, 30.0)]
        outcome = AtMostRequests("15s", True, 1).evaluate(rlist, anchor=0.0)
        # Window [0, 15]: only the t=10 record falls inside.
        assert outcome.passed
        assert outcome.consumed == 1
        assert outcome.anchor == 15.0

    def test_num_validated(self):
        with pytest.raises(ValueError):
            AtMostRequests("1s", True, -1)


class TestCombine:
    def make_breaker_trace(self, silent=True):
        """5 failures, then (optionally) silence, then recovery probes."""
        records = [request_record(float(i), status=503, fault="abort(503)") for i in range(5)]
        if not silent:
            records += [request_record(5.0 + i * 0.1, status=503) for i in range(20)]
        records += [request_record(70.0, status=200), request_record(71.0, status=200)]
        return records

    def test_paper_circuit_breaker_combination_passes(self):
        rlist = self.make_breaker_trace(silent=True)
        assert combine(
            rlist,
            (CheckStatus, 503, 5, True),
            (AtMostRequests, "1min", False, 0),
        )

    def test_paper_circuit_breaker_combination_fails_without_silence(self):
        rlist = self.make_breaker_trace(silent=False)
        assert not combine(
            rlist,
            (CheckStatus, 503, 5, True),
            (AtMostRequests, "1min", False, 0),
        )

    def test_consumed_records_not_double_counted(self):
        # 5 failures then exactly MaxTries more requests in the window.
        rlist = [request_record(float(i), status=503, fault="abort(503)") for i in range(5)]
        rlist += [request_record(5.0 + i, status=503, fault="abort(503)") for i in range(3)]
        assert combine(
            rlist,
            (CheckStatus, 503, 5, True),
            (AtMostRequests, "1min", True, 3),
        )
        assert not combine(
            rlist,
            (CheckStatus, 503, 5, True),
            (AtMostRequests, "1min", True, 2),
        )

    def test_accepts_instances_and_tuples(self):
        rlist = [request_record(0.0, status=503)]
        result = Combine(CheckStatus(503, 1, True), (AtMostRequests, "1s", True, 5)).evaluate(rlist)
        assert result.passed
        assert len(result.steps) == 2

    def test_short_circuits_on_failure(self):
        rlist = [request_record(0.0, status=200)]
        result = Combine(
            CheckStatus(503, 1, True), AtMostRequests("1s", True, 0)
        ).evaluate(rlist)
        assert not result.passed
        assert len(result.steps) == 1  # second step never ran

    def test_explain_mentions_each_step(self):
        rlist = [request_record(0.0, status=503)]
        result = Combine(CheckStatus(503, 1, True)).evaluate(rlist)
        assert "step 1" in result.explain()
        assert "PASS" in result.explain()

    def test_empty_combine_rejected(self):
        with pytest.raises(ValueError):
            Combine()

    def test_bad_step_type_rejected(self):
        with pytest.raises(TypeError):
            Combine("nonsense")

    def test_three_stage_chain(self):
        rlist = self.make_breaker_trace(silent=True)
        result = Combine(
            (CheckStatus, 503, 5, True),
            (AtMostRequests, "1min", True, 0),
            (AtLeastRequests, "30s", True, 2),
        ).evaluate(rlist)
        assert result.passed, result.explain()
