"""Regression: span propagation survives Modify faults.

A Modify rule rewrites message payloads via ``request.copy()`` /
``response.copy()`` — if a copy ever dropped or detached headers, the
``X-Gremlin-Span-Id`` chain would break and traces of tampered
requests would come back as forests with orphan diagnostics.  These
tests tamper both directions on a two-hop chain and assert the causal
tree still reconstructs completely, with the modified edge correctly
attributed.
"""

from repro.agent.rules import modify
from repro.apps import build_tree_app
from repro.core import Gremlin
from repro.http.headers import SPAN_ID_HEADER
from repro.http.message import HttpRequest
from repro.loadgen import ClosedLoopLoad
from repro.logstore import Query
from repro.observability import reconstruct


def run_modified(rules, requests=3, depth=1, seed=23):
    app = build_tree_app(depth=depth)
    deployment = app.deploy(seed=seed)
    source = deployment.add_traffic_source("svc-0")
    gremlin = Gremlin(deployment)
    gremlin.orchestrator.apply(rules)
    ClosedLoopLoad(num_requests=requests, think_time=0.01).run(source)
    deployment.pipeline.flush()
    return deployment


class TestSpanSurvivesModify:
    def test_response_modify_keeps_trace_complete(self):
        # Depth-1 tree: user -> svc-0 -> {svc-1, svc-2}.
        deployment = run_modified([modify("svc-0", "svc-1", "ok", "tampered")])
        for n in (1, 2, 3):
            trace = reconstruct(deployment.store, f"test-{n}")
            assert trace.span_count == 3
            assert len(trace.roots) == 1
            assert trace.diagnostics == []
            assert all(span.complete for span in trace.spans)
        # The fault actually fired on the tampered edge.
        tampered = deployment.store.search(
            Query(src="svc-0", dst="svc-1", kind="reply")
        )
        assert tampered and all(r.fault_applied == "modify" for r in tampered)

    def test_request_modify_keeps_trace_complete(self):
        deployment = run_modified(
            [modify("user", "svc-0", "", "", on="request")], requests=2
        )
        for n in (1, 2):
            trace = reconstruct(deployment.store, f"test-{n}")
            assert trace.span_count == 3
            assert trace.diagnostics == []
            assert all(span.complete for span in trace.spans)

    def test_parent_child_span_links_survive(self):
        deployment = run_modified([modify("svc-0", "svc-2", "ok", "KO")], requests=1)
        trace = reconstruct(deployment.store, "test-1")
        (root,) = trace.roots
        assert root.span.edge == ("user", "svc-0")
        child_edges = sorted(node.span.edge for node in root.children)
        assert child_edges == [("svc-0", "svc-1"), ("svc-0", "svc-2")]
        for node in root.children:
            assert node.span.parent_span == root.span.span_id

    def test_modified_copy_preserves_span_header(self):
        # Unit-level pin of the mechanism: HttpRequest.copy() keeps
        # headers, so a Modify rewrite cannot lose the span ID.
        request = HttpRequest(
            method="GET", uri="/", headers={SPAN_ID_HEADER: "span-42"}, body=b"payload"
        )
        copy = request.copy()
        copy.body = b"tampered"
        assert copy.headers[SPAN_ID_HEADER] == "span-42"
        assert request.body == b"payload"
