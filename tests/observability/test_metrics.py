"""Unit tests for the metrics registry primitives."""

import threading

import pytest

from repro.errors import MetricsError, ReproError
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    format_series,
    merge_histogram_data,
    merge_snapshots,
)


class TestFormatSeries:
    def test_labels_sorted_canonically(self):
        assert (
            format_series("m", {"b": "2", "a": "1"})
            == format_series("m", {"a": "1", "b": "2"})
            == 'm{a="1",b="2"}'
        )

    def test_no_labels(self):
        assert format_series("up", {}) == "up"


class TestCounter:
    def test_inc_and_value(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5

    def test_threads_do_not_lose_increments(self):
        counter = Counter()

        def hammer():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value() == 8000


class TestGauge:
    def test_set_replaces(self):
        gauge = Gauge()
        assert gauge.value() == 0.0
        gauge.set(2)
        gauge.set(1)
        assert gauge.value() == 1.0


class TestHistogram:
    def test_observations_land_in_correct_buckets(self):
        histogram = Histogram(buckets=(0.1, 1.0))
        histogram.observe(0.05)   # <= 0.1
        histogram.observe(0.1)    # boundary is inclusive
        histogram.observe(0.5)    # <= 1.0
        histogram.observe(100.0)  # overflow
        data = histogram.data()
        assert data["counts"] == [2, 1, 1]
        assert data["count"] == 4
        assert data["min"] == 0.05
        assert data["max"] == 100.0

    def test_non_increasing_buckets_rejected(self):
        with pytest.raises(MetricsError, match="strictly increasing"):
            Histogram(buckets=(1.0, 1.0))
        with pytest.raises(MetricsError):
            Histogram(buckets=())

    def test_empty_histogram_snapshot(self):
        data = Histogram(buckets=(1.0,)).data()
        assert data["count"] == 0
        assert data["min"] is None and data["max"] is None


class TestRegistry:
    def test_same_series_returns_same_metric(self):
        registry = MetricsRegistry()
        a = registry.counter("hits", svc="x")
        b = registry.counter("hits", svc="x")
        assert a is b
        assert registry.counter("hits", svc="y") is not a

    def test_histogram_bucket_conflict_is_loud(self):
        registry = MetricsRegistry()
        registry.histogram("lat", buckets=(1.0, 2.0))
        with pytest.raises(MetricsError, match="already registered"):
            registry.histogram("lat", buckets=(5.0,))
        with pytest.raises(ReproError):  # typed under the repo-wide base
            registry.histogram("lat", buckets=(5.0,))

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("hits", svc="x").inc(3)
        registry.gauge("state").set(2)
        registry.histogram("lat", buckets=(1.0,), svc="x").observe(0.5)
        snap = registry.snapshot()
        assert snap["counters"] == {'hits{svc="x"}': 3.0}
        assert snap["gauges"] == {"state": 2.0}
        assert snap["histograms"]['lat{svc="x"}']["counts"] == [1, 0]


class TestMerge:
    def test_counters_add_gauges_max(self):
        merged = merge_snapshots(
            {"counters": {"c": 1.0}, "gauges": {"g": 2.0}, "histograms": {}},
            {"counters": {"c": 4.0, "d": 1.0}, "gauges": {"g": 1.0}, "histograms": {}},
        )
        assert merged["counters"] == {"c": 5.0, "d": 1.0}
        assert merged["gauges"] == {"g": 2.0}

    def test_histogram_bucket_mismatch_rejected(self):
        left = {"buckets": [1.0], "counts": [0, 0], "count": 0, "sum": 0.0,
                "min": None, "max": None}
        right = dict(left, buckets=[2.0])
        with pytest.raises(MetricsError, match="different buckets"):
            merge_histogram_data(left, right)

    def test_empty_merge(self):
        assert merge_snapshots() == {"counters": {}, "gauges": {}, "histograms": {}}
