"""Unit tests for fault attribution and the exporters."""

import json

from repro.agent.rules import abort, delay
from repro.observability import (
    FaultAttribution,
    attribute_trace,
    to_json,
    to_prometheus,
)
from repro.observability.metrics import MetricsRegistry
from repro.observability.trace import reconstruct_from_records

from tests.observability.test_spans_trace import request_record, reply_record


def faulted_records():
    """user -> a -> b where the a->b call was aborted and a returned 500."""
    return [
        request_record("u#1", None, "user", "a", 0.0),
        request_record("a#1", "u#1", "a", "b", 0.1),
        reply_record(
            "a#1", "u#1", "a", "b", 0.1, latency=0.0, status=503,
            fault_applied="abort(503)", gremlin_generated=True,
        ),
        reply_record("u#1", None, "user", "a", 0.3, latency=0.3, status=500),
    ]


class TestAttributeTrace:
    def test_joins_fault_to_rule_and_path(self):
        trace = reconstruct_from_records("test-1", faulted_records())
        rule = abort(src="a", dst="b", error=503)
        attributions = attribute_trace(trace, [rule])
        assert len(attributions) == 1
        a = attributions[0]
        assert a.fault == "abort(503)"
        assert a.edge == "a -> b"
        assert a.rule_id == rule.rule_id
        assert a.propagation_path == [
            "a -> b (status=503)",
            "user -> a (status=500)",
        ]
        assert a.outcome == "status=500"

    def test_edge_disambiguates_same_shaped_rules(self):
        trace = reconstruct_from_records("test-1", faulted_records())
        decoy = abort(src="x", dst="y", error=503)
        real = abort(src="a", dst="b", error=503)
        (attribution,) = attribute_trace(trace, [decoy, real])
        assert attribution.rule_id == real.rule_id
        assert attribution.rule_id != decoy.rule_id

    def test_unmatched_fault_is_loud(self):
        trace = reconstruct_from_records("test-1", faulted_records())
        wrong = delay(src="a", dst="b", interval=1.0)
        (attribution,) = attribute_trace(trace, [wrong])
        assert attribution.rule_id is None
        assert "NO MATCHING RULE" in attribution.describe()

    def test_clean_trace_yields_nothing(self):
        records = [
            request_record("u#1", None, "user", "a", 0.0),
            reply_record("u#1", None, "user", "a", 0.2, latency=0.2),
        ]
        trace = reconstruct_from_records("test-1", records)
        assert attribute_trace(trace, []) == []

    def test_dict_roundtrip(self):
        trace = reconstruct_from_records("test-1", faulted_records())
        (attribution,) = attribute_trace(trace, [])
        assert FaultAttribution.from_dict(attribution.to_dict()) == attribution


class TestExporters:
    def snapshot(self):
        registry = MetricsRegistry()
        registry.counter("hits_total", svc="a").inc(3)
        registry.gauge("breaker_state", svc="a").set(2)
        histogram = registry.histogram("lat_seconds", buckets=(0.1, 1.0), svc="a")
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(9.0)
        return registry.snapshot()

    def test_json_roundtrips(self):
        snap = self.snapshot()
        assert json.loads(to_json(snap)) == snap

    def test_prometheus_families_and_cumulative_buckets(self):
        text = to_prometheus(self.snapshot())
        assert "# TYPE hits_total counter" in text
        assert '# TYPE breaker_state gauge' in text
        assert "# TYPE lat_seconds histogram" in text
        assert 'hits_total{svc="a"} 3' in text
        # Bucket counts are cumulative and capped by the +Inf bucket.
        assert 'lat_seconds_bucket{svc="a",le="0.1"} 1' in text
        assert 'lat_seconds_bucket{svc="a",le="1.0"} 2' in text
        assert 'lat_seconds_bucket{svc="a",le="+Inf"} 3' in text
        assert 'lat_seconds_count{svc="a"} 3' in text

    def test_unlabelled_series_render_bare(self):
        registry = MetricsRegistry()
        registry.counter("events_total").inc()
        text = to_prometheus(registry.snapshot())
        assert "events_total 1" in text

    def test_empty_snapshot_renders_empty(self):
        assert to_prometheus({"counters": {}, "gauges": {}, "histograms": {}}) == ""
