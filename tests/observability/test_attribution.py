"""Unit tests for fault attribution and the exporters."""

import json

from repro.agent.rules import abort, delay
from repro.logstore import EventStore
from repro.observability import (
    FaultAttribution,
    attribute_run,
    attribute_trace,
    to_json,
    to_prometheus,
)
from repro.observability.metrics import MetricsRegistry
from repro.observability.trace import reconstruct_from_records

from tests.observability.test_spans_trace import request_record, reply_record


def faulted_records():
    """user -> a -> b where the a->b call was aborted and a returned 500."""
    return [
        request_record("u#1", None, "user", "a", 0.0),
        request_record("a#1", "u#1", "a", "b", 0.1),
        reply_record(
            "a#1", "u#1", "a", "b", 0.1, latency=0.0, status=503,
            fault_applied="abort(503)", gremlin_generated=True,
        ),
        reply_record("u#1", None, "user", "a", 0.3, latency=0.3, status=500),
    ]


def multi_faulted_records(root_status=500):
    """user -> a -> {b, c} with TWO faults firing in one request:
    an abort on a->b and a delay on a->c (the slow branch)."""
    return [
        request_record("u#1", None, "user", "a", 0.0),
        request_record("a#1", "u#1", "a", "b", 0.1),
        reply_record(
            "a#1", "u#1", "a", "b", 0.1, latency=0.0, status=503,
            fault_applied="abort(503)", gremlin_generated=True,
        ),
        request_record("a#2", "u#1", "a", "c", 0.2),
        reply_record(
            "a#2", "u#1", "a", "c", 1.4, latency=1.2,
            fault_applied="delay(1)", gremlin_generated=True,
        ),
        reply_record("u#1", None, "user", "a", 1.5, latency=1.5,
                     status=root_status),
    ]


class TestAttributeTrace:
    def test_joins_fault_to_rule_and_path(self):
        trace = reconstruct_from_records("test-1", faulted_records())
        rule = abort(src="a", dst="b", error=503)
        attributions = attribute_trace(trace, [rule])
        assert len(attributions) == 1
        a = attributions[0]
        assert a.fault == "abort(503)"
        assert a.edge == "a -> b"
        assert a.rule_id == rule.rule_id
        assert a.propagation_path == [
            "a -> b (status=503)",
            "user -> a (status=500)",
        ]
        assert a.outcome == "status=500"

    def test_edge_disambiguates_same_shaped_rules(self):
        trace = reconstruct_from_records("test-1", faulted_records())
        decoy = abort(src="x", dst="y", error=503)
        real = abort(src="a", dst="b", error=503)
        (attribution,) = attribute_trace(trace, [decoy, real])
        assert attribution.rule_id == real.rule_id
        assert attribution.rule_id != decoy.rule_id

    def test_unmatched_fault_is_loud(self):
        trace = reconstruct_from_records("test-1", faulted_records())
        wrong = delay(src="a", dst="b", interval=1.0)
        (attribution,) = attribute_trace(trace, [wrong])
        assert attribution.rule_id is None
        assert "NO MATCHING RULE" in attribution.describe()

    def test_clean_trace_yields_nothing(self):
        records = [
            request_record("u#1", None, "user", "a", 0.0),
            reply_record("u#1", None, "user", "a", 0.2, latency=0.2),
        ]
        trace = reconstruct_from_records("test-1", records)
        assert attribute_trace(trace, []) == []

    def test_dict_roundtrip(self):
        trace = reconstruct_from_records("test-1", faulted_records())
        (attribution,) = attribute_trace(trace, [])
        assert FaultAttribution.from_dict(attribution.to_dict()) == attribution

    def test_critical_path_membership_recorded(self):
        trace = reconstruct_from_records("test-1", faulted_records())
        (attribution,) = attribute_trace(trace, [])
        # a -> b is the only child span: it IS the critical path.
        assert attribution.on_critical_path is True

    def test_pre_upgrade_dumps_deserialize_with_unknown_membership(self):
        trace = reconstruct_from_records("test-1", faulted_records())
        (attribution,) = attribute_trace(trace, [])
        doc = attribution.to_dict()
        del doc["on_critical_path"]  # field predates older dumps
        assert FaultAttribution.from_dict(doc).on_critical_path is None


class TestMultiFaultAttribution:
    """Two rules firing within one request: ordering, per-fault rule
    joins, propagation paths, and critical-path membership."""

    def rules(self):
        return [
            abort(src="a", dst="b", error=503),
            delay(src="a", dst="c", interval=1.0),
        ]

    def test_one_attribution_per_fired_rule_in_span_start_order(self):
        trace = reconstruct_from_records("test-1", multi_faulted_records())
        rules = self.rules()
        first, second = attribute_trace(trace, rules)
        assert (first.fault, first.edge) == ("abort(503)", "a -> b")
        assert (second.fault, second.edge) == ("delay(1)", "a -> c")
        assert first.rule_id == rules[0].rule_id
        assert second.rule_id == rules[1].rule_id

    def test_each_fault_propagates_along_its_own_path(self):
        trace = reconstruct_from_records("test-1", multi_faulted_records())
        aborted, delayed = attribute_trace(trace, self.rules())
        assert aborted.propagation_path == [
            "a -> b (status=503)",
            "user -> a (status=500)",
        ]
        assert delayed.propagation_path == [
            "a -> c (status=200)",
            "user -> a (status=500)",
        ]
        assert aborted.outcome == delayed.outcome == "status=500"

    def test_only_the_slow_branch_is_on_the_critical_path(self):
        trace = reconstruct_from_records("test-1", multi_faulted_records())
        aborted, delayed = attribute_trace(trace, self.rules())
        # The delayed a -> c call (1.2s) dominates the trace latency;
        # the instantly aborted a -> b call does not.
        assert delayed.on_critical_path is True
        assert aborted.on_critical_path is False


class TestAttributeRun:
    def store(self, records):
        store = EventStore()
        store.extend(records)
        return store

    def test_attributes_every_fired_fault_in_a_failed_request(self):
        store = self.store(multi_faulted_records())
        attributions = attribute_run(store, self.rules())
        assert [(a.fault, a.edge) for a in attributions] == [
            ("abort(503)", "a -> b"),
            ("delay(1)", "a -> c"),
        ]
        assert all(a.rule_id is not None for a in attributions)

    def rules(self):
        return [
            abort(src="a", dst="b", error=503),
            delay(src="a", dst="c", interval=1.0),
        ]

    def test_only_failed_skips_absorbed_faults(self):
        store = self.store(multi_faulted_records(root_status=200))
        assert attribute_run(store, self.rules()) == []
        absorbed = attribute_run(store, self.rules(), only_failed=False)
        assert len(absorbed) == 2

    def test_limit_caps_attributions(self):
        store = self.store(multi_faulted_records())
        limited = attribute_run(store, self.rules(), limit=1)
        assert len(limited) == 1
        assert limited[0].fault == "abort(503)"


class TestExporters:
    def snapshot(self):
        registry = MetricsRegistry()
        registry.counter("hits_total", svc="a").inc(3)
        registry.gauge("breaker_state", svc="a").set(2)
        histogram = registry.histogram("lat_seconds", buckets=(0.1, 1.0), svc="a")
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(9.0)
        return registry.snapshot()

    def test_json_roundtrips(self):
        snap = self.snapshot()
        assert json.loads(to_json(snap)) == snap

    def test_prometheus_families_and_cumulative_buckets(self):
        text = to_prometheus(self.snapshot())
        assert "# TYPE hits_total counter" in text
        assert '# TYPE breaker_state gauge' in text
        assert "# TYPE lat_seconds histogram" in text
        assert 'hits_total{svc="a"} 3' in text
        # Bucket counts are cumulative and capped by the +Inf bucket.
        assert 'lat_seconds_bucket{svc="a",le="0.1"} 1' in text
        assert 'lat_seconds_bucket{svc="a",le="1.0"} 2' in text
        assert 'lat_seconds_bucket{svc="a",le="+Inf"} 3' in text
        assert 'lat_seconds_count{svc="a"} 3' in text

    def test_unlabelled_series_render_bare(self):
        registry = MetricsRegistry()
        registry.counter("events_total").inc()
        text = to_prometheus(registry.snapshot())
        assert "events_total 1" in text

    def test_empty_snapshot_renders_empty(self):
        assert to_prometheus({"counters": {}, "gauges": {}, "histograms": {}}) == ""
