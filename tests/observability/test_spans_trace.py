"""Unit tests for span assembly and trace reconstruction.

Built on synthetic ObservationRecords so the tree shapes and anomaly
paths are exact; end-to-end reconstruction against a live deployment
is covered by tests/observability/test_live_tracing.py and the CLI
tests.
"""

import pytest

from repro.errors import ReproError, TraceError
from repro.logstore import EventStore, ObservationKind, ObservationRecord
from repro.observability import Trace, assemble_spans, reconstruct
from repro.observability.trace import reconstruct_from_records


def request_record(span_id, parent, src, dst, t, **extra):
    return ObservationRecord(
        timestamp=t,
        kind=ObservationKind.REQUEST,
        src=src,
        dst=dst,
        src_instance=f"{src}-0",
        request_id="test-1",
        method="GET",
        uri="/",
        span_id=span_id,
        parent_span=parent,
        **extra,
    )


def reply_record(span_id, parent, src, dst, t, latency, status=200, **extra):
    return ObservationRecord(
        timestamp=t,
        kind=ObservationKind.REPLY,
        src=src,
        dst=dst,
        src_instance=f"{src}-0",
        request_id="test-1",
        method="GET",
        uri="/",
        status=status,
        latency=latency,
        span_id=span_id,
        parent_span=parent,
        **extra,
    )


def two_hop_records():
    """user -> a -> b: two complete spans, b nested under a."""
    return [
        request_record("u#1", None, "user", "a", 0.0),
        request_record("a#1", "u#1", "a", "b", 0.1),
        reply_record("a#1", "u#1", "a", "b", 0.3, latency=0.2),
        reply_record("u#1", None, "user", "a", 0.5, latency=0.5),
    ]


class TestAssembleSpans:
    def test_pairs_fold_into_complete_spans(self):
        spans, diagnostics = assemble_spans(two_hop_records())
        assert diagnostics == []
        assert [s.span_id for s in spans] == ["u#1", "a#1"]  # start-ordered
        outer = spans[0]
        assert outer.complete and outer.ok
        assert outer.latency == 0.5
        assert outer.edge == ("user", "a")

    def test_missing_reply_is_diagnosed_not_dropped(self):
        spans, diagnostics = assemble_spans(two_hop_records()[:2])
        assert len(spans) == 2
        assert not spans[1].complete
        assert any("no reply record" in d for d in diagnostics)

    def test_orphan_reply_synthesizes_span(self):
        spans, diagnostics = assemble_spans(
            [reply_record("x#1", None, "a", "b", 1.0, latency=0.25)]
        )
        assert len(spans) == 1
        assert spans[0].start == pytest.approx(0.75)  # timestamp - latency
        assert any("no request record" in d for d in diagnostics)

    def test_duplicate_request_keeps_first(self):
        first = request_record("u#1", None, "user", "a", 0.0)
        dup = request_record("u#1", None, "user", "z", 9.0)
        spans, diagnostics = assemble_spans([first, dup])
        assert len(spans) == 1
        assert spans[0].dst == "a"
        assert any("duplicate request" in d for d in diagnostics)

    def test_untraced_records_counted(self):
        bare = ObservationRecord(
            timestamp=0.0, kind=ObservationKind.REQUEST, src="a", dst="b"
        )
        spans, diagnostics = assemble_spans([bare])
        assert spans == []
        assert any("no span ID" in d for d in diagnostics)


class TestTrace:
    def trace(self, records=None):
        return reconstruct_from_records("test-1", records or two_hop_records())

    def test_tree_shape(self):
        trace = self.trace()
        assert trace.span_count == 2
        assert [r.span.span_id for r in trace.roots] == ["u#1"]
        assert [c.span.span_id for c in trace.roots[0].children] == ["a#1"]
        assert trace.duration == pytest.approx(0.5)
        assert not trace.failed

    def test_unknown_parent_becomes_loud_root(self):
        records = two_hop_records()[1:3]  # inner span only, parent lost
        trace = self.trace(records)
        assert [r.span.span_id for r in trace.roots] == ["a#1"]
        assert trace.orphans
        assert any("unknown parent" in d for d in trace.diagnostics)

    def test_critical_path_follows_latest_finishing_child(self):
        records = two_hop_records() + [
            # A second, faster child of u#1: must not be on the path.
            request_record("a#2", "u#1", "a", "c", 0.1),
            reply_record("a#2", "u#1", "a", "c", 0.15, latency=0.05),
        ]
        trace = self.trace(records)
        assert [s.span_id for s in trace.critical_path()] == ["u#1", "a#1"]

    def test_incomplete_span_counts_as_still_running(self):
        records = two_hop_records() + [
            request_record("a#2", "u#1", "a", "c", 0.1)  # never replied
        ]
        trace = self.trace(records)
        assert [s.span_id for s in trace.critical_path()] == ["u#1", "a#2"]

    def test_failed_when_root_errors(self):
        records = [
            request_record("u#1", None, "user", "a", 0.0),
            reply_record("u#1", None, "user", "a", 0.5, latency=0.5, status=500),
        ]
        assert self.trace(records).failed

    def test_edge_latency_separates_injected_delay(self):
        records = [
            request_record("u#1", None, "user", "a", 0.0),
            reply_record(
                "u#1", None, "user", "a", 3.1, latency=3.1,
                injected_delay=3.0, fault_applied="delay(3)",
            ),
        ]
        edges = self.trace(records).edge_latency()
        assert edges[("user", "a")]["total"] == pytest.approx(3.1)
        assert edges[("user", "a")]["injected"] == pytest.approx(3.0)

    def test_render_marks_critical_and_failures(self):
        records = [
            request_record("u#1", None, "user", "a", 0.0),
            reply_record(
                "u#1", None, "user", "a", 0.5, latency=0.5, status=503,
                fault_applied="abort(503)", gremlin_generated=True,
            ),
        ]
        text = self.trace(records).render()
        assert "*critical*" in text
        assert "FAILED" in text
        assert "fault=abort(503)" in text
        assert "(gremlin-synthesized)" in text

    def test_empty_trace_is_harmless(self):
        trace = Trace("test-9", [], [])
        assert trace.critical_path() == []
        assert trace.duration is None
        assert not trace.failed


class TestReconstructFromStore:
    def test_unknown_id_raises_typed_error(self):
        store = EventStore()
        with pytest.raises(TraceError, match="no records for request ID"):
            reconstruct(store, "nope")
        with pytest.raises(ReproError):
            reconstruct(store, "nope")

    def test_point_lookup_roundtrip(self):
        store = EventStore()
        for record in two_hop_records():
            store.append(record)
        other = request_record("v#1", None, "user", "a", 2.0)
        other.request_id = "test-2"
        store.append(other)
        trace = reconstruct(store, "test-1")
        assert trace.span_count == 2
        assert all(s.request_id == "test-1" for s in trace.spans)
