"""trace_shape_digest: span-ID/order invariance, shape sensitivity."""

from repro.observability import trace_shape_digest
from repro.observability.trace import reconstruct_from_records
from tests.observability.test_spans_trace import (
    reply_record,
    request_record,
    two_hop_records,
)


def digest_of(records):
    return trace_shape_digest(reconstruct_from_records("test-1", records))


def fanout_records(ids=("u#1", "a#1", "a#2"), statuses=(200, 200, 200)):
    """user -> a -> {b, c}: a fan-out of two sibling calls."""
    root, left, right = ids
    return [
        request_record(root, None, "user", "a", 0.0),
        request_record(left, root, "a", "b", 0.1),
        request_record(right, root, "a", "c", 0.2),
        reply_record(left, root, "a", "b", 0.3, latency=0.2, status=statuses[1]),
        reply_record(right, root, "a", "c", 0.4, latency=0.2, status=statuses[2]),
        reply_record(root, None, "user", "a", 0.5, latency=0.5, status=statuses[0]),
    ]


class TestInvariance:
    def test_stable_across_span_id_renumbering(self):
        renamed = fanout_records(ids=("x#7", "q#3", "q#9"))
        assert digest_of(fanout_records()) == digest_of(renamed)

    def test_stable_across_record_order(self):
        records = fanout_records()
        assert digest_of(records) == digest_of(list(reversed(records)))

    def test_stable_across_sibling_timing(self):
        base = fanout_records()
        # Same tree, siblings started in the opposite wall-clock order.
        swapped = [
            request_record("u#1", None, "user", "a", 0.0),
            request_record("a#2", "u#1", "a", "c", 0.1),
            request_record("a#1", "u#1", "a", "b", 0.2),
            reply_record("a#2", "u#1", "a", "c", 0.3, latency=0.2),
            reply_record("a#1", "u#1", "a", "b", 0.4, latency=0.2),
            reply_record("u#1", None, "user", "a", 0.5, latency=0.5),
        ]
        assert digest_of(base) == digest_of(swapped)


class TestSensitivity:
    def test_different_topology_different_digest(self):
        assert digest_of(two_hop_records()) != digest_of(fanout_records())

    def test_status_changes_the_digest(self):
        assert digest_of(fanout_records()) != digest_of(
            fanout_records(statuses=(200, 503, 200))
        )

    def test_fault_attribution_changes_the_digest(self):
        faulted = fanout_records()
        faulted[3] = reply_record(
            "a#1", "u#1", "a", "b", 0.3, latency=0.2, status=503,
            fault_applied=True, gremlin_generated=True,
        )
        clean_error = fanout_records(statuses=(200, 503, 200))
        assert digest_of(faulted) != digest_of(clean_error)

    def test_which_sibling_failed_does_not_collapse(self):
        # (b fails) vs (c fails): same multiset of child forms only if
        # the services were identical; here they differ, so digests do.
        left_fails = fanout_records(statuses=(200, 503, 200))
        right_fails = fanout_records(statuses=(200, 200, 503))
        assert digest_of(left_fails) != digest_of(right_fails)
