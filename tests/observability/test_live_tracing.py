"""End-to-end observability against live deployments.

These tests drive the bundled tree app through a full run and assert
on what the observability stack recovers: complete causal trees, the
metrics the runtime hooks emit, fault attribution joined to the
installed rules, and the tracing on/off switch campaign benchmarks use.
"""

from repro.agent.rules import abort
from repro.apps import build_tree_app
from repro.core import Gremlin
from repro.loadgen import ClosedLoopLoad
from repro.logstore import Query
from repro.observability import attribute_run, reconstruct


def run_tree(depth=2, requests=4, rules=None, tracing=None, seed=11):
    app = build_tree_app(depth=depth)
    deployment = app.deploy(seed=seed, tracing=tracing)
    source = deployment.add_traffic_source("svc-0")
    gremlin = Gremlin(deployment)
    if rules:
        gremlin.orchestrator.apply(rules)
    ClosedLoopLoad(num_requests=requests, think_time=0.01).run(source)
    deployment.pipeline.flush()
    return deployment


class TestLiveTraces:
    def test_healthy_request_reconstructs_full_tree(self):
        deployment = run_tree(depth=2)
        trace = reconstruct(deployment.store, "test-2")
        # Depth-2 binary tree: 7 services, so entry edge + 6
        # internal calls = 7 spans.
        assert trace.span_count == 7
        assert len(trace.roots) == 1
        assert trace.roots[0].span.edge == ("user", "svc-0")
        assert not trace.failed
        assert trace.diagnostics == []
        assert all(span.complete for span in trace.spans)

    def test_every_minted_request_is_traceable(self):
        deployment = run_tree(depth=2, requests=5)
        for n in range(1, 6):
            trace = reconstruct(deployment.store, f"test-{n}")
            assert trace.span_count == 7

    def test_fault_shows_up_in_trace_and_attribution(self):
        rule = abort(src="svc-0", dst="svc-1", error=503)
        deployment = run_tree(depth=2, rules=[rule])
        trace = reconstruct(deployment.store, "test-1")
        assert trace.failed
        faulted = trace.faulted_spans()
        assert [span.edge for span in faulted] == [("svc-0", "svc-1")]
        attributions = attribute_run(deployment.store, [rule])
        assert attributions
        assert all(a.rule_id == rule.rule_id for a in attributions)
        assert all(a.outcome == "status=500" for a in attributions)

    def test_absorbed_faults_are_skipped_by_default(self):
        # svc-1 is a leaf's parent; abort only some calls via
        # max_matches so unaffected requests stay clean.
        rule = abort(src="svc-0", dst="svc-1", error=503, max_matches=1)
        deployment = run_tree(depth=2, requests=4, rules=[rule])
        only_failed = attribute_run(deployment.store, [rule])
        everything = attribute_run(deployment.store, [rule], only_failed=False)
        assert len(only_failed) <= len(everything)
        assert len(everything) == 1  # max_matches=1 fired exactly once


class TestMetricsHooks:
    def test_request_and_fault_counters(self):
        rule = abort(src="svc-0", dst="svc-1", error=503)
        deployment = run_tree(depth=2, requests=4, rules=[rule])
        snap = deployment.metrics_snapshot()
        counters = snap["counters"]
        assert counters['gremlin_requests_total{dst="svc-0",src="user"}'] == 4
        assert (
            counters[
                'gremlin_faults_injected_total{dst="svc-1",fault="abort(503)",src="svc-0"}'
            ]
            == 4
        )
        series = 'gremlin_request_latency_seconds{dst="svc-0",src="user"}'
        assert snap["histograms"][series]["count"] == 4
        assert counters['service_requests_total{service="svc-0"}'] == 4

    def test_tracing_toggle_stops_span_emission_not_metrics(self):
        deployment = run_tree(depth=2, requests=2, tracing=False)
        assert all(
            r.span_id is None for r in deployment.store.search(Query())
        )
        # Metrics still flow with tracing off.
        snap = deployment.metrics_snapshot()
        assert snap["counters"]['gremlin_requests_total{dst="svc-0",src="user"}'] == 2

    def test_default_tracing_attribute_drives_deploy(self):
        app = build_tree_app(depth=1)
        app.default_tracing = False
        deployment = app.deploy(seed=3)
        source = deployment.add_traffic_source("svc-0")
        ClosedLoopLoad(num_requests=1).run(source)
        deployment.pipeline.flush()
        assert all(r.span_id is None for r in deployment.store.search(Query()))
