"""Unit tests for the service registry."""

import pytest

from repro.errors import RegistryError, ServiceNotFoundError
from repro.network import Address
from repro.registry import InstanceRecord, ServiceRegistry


def record(service, index=0, host=None):
    return InstanceRecord(
        service=service,
        instance_id=f"{service.lower()}-{index}",
        address=Address(host or f"{service.lower()}-{index}", 8080),
    )


class TestRegistry:
    def test_register_and_lookup(self):
        registry = ServiceRegistry()
        registry.register(record("ServiceB", 0))
        registry.register(record("ServiceB", 1))
        assert len(registry.instances("ServiceB")) == 2
        assert len(registry) == 2

    def test_duplicate_instance_rejected(self):
        registry = ServiceRegistry()
        registry.register(record("A"))
        with pytest.raises(RegistryError):
            registry.register(record("A"))

    def test_unknown_service_raises(self):
        with pytest.raises(ServiceNotFoundError):
            ServiceRegistry().instances("ghost")

    def test_try_instances_returns_empty(self):
        assert ServiceRegistry().try_instances("ghost") == []

    def test_addresses(self):
        registry = ServiceRegistry()
        registry.register(record("B", 0))
        registry.register(record("B", 1))
        assert registry.addresses("B") == [Address("b-0", 8080), Address("b-1", 8080)]

    def test_deregister(self):
        registry = ServiceRegistry()
        registry.register(record("A", 0))
        registry.deregister("A", "a-0")
        assert not registry.has_service("A")
        assert "A" not in registry.services()

    def test_deregister_unknown_is_noop(self):
        ServiceRegistry().deregister("ghost", "ghost-0")

    def test_services_listing(self):
        registry = ServiceRegistry()
        registry.register(record("A"))
        registry.register(record("B"))
        assert registry.services() == ["A", "B"]

    def test_has_service(self):
        registry = ServiceRegistry()
        registry.register(record("A"))
        assert registry.has_service("A")
        assert not registry.has_service("B")

    def test_record_str(self):
        rec = record("A")
        assert "A/a-0@a-0:8080" == str(rec)


class TestCanaryRecords:
    def canary(self, service, index=0):
        return InstanceRecord(
            service=service,
            instance_id=f"{service.lower()}-canary-{index}",
            address=Address(f"{service.lower()}-canary-{index}", 8080),
            canary=True,
        )

    def test_addresses_exclude_canaries(self):
        registry = ServiceRegistry()
        registry.register(record("B", 0))
        registry.register(self.canary("B"))
        assert registry.addresses("B") == [Address("b-0", 8080)]

    def test_canary_addresses(self):
        registry = ServiceRegistry()
        registry.register(record("B", 0))
        registry.register(self.canary("B"))
        assert registry.canary_addresses("B") == [Address("b-canary-0", 8080)]

    def test_canary_addresses_empty_without_canaries(self):
        registry = ServiceRegistry()
        registry.register(record("B", 0))
        assert registry.canary_addresses("B") == []

    def test_all_canary_service_still_resolvable(self):
        registry = ServiceRegistry()
        registry.register(self.canary("B"))
        # Test-only deployment: ordinary lookups fall back to canaries
        # rather than failing.
        assert registry.addresses("B") == [Address("b-canary-0", 8080)]
