"""Tests for the command-line interface."""

import json

import pytest

from repro.campaign import load_jsonl
from repro.cli import APPS, main


class TestApps:
    def test_lists_all_apps(self, capsys):
        assert main(["apps"]) == 0
        out = capsys.readouterr().out
        for name in APPS:
            assert name in out

    def test_json_catalog(self, capsys):
        assert main(["apps", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        by_name = {entry["name"]: entry for entry in doc["apps"]}
        assert set(by_name) == set(APPS)
        assert by_name["socialnetwork"]["num_services"] == 28
        assert by_name["hotelreservation"]["num_services"] == 20
        assert by_name["socialnetwork"]["entry_services"] == ["nginx"]
        for entry in doc["apps"]:
            assert entry["num_services"] == len(entry["services"])
            assert entry["num_edges"] >= 1
            assert entry["entry_services"]


class TestGraph:
    def test_prints_edges(self, capsys):
        assert main(["graph", "twotier"]) == 0
        out = capsys.readouterr().out
        assert "ServiceA -> ServiceB" in out
        assert "entry services: ServiceA" in out

    def test_unknown_app_exits(self):
        with pytest.raises(SystemExit):
            main(["graph", "nope"])


class TestRecipes:
    def test_generates_for_enterprise(self, capsys):
        assert main(["recipes", "enterprise"]) == 0
        out = capsys.readouterr().out
        assert "auto/overload-servicedb" in out

    def test_json_output(self, capsys):
        assert main(["recipes", "enterprise", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["app"] == "enterprise"
        names = [recipe["name"] for recipe in doc["recipes"]]
        assert "auto/overload-servicedb" in names
        sample = doc["recipes"][0]
        assert sample["scenarios"] and sample["checks"]


class TestTest:
    def test_finds_issue_in_wordpress(self, capsys):
        code = main(
            ["test", "wordpress", "--target", "elasticsearch", "--scenario", "degrade"]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "ISSUES FOUND" in out
        assert "HasTimeouts(wordpress" in out

    def test_healthy_edge_passes(self, capsys):
        code = main(
            ["test", "twotier", "--target", "ServiceB", "--scenario", "overload"]
        )
        out = capsys.readouterr().out
        # The default twotier client absorbs a 25% abort / 100ms delay
        # overload within its answer budget -> no conclusive failures.
        assert code == 0
        assert "no conclusive failures" in out

    def test_retry_amplification_detected_under_degrade(self, capsys):
        code = main(
            ["test", "twotier", "--target", "ServiceB", "--scenario", "degrade"]
        )
        out = capsys.readouterr().out
        # A 2s degrade makes the 1s-timeout, 5-retry client spend ~6s
        # per call — the retry-amplification anti-pattern HasTimeouts
        # correctly flags even though each single attempt is bounded.
        assert code == 1
        assert "HasTimeouts(ServiceA" in out

    def test_unknown_target_exits(self):
        with pytest.raises(SystemExit, match="unknown target"):
            main(["test", "twotier", "--target", "ghost"])

    def test_json_output_keeps_exit_semantics(self, capsys):
        code = main(
            [
                "test",
                "twotier",
                "--target",
                "ServiceB",
                "--scenario",
                "degrade",
                "--json",
            ]
        )
        doc = json.loads(capsys.readouterr().out)
        assert code == 1
        assert doc["issues_found"] is True
        assert any(
            check["name"].startswith("HasTimeouts(ServiceA")
            and not check["passed"]
            and not check["inconclusive"]
            for check in doc["checks"]
        )

    def test_json_output_healthy_edge(self, capsys):
        code = main(
            [
                "test",
                "twotier",
                "--target",
                "ServiceB",
                "--scenario",
                "overload",
                "--json",
            ]
        )
        doc = json.loads(capsys.readouterr().out)
        assert code == 0
        assert doc["issues_found"] is False


class TestTrace:
    def test_renders_causal_tree_with_fault(self, capsys):
        code = main(
            ["trace", "tree3", "test-3", "--target", "svc-1", "--requests", "5"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "trace test-3:" in out
        assert "user -> svc-0" in out
        assert "svc-0 -> svc-1" in out
        assert "*critical*" in out
        assert "fault=abort(reset)" in out
        assert "fault attribution:" in out

    def test_json_output(self, capsys):
        code = main(
            [
                "trace",
                "tree3",
                "test-2",
                "--target",
                "svc-1",
                "--requests",
                "5",
                "--json",
            ]
        )
        doc = json.loads(capsys.readouterr().out)
        assert code == 0
        assert doc["request_id"] == "test-2"
        assert doc["span_count"] >= 2
        edges = {(s["src"], s["dst"]) for s in doc["spans"]}
        assert ("user", "svc-0") in edges
        assert doc["attributions"]

    def test_unfaulted_trace_spans_full_tree(self, capsys):
        # No --target: every request fans out over all 7 services of
        # the depth-3 tree, so one trace holds all 6 internal edges.
        code = main(["trace", "tree3", "test-1", "--requests", "2", "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert code == 0
        assert doc["span_count"] == 15
        assert doc["failed"] is False
        assert doc["attributions"] == []

    def test_unknown_request_id_exits(self, capsys):
        with pytest.raises(SystemExit, match="no records for request ID"):
            main(["trace", "tree3", "nope-99", "--requests", "2"])


class TestMetrics:
    def test_prometheus_output(self, capsys):
        code = main(
            ["metrics", "tree3", "--target", "svc-1", "--requests", "5"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "# TYPE gremlin_requests_total counter" in out
        assert 'gremlin_requests_total{dst="svc-0",src="user"} 5' in out
        assert (
            'gremlin_faults_injected_total{dst="svc-1",fault="abort(reset)",src="svc-0"}'
            in out
        )
        assert "# TYPE gremlin_request_latency_seconds histogram" in out
        assert 'le="+Inf"' in out

    def test_json_output(self, capsys):
        code = main(
            ["metrics", "tree3", "--requests", "3", "--format", "json"]
        )
        doc = json.loads(capsys.readouterr().out)
        assert code == 0
        assert doc["counters"]['gremlin_requests_total{dst="svc-0",src="user"}'] == 3
        series = 'gremlin_request_latency_seconds{dst="svc-0",src="user"}'
        assert doc["histograms"][series]["count"] == 3


class TestCampaignSmoke:
    def test_smoke_exercises_the_fleet(self, capsys):
        code = main(["campaign", "smoke", "wordpress", "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0, out
        # One status line per capped recipe plus the summary.
        assert out.count("] auto/") == 6
        assert "recipes" in out.splitlines()[-1]

    def test_smoke_json(self, capsys):
        code = main(["campaign", "smoke", "twotier", "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert code == 0
        assert doc["app"] == "twotier"
        assert len(doc["outcomes"]) == 2
        assert all(o["status"] not in ("error", "timeout") for o in doc["outcomes"])


class TestCampaignRun:
    def test_run_prints_scorecard_and_dumps(self, capsys, tmp_path):
        out_path = tmp_path / "run.jsonl"
        code = main(
            [
                "campaign",
                "run",
                "twotier",
                "--requests",
                "5",
                "--workers",
                "2",
                "--out",
                str(out_path),
            ]
        )
        out = capsys.readouterr().out
        assert "resilience scorecard" in out
        assert "TOTAL" in out
        result = load_jsonl(out_path)
        assert len(result.outcomes) == 2
        assert code == (0 if result.passed else 1)

    def test_run_json(self, capsys):
        main(
            [
                "campaign",
                "run",
                "twotier",
                "--requests",
                "5",
                "--max-recipes",
                "1",
                "--json",
            ]
        )
        doc = json.loads(capsys.readouterr().out)
        assert doc["counts"]["skipped"] == 0
        assert len(doc["outcomes"]) == 1

    def test_metrics_out_writes_merged_snapshot(self, capsys, tmp_path):
        metrics_path = tmp_path / "metrics.json"
        main(
            [
                "campaign",
                "run",
                "twotier",
                "--requests",
                "5",
                "--max-recipes",
                "2",
                "--metrics-out",
                str(metrics_path),
            ]
        )
        out = capsys.readouterr().out
        assert f"merged metrics written to {metrics_path}" in out
        doc = json.loads(metrics_path.read_text())
        assert set(doc) == {"counters", "gauges", "histograms"}
        # Both recipes drove 5 requests into ServiceA; the merged
        # snapshot sums the per-recipe registries.
        assert doc["counters"]['gremlin_requests_total{dst="ServiceA",src="user"}'] == 10

    def test_unknown_app_exits(self):
        with pytest.raises(SystemExit, match="unknown app"):
            main(["campaign", "run", "nope"])


class TestCampaignDiff:
    def dump(self, tmp_path, name, seed):
        path = tmp_path / f"{name}.jsonl"
        main(
            [
                "campaign",
                "run",
                "twotier",
                "--requests",
                "5",
                "--seed",
                str(seed),
                "--out",
                str(path),
            ]
        )
        return path

    def test_self_diff_is_clean(self, capsys, tmp_path):
        baseline = self.dump(tmp_path, "baseline", seed=0)
        candidate = self.dump(tmp_path, "candidate", seed=0)
        capsys.readouterr()
        code = main(["campaign", "diff", str(baseline), str(candidate)])
        out = capsys.readouterr().out
        assert code == 0
        assert "regressions: 0" in out

    def test_missing_file_exits(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["campaign", "diff", str(tmp_path / "a"), str(tmp_path / "b")])


class TestFuzz:
    def test_run_clean_corpus(self, capsys):
        code = main(["fuzz", "run", "--seed", "5", "--cases", "8", "--workers", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "8 cases, 0 failing" in out

    def test_run_json_output(self, capsys):
        code = main(["fuzz", "run", "--seed", "5", "--cases", "4", "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert code == 0
        assert doc["passed"] is True
        assert doc["cases"] == 4
        assert doc["metamorphic_counts"]["matcher-strategy"] == 4

    def test_replay_round_trip(self, capsys, tmp_path):
        from repro.fuzz import FuzzGenerator, run_case, write_artifact

        case = FuzzGenerator(5, app_registry=APPS).case(1)
        artifact = tmp_path / "case.json"
        write_artifact(str(artifact), run_case(case, app_registry=APPS))
        code = main(["fuzz", "replay", str(artifact)])
        out = capsys.readouterr().out
        assert code == 0
        assert "reproduced" in out
        code = main(["fuzz", "replay", str(artifact), "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert code == 0
        assert doc["reproduced"] is True
        assert doc["expected_digest"] == doc["observed_digest"]

    def test_replay_missing_artifact_exits(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot replay"):
            main(["fuzz", "replay", str(tmp_path / "missing.json")])

    def test_shrink_passing_artifact_reports_nothing_to_do(self, capsys, tmp_path):
        from repro.fuzz import FuzzGenerator, run_case, write_artifact

        case = FuzzGenerator(5, app_registry=APPS).case(2)
        artifact = tmp_path / "case.json"
        write_artifact(str(artifact), run_case(case, app_registry=APPS))
        code = main(["fuzz", "shrink", str(artifact)])
        out = capsys.readouterr().out
        assert code == 1
        assert "nothing to shrink" in out


class TestFuzzExplore:
    def test_explore_finds_the_planted_bug(self, capsys, tmp_path):
        coverage = tmp_path / "coverage.json"
        code = main(
            [
                "fuzz", "explore", "stuckbreaker",
                "--budget", "40", "--seed", "0",
                "--coverage-out", str(coverage),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "1/1 planted bugs found" in out
        doc = json.loads(coverage.read_text())
        assert doc["all_bugs_found"] is True
        assert doc["apps"][0]["bugs_found"] == ["stuckbreaker/never-closes"]

    def test_explore_json_output(self, capsys):
        code = main(
            ["fuzz", "explore", "stuckbreaker", "--budget", "40", "--json"]
        )
        doc = json.loads(capsys.readouterr().out)
        assert code == 0
        assert doc["strategy"] == "prioritized"
        assert doc["apps"][0]["executed"] <= 40

    def test_explore_unknown_app_exits_cleanly_listing_names(self):
        with pytest.raises(SystemExit) as err:
            main(["fuzz", "explore", "no-such-app"])
        message = str(err.value)
        assert "no-such-app" in message
        assert "socialnetwork" in message and "hotelreservation" in message
        assert "stuckbreaker" in message

    def test_campaign_run_unknown_app_exits_cleanly_listing_names(self):
        with pytest.raises(SystemExit) as err:
            main(["campaign", "run", "no-such-app"])
        message = str(err.value)
        assert "no-such-app" in message
        assert "socialnetwork" in message and "hotelreservation" in message


class TestCleanCliErrors:
    def test_trace_unknown_entry_exits_cleanly(self):
        with pytest.raises(SystemExit, match="unknown entry"):
            main(["trace", "tree3", "test-1", "--entry", "ghost", "--requests", "2"])

    def test_report_missing_dump_exits_cleanly(self, tmp_path):
        with pytest.raises(SystemExit) as err:
            main(["report", str(tmp_path / "missing.jsonl")])
        # A one-line operator message, not a traceback.
        assert "missing.jsonl" in str(err.value)

    def test_campaign_recipes_missing_suite_exits_cleanly(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot read recipe suite"):
            main(
                [
                    "campaign", "run", "twotier",
                    "--recipes", str(tmp_path / "missing.json"),
                ]
            )


class TestReportCommand:
    @pytest.fixture(scope="class")
    def artifacts(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("report-cli")
        dump = tmp / "dump.jsonl"
        report = tmp / "report.json"
        code = main(
            [
                "campaign", "run", "twotier",
                "--requests", "5", "--workers", "2",
                "--out", str(dump), "--report-out", str(report),
            ]
        )
        return dump, report, code

    def test_campaign_run_writes_the_report(self, artifacts, capsys):
        dump, report, _code = artifacts
        capsys.readouterr()
        doc = json.loads(report.read_text())
        assert doc["report"] == "resilience"
        assert doc["app"] == "twotier"
        assert doc["verdicts"]

    def test_report_regenerates_identically_from_the_dump(self, artifacts, capsys):
        dump, report, _code = artifacts
        capsys.readouterr()
        assert main(["report", str(dump)]) == 0
        assert capsys.readouterr().out == report.read_text()

    def test_report_out_html(self, artifacts, capsys, tmp_path):
        dump, _report, _code = artifacts
        html = tmp_path / "report.html"
        assert main(["report", str(dump), "--out", str(html)]) == 0
        out = capsys.readouterr().out
        assert f"resilience report written to {html}" in out
        text = html.read_text()
        assert text.startswith("<!DOCTYPE html>")
        assert "<svg" in text


class TestExploreArtifacts:
    def test_whatif_recipes_round_trip_through_campaign_run(self, capsys, tmp_path):
        recipes = tmp_path / "recipes.json"
        report = tmp_path / "explore.html"
        code = main(
            [
                "fuzz", "explore", "stuckbreaker",
                "--budget", "6", "--strategy", "whatif",
                "--recipes-out", str(recipes),
                "--report-out", str(report),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0  # whatif surfaces the planted bug within budget
        assert f"written: {recipes}" in out
        assert f"written: {report}" in out
        assert report.read_text().startswith("<!DOCTYPE html>")
        suite = json.loads(recipes.read_text())
        assert suite["app"] == "stuckbreaker"
        assert suite["strategy"] == "whatif"
        assert suite["coordinates"]

        # The exported suite replays as extra campaign recipes and
        # reproduces the conclusive failure it recorded.
        code = main(
            [
                "campaign", "run", "stuckbreaker",
                "--recipes", str(recipes),
                "--requests", "40", "--workers", "2", "--json",
            ]
        )
        doc = json.loads(capsys.readouterr().out)
        assert code == 1
        replayed = [
            o for o in doc["outcomes"] if o["name"].startswith("explore/")
        ]
        assert replayed and all(o["status"] == "fail" for o in replayed)

    def test_recipe_suite_app_mismatch_exits_cleanly(self, capsys, tmp_path):
        recipes = tmp_path / "recipes.json"
        main(
            [
                "fuzz", "explore", "stuckbreaker",
                "--budget", "2", "--strategy", "whatif",
                "--recipes-out", str(recipes),
            ]
        )
        capsys.readouterr()
        with pytest.raises(SystemExit, match="targets app"):
            main(["campaign", "run", "twotier", "--recipes", str(recipes)])
