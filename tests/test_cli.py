"""Tests for the command-line interface."""

import pytest

from repro.cli import APPS, main


class TestApps:
    def test_lists_all_apps(self, capsys):
        assert main(["apps"]) == 0
        out = capsys.readouterr().out
        for name in APPS:
            assert name in out


class TestGraph:
    def test_prints_edges(self, capsys):
        assert main(["graph", "twotier"]) == 0
        out = capsys.readouterr().out
        assert "ServiceA -> ServiceB" in out
        assert "entry services: ServiceA" in out

    def test_unknown_app_exits(self):
        with pytest.raises(SystemExit):
            main(["graph", "nope"])


class TestRecipes:
    def test_generates_for_enterprise(self, capsys):
        assert main(["recipes", "enterprise"]) == 0
        out = capsys.readouterr().out
        assert "auto/overload-servicedb" in out


class TestTest:
    def test_finds_issue_in_wordpress(self, capsys):
        code = main(
            ["test", "wordpress", "--target", "elasticsearch", "--scenario", "degrade"]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "ISSUES FOUND" in out
        assert "HasTimeouts(wordpress" in out

    def test_healthy_edge_passes(self, capsys):
        code = main(
            ["test", "twotier", "--target", "ServiceB", "--scenario", "overload"]
        )
        out = capsys.readouterr().out
        # The default twotier client absorbs a 25% abort / 100ms delay
        # overload within its answer budget -> no conclusive failures.
        assert code == 0
        assert "no conclusive failures" in out

    def test_retry_amplification_detected_under_degrade(self, capsys):
        code = main(
            ["test", "twotier", "--target", "ServiceB", "--scenario", "degrade"]
        )
        out = capsys.readouterr().out
        # A 2s degrade makes the 1s-timeout, 5-retry client spend ~6s
        # per call — the retry-amplification anti-pattern HasTimeouts
        # correctly flags even though each single attempt is bounded.
        assert code == 1
        assert "HasTimeouts(ServiceA" in out

    def test_unknown_target_exits(self):
        with pytest.raises(SystemExit, match="unknown target"):
            main(["test", "twotier", "--target", "ghost"])
