"""Tests for the publish-subscribe broker substrate."""

import pytest

from repro.bus import DELIVER_PREFIX, BrokerConfig, broker_definition, publish
from repro.core import Crash, Gremlin, Hang
from repro.http import HttpRequest, HttpResponse
from repro.loadgen import ClosedLoopLoad
from repro.microservice import Application, PolicySpec, ServiceDefinition


def collector_handler(ctx, request):
    """Subscriber that records every delivered message."""
    yield from ctx.work()
    if request.uri.startswith(DELIVER_PREFIX):
        topic = request.uri[len(DELIVER_PREFIX):]
        ctx.state.setdefault("messages", []).append((topic, request.body))
        return HttpResponse(200, body=b"ack")
    return HttpResponse(404)


def publisher_handler(ctx, request):
    """Publisher that forwards the user's request body to the bus."""
    yield from ctx.work()
    response = yield from publish(ctx, "messagebus", "events", request.body or b"event", parent=request)
    return HttpResponse(response.status, body=response.body)


def build_pubsub(
    subscribers=("indexer",),
    broker_config=None,
    subscriber_policy=None,
    publisher_policy=None,
):
    app = Application("pubsub")
    app.add_service(
        ServiceDefinition(
            "publisher",
            handler=publisher_handler,
            dependencies={"messagebus": publisher_policy or PolicySpec(timeout=2.0)},
        )
    )
    app.add_service(
        broker_definition(
            "messagebus",
            topics={"events": list(subscribers)},
            config=broker_config,
            subscriber_policy=subscriber_policy,
        )
    )
    for name in subscribers:
        app.add_service(ServiceDefinition(name, handler=collector_handler))
    deployment = app.deploy(seed=111)
    source = deployment.add_traffic_source("publisher")
    return deployment, source


def messages_of(deployment, subscriber):
    return deployment.instances_of(subscriber)[0].ctx.state.get("messages", [])


class TestDefinitionValidation:
    def test_needs_topics(self):
        with pytest.raises(ValueError):
            broker_definition("bus", topics={})

    def test_needs_subscribers(self):
        with pytest.raises(ValueError):
            broker_definition("bus", topics={"t": []})

    def test_config_validation(self):
        with pytest.raises(ValueError):
            BrokerConfig(queue_limit=0)
        with pytest.raises(ValueError):
            BrokerConfig(redelivery_delay=-1)

    def test_subscribers_become_graph_edges(self):
        deployment, _source = build_pubsub(subscribers=("indexer", "auditor"))
        assert sorted(deployment.graph.dependencies("messagebus")) == ["auditor", "indexer"]


class TestDelivery:
    def test_publish_delivers_to_subscriber(self):
        deployment, source = build_pubsub()
        load = ClosedLoopLoad(num_requests=3)
        load.run(source)
        assert [sample.status for sample in load.result.samples] == [202] * 3
        assert len(messages_of(deployment, "indexer")) == 3

    def test_fanout_to_multiple_subscribers(self):
        deployment, source = build_pubsub(subscribers=("indexer", "auditor"))
        ClosedLoopLoad(num_requests=2).run(source)
        assert len(messages_of(deployment, "indexer")) == 2
        assert len(messages_of(deployment, "auditor")) == 2

    def test_unknown_topic_404(self):
        deployment, source = build_pubsub()
        sim = deployment.sim
        statuses = []

        def bad_publish(sim):
            instance = deployment.instances_of("publisher")[0]
            request = HttpRequest("POST", "/publish/ghost-topic", body=b"x")
            request.request_id = "test-99"
            response = yield from instance.clients["messagebus"].call(request)
            statuses.append(response.status)

        sim.process(bad_publish(sim))
        sim.run()
        assert statuses == [404]

    def test_message_order_preserved_per_subscriber(self):
        deployment, source = build_pubsub()
        sim = deployment.sim

        def ordered_publishes(sim):
            for index in range(5):
                request = HttpRequest("GET", "/", body=f"msg-{index}".encode())
                request.request_id = f"test-{index}"
                yield from source.client.call(request)

        sim.process(ordered_publishes(sim))
        sim.run()
        bodies = [body for _topic, body in messages_of(deployment, "indexer")]
        assert bodies == [f"msg-{index}".encode() for index in range(5)]

    def test_request_id_propagates_to_delivery(self):
        deployment, source = build_pubsub()
        ClosedLoopLoad(num_requests=1).run(source)
        # The broker's push carried the original request ID, so the
        # whole pub-sub flow is traceable (and fault-targetable).
        records = [
            record
            for record in deployment.store.all_records()
            if record.src == "messagebus" and record.dst == "indexer"
        ]
        assert records
        assert all(record.request_id == "test-1" for record in records)


class TestFailureBehaviour:
    def test_at_least_once_redelivery_after_subscriber_recovers(self):
        deployment, source = build_pubsub(
            broker_config=BrokerConfig(redelivery_delay=0.2),
            subscriber_policy=PolicySpec(timeout=0.5),
        )
        sim = deployment.sim
        gremlin = Gremlin(deployment)
        gremlin.inject(Crash("indexer"))
        load = ClosedLoopLoad(num_requests=3)
        sim.process(load.driver(source))
        # Bounded run: the delivery worker is mid-retry when we stop.
        sim.run(until=1.0)
        assert [sample.status for sample in load.result.samples] == [202] * 3
        assert messages_of(deployment, "indexer") == []  # crashed away

        gremlin.clear()  # subscriber "recovers"
        sim.run(until=sim.now + 5.0)
        assert len(messages_of(deployment, "indexer")) == 3  # redelivered

    def test_dead_letter_after_redelivery_budget(self):
        deployment, source = build_pubsub(
            broker_config=BrokerConfig(redelivery_delay=0.1, max_redeliveries=3),
            subscriber_policy=PolicySpec(timeout=0.5),
        )
        gremlin = Gremlin(deployment)
        gremlin.inject(Crash("indexer"))
        ClosedLoopLoad(num_requests=2).run(source)
        broker_state = deployment.instances_of("messagebus")[0].ctx.state["broker"]
        # Both messages exhausted their budget and were dead-lettered;
        # the worker did not spin forever.
        assert len(broker_state["dead_letter"]) == 2
        assert messages_of(deployment, "indexer") == []

    def test_queue_overflow_exerts_backpressure(self):
        """The Kafkapocalypse shape: dead subscriber, bounded queue,
        publishers start getting 503s once the queue fills."""
        deployment, source = build_pubsub(
            broker_config=BrokerConfig(queue_limit=5, redelivery_delay=1.0),
            subscriber_policy=PolicySpec(timeout=0.5),
        )
        gremlin = Gremlin(deployment)
        gremlin.inject(Hang("indexer", interval="1h"))
        load = ClosedLoopLoad(num_requests=10)
        load.run(source)
        statuses = [sample.status for sample in load.result.samples]
        assert statuses[:5] == [202] * 5
        assert all(status == 503 for status in statuses[5:])

    def test_drop_on_overflow_keeps_accepting(self):
        deployment, source = build_pubsub(
            broker_config=BrokerConfig(queue_limit=5, redelivery_delay=1.0,
                                       drop_on_overflow=True),
            subscriber_policy=PolicySpec(timeout=0.5),
        )
        gremlin = Gremlin(deployment)
        gremlin.inject(Hang("indexer", interval="1h"))
        load = ClosedLoopLoad(num_requests=10)
        load.run(source)
        assert all(sample.status == 202 for sample in load.result.samples)
        broker_state = deployment.instances_of("messagebus")[0].ctx.state["broker"]
        assert broker_state["dropped"] == 5

    def test_slow_subscriber_does_not_block_publish_path(self):
        deployment, source = build_pubsub(
            subscriber_policy=PolicySpec(timeout=2.0),
        )
        gremlin = Gremlin(deployment)
        gremlin.inject(Hang("indexer", interval="1h"))
        load = ClosedLoopLoad(num_requests=3)
        load.run(source)
        # Publishes are acknowledged immediately; delivery is async.
        assert all(sample.elapsed < 0.1 for sample in load.result.samples)
