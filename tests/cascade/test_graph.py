"""Unit tests for dependency-graph discovery and its parsers."""

import json

import pytest

from repro.errors import AnalysisError
from repro.observability.cascade.graph import (
    DependencyGraph,
    EdgeStats,
    discover_graph,
    graph_from_campaign,
    histogram_quantile,
    hop_degraded,
    parse_propagation_hop,
    parse_series,
)
from repro.observability.trace import reconstruct_from_records

from tests.observability.test_spans_trace import (
    request_record,
    reply_record,
    two_hop_records,
)


class TestParsers:
    def test_series_with_labels(self):
        name, labels = parse_series('gremlin_requests_total{dst="b",src="a"}')
        assert name == "gremlin_requests_total"
        assert labels == {"dst": "b", "src": "a"}

    def test_series_bare(self):
        assert parse_series("up") == ("up", {})

    def test_propagation_hop(self):
        assert parse_propagation_hop("a -> b (status=503)") == ("a", "b", "status=503")
        assert parse_propagation_hop("x -> y (no-reply)") == ("x", "y", "no-reply")

    def test_propagation_hop_with_arrow_like_names(self):
        src, dst, outcome = parse_propagation_hop("svc-1 -> svc-2 (error=-1)")
        assert (src, dst, outcome) == ("svc-1", "svc-2", "error=-1")

    def test_bad_hop_is_loud(self):
        with pytest.raises(AnalysisError):
            parse_propagation_hop("not a hop")

    def test_hop_degraded(self):
        assert not hop_degraded("status=200")
        assert not hop_degraded("status=404")
        assert hop_degraded("status=500")
        assert hop_degraded("status=503")
        assert hop_degraded("error=-1")
        assert hop_degraded("no-reply")
        # Unparseable status is treated as degraded, not silently OK.
        assert hop_degraded("status=garbage")


class TestHistogramQuantile:
    def test_empty_histogram_is_none(self):
        assert histogram_quantile({"count": 0, "buckets": [], "counts": []}, 0.5) is None

    def test_first_reaching_bucket_bound(self):
        data = {"buckets": [0.1, 1.0], "counts": [3, 1], "count": 4, "max": 0.9}
        assert histogram_quantile(data, 0.5) == 0.1
        assert histogram_quantile(data, 0.95) == 1.0

    def test_overflow_falls_back_to_max(self):
        data = {"buckets": [0.1], "counts": [1], "count": 4, "max": 7.5}
        assert histogram_quantile(data, 0.99) == 7.5


class TestEdgeStats:
    def test_rates_on_idle_edge(self):
        stats = EdgeStats(src="a", dst="b")
        assert stats.error_rate == 0.0
        assert stats.mean_latency is None

    def test_finalize_nearest_rank(self):
        stats = EdgeStats(src="a", dst="b", calls=4)
        stats._samples = [0.4, 0.1, 0.3, 0.2]
        stats.finalize()
        assert stats.latency_quantiles == {"p50": 0.2, "p95": 0.4, "p99": 0.4}
        assert stats._samples == []

    def test_dict_roundtrip(self):
        stats = EdgeStats(
            src="a", dst="b", calls=10, errors=2, latency_sum=1.5,
            latency_max=0.9, latency_quantiles={"p50": 0.1},
            retries=3.0, faults={"abort(503)": 4},
        )
        clone = EdgeStats.from_dict(json.loads(json.dumps(stats.to_dict())))
        assert clone == stats


def diamond_graph():
    """source -> a -> {b, c} -> d: the classic fan-out/fan-in shape."""
    graph = DependencyGraph()
    for src, dst in [("source", "a"), ("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")]:
        graph.edge(src, dst).calls += 1
    return graph


class TestTopology:
    def test_services_and_sources_sorted(self):
        graph = diamond_graph()
        assert graph.services() == ["a", "b", "c", "d", "source"]
        assert graph.sources() == ["source"]

    def test_callers_and_callees(self):
        graph = diamond_graph()
        assert graph.callers_of("d") == ["b", "c"]
        assert graph.callees_of("a") == ["b", "c"]

    def test_ancestors_and_descendants(self):
        graph = diamond_graph()
        assert graph.ancestors("d") == {"a", "b", "c", "source"}
        assert graph.descendants("a") == {"b", "c", "d"}
        assert graph.ancestors("source") == set()

    def test_cycles_terminate(self):
        graph = DependencyGraph()
        graph.edge("s", "a")
        graph.edge("a", "b")
        graph.edge("b", "a")  # mutual recursion
        # Through the cycle, a is its own transitive caller and callee.
        assert graph.ancestors("a") == {"s", "b", "a"}
        assert graph.descendants("a") == {"a", "b"}
        assert graph.depth_of("b") >= 1

    def test_layers_are_depth_columns(self):
        graph = diamond_graph()
        assert graph.layers() == [["source"], ["a"], ["b", "c"], ["d"]]
        assert graph.depth_of("source") == 0
        assert graph.depth_of("d") == 3

    def test_dict_roundtrip_is_deterministic(self):
        graph = diamond_graph()
        doc = graph.to_dict()
        clone = DependencyGraph.from_dict(json.loads(json.dumps(doc)))
        assert clone.to_dict() == doc
        assert json.dumps(doc, sort_keys=True) == json.dumps(
            clone.to_dict(), sort_keys=True
        )


def faulted_fanout_records():
    """user -> a -> {b, c} with an injected abort on a->b."""
    return [
        request_record("u#1", None, "user", "a", 0.0),
        request_record("a#1", "u#1", "a", "b", 0.1),
        reply_record(
            "a#1", "u#1", "a", "b", 0.1, latency=0.0, status=503,
            fault_applied="abort(503)", gremlin_generated=True,
        ),
        request_record("a#2", "u#1", "a", "c", 0.2),
        reply_record("a#2", "u#1", "a", "c", 0.4, latency=0.2),
        reply_record("u#1", None, "user", "a", 0.5, latency=0.5, status=500),
    ]


class TestDiscoverGraph:
    def test_folds_spans_into_weighted_edges(self):
        traces = [
            reconstruct_from_records("test-1", two_hop_records()),
            reconstruct_from_records("test-1", faulted_fanout_records()),
        ]
        graph = discover_graph(traces)
        assert set(graph.edges) == {
            ("user", "a"), ("a", "b"), ("a", "c"),
        }
        entry = graph.edges[("user", "a")]
        assert entry.calls == 2
        assert entry.errors == 1  # the faulted run's 500
        assert entry.latency_max == 0.5
        assert entry.latency_quantiles["p50"] == 0.5
        faulted = graph.edges[("a", "b")]
        assert faulted.faults == {"abort(503)": 1}
        assert faulted.errors == 1

    def test_empty_input_gives_empty_graph(self):
        graph = discover_graph([])
        assert len(graph) == 0
        assert graph.services() == []
        assert graph.layers() == []


class TestGraphFromCampaign:
    def campaign(self):
        from repro.campaign.results import CampaignResult, RecipeOutcome

        metrics = {
            "counters": {
                'gremlin_requests_total{dst="a",src="user"}': 10,
                'gremlin_requests_total{dst="b",src="a"}': 10,
                'client_retries_total{dst="b",src="a"}': 5,
                'gremlin_faults_injected_total{dst="b",fault="abort(503)",src="a"}': 4,
            },
            "gauges": {},
            "histograms": {
                'gremlin_request_latency_seconds{dst="b",src="a"}': {
                    "buckets": [0.1, 1.0],
                    "counts": [8, 2],
                    "count": 10,
                    "sum": 2.0,
                    "min": 0.01,
                    "max": 0.8,
                },
            },
        }
        outcome = RecipeOutcome(
            index=0, name="r", pattern="timeout", service="b", seed=1,
            status="fail", metrics=metrics,
            attributions=[
                {
                    "edge": "a -> b",
                    "fault": "abort(503)",
                    "outcome": "status=500",
                    "propagation_path": [
                        "a -> b (status=503)",
                        "user -> a (status=500)",
                    ],
                }
            ],
        )
        return CampaignResult(
            name="c", app="app", seed=1, workers=1, outcomes=[outcome]
        )

    def test_rebuilds_weights_from_merged_evidence(self):
        graph = graph_from_campaign(self.campaign())
        edge = graph.edges[("a", "b")]
        assert edge.calls == 10
        assert edge.retries == 5
        assert edge.faults == {"abort(503)": 4}
        assert edge.latency_sum == 2.0
        assert edge.latency_max == 0.8
        assert edge.latency_quantiles == {"p50": 0.1, "p95": 1.0, "p99": 1.0}
        # Errors come from the attribution propagation path's degraded
        # hops — both the injected edge and the entry edge saw one.
        assert edge.errors == 1
        assert graph.edges[("user", "a")].errors == 1

    def test_survives_jsonl_roundtrip(self):
        from repro.campaign.io import dumps, loads

        result = self.campaign()
        reloaded = loads(dumps(result))
        assert graph_from_campaign(reloaded).to_dict() == graph_from_campaign(
            result
        ).to_dict()
