"""The resilience report artifact: determinism, HTML, verdicts."""

import json

from repro.apps import build_twotier
from repro.campaign import CampaignRunner, plan_campaign
from repro.campaign.results import CampaignResult, CheckOutcome, RecipeOutcome
from repro.explore.report import BugFinding, CoverageReport
from repro.observability.cascade.graph import DependencyGraph
from repro.observability.cascade.report import (
    VERDICT_COLORS,
    build_explore_report,
    build_report,
)


def metrics_snapshot():
    return {
        "counters": {
            'gremlin_requests_total{dst="a",src="user"}': 8,
            'gremlin_requests_total{dst="b",src="a"}': 8,
            'gremlin_requests_total{dst="c",src="a"}': 8,
        },
        "gauges": {},
        "histograms": {},
    }


def synthetic_campaign():
    """Three services: b fails deterministically, c passes, a untested."""
    failing = RecipeOutcome(
        index=0, name="overload-b", pattern="timeout", service="b", seed=1,
        status="fail", classification="broken",
        checks=[
            CheckOutcome(
                name="HasTimeouts(a, 1s)", passed=False, inconclusive=False,
                detail="",
            )
        ],
        metrics=metrics_snapshot(),
        attributions=[
            {
                "edge": "a -> b",
                "fault": "abort(503)",
                "outcome": "status=500",
                "on_critical_path": True,
                "propagation_path": [
                    "a -> b (status=503)",
                    "user -> a (status=500)",
                ],
            }
        ],
    )
    passing = RecipeOutcome(
        index=1, name="overload-c", pattern="bounded", service="c", seed=2,
        status="pass",
        checks=[
            CheckOutcome(
                name="BoundedRetries(a)", passed=True, inconclusive=False,
                detail="",
            )
        ],
        # Timing/worker noise that must NOT leak into the report.
        wall_time=123.4, orchestration_time=5.0, worker=7,
    )
    return CampaignResult(
        name="synthetic", app="app", seed=1, workers=2,
        outcomes=[failing, passing], wall_time=99.0,
    )


class TestBuildReport:
    def test_verdicts_cover_every_non_source_service(self):
        report = build_report(synthetic_campaign())
        assert report.verdicts["b"] == "vulnerable"
        assert report.verdicts["c"] == "resilient"
        # a was never a recipe target but is in the graph: untested.
        assert report.verdicts["a"] == "untested"
        # The traffic source is not a service under test.
        assert "user" not in report.verdicts

    def test_document_shape(self):
        doc = build_report(synthetic_campaign()).to_dict()
        assert doc["report"] == "resilience"
        assert doc["source"] == "campaign"
        assert doc["passed"] is False
        assert doc["counts"]["fail"] == 1 and doc["counts"]["pass"] == 1
        assert "a -> b" in doc["graph"]["edges"]
        assert doc["blast"]["b"]["impacted"] == {"a": 1, "user": 1}
        assert [c["edge"] for c in doc["root_causes"]["HasTimeouts(a, 1s)"]] == [
            "a -> b"
        ]
        assert {p["service"] for p in doc["predictions"]} == {"a", "b", "c"}
        assert doc["scorecard"] is not None and doc["exploration"] is None

    def test_no_timing_or_worker_fields_anywhere(self):
        text = build_report(synthetic_campaign()).to_json()
        doc = json.loads(text)
        forbidden = {
            "wall_time", "orchestration_time", "assertion_time", "worker",
            "workers",
        }

        def walk(node):
            if isinstance(node, dict):
                assert not forbidden.intersection(node), sorted(
                    forbidden.intersection(node)
                )
                for value in node.values():
                    walk(value)
            elif isinstance(node, list):
                for value in node:
                    walk(value)

        walk(doc)

    def test_recipe_rows_are_plan_identity_plus_verdicts(self):
        report = build_report(synthetic_campaign())
        assert report.recipes == [
            {
                "index": 0,
                "name": "overload-b",
                "pattern": "timeout",
                "service": "b",
                "seed": 1,
                "status": "fail",
                "classification": "broken",
                "failed_checks": ["HasTimeouts(a, 1s)"],
                "attributions": 1,
            },
            {
                "index": 1,
                "name": "overload-c",
                "pattern": "bounded",
                "service": "c",
                "seed": 2,
                "status": "pass",
                "classification": None,
                "failed_checks": [],
                "attributions": 0,
            },
        ]

    def test_json_identical_across_worker_counts(self):
        """The acceptance contract: same seed => byte-identical report
        regardless of fleet shape."""
        factory = build_twotier
        plan = plan_campaign(factory, seed=31, requests=6)
        serial = CampaignRunner(factory, workers=1).run(plan)
        fleet = CampaignRunner(factory, workers=3).run(plan)
        assert build_report(serial).to_json() == build_report(fleet).to_json()

    def test_json_is_idempotent(self):
        result = synthetic_campaign()
        assert build_report(result).to_json() == build_report(result).to_json()


class TestHtml:
    def test_standalone_page_with_svg_diagram(self):
        html = build_report(synthetic_campaign()).to_html()
        assert html.startswith("<!DOCTYPE html>")
        assert "<svg" in html and "</svg>" in html
        for service in ("a", "b", "c", "user"):
            assert f">{service}</text>" in html
        for verdict, color in VERDICT_COLORS.items():
            assert color in html
        assert "FAILED" in html
        assert "HasTimeouts(a, 1s)" in html
        # Self-contained: no external fetches.
        assert "http://" not in html and "https://" not in html
        assert "<script" not in html

    def test_graphless_report_still_renders(self):
        coverage = empty_coverage()
        html = build_explore_report(coverage).to_html()
        assert "No dependency graph discovered" in html

    def test_save_picks_format_from_extension(self, tmp_path):
        report = build_report(synthetic_campaign())
        json_path = tmp_path / "report.json"
        html_path = tmp_path / "report.html"
        report.save(str(json_path))
        report.save(str(html_path))
        assert json.loads(json_path.read_text())["report"] == "resilience"
        assert html_path.read_text().startswith("<!DOCTYPE html>")


def empty_coverage(findings=()):
    return CoverageReport(
        app="deepfanout", strategy="whatif", seed=0, budget=10,
        edges_discovered=3, coordinates_enumerated=12, sweep_coordinates=8,
        single_coordinates=4, executed=5, pruned=2, errors=0,
        baseline_shapes=1, shapes_seen=3, new_shapes=2,
        bugs_planted=["deepfanout/missing-timeout"],
        findings=list(findings),
        executions_to_all_bugs=4 if findings else None,
    )


class TestBuildExploreReport:
    def test_findings_mark_the_exercised_service_vulnerable(self):
        graph = DependencyGraph()
        for src, dst in [
            ("load", "portal"), ("portal", "catalog"), ("catalog", "pricing"),
        ]:
            graph.edge(src, dst).calls = 5
        finding = BugFinding(
            bug_id="deepfanout/missing-timeout",
            coordinate="sweep:catalog->pricing:delay",
            execution_index=4,
            failed_checks=("HasTimeouts(catalog, 1s)",),
        )
        report = build_explore_report(empty_coverage([finding]), graph)
        assert report.source == "explore"
        assert report.passed is False
        # The coordinate's caller is the service whose pattern failed.
        assert report.verdicts["catalog"] == "vulnerable"
        assert report.verdicts["portal"] == "untested"
        assert "load" not in report.verdicts
        assert report.counts == {
            "executed": 5, "pruned": 2, "errors": 0, "findings": 1,
        }
        assert report.exploration["app"] == "deepfanout"

    def test_clean_exploration_passes(self):
        report = build_explore_report(empty_coverage())
        assert report.passed is True
        assert report.verdicts == {}
        assert report.name == "explore/deepfanout/whatif"
