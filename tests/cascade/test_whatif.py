"""What-if cascade simulation: the model and the orderings it drives."""

import dataclasses

import pytest

from repro.errors import AnalysisError
from repro.observability.cascade.graph import DependencyGraph
from repro.observability.cascade.whatif import (
    ABORT_DAMAGE,
    DELAY_DAMAGE_CAP,
    RESET_DAMAGE,
    RETRY_AMPLIFICATION,
    order_candidates,
    order_plan,
    predict_service_blast,
    simulate_fault,
)


def chain_graph():
    """source -> a -> b -> c with 10 calls per edge."""
    graph = DependencyGraph()
    for src, dst in [("source", "a"), ("a", "b"), ("b", "c")]:
        graph.edge(src, dst).calls = 10
    return graph


@dataclasses.dataclass(frozen=True)
class FakeCoordinate:
    """Coordinate-shaped stand-in (mode/src/dst/fault duck type)."""

    mode: str
    src: str
    dst: str
    fault: str


class TestSimulateFault:
    def test_delay_blast_is_upstream_cone(self):
        prediction = simulate_fault(chain_graph(), "b", "c", "delay", interval=2.0)
        assert prediction.impacted == ("a", "b", "source")
        assert prediction.entry_latency_inflation == 2.0
        assert prediction.entry_error_fraction == 0.0
        assert prediction.damage == 2.0
        assert prediction.score == 3 + 2.0

    def test_delay_damage_is_capped(self):
        prediction = simulate_fault(chain_graph(), "b", "c", "delay", interval=99.0)
        assert prediction.damage == DELAY_DAMAGE_CAP

    def test_negative_interval_is_loud(self):
        with pytest.raises(AnalysisError):
            simulate_fault(chain_graph(), "b", "c", "delay", interval=-1.0)

    def test_abort_uses_default_retry_multiplier(self):
        prediction = simulate_fault(chain_graph(), "b", "c", "abort")
        assert prediction.entry_error_fraction == 1.0
        assert prediction.damage == ABORT_DAMAGE * RETRY_AMPLIFICATION
        assert prediction.amplified_calls == 10 * RETRY_AMPLIFICATION

    def test_observed_retries_override_default(self):
        graph = chain_graph()
        graph.edges[("b", "c")].retries = 5.0  # 1 + 5/10 = 1.5x
        prediction = simulate_fault(graph, "b", "c", "abort")
        assert prediction.damage == ABORT_DAMAGE * 1.5
        assert prediction.amplified_calls == 15.0

    def test_reset_is_discounted_below_abort(self):
        abort = simulate_fault(chain_graph(), "b", "c", "abort")
        reset = simulate_fault(chain_graph(), "b", "c", "reset")
        assert reset.damage == RESET_DAMAGE * RETRY_AMPLIFICATION
        assert reset.damage < abort.damage
        assert reset.impacted == abort.impacted

    def test_to_dict_renders_edge(self):
        doc = simulate_fault(chain_graph(), "a", "b", "abort").to_dict()
        assert doc["edge"] == "a -> b"
        assert doc["impacted"] == ["a", "source"]


class TestPredictServiceBlast:
    def test_worst_case_incoming_abort(self):
        doc = predict_service_blast(chain_graph(), "b")
        assert doc["impacted"] == ["a", "source"]
        assert doc["blast_size"] == 2
        assert doc["amplified_calls"] == 10 * RETRY_AMPLIFICATION


class TestOrderCandidates:
    def test_deeper_injection_ranks_first(self):
        graph = chain_graph()
        shallow = FakeCoordinate("sweep", "a", "b", "abort")
        deep = FakeCoordinate("sweep", "b", "c", "abort")
        assert order_candidates([shallow, deep], graph) == [deep, shallow]

    def test_damage_breaks_equal_blast_ties(self):
        graph = chain_graph()
        big_delay = FakeCoordinate("sweep", "b", "c", "delay")
        short_delay = FakeCoordinate("sweep", "b", "c", "delay_short")
        ordered = order_candidates(
            [short_delay, big_delay], graph,
            intervals={"delay": 2.0, "delay_short": 0.05},
        )
        assert ordered == [big_delay, short_delay]

    def test_single_mode_is_scaled_down_by_workload(self):
        graph = chain_graph()
        single = FakeCoordinate("single", "b", "c", "abort")
        sweep_shallow = FakeCoordinate("sweep", "a", "b", "abort")
        # At requests=1 the transient single outranks the shallower
        # sweep; across a 40-request workload it is 1/40th as damaging.
        assert order_candidates([sweep_shallow, single], graph, requests=1) == [
            single, sweep_shallow,
        ]
        assert order_candidates([sweep_shallow, single], graph, requests=40) == [
            sweep_shallow, single,
        ]

    def test_subtree_weight_breaks_remaining_ties(self):
        graph = DependencyGraph()
        for src, dst in [
            ("source", "a"), ("a", "leaf"), ("a", "mid"), ("mid", "deep"),
        ]:
            graph.edge(src, dst).calls = 10
        to_leaf = FakeCoordinate("sweep", "a", "leaf", "abort")
        to_mid = FakeCoordinate("sweep", "a", "mid", "abort")
        # Same src => same blast, same fault => same damage; the edge
        # with more structure underneath (mid -> deep) goes first.
        assert order_candidates([to_leaf, to_mid], graph) == [to_mid, to_leaf]

    def test_enumeration_order_is_the_final_tie_break(self):
        graph = chain_graph()
        first = FakeCoordinate("sweep", "b", "c", "abort")
        second = FakeCoordinate("single", "b", "c", "abort")
        assert order_candidates([first, second], graph, requests=1) == [
            first, second,
        ]


@dataclasses.dataclass(frozen=True)
class FakeEntry:
    """PlannedRecipe-shaped stand-in for order_plan."""

    name: str
    service: str


class TestOrderPlan:
    def test_bigger_predicted_blast_runs_first(self):
        graph = chain_graph()
        entries = [
            FakeEntry("shallow", "a"),
            FakeEntry("deep", "c"),
            FakeEntry("wildcard", "*"),
        ]
        ordered = order_plan(entries, graph)
        assert [e.name for e in ordered] == ["deep", "shallow", "wildcard"]

    def test_unknown_services_keep_original_order(self):
        graph = chain_graph()
        entries = [FakeEntry("x", "ghost1"), FakeEntry("y", "ghost2")]
        assert order_plan(entries, graph) == entries
