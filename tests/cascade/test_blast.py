"""Blast-radius scoring, including the span-ID-invariance property."""

from hypothesis import given, settings, strategies as st

from repro.agent.rules import abort
from repro.campaign.results import CampaignResult, RecipeOutcome
from repro.observability import attribute_trace
from repro.observability.cascade.blast import (
    BlastRadius,
    blast_from_attributions,
    blast_radius,
)
from repro.observability.trace import reconstruct_from_records

from tests.observability.test_spans_trace import request_record, reply_record


def attribution_doc(**overrides):
    doc = {
        "edge": "a -> b",
        "fault": "abort(503)",
        "outcome": "status=500",
        "propagation_path": [
            "a -> b (status=503)",
            "user -> a (status=500)",
        ],
    }
    doc.update(overrides)
    return doc


class TestBlastFromAttributions:
    def test_counts_degraded_hop_sources(self):
        blast = blast_from_attributions("b", [attribution_doc()])
        assert blast.runs == 1
        assert blast.attributions == 1
        assert blast.impacted == {"a": 1, "user": 1}
        assert blast.reached_entry == 1
        assert blast.score == 2.0

    def test_absorbed_fault_scores_zero(self):
        absorbed = attribution_doc(
            outcome="status=200",
            propagation_path=["a -> b (status=503)", "user -> a (status=200)"],
        )
        blast = blast_from_attributions("b", [absorbed])
        assert blast.reached_entry == 0
        assert blast.impacted == {"a": 1}  # a observed the failing call
        assert blast.score == 0.0

    def test_empty_input(self):
        blast = blast_from_attributions("b", [])
        assert blast.runs == 0
        assert blast.score == 0.0

    def test_impacted_services_order(self):
        blast = BlastRadius(service="b", impacted={"x": 1, "a": 3, "m": 1})
        assert blast.impacted_services == ["a", "m", "x"]


class TestBlastRadius:
    def test_groups_by_faulted_service(self):
        outcomes = [
            RecipeOutcome(
                index=0, name="r0", pattern="timeout", service="b", seed=1,
                status="fail", attributions=[attribution_doc()],
            ),
            RecipeOutcome(
                index=1, name="r1", pattern="timeout", service="b", seed=2,
                status="fail", attributions=[attribution_doc()],
            ),
            RecipeOutcome(
                index=2, name="r2", pattern="bounded", service="c", seed=3,
                status="pass",
            ),
        ]
        result = CampaignResult(
            name="c", app="app", seed=1, workers=1, outcomes=outcomes
        )
        radii = blast_radius(result)
        assert list(radii) == ["b"]  # passing recipes leave no blast
        assert radii["b"].runs == 2
        assert radii["b"].attributions == 2
        assert radii["b"].impacted == {"a": 2, "user": 2}


def faulted_fanout_records(ids):
    """user -> a -> {b, c}, abort injected on a->b, entry failed.

    ``ids`` names the three span IDs, so the same tree can be built
    under any renumbering.
    """
    root, left, right = ids
    return [
        request_record(root, None, "user", "a", 0.0),
        request_record(left, root, "a", "b", 0.1),
        reply_record(
            left, root, "a", "b", 0.1, latency=0.0, status=503,
            fault_applied="abort(503)", gremlin_generated=True,
        ),
        request_record(right, root, "a", "c", 0.2),
        reply_record(right, root, "a", "c", 0.4, latency=0.2),
        reply_record(root, None, "user", "a", 0.5, latency=0.5, status=500),
    ]


def blast_of(ids):
    trace = reconstruct_from_records("test-1", faulted_fanout_records(ids))
    rule = abort(src="a", dst="b", error=503)
    docs = [a.to_dict() for a in attribute_trace(trace, [rule])]
    return blast_from_attributions("b", docs)


class TestSpanIdInvariance:
    """Blast scores read edge names and hop outcomes, never span IDs —
    the same invariance trace_shape_digest guarantees for shapes."""

    BASELINE = blast_of(("u#1", "a#1", "a#2"))

    @given(
        st.lists(
            st.integers(min_value=0, max_value=10**9),
            min_size=3, max_size=3, unique=True,
        ),
        st.sampled_from(["u", "svc", "x-9", "Entry"]),
    )
    @settings(max_examples=50, deadline=None)
    def test_score_invariant_under_renumbering(self, numbers, scope):
        ids = tuple(f"{scope}#{n}" for n in numbers)
        renumbered = blast_of(ids)
        assert renumbered.score == self.BASELINE.score
        assert renumbered.impacted == self.BASELINE.impacted
        assert renumbered.reached_entry == self.BASELINE.reached_entry
        assert renumbered.to_dict() == self.BASELINE.to_dict()
