"""Root-cause ranking: scoring signals and deterministic order."""

from repro.campaign.results import CampaignResult, CheckOutcome, RecipeOutcome
from repro.observability.cascade.rootcause import rank_root_causes


def failed_check(name):
    return CheckOutcome(name=name, passed=False, inconclusive=False, detail="")


def attribution(edge="a -> b", fault="abort(503)", path=None, on_critical=None):
    doc = {
        "edge": edge,
        "fault": fault,
        "outcome": "status=500",
        "propagation_path": path
        if path is not None
        else [f"{edge} (status=503)", "user -> a (status=500)"],
    }
    if on_critical is not None:
        doc["on_critical_path"] = on_critical
    return doc


def outcome(index, checks, attributions, status="fail"):
    return RecipeOutcome(
        index=index, name=f"r{index}", pattern="timeout", service="b",
        seed=index, status=status, checks=checks, attributions=attributions,
    )


def campaign(outcomes):
    return CampaignResult(name="c", app="app", seed=1, workers=1, outcomes=outcomes)


class TestRankRootCauses:
    def test_frequency_dominates(self):
        # abort on a->b explains two failing executions, delay on a->c one.
        result = campaign(
            [
                outcome(0, [failed_check("HasTimeouts(a)")], [attribution()]),
                outcome(1, [failed_check("HasTimeouts(a)")], [attribution()]),
                outcome(
                    2,
                    [failed_check("HasTimeouts(a)")],
                    [attribution(edge="a -> c", fault="delay(2)")],
                ),
            ]
        )
        ranked = rank_root_causes(result)
        candidates = ranked["HasTimeouts(a)"]
        assert [c.edge for c in candidates] == ["a -> b", "a -> c"]
        assert candidates[0].frequency == 2
        assert candidates[1].frequency == 1
        assert candidates[0].score > candidates[1].score
        assert candidates[0].service == "b"  # dst of the injected edge

    def test_frequency_dedupes_within_one_outcome(self):
        # Two attributions of the same culprit in one execution count
        # once for frequency but both for the attribution tally.
        result = campaign(
            [outcome(0, [failed_check("c1")], [attribution(), attribution()])]
        )
        (candidate,) = rank_root_causes(result)["c1"]
        assert candidate.frequency == 1
        assert candidate.attributions == 2

    def test_distinct_paths_and_reach(self):
        long_path = [
            "a -> b (status=503)",
            "m -> a (status=500)",
            "user -> m (status=500)",
        ]
        result = campaign(
            [
                outcome(0, [failed_check("c1")], [attribution()]),
                outcome(1, [failed_check("c1")], [attribution(path=long_path)]),
            ]
        )
        (candidate,) = rank_root_causes(result)["c1"]
        assert candidate.distinct_paths == 2
        assert candidate.max_reach == 3

    def test_critical_path_signal(self):
        on = campaign(
            [outcome(0, [failed_check("c1")], [attribution(on_critical=True)])]
        )
        off = campaign(
            [outcome(0, [failed_check("c1")], [attribution(on_critical=False)])]
        )
        legacy = campaign([outcome(0, [failed_check("c1")], [attribution()])])
        (c_on,) = rank_root_causes(on)["c1"]
        (c_off,) = rank_root_causes(off)["c1"]
        (c_legacy,) = rank_root_causes(legacy)["c1"]
        assert c_on.critical_fraction == 1.0
        assert c_off.critical_fraction == 0.0
        # Pre-upgrade dumps lack the field: scored neutrally, not as 0.
        assert c_legacy.critical_fraction == 0.5
        assert c_on.score > c_legacy.score > c_off.score

    def test_passing_and_inconclusive_checks_do_not_rank(self):
        checks = [
            CheckOutcome(name="ok", passed=True, inconclusive=False, detail=""),
            CheckOutcome(name="maybe", passed=False, inconclusive=True, detail=""),
        ]
        result = campaign([outcome(0, checks, [attribution()])])
        assert rank_root_causes(result) == {}

    def test_stable_tie_break_on_edge_then_fault(self):
        result = campaign(
            [
                outcome(
                    0,
                    [failed_check("c1")],
                    [
                        attribution(edge="a -> z", fault="abort(503)"),
                        attribution(edge="a -> b", fault="delay(2)"),
                        attribution(edge="a -> b", fault="abort(503)"),
                    ],
                )
            ]
        )
        candidates = rank_root_causes(result)["c1"]
        # distinct_paths differ per path content; equal-score candidates
        # settle on (edge, fault).
        assert [(c.edge, c.fault) for c in candidates] == sorted(
            (c.edge, c.fault) for c in candidates
        ) or candidates[0].score >= candidates[-1].score

    def test_to_dict_is_plain_data(self):
        result = campaign([outcome(0, [failed_check("c1")], [attribution()])])
        (candidate,) = rank_root_causes(result)["c1"]
        doc = candidate.to_dict()
        assert doc["check"] == "c1"
        assert doc["edge"] == "a -> b"
        assert doc["frequency"] == 1
        assert doc["score"] == candidate.score
