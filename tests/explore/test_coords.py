"""Coordinate enumeration: determinism, structure, serialization."""

import pytest

from repro.apps.outages import SEEDED_BUG_SUITE
from repro.errors import ExploreError
from repro.explore import Coordinate, FAULT_PRIMITIVES, discover_space, fault_primitives


class TestEnumerationDeterminism:
    def test_same_seed_identical_coordinate_list(self):
        first = discover_space("deepfanout", seed=0)
        second = discover_space("deepfanout", seed=0)
        assert [c.to_dict() for c in first.coordinates] == [
            c.to_dict() for c in second.coordinates
        ]
        assert first.baseline_shapes == second.baseline_shapes
        assert first.edges == second.edges

    def test_deterministic_across_scheduler_lanes(self):
        calendar = discover_space("retrystorm", seed=0, scheduler="calendar")
        heap = discover_space("retrystorm", seed=0, scheduler="heap")
        assert [c.to_dict() for c in calendar.coordinates] == [
            c.to_dict() for c in heap.coordinates
        ]
        assert calendar.baseline_shapes == heap.baseline_shapes


class TestSpaceStructure:
    def test_deepfanout_discovers_every_static_edge(self):
        space = discover_space("deepfanout", seed=0)
        assert set(space.edges) == {
            ("user", "gateway"),
            ("gateway", "catalog"),
            ("gateway", "search"),
            ("catalog", "inventory"),
            ("catalog", "pricing"),
            ("pricing", "quotes"),
        }

    def test_one_sweep_per_edge_per_primitive(self):
        space = discover_space("deepfanout", seed=0)
        manifest = SEEDED_BUG_SUITE["deepfanout"]
        primitives = fault_primitives(manifest)
        assert len(space.sweeps) == len(space.edges) * len(primitives)
        keys = {c.key() for c in space.sweeps}
        assert len(keys) == len(space.sweeps)
        assert all(c.mode == "sweep" and c.request_id == "test-*" for c in space.sweeps)

    def test_manifest_fault_kinds_pick_the_swept_primitives(self):
        # The seed apps keep the original four-primitive vocabulary;
        # production-scale apps opt into gray + exhaust as well.
        four = {name for name, _p in fault_primitives(SEEDED_BUG_SUITE["deepfanout"])}
        assert four == {"abort", "reset", "delay", "delay_short"}
        six = {name for name, _p in fault_primitives(SEEDED_BUG_SUITE["socialnetwork"])}
        assert six == set(FAULT_PRIMITIVES)
        space = discover_space("socialnetwork", seed=0)
        assert {c.fault for c in space.sweeps} == set(FAULT_PRIMITIVES)

    def test_singles_carry_full_call_paths(self):
        space = discover_space("deepfanout", seed=0)
        paths = {c.path for c in space.singles}
        assert ("user", "gateway", "catalog", "pricing", "quotes") in paths
        assert all(c.request_id == "test-1" for c in space.singles)

    def test_blast_radius_of_root_edge_covers_whole_tree(self):
        space = discover_space("deepfanout", seed=0)
        _path, subtree = space.edges[("user", "gateway")]
        # gateway + catalog + inventory + pricing + quotes + search
        assert subtree == 6

    def test_fault_primitives_resolve_manifest_delay(self):
        manifest = SEEDED_BUG_SUITE["deepfanout"]
        params = dict(fault_primitives(manifest))
        assert params["delay"] == {"interval": manifest.delay_interval}
        assert params["abort"] == {"error": 503}
        assert params["reset"] == {"error": -1}


class TestCoordinateModel:
    def test_serialization_round_trip(self):
        space = discover_space("stuckbreaker", seed=0)
        for coordinate in space.coordinates:
            assert Coordinate.from_dict(coordinate.to_dict()) == coordinate

    def test_space_to_dict_is_json_shaped(self):
        import json

        space = discover_space("stuckbreaker", seed=0)
        doc = json.loads(json.dumps(space.to_dict()))
        assert doc["app"] == "stuckbreaker"
        assert len(doc["sweeps"]) == len(space.sweeps)

    def test_validation_rejects_bad_mode_fault_path_ordinal(self):
        good = dict(
            app="a", entry="e", mode="sweep", path=("u", "s"), ordinal=0,
            fault="abort", request_id="test-*",
        )
        Coordinate(**good)
        with pytest.raises(ExploreError):
            Coordinate(**{**good, "mode": "everywhere"})
        with pytest.raises(ExploreError):
            Coordinate(**{**good, "fault": "bitflip"})
        with pytest.raises(ExploreError):
            Coordinate(**{**good, "path": ("u",)})
        with pytest.raises(ExploreError):
            Coordinate(**{**good, "ordinal": -1})

    def test_from_dict_missing_field_raises(self):
        with pytest.raises(ExploreError):
            Coordinate.from_dict({"app": "a"})

    def test_unknown_app_raises(self):
        with pytest.raises(ExploreError):
            discover_space("no-such-app")
