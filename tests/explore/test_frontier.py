"""Frontier unit tests on a small synthetic exploration space."""

from repro.explore import Coordinate, ExplorationSpace, Frontier


def make_space():
    """a->b fans out to two edges; b->c's subtree is bigger than b->d's."""
    def coord(mode, path, fault, ordinal=0):
        return Coordinate(
            app="synthetic", entry="b", mode=mode, path=path, ordinal=ordinal,
            fault=fault, request_id="test-1" if mode == "single" else "test-*",
        )

    edges = {
        ("a", "b"): (("a", "b"), 4),
        ("b", "c"): (("a", "b", "c"), 2),
        ("b", "d"): (("a", "b", "d"), 1),
        ("c", "e"): (("a", "b", "c", "e"), 1),
    }
    sweeps = [
        coord("sweep", path, fault)
        for path, _size in edges.values()
        for fault in ("abort", "reset", "delay", "delay_short")
    ]
    singles = [
        coord("single", path, fault)
        for path, _size in edges.values()
        for fault in ("abort", "reset", "delay", "delay_short")
    ]
    return ExplorationSpace(
        app="synthetic", entry="b", seed=0, sweeps=sweeps, singles=singles,
        edges=edges, baseline_shapes=["base"],
    )


class TestStaticOrder:
    def test_first_band_is_aborts_by_blast_radius(self):
        frontier = Frontier(make_space())
        wave = frontier.pop_wave(4)
        # Among the span-1 leaves, the deeper c->e (the "storage hop")
        # now precedes the shallower b->d.
        assert [(c.fault, c.edge) for c in wave] == [
            ("abort", ("a", "b")),
            ("abort", ("b", "c")),
            ("abort", ("c", "e")),
            ("abort", ("b", "d")),
        ]

    def test_delay_band_precedes_reset_and_short_delay(self):
        frontier = Frontier(make_space())
        faults = [c.fault for c in frontier.pop_wave(16)]
        assert faults == (
            ["abort"] * 4 + ["delay"] * 4 + ["reset"] * 4 + ["delay_short"] * 4
        )

    def test_all_sweeps_precede_all_singles(self):
        frontier = Frontier(make_space())
        modes = [c.mode for c in frontier.pop_wave(32)]
        assert modes == ["sweep"] * 16 + ["single"] * 16

    def test_fanin_breaks_span_ties_before_discovery_order(self):
        # Two span-1 leaves at the same depth: the one whose caller has
        # more upstream callers wins, even though it was discovered
        # later.
        def coord(path):
            return Coordinate(
                app="synthetic", entry="r", mode="sweep", path=path,
                ordinal=0, fault="abort", request_id="test-*",
            )

        edges = {
            ("r", "a"): (("r", "a"), 3),
            ("r", "b"): (("r", "b"), 2),
            ("b", "a"): (("r", "b", "a"), 2),
            ("b", "t"): (("r", "b", "t"), 1),  # discovered first...
            ("a", "s"): (("r", "a", "s"), 1),  # ...but a has two callers
        }
        space = ExplorationSpace(
            app="synthetic", entry="r", seed=0,
            sweeps=[coord(path) for path, _size in edges.values()],
            singles=[], edges=edges, baseline_shapes=["base"],
        )
        order = [c.edge for c in Frontier(space).pop_wave(5)]
        assert order.index(("a", "s")) < order.index(("b", "t"))

    def test_pop_wave_drains_exactly_once(self):
        frontier = Frontier(make_space())
        seen = []
        while True:
            wave = frontier.pop_wave(5)
            if not wave:
                break
            seen.extend(c.key() for c in wave)
        assert len(seen) == len(set(seen)) == 32
        assert len(frontier) == 0


class TestFeedback:
    def test_boost_pulls_edge_forward_within_band(self):
        space = make_space()
        frontier = Frontier(space)
        frontier.pop_wave(4)  # consume the abort band
        # New shape on the *smallest* edge: its remaining candidates
        # jump ahead of bigger edges in the delay band.
        boosted_on = next(c for c in space.sweeps if c.edge == ("c", "e"))
        assert frontier.boost_neighborhood(boosted_on) > 0
        wave = frontier.pop_wave(4)
        assert wave[0].edge == ("c", "e")
        assert wave[0].fault == "delay"

    def test_boost_never_crosses_band_boundaries(self):
        space = make_space()
        frontier = Frontier(space)
        frontier.pop_wave(4)
        boosted_on = next(c for c in space.sweeps if c.edge == ("c", "e"))
        frontier.boost_neighborhood(boosted_on)
        faults = [c.fault for c in frontier.pop_wave(4)]
        assert faults == ["delay"] * 4  # no reset/delay_short jumped in

    def test_defer_pushes_edge_back_within_band(self):
        space = make_space()
        frontier = Frontier(space)
        frontier.pop_wave(4)
        deferred = next(c for c in space.sweeps if c.edge == ("a", "b"))
        assert frontier.defer_edge(deferred) > 0
        wave = frontier.pop_wave(4)
        assert [c.edge for c in wave] == [
            ("b", "c"), ("c", "e"), ("b", "d"), ("a", "b"),
        ]

    def test_stale_heap_entries_are_skipped(self):
        space = make_space()
        frontier = Frontier(space)
        target = next(c for c in space.sweeps if c.edge == ("b", "d"))
        frontier.boost_neighborhood(target)
        frontier.defer_edge(target)
        drained = []
        while len(frontier):
            drained.extend(frontier.pop_wave(8))
        assert len(drained) == len({c.key() for c in drained}) == 32


class TestPruning:
    def test_prune_removes_strict_path_extensions_only(self):
        space = make_space()
        frontier = Frontier(space)
        confirmed = next(c for c in space.sweeps if c.edge == ("b", "c"))
        pruned = frontier.prune_masked(confirmed)
        # Everything under a->b->c (i.e. the c->e edge, both modes, all
        # primitives) is masked; a->b->c itself and siblings survive.
        assert len(pruned) == 8
        assert all("c->e" in key for key in pruned)
        remaining = []
        while len(frontier):
            remaining.extend(frontier.pop_wave(8))
        assert all(c.edge != ("c", "e") for c in remaining)
        assert any(c.edge == ("b", "c") for c in remaining)

    def test_pruned_keys_are_recorded(self):
        space = make_space()
        frontier = Frontier(space)
        confirmed = next(c for c in space.sweeps if c.edge == ("a", "b"))
        pruned = frontier.prune_masked(confirmed)
        assert frontier.pruned == pruned
        # a->b masks every deeper edge: b->c, b->d, c->e in both modes.
        assert len(pruned) == 24
