"""Coordinate compilation: exact targeting, recipes, replay fidelity."""

import pytest

from repro.agent.rules import fresh_rule_ids
from repro.apps.outages import SEEDED_BUG_SUITE
from repro.core.gremlin import Gremlin
from repro.core.recipe import Recipe
from repro.errors import ExploreError
from repro.explore import (
    compile_scenarios,
    coordinate_recipe,
    discover_space,
    scenario_specs,
)
from repro.fuzz.spec import SOURCE_NAME, build_scenario
from repro.loadgen import ClosedLoopLoad


def run_with_coordinate(coordinate, manifest):
    """Deploy the app, install the coordinate's rules, run the manifest
    workload, and return the deployment (store still attached)."""
    deployment = manifest.builder().deploy(seed=0)
    source = deployment.add_traffic_source(manifest.entry, name=SOURCE_NAME)
    gremlin = Gremlin(deployment)
    scenarios = [build_scenario(spec) for spec in scenario_specs(coordinate, manifest)]
    with fresh_rule_ids():
        rules = gremlin.translator.translate(scenarios)
    gremlin.orchestrator.apply(rules)
    load = ClosedLoopLoad(
        num_requests=manifest.requests, think_time=manifest.think_time
    )
    deployment.sim.process(load.driver(source), name="test")
    deployment.sim.run()
    deployment.pipeline.flush()
    return deployment


class TestSingleTargeting:
    def test_single_coordinate_faults_exactly_one_call(self):
        manifest = SEEDED_BUG_SUITE["deepfanout"]
        space = discover_space("deepfanout", seed=0)
        coordinate = next(
            c for c in space.singles
            if c.edge == ("catalog", "pricing") and c.fault == "abort"
        )
        deployment = run_with_coordinate(coordinate, manifest)
        faulted = [
            r for r in deployment.store.all_records()
            if r.fault_applied and r.kind == "request"
        ]
        assert len(faulted) == 1
        (record,) = faulted
        assert (record.src, record.dst) == ("catalog", "pricing")
        assert record.request_id == coordinate.request_id == "test-1"

    def test_single_spec_encodes_ordinal_as_skip_matches(self):
        manifest = SEEDED_BUG_SUITE["deepfanout"]
        space = discover_space("deepfanout", seed=0)
        coordinate = space.singles[0]
        (spec,) = scenario_specs(coordinate, manifest)
        assert spec["params"]["max_matches"] == 1
        assert spec["params"]["skip_matches"] == coordinate.ordinal
        assert spec["params"]["pattern"] == "test-1"
        assert spec["params"]["probability"] == 1.0


class TestSweepCompilation:
    def test_sweep_faults_every_test_request(self):
        manifest = SEEDED_BUG_SUITE["deepfanout"]
        space = discover_space("deepfanout", seed=0)
        coordinate = next(
            c for c in space.sweeps
            if c.edge == ("gateway", "search") and c.fault == "abort"
        )
        deployment = run_with_coordinate(coordinate, manifest)
        faulted = {
            r.request_id
            for r in deployment.store.all_records()
            if r.fault_applied and r.kind == "request"
        }
        assert len(faulted) == manifest.requests

    def test_sweep_spec_is_persistent(self):
        manifest = SEEDED_BUG_SUITE["deepfanout"]
        space = discover_space("deepfanout", seed=0)
        (spec,) = scenario_specs(space.sweeps[0], manifest)
        assert spec["params"]["max_matches"] is None
        assert spec["params"]["skip_matches"] == 0
        assert spec["params"]["pattern"] == "test-*"


class TestRecipeAndErrors:
    def test_coordinate_recipe_is_a_real_recipe(self):
        manifest = SEEDED_BUG_SUITE["stuckbreaker"]
        space = discover_space("stuckbreaker", seed=0)
        recipe = coordinate_recipe(space.sweeps[0], manifest)
        assert isinstance(recipe, Recipe)
        assert recipe.name.startswith("explore/stuckbreaker/")
        assert recipe.scenarios and recipe.checks

    def test_delay_primitive_compiles_to_delay_scenario(self):
        manifest = SEEDED_BUG_SUITE["deepfanout"]
        space = discover_space("deepfanout", seed=0)
        coordinate = next(c for c in space.sweeps if c.fault == "delay")
        (scenario,) = compile_scenarios(coordinate, manifest)
        assert type(scenario).__name__ == "DelayCalls"
        assert scenario.interval == manifest.delay_interval

    def test_app_mismatch_raises(self):
        space = discover_space("deepfanout", seed=0)
        with pytest.raises(ExploreError):
            scenario_specs(space.sweeps[0], SEEDED_BUG_SUITE["retrystorm"])
