"""The exploration loop end to end: replay fidelity, bug finding,
prioritization, and coverage accounting."""

import json

import pytest

from repro.apps.outages import SEEDED_BUG_SUITE
from repro.errors import ExploreError
from repro.explore import (
    ExploreTask,
    discover_space,
    execute_task,
    run_explore,
    run_wave,
    scenario_specs,
)


def task_for(app, coordinate, **overrides):
    manifest = SEEDED_BUG_SUITE[app]
    return ExploreTask(
        app=app,
        seed=0,
        key=coordinate.key(),
        scenarios=tuple(scenario_specs(coordinate, manifest)),
        **overrides,
    )


class TestReplayFidelity:
    """A serialized coordinate replays bit-for-bit everywhere."""

    def test_digest_identical_across_thread_worker_counts(self):
        space = discover_space("deepfanout", seed=0)
        task = task_for("deepfanout", space.sweeps[0])
        baseline = execute_task(task)
        for workers in (1, 3):
            outcomes = run_wave([task, task], workers=workers, backend="threads")
            assert [o.digest for o in outcomes] == [baseline.digest] * 2

    @pytest.mark.slow
    def test_digest_identical_on_process_backend(self):
        space = discover_space("deepfanout", seed=0)
        task = task_for("deepfanout", space.sweeps[0])
        baseline = execute_task(task)
        outcomes = run_wave([task, task], workers=2, backend="processes")
        assert all(o.ok for o in outcomes)
        assert [o.digest for o in outcomes] == [baseline.digest] * 2

    def test_digest_identical_across_scheduler_lanes(self):
        space = discover_space("stuckbreaker", seed=0)
        coordinate = space.sweeps[0]
        digests = {
            execute_task(task_for("stuckbreaker", coordinate, scheduler=lane)).digest
            for lane in ("calendar", "heap")
        }
        assert len(digests) == 1

    def test_socialnetwork_digests_identical_across_scheduler_lanes(self):
        # The 28-service production app replays bit-for-bit on both
        # scheduler implementations, for every fault primitive.
        space = discover_space("socialnetwork", seed=0)
        by_fault = {}
        for coordinate in space.sweeps:
            by_fault.setdefault(coordinate.fault, coordinate)
        for fault, coordinate in sorted(by_fault.items()):
            digests = {
                execute_task(
                    task_for("socialnetwork", coordinate, scheduler=lane)
                ).digest
                for lane in ("calendar", "heap")
            }
            assert len(digests) == 1, fault

    def test_socialnetwork_explore_identical_across_thread_counts(self):
        runs = [
            run_explore(
                "socialnetwork", budget=12, seed=0, workers=workers,
                stop_when_found=True,
            )
            for workers in (1, 4)
        ]
        assert [key for key, _d in runs[0].executed] == [
            key for key, _d in runs[1].executed
        ]
        assert dict(runs[0].executed) == dict(runs[1].executed)
        assert runs[0].report.to_dict() == runs[1].report.to_dict()

    @pytest.mark.slow
    def test_socialnetwork_digests_identical_on_process_backend(self):
        space = discover_space("socialnetwork", seed=0)
        task = task_for("socialnetwork", space.sweeps[0])
        baseline = execute_task(task)
        outcomes = run_wave([task, task], workers=2, backend="processes")
        assert all(o.ok for o in outcomes)
        assert [o.digest for o in outcomes] == [baseline.digest] * 2

    def test_round_tripped_coordinate_replays_identically(self):
        from repro.explore import Coordinate

        space = discover_space("retrystorm", seed=0)
        coordinate = space.sweeps[0]
        clone = Coordinate.from_dict(json.loads(json.dumps(coordinate.to_dict())))
        assert (
            execute_task(task_for("retrystorm", coordinate)).digest
            == execute_task(task_for("retrystorm", clone)).digest
        )

    def test_error_outcome_instead_of_raise(self):
        outcome = run_wave(
            [ExploreTask(app="no-such-app", seed=0, key="x")], workers=1
        )[0]
        assert not outcome.ok
        assert "no-such-app" in outcome.error


class TestRunExplore:
    @pytest.mark.parametrize("app", sorted(SEEDED_BUG_SUITE))
    def test_finds_every_planted_bug(self, app):
        result = run_explore(app, budget=150, seed=0, stop_when_found=True)
        assert result.all_bugs_found
        assert result.executions_to_all_bugs is not None
        assert result.executions_to_all_bugs <= result.report.executed <= 150

    def test_deterministic_at_any_thread_worker_count(self):
        runs = [
            run_explore(
                "stuckbreaker", budget=24, seed=0, workers=workers,
                stop_when_found=True,
            )
            for workers in (1, 4)
        ]
        assert runs[0].executed == runs[1].executed
        assert runs[0].report.to_dict() == runs[1].report.to_dict()

    def test_prioritized_beats_random_on_seed_apps(self):
        # The 2x claim holds on the small seeded-bug apps the frontier
        # heuristics were calibrated on.  The production-scale apps
        # plant their bugs on leaf datastore edges, ordered within a
        # band by the fan-in/depth tie-break (regression-pinned below);
        # the hard guarantee there is the band bound.
        total = {"prioritized": 0, "random": 0}
        for app in ("deepfanout", "retrystorm", "stuckbreaker"):
            for strategy in total:
                result = run_explore(
                    app, budget=150, seed=0, strategy=strategy,
                    stop_when_found=True,
                )
                assert result.all_bugs_found, (app, strategy)
                total[strategy] += result.executions_to_all_bugs
        assert total["prioritized"] <= 0.5 * total["random"]

    @pytest.mark.parametrize("app", ["socialnetwork", "hotelreservation"])
    def test_production_apps_found_within_two_bands(self, app):
        # Bands guarantee every edge is probed with abort before any
        # edge sees delay: both planted bugs (abort- and
        # delay-triggered) surface within two full sweep bands.
        result = run_explore(app, budget=150, seed=0, stop_when_found=True)
        assert result.all_bugs_found
        space = discover_space(app, seed=0)
        assert result.executions_to_all_bugs <= 2 * len(space.edges)

    def test_socialnetwork_store_edge_bug_beats_plain_blast_radius(self):
        # Regression pin for the fan-in/depth tie-break: under plain
        # blast-radius-then-shallow ranking the seeded store-edge bug
        # (storm-retries on post-storage->post-store) surfaced at
        # execution 29 and all bugs took 59 executions; the tie-break
        # pulls the shared, terminal storage hops forward within their
        # band.
        result = run_explore(
            "socialnetwork", budget=150, seed=0, stop_when_found=True
        )
        assert result.all_bugs_found
        executed_keys = [key for key, _digest in result.executed]
        store_bug = next(
            finding for finding in result.findings
            if finding.bug_id == "socialnetwork/storm-retries"
        )
        assert executed_keys.index(store_bug.coordinate) + 1 < 29
        assert result.executions_to_all_bugs < 59

    def test_masking_prunes_deepfanout_descendants(self):
        result = run_explore("deepfanout", budget=150, seed=0, stop_when_found=True)
        assert result.report.pruned > 0
        assert result.report.pruned == len(result.pruned)
        confirmed = result.findings[0]
        # Pruned keys were never executed.
        executed_keys = {key for key, _digest in result.executed}
        assert not executed_keys.intersection(result.pruned)
        assert confirmed.coordinate in executed_keys

    def test_coverage_report_accounting(self):
        result = run_explore("stuckbreaker", budget=24, seed=0)
        report = result.report
        doc = json.loads(json.dumps(report.to_dict()))
        assert doc["executed"] == len(result.executed) <= 24
        assert doc["coordinates_enumerated"] == (
            doc["sweep_coordinates"] + doc["single_coordinates"]
        )
        assert doc["shapes_seen"] == doc["baseline_shapes"] + doc["new_shapes"]
        assert doc["bugs_planted"] == ["stuckbreaker/never-closes"]
        assert doc["all_bugs_found"] is True
        rendered = report.render()
        assert "stuckbreaker/never-closes" in rendered
        assert "planted bugs found" in rendered

    def test_fault_free_baseline_passes_all_checks(self):
        for app in sorted(SEEDED_BUG_SUITE):
            outcome = execute_task(ExploreTask(app=app, seed=0, key="baseline"))
            assert outcome.ok
            for name, passed, inconclusive in outcome.verdicts:
                assert passed or inconclusive, (app, name)

    def test_bad_arguments_raise(self):
        with pytest.raises(ExploreError):
            run_explore("deepfanout", budget=0)
        with pytest.raises(ExploreError):
            run_explore("deepfanout", strategy="exhaustive")
        with pytest.raises(ExploreError):
            run_explore("no-such-app")
