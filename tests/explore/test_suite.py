"""Recipe suites: exploration findings round-trip into campaigns."""

import copy
import json

import pytest

from repro.apps.outages import SEEDED_BUG_SUITE
from repro.campaign import RecipeExecutor, plan_campaign
from repro.errors import ExploreError
from repro.explore import (
    dump_recipe_suite,
    export_recipe_suite,
    load_recipe_suite,
    read_recipe_suite,
    run_explore,
)

APP = "stuckbreaker"


@pytest.fixture(scope="module")
def explore_result():
    # whatif surfaces the stuckbreaker bug on its first execution, so
    # this module's fixture is one discovery run plus one fault run.
    return run_explore(APP, budget=24, seed=0, strategy="whatif",
                       stop_when_found=True)


@pytest.fixture(scope="module")
def suite_doc(explore_result):
    return export_recipe_suite(explore_result)


class TestExport:
    def test_one_entry_per_finding_coordinate(self, explore_result, suite_doc):
        assert suite_doc["suite"] == "explore-recipes"
        assert suite_doc["version"] == 1
        assert suite_doc["app"] == APP
        assert suite_doc["strategy"] == "whatif"
        keys = [entry["key"] for entry in suite_doc["coordinates"]]
        assert keys == sorted({f.coordinate for f in explore_result.findings},
                              key=keys.index)
        entry = suite_doc["coordinates"][0]
        assert entry["bug_ids"] == ["stuckbreaker/never-closes"]
        assert entry["coordinate"]["app"] == APP

    def test_document_is_json_serializable(self, suite_doc):
        assert json.loads(json.dumps(suite_doc)) == suite_doc


class TestRoundTrip:
    def test_dump_and_read(self, explore_result, suite_doc, tmp_path):
        path = tmp_path / "recipes.json"
        dump_recipe_suite(explore_result, str(path))
        app, recipes = read_recipe_suite(str(path))
        assert app == APP
        assert len(recipes) == len(suite_doc["coordinates"])
        assert all(r.name.startswith("explore/") for r in recipes)

    def test_campaign_replays_the_finding(self, suite_doc):
        """The exported coordinate, loaded as a campaign recipe and
        executed through the campaign machinery, reproduces the
        conclusive failure that recorded the bug."""
        manifest = SEEDED_BUG_SUITE[APP]
        app, recipes = load_recipe_suite(suite_doc)
        plan = plan_campaign(
            manifest.builder,
            extra_recipes=recipes,
            requests=manifest.requests,
            think_time=manifest.think_time,
        )
        entry = next(e for e in plan.entries if e.name.startswith("explore/"))
        outcome = RecipeExecutor(manifest.builder).execute(entry)
        assert outcome.status == "fail"
        failed = {
            check.name
            for check in outcome.checks
            if not check.passed and not check.inconclusive
        }
        assert manifest.bugs_found((name, False, False) for name in failed)


class TestLoadValidation:
    def test_rejects_non_suite_documents(self):
        with pytest.raises(ExploreError, match="not a recipe suite"):
            load_recipe_suite({"suite": "something-else"})

    def test_rejects_unknown_versions(self, suite_doc):
        doc = dict(suite_doc, version=99)
        with pytest.raises(ExploreError, match="version"):
            load_recipe_suite(doc)

    def test_rejects_unknown_apps(self, suite_doc):
        doc = dict(suite_doc, app="no-such-app")
        with pytest.raises(ExploreError, match="unknown app"):
            load_recipe_suite(doc)

    def test_rejects_cross_app_coordinates(self, suite_doc):
        doc = copy.deepcopy(suite_doc)
        doc["app"] = "deepfanout"
        with pytest.raises(ExploreError, match="targets app"):
            load_recipe_suite(doc)

    def test_read_missing_file_is_loud(self, tmp_path):
        with pytest.raises(ExploreError, match="cannot read"):
            read_recipe_suite(str(tmp_path / "missing.json"))

    def test_read_malformed_json_is_loud(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ExploreError, match="cannot read"):
            read_recipe_suite(str(path))
