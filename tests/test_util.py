"""Unit tests for shared utilities (duration parsing)."""

import pytest

from repro.util import format_duration, parse_duration


class TestParseDuration:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("100ms", 0.1),
            ("1s", 1.0),
            ("2sec", 2.0),
            ("1min", 60.0),
            ("2m", 120.0),
            ("1h", 3600.0),
            ("1.5h", 5400.0),
            ("0.5s", 0.5),
            ("250us", 0.00025),
            ("3", 3.0),
        ],
    )
    def test_string_forms(self, text, expected):
        assert parse_duration(text) == pytest.approx(expected)

    def test_numbers_pass_through(self):
        assert parse_duration(2.5) == 2.5
        assert parse_duration(4) == 4.0

    @pytest.mark.parametrize("bad", ["", "fast", "10 parsecs", "ms", "-1s"])
    def test_unparseable_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_duration(bad)

    def test_negative_number_rejected(self):
        with pytest.raises(ValueError):
            parse_duration(-1)

    def test_whitespace_tolerated(self):
        assert parse_duration(" 100 ms ") == pytest.approx(0.1)


class TestFormatDuration:
    @pytest.mark.parametrize(
        "seconds,expected",
        [
            (0.1, "100ms"),
            (1.0, "1s"),
            (90.0, "1.5min"),
            (3600.0, "1h"),
            (0.00025, "250us"),
        ],
    )
    def test_compact_forms(self, seconds, expected):
        assert format_duration(seconds) == expected

    def test_round_trips_through_parse(self):
        for seconds in (0.0005, 0.25, 3.0, 120.0, 7200.0):
            assert parse_duration(format_duration(seconds)) == pytest.approx(seconds)
