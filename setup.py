"""Setup shim for environments without the `wheel` package.

`pip install -e . --no-build-isolation` (or `python setup.py develop`)
installs the package; all metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
