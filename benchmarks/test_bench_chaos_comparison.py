"""Ablation: systematic (Gremlin) vs. randomized (Chaos Monkey) testing.

Paper Section 8.1: Chaos Monkey "lacks support for automatically
analyzing application behavior" and its faults "cannot be constrained
to a subset of requests or services".  This benchmark makes that
comparison executable on the WordPress case study, whose published bug
is a *missing timeout* — a latency pathology, not an availability one:

* **Gremlin**: one targeted recipe (Degrade the Elasticsearch edge +
  ``HasTimeouts``) exposes the bug on the first try.
* **Chaos Monkey**: rounds of random service kills.  Killing
  Elasticsearch triggers ElasticPress's *working* fallback (fast 200s)
  and killing MySQL alone doesn't touch the search path — so no amount
  of service-scoped random termination surfaces the missing-timeout
  bug, and with no assertion checker there is nothing to flag it
  anyway.

Shape expectation: Gremlin detects in 1 test; Chaos Monkey detects in
0 of its rounds.
"""

import pytest

from repro.apps import ELASTICSEARCH, MYSQL, WORDPRESS, build_wordpress_app
from repro.core import Degrade, Gremlin, HasTimeouts
from repro.core.chaos import ChaosMonkey
from repro.loadgen import ClosedLoopLoad

CHAOS_ROUNDS = 20
LATENCY_BUG_THRESHOLD = 1.0  # a page slower than this exposes the bug


def gremlin_detects() -> bool:
    """One targeted recipe; returns True if the bug is exposed."""
    deployment = build_wordpress_app().deploy(seed=131)
    source = deployment.add_traffic_source(WORDPRESS)
    gremlin = Gremlin(deployment)
    gremlin.inject(Degrade(ELASTICSEARCH, interval="2s"))
    ClosedLoopLoad(num_requests=10).run(source)
    result = gremlin.check(HasTimeouts(WORDPRESS, LATENCY_BUG_THRESHOLD))
    return not result.passed and not result.inconclusive


def chaos_round(seed: int) -> dict:
    """One randomized round: a kill plus user load; what did users see?"""
    deployment = build_wordpress_app().deploy(seed=seed)
    source = deployment.add_traffic_source(WORDPRESS)
    monkey = ChaosMonkey(
        deployment,
        candidates=[ELASTICSEARCH, MYSQL],
        outage_duration=5.0,
    )
    monkey.kill_once()
    load = ClosedLoopLoad(num_requests=10, think_time=0.1)
    load.run(source)
    slow = sum(1 for latency in load.result.latencies if latency > LATENCY_BUG_THRESHOLD)
    errors = sum(1 for sample in load.result.samples if not sample.ok)
    return {"killed": monkey.events[0].service, "slow": slow, "errors": errors}


def test_systematic_vs_randomized_detection(benchmark, report):
    assert gremlin_detects(), "the targeted recipe must expose the missing timeout"
    benchmark.pedantic(gremlin_detects, rounds=2, iterations=1)

    rounds = [chaos_round(seed=200 + index) for index in range(CHAOS_ROUNDS)]
    chaos_detections = sum(1 for outcome in rounds if outcome["slow"] > 0)
    kills = {}
    for outcome in rounds:
        kills[outcome["killed"]] = kills.get(outcome["killed"], 0) + 1

    # The randomized baseline never surfaces the latency bug: killing a
    # whole service exercises the (working) fallback path instead.
    assert chaos_detections == 0
    report.add(
        "Ablation — systematic (Gremlin) vs randomized (Chaos Monkey)",
        f"  bug under test: ElasticPress's missing timeout (Fig 5)\n"
        f"  Gremlin: detected by 1 targeted recipe"
        f" (Degrade+HasTimeouts)\n"
        f"  Chaos Monkey: 0/{CHAOS_ROUNDS} rounds exposed it"
        f" (kills: {kills}); service-scoped random termination triggers the"
        f" working fallback, never the latency pathology\n"
        "  paper Section 8.1's qualitative comparison -> reproduced quantitatively",
    )
