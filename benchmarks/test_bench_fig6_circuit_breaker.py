"""Figure 6: aborted-then-delayed request train exposes the missing breaker.

Paper: "we crafted an Overload test of an Elasticsearch instance, where
Gremlin aborted 100 consecutive requests from WordPress to
Elasticsearch, then immediately delayed the next 100 by three seconds.
If a correct implementation of a circuit breaker were present, a
portion of the requests would have returned immediately.  Figure 6,
however, shows that all delayed requests completed only after three
seconds."

Reproduced shape: naive plugin — the delayed-phase CDF starts at 3 s
(0/100 early returns); hardened contrast — the breaker tripped during
the abort phase, so almost every delayed-phase request returns
immediately from the MySQL fallback.
"""

import pytest

from repro.analysis import Cdf
from repro.apps import ELASTICSEARCH, WORDPRESS, build_wordpress_app
from repro.core import AbortCalls, DelayCalls, Gremlin
from repro.loadgen import ClosedLoopLoad

PHASE = 100
DELAY = 3.0


def run_experiment(hardened: bool):
    deployment = build_wordpress_app(hardened=hardened).deploy(seed=6)
    source = deployment.add_traffic_source(WORDPRESS)
    gremlin = Gremlin(deployment)
    gremlin.inject(
        AbortCalls(WORDPRESS, ELASTICSEARCH, error=503, max_matches=PHASE),
        DelayCalls(WORDPRESS, ELASTICSEARCH, interval=DELAY, max_matches=PHASE),
    )
    load = ClosedLoopLoad(num_requests=2 * PHASE)
    load.run(source)
    latencies = load.result.latencies
    return Cdf(latencies[:PHASE]), Cdf(latencies[PHASE:])


def test_fig6_naive_plugin_all_delayed_requests_wait(benchmark, report):
    aborted, delayed = benchmark.pedantic(run_experiment, args=(False,), rounds=3, iterations=1)
    early = sum(1 for latency in delayed.samples if latency < DELAY)
    # Paper shape: none of the delayed requests returned without delay.
    assert early == 0
    assert delayed.min >= DELAY
    assert aborted.max < 0.5
    report.add(
        "Fig 6 — naive ElasticPress (100 aborted, then 100 delayed by 3s)",
        f"  aborted phase: min={aborted.min * 1e3:.1f}ms max={aborted.max * 1e3:.1f}ms\n"
        f"  delayed phase: min={delayed.min:.3f}s max={delayed.max:.3f}s;"
        f" requests returning before 3s: {early}/{PHASE}\n"
        "  paper: all delayed requests completed only after three seconds -> reproduced",
    )


def test_fig6_contrast_breaker_short_circuits(benchmark, report):
    aborted, delayed = benchmark.pedantic(run_experiment, args=(True,), rounds=3, iterations=1)
    early = sum(1 for latency in delayed.samples if latency < DELAY)
    # With a breaker, "a portion of the requests would have returned
    # immediately" — here almost all of them (bar recovery probes).
    assert early >= PHASE - 5
    report.add(
        "Fig 6 contrast — hardened plugin (breaker present)",
        f"  delayed phase: requests returning before 3s: {early}/{PHASE}"
        " (breaker tripped during the abort phase and short-circuits)",
    )
