"""Table 1: the published outages, recreated as executable recipes.

Paper Table 1 lists five outages whose postmortems revealed missing or
faulty failure-handling logic.  This benchmark runs, for each outage
class, the Gremlin recipe that would have caught it: against the
as-deployed (fragile) build the recipe FAILS (the missing pattern is
detected), and against the hardened build it PASSES.

The pytest-benchmark numbers show each complete test — deploy, inject,
load, assert — finishing in well under a second of wall-clock time,
the paper's "recipes can be executed and checked in a matter of
seconds" claim, with simulation replacing the live container fleet.
"""

import pytest

from repro.apps import (
    billing_recipe,
    build_billing_app,
    build_coreservice_app,
    build_database_app,
    build_messagebus_app,
    coreservice_recipe,
    database_overload_recipe,
    messagebus_recipe,
)
from repro.core import Gremlin
from repro.loadgen import ClosedLoopLoad, OpenLoopLoad


def run_messagebus(hardened):
    deployment = build_messagebus_app(hardened=hardened).deploy(seed=81)
    source = deployment.add_traffic_source("publisher")
    gremlin = Gremlin(deployment)
    gremlin.inject(*messagebus_recipe().scenarios)
    OpenLoopLoad(rate=10.0, duration=8.0).run(source)
    return [gremlin.check(check) for check in messagebus_recipe().checks]


def run_database(hardened):
    deployment = build_database_app(hardened=hardened).deploy(seed=82)
    sources = [
        deployment.add_traffic_source(f"frontend-{index}", name=f"user{index}")
        for index in range(2)
    ]
    gremlin = Gremlin(deployment)
    gremlin.inject(*database_overload_recipe().scenarios)
    sim = deployment.sim
    for source in sources:
        sim.process(ClosedLoopLoad(num_requests=20, think_time=0.1).driver(source))
    sim.run()
    return [gremlin.check(check) for check in database_overload_recipe().checks]


def run_coreservice(hardened):
    deployment = build_coreservice_app(hardened=hardened).deploy(seed=83)
    sources = [
        deployment.add_traffic_source(edge, name=f"user-{edge}")
        for edge in ("playlists", "radio")
    ]
    gremlin = Gremlin(deployment)
    gremlin.inject(*coreservice_recipe().scenarios)
    sim = deployment.sim
    for source in sources:
        sim.process(ClosedLoopLoad(num_requests=5).driver(source))
    sim.run()
    return [gremlin.check(check) for check in coreservice_recipe().checks]


def run_billing(hardened):
    deployment = build_billing_app(hardened=hardened).deploy(seed=84)
    source = deployment.add_traffic_source("billinggateway")
    gremlin = Gremlin(deployment)
    gremlin.inject(*billing_recipe().scenarios)
    ClosedLoopLoad(num_requests=1).run(source)
    checks = [gremlin.check(check) for check in billing_recipe().checks]
    charges = deployment.instances_of("billingdb")[0].ctx.state.get("charges", {})
    return checks, max(charges.values()) if charges else 0


CASES = [
    ("Parse.ly/Stackdriver: message-bus cascade", run_messagebus),
    ("CircleCI/BBC: database overload", run_database),
    ("Spotify: core-service degradation", run_coreservice),
]


@pytest.mark.parametrize("label,runner", CASES, ids=[c[0].split(":")[0] for c in CASES])
def test_table1_recipe_fails_on_fragile_build(benchmark, report, label, runner):
    checks = benchmark.pedantic(runner, args=(False,), rounds=2, iterations=1)
    conclusive = [check for check in checks if not check.inconclusive]
    assert conclusive, "fault must have been exercised"
    assert any(not check.passed for check in conclusive), label
    report.add(
        f"Table 1 — {label} (as-deployed build)",
        "\n".join(f"  {check}" for check in checks)
        + "\n  -> recipe FAILS: the missing pattern behind the outage is detected",
    )


@pytest.mark.parametrize("label,runner", CASES, ids=[c[0].split(":")[0] for c in CASES])
def test_table1_recipe_passes_on_hardened_build(benchmark, report, label, runner):
    checks = benchmark.pedantic(runner, args=(True,), rounds=2, iterations=1)
    assert all(check.passed for check in checks if not check.inconclusive), label
    report.add(
        f"Table 1 — {label} (hardened build)",
        "\n".join(f"  {check}" for check in checks)
        + "\n  -> recipe PASSES once the missing pattern is added",
    )


def test_table1_twilio_double_billing(benchmark, report):
    checks_fragile, charges_fragile = run_billing(hardened=False)
    checks_hardened, charges_hardened = benchmark.pedantic(
        run_billing, args=(True,), rounds=2, iterations=1
    )
    # The fragile datastore charges once per retry; the idempotent fix
    # collapses the retries into a single charge.
    assert charges_fragile > 1
    assert charges_hardened == 1
    assert all(check.passed for check in checks_hardened if not check.inconclusive)
    report.add(
        "Table 1 — Twilio: repeated billing after datastore failure",
        f"  as-deployed: one charge applied {charges_fragile}x (double billing)\n"
        f"  hardened:    one charge applied {charges_hardened}x (idempotency keys)\n"
        "  -> the response-path failure staged by Gremlin reproduces the postmortem",
    )
