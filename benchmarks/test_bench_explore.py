"""Exploration efficacy: prioritized search vs the random baseline.

The exploration subsystem's claim is not raw speed but *sample
efficiency*: given the same discovered coordinate universe, the same
seed, and the same execution budget, the prioritized frontier (FastFI
per-edge sweeps, primitive banding, blast-radius ranking, trace-shape
feedback, masking-based pruning) must reach every planted bug in the
seeded-bug suite using **at most half** the fault executions the
unprioritized random order needs.  Both strategies run to first
full-discovery (``stop_when_found``), so the measured quantity is
executions-to-all-bugs, summed across the three seeded apps.

Also recorded per app: coordinates enumerated/executed/pruned, trace
shapes seen beyond the fault-free baseline, and which coordinate
surfaced each bug.  Numbers land in ``BENCH_explore.json`` via the
session-finish hook in ``conftest.py``.
"""

import time

from repro.apps.outages import SEEDED_BUG_SUITE
from repro.explore import run_explore

SEED = 0
BUDGET = 150
MAX_RATIO = 0.5


def test_prioritized_halves_executions_to_all_bugs(report, bench_explore):
    per_app: dict = {}
    totals = {"prioritized": 0, "random": 0}
    start = time.perf_counter()
    for app in sorted(SEEDED_BUG_SUITE):
        per_app[app] = {}
        for strategy in ("prioritized", "random"):
            result = run_explore(
                app, budget=BUDGET, seed=SEED, strategy=strategy,
                stop_when_found=True,
            )
            assert result.all_bugs_found, (
                f"{strategy} missed bugs on {app}: {result.report.render()}"
            )
            totals[strategy] += result.executions_to_all_bugs
            doc = result.report.to_dict()
            per_app[app][strategy] = {
                "executions_to_all_bugs": result.executions_to_all_bugs,
                "executed": doc["executed"],
                "pruned": doc["pruned"],
                "coordinates_enumerated": doc["coordinates_enumerated"],
                "baseline_shapes": doc["baseline_shapes"],
                "shapes_seen": doc["shapes_seen"],
                "findings": doc["findings"],
            }
    elapsed = time.perf_counter() - start

    ratio = totals["prioritized"] / totals["random"]
    assert ratio <= MAX_RATIO, (
        f"prioritized needed {totals['prioritized']} executions vs"
        f" random's {totals['random']} (ratio {ratio:.2f} > {MAX_RATIO})"
    )

    bench_explore.update(
        {
            "seed": SEED,
            "budget": BUDGET,
            "apps": per_app,
            "prioritized_total": totals["prioritized"],
            "random_total": totals["random"],
            "ratio": round(ratio, 4),
            "max_ratio": MAX_RATIO,
            "wall_clock_s": round(elapsed, 2),
        }
    )
    lines = [
        f"{'app':14s} {'prioritized':>11s} {'random':>7s}",
        *(
            f"{app:14s} {per_app[app]['prioritized']['executions_to_all_bugs']:>11d}"
            f" {per_app[app]['random']['executions_to_all_bugs']:>7d}"
            for app in sorted(per_app)
        ),
        f"{'TOTAL':14s} {totals['prioritized']:>11d} {totals['random']:>7d}"
        f"   ratio={ratio:.2f} (required <= {MAX_RATIO})",
    ]
    report.add("exploration: executions to find all planted bugs", "\n".join(lines))
