"""Shared infrastructure for the benchmark suite.

Each benchmark module regenerates one table or figure of the paper.
Besides the pytest-benchmark wall-clock numbers, every experiment
records the *reproduced series* (the rows/curves the paper plots) into
a session-wide report that is printed after the run — so
``pytest benchmarks/ --benchmark-only`` outputs both the timing table
and the paper-shaped data.
"""

from __future__ import annotations

import json
import pathlib

import pytest

BENCH_LOGSTORE_PATH = pathlib.Path(__file__).parent / "BENCH_logstore.json"


class ExperimentReport:
    """Collects text blocks to print in the terminal summary."""

    def __init__(self) -> None:
        self.sections: list[tuple[str, str]] = []

    def add(self, title: str, body: str) -> None:
        """Record one experiment's reproduced series."""
        self.sections.append((title, body))


_REPORT = ExperimentReport()

# Machine-readable log-store numbers (ingest rate, query rate,
# assertion-suite latency per store size and strategy).  Populated by
# the scaling benchmark; flushed to BENCH_logstore.json at session end.
_BENCH_LOGSTORE: dict = {}


@pytest.fixture(scope="session")
def report() -> ExperimentReport:
    """Session-wide report the benchmarks write their series into."""
    return _REPORT


@pytest.fixture(scope="session")
def bench_logstore() -> dict:
    """Mutable dict the log-store benchmarks record their numbers into."""
    return _BENCH_LOGSTORE


def pytest_sessionfinish(session, exitstatus):
    if _BENCH_LOGSTORE:
        payload = dict(_BENCH_LOGSTORE)
        payload.setdefault("source", "benchmarks/test_bench_table3_assertions.py")
        BENCH_LOGSTORE_PATH.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if _BENCH_LOGSTORE:
        terminalreporter.write_line(f"log-store numbers written to {BENCH_LOGSTORE_PATH}")
    if not _REPORT.sections:
        return
    terminalreporter.section("reproduced paper tables & figures")
    for title, body in _REPORT.sections:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"### {title}")
        for line in body.splitlines():
            terminalreporter.write_line(line)
