"""Shared infrastructure for the benchmark suite.

Each benchmark module regenerates one table or figure of the paper.
Besides the pytest-benchmark wall-clock numbers, every experiment
records the *reproduced series* (the rows/curves the paper plots) into
a session-wide report that is printed after the run — so
``pytest benchmarks/ --benchmark-only`` outputs both the timing table
and the paper-shaped data.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import subprocess

import pytest

BENCH_LOGSTORE_PATH = pathlib.Path(__file__).parent / "BENCH_logstore.json"
BENCH_CAMPAIGN_PATH = pathlib.Path(__file__).parent / "BENCH_campaign.json"
BENCH_TRACING_PATH = pathlib.Path(__file__).parent / "BENCH_tracing.json"
BENCH_FUZZ_PATH = pathlib.Path(__file__).parent / "BENCH_fuzz.json"
BENCH_KERNEL_PATH = pathlib.Path(__file__).parent / "BENCH_kernel.json"
BENCH_EXPLORE_PATH = pathlib.Path(__file__).parent / "BENCH_explore.json"
BENCH_REPORT_PATH = pathlib.Path(__file__).parent / "BENCH_report.json"
BENCH_APPS_PATH = pathlib.Path(__file__).parent / "BENCH_apps.json"
BENCH_CODEC_PATH = pathlib.Path(__file__).parent / "BENCH_codec.json"


class ExperimentReport:
    """Collects text blocks to print in the terminal summary."""

    def __init__(self) -> None:
        self.sections: list[tuple[str, str]] = []

    def add(self, title: str, body: str) -> None:
        """Record one experiment's reproduced series."""
        self.sections.append((title, body))


_REPORT = ExperimentReport()

# Machine-readable log-store numbers (ingest rate, query rate,
# assertion-suite latency per store size and strategy).  Populated by
# the scaling benchmark; flushed to BENCH_logstore.json at session end.
_BENCH_LOGSTORE: dict = {}

# Machine-readable campaign-engine numbers (serial vs fleet wall clock,
# speedup).  Populated by the campaign benchmark; flushed to
# BENCH_campaign.json at session end.
_BENCH_CAMPAIGN: dict = {}

# Machine-readable tracing-overhead numbers (campaign wall clock with
# span tracing on vs off).  Populated by the tracing benchmark; flushed
# to BENCH_tracing.json at session end.
_BENCH_TRACING: dict = {}

# Machine-readable differential-fuzzing numbers (case throughput,
# battery coverage).  Populated by the fuzz benchmark; flushed to
# BENCH_fuzz.json at session end.
_BENCH_FUZZ: dict = {}

# Machine-readable simulation-kernel numbers (serial events/sec vs the
# pre-optimization baseline).  Populated by the kernel benchmark;
# flushed to BENCH_kernel.json at session end.
_BENCH_KERNEL: dict = {}

# Machine-readable exploration numbers (prioritized vs random
# executions-to-all-bugs, coverage stats per seeded app).  Populated by
# the explore benchmark; flushed to BENCH_explore.json at session end.
_BENCH_EXPLORE: dict = {}

# Machine-readable resilience-report numbers (report build overhead vs
# campaign wall clock, whatif triage vs prioritized frontier).
# Populated by the report benchmark; flushed to BENCH_report.json at
# session end.
_BENCH_REPORT: dict = {}

# Machine-readable production-app numbers (kernel events/s driving the
# 28-service socialnetwork topology, campaign wall clock on the same
# app).  Populated by the apps benchmark; flushed to BENCH_apps.json at
# session end.
_BENCH_APPS: dict = {}

# Machine-readable outcome-codec numbers (encode/decode latency and
# message size vs pickle on real outcome documents).  Populated by the
# codec microbench; flushed to BENCH_codec.json at session end.
_BENCH_CODEC: dict = {}


def pytest_collection_modifyitems(config, items):
    """Every benchmark is ``bench`` (and therefore ``slow``); the tier-1
    suite under tests/ never collects this directory (``testpaths``),
    and ``-m "not bench"`` now also works when running everything."""
    for item in items:
        item.add_marker(pytest.mark.bench)
        item.add_marker(pytest.mark.slow)


@pytest.fixture(scope="session")
def report() -> ExperimentReport:
    """Session-wide report the benchmarks write their series into."""
    return _REPORT


@pytest.fixture(scope="session")
def bench_logstore() -> dict:
    """Mutable dict the log-store benchmarks record their numbers into."""
    return _BENCH_LOGSTORE


@pytest.fixture(scope="session")
def bench_campaign() -> dict:
    """Mutable dict the campaign benchmark records its numbers into."""
    return _BENCH_CAMPAIGN


@pytest.fixture(scope="session")
def bench_tracing() -> dict:
    """Mutable dict the tracing benchmark records its numbers into."""
    return _BENCH_TRACING


@pytest.fixture(scope="session")
def bench_fuzz() -> dict:
    """Mutable dict the fuzz benchmark records its numbers into."""
    return _BENCH_FUZZ


@pytest.fixture(scope="session")
def bench_kernel() -> dict:
    """Mutable dict the kernel benchmark records its numbers into."""
    return _BENCH_KERNEL


@pytest.fixture(scope="session")
def bench_explore() -> dict:
    """Mutable dict the explore benchmark records its numbers into."""
    return _BENCH_EXPLORE


@pytest.fixture(scope="session")
def bench_report() -> dict:
    """Mutable dict the report benchmark records its numbers into."""
    return _BENCH_REPORT


@pytest.fixture(scope="session")
def bench_apps() -> dict:
    """Mutable dict the production-apps benchmark records its numbers into."""
    return _BENCH_APPS


@pytest.fixture(scope="session")
def bench_codec() -> dict:
    """Mutable dict the codec microbench records its numbers into."""
    return _BENCH_CODEC


def _provenance() -> dict:
    """Where the numbers came from: every BENCH_*.json carries the same
    machine/interpreter/revision block, so two dumps are comparable (or
    visibly not) at a glance."""
    try:
        rev = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            cwd=pathlib.Path(__file__).parent,
            timeout=10,
        ).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        rev = ""
    from repro.campaign.shm import resolve_result_transport

    return {
        "cpus": os.cpu_count(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "git_rev": rev or "unknown",
        "result_transport": resolve_result_transport(None),
    }


def pytest_sessionfinish(session, exitstatus):
    flushes = (
        (_BENCH_LOGSTORE, BENCH_LOGSTORE_PATH, "benchmarks/test_bench_table3_assertions.py"),
        (_BENCH_CAMPAIGN, BENCH_CAMPAIGN_PATH, "benchmarks/test_bench_campaign.py"),
        (_BENCH_TRACING, BENCH_TRACING_PATH, "benchmarks/test_bench_tracing.py"),
        (_BENCH_FUZZ, BENCH_FUZZ_PATH, "benchmarks/test_bench_fuzz.py"),
        (_BENCH_KERNEL, BENCH_KERNEL_PATH, "benchmarks/test_bench_kernel.py"),
        (_BENCH_EXPLORE, BENCH_EXPLORE_PATH, "benchmarks/test_bench_explore.py"),
        (_BENCH_REPORT, BENCH_REPORT_PATH, "benchmarks/test_bench_report.py"),
        (_BENCH_APPS, BENCH_APPS_PATH, "benchmarks/test_bench_apps.py"),
        (_BENCH_CODEC, BENCH_CODEC_PATH, "benchmarks/test_bench_codec.py"),
    )
    provenance = None
    for data, path, source in flushes:
        if not data:
            continue
        if provenance is None:
            provenance = _provenance()
        payload = dict(data)
        payload.setdefault("source", source)
        payload["provenance"] = provenance
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if _BENCH_LOGSTORE:
        terminalreporter.write_line(f"log-store numbers written to {BENCH_LOGSTORE_PATH}")
    if _BENCH_CAMPAIGN:
        terminalreporter.write_line(f"campaign numbers written to {BENCH_CAMPAIGN_PATH}")
    if _BENCH_TRACING:
        terminalreporter.write_line(f"tracing numbers written to {BENCH_TRACING_PATH}")
    if _BENCH_FUZZ:
        terminalreporter.write_line(f"fuzz numbers written to {BENCH_FUZZ_PATH}")
    if _BENCH_KERNEL:
        terminalreporter.write_line(f"kernel numbers written to {BENCH_KERNEL_PATH}")
    if _BENCH_EXPLORE:
        terminalreporter.write_line(f"explore numbers written to {BENCH_EXPLORE_PATH}")
    if _BENCH_REPORT:
        terminalreporter.write_line(f"report numbers written to {BENCH_REPORT_PATH}")
    if _BENCH_APPS:
        terminalreporter.write_line(f"apps numbers written to {BENCH_APPS_PATH}")
    if _BENCH_CODEC:
        terminalreporter.write_line(f"codec numbers written to {BENCH_CODEC_PATH}")
    if not _REPORT.sections:
        return
    terminalreporter.section("reproduced paper tables & figures")
    for title, body in _REPORT.sections:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"### {title}")
        for line in body.splitlines():
            terminalreporter.write_line(line)
