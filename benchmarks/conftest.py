"""Shared infrastructure for the benchmark suite.

Each benchmark module regenerates one table or figure of the paper.
Besides the pytest-benchmark wall-clock numbers, every experiment
records the *reproduced series* (the rows/curves the paper plots) into
a session-wide report that is printed after the run — so
``pytest benchmarks/ --benchmark-only`` outputs both the timing table
and the paper-shaped data.
"""

from __future__ import annotations

import pytest


class ExperimentReport:
    """Collects text blocks to print in the terminal summary."""

    def __init__(self) -> None:
        self.sections: list[tuple[str, str]] = []

    def add(self, title: str, body: str) -> None:
        """Record one experiment's reproduced series."""
        self.sections.append((title, body))


_REPORT = ExperimentReport()


@pytest.fixture(scope="session")
def report() -> ExperimentReport:
    """Session-wide report the benchmarks write their series into."""
    return _REPORT


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORT.sections:
        return
    terminalreporter.section("reproduced paper tables & figures")
    for title, body in _REPORT.sections:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"### {title}")
        for line in body.splitlines():
            terminalreporter.write_line(line)
