"""Simulation kernel: serial event-dispatch throughput.

Every campaign recipe and fuzz case bottoms out in the same loop —
``Simulator.run`` draining the scheduler and resuming generator
processes — so serial events/second is the one number every other
wall-clock figure in this suite scales with.  This benchmark pins the
hot-path work (the calendar-queue scheduler, event pooling, slotted
events, the inlined run loop, collapsed process resume) with two
workloads:

* **timer storm** — hundreds of processes sleeping in staggered loops:
  pure scheduler churn plus generator resume, no conditions;
* **race storm** — processes racing an event against a timeout via
  ``AnyOf``: exercises condition callbacks and defusal, the shape every
  client-timeout pattern in the service layer reduces to.

Both scheduler lanes are measured: the calendar queue (default) gates
against the baseline; the heap lane is recorded alongside so the
committed JSON shows what the calendar queue buys on this workload.

``BASELINE_EVENTS_PER_S`` is the best-of-three rate measured on this
same workload immediately before the optimization pass, on the same
container that produced the committed ``BENCH_kernel.json``; the
optimized kernel must clear it by >= 50%.  Set
``KERNEL_BENCH_STRICT=0`` to record numbers without gating on timing
(CI smoke on shared runners, laptops under load) — completion still
gates.

Numbers land in ``BENCH_kernel.json`` via the session-finish hook in
``conftest.py``.
"""

import os
import time

from repro.simulation.kernel import Simulator

#: Best-of-three events/s on this workload, measured pre-optimization
#: (binary-heap scheduler, no pooling) on the container that produced
#: the committed JSON.  Only comparable on similar hardware — hence the
#: KERNEL_BENCH_STRICT escape hatch.
BASELINE_EVENTS_PER_S = 527_000
TARGET_IMPROVEMENT = 1.50

PROCS = 200
ITERS = 200
ROUNDS = 3


def timer_loop(sim, n, delay):
    for _ in range(n):
        yield sim.timeout(delay)


def race_loop(sim, n):
    for _ in range(n):
        response = sim.event()
        timeout = sim.timeout(2.0)
        if (n % 3) == 0:
            response.succeed("ok")
        yield sim.any_of([response, timeout])


def run_workload(procs=PROCS, iters=ITERS, scheduler=None):
    """One cold simulator, ~(procs * iters * 1.75) events; returns
    (event count, elapsed seconds)."""
    sim = Simulator(seed=7, scheduler=scheduler)
    events = 0
    for i in range(procs):
        sim.process(timer_loop(sim, iters, 0.5 + (i % 7) * 0.1))
        events += iters
    for _ in range(procs // 4):
        sim.process(race_loop(sim, iters))
        events += iters * 3
    start = time.perf_counter()
    sim.run()
    return events, time.perf_counter() - start


def test_kernel_event_throughput(report, bench_kernel):
    strict = os.environ.get("KERNEL_BENCH_STRICT", "1") != "0"

    best = 0.0
    rounds = []
    for _ in range(ROUNDS):
        events, elapsed = run_workload()
        rate = events / elapsed
        rounds.append(round(rate))
        best = max(best, rate)

    heap_best = 0.0
    for _ in range(ROUNDS):
        heap_events, heap_elapsed = run_workload(scheduler="heap")
        heap_best = max(heap_best, heap_events / heap_elapsed)

    improvement = best / BASELINE_EVENTS_PER_S
    bench_kernel.update(
        {
            "workload": {
                "timer_processes": PROCS,
                "race_processes": PROCS // 4,
                "iterations": ITERS,
                "events": events,
            },
            "cpus": os.cpu_count(),
            "scheduler": "calendar",
            "rounds_events_per_s": rounds,
            "best_events_per_s": round(best),
            "heap_best_events_per_s": round(heap_best),
            "calendar_vs_heap": round(best / heap_best, 2),
            "baseline_events_per_s": BASELINE_EVENTS_PER_S,
            "improvement": round(improvement, 2),
            "strict": strict,
        }
    )
    report.add(
        "simulation kernel — serial event throughput",
        f"  {events} events/round, best of {ROUNDS}: {best:,.0f} ev/s"
        f" (calendar) / {heap_best:,.0f} ev/s (heap lane)\n"
        f"  pre-optimization baseline: {BASELINE_EVENTS_PER_S:,} ev/s"
        f" -> {improvement:.2f}x",
    )

    assert best > 0
    if strict:
        assert improvement >= TARGET_IMPROVEMENT, (
            f"kernel hot path regressed: {best:,.0f} ev/s is only"
            f" {improvement:.2f}x the {BASELINE_EVENTS_PER_S:,} ev/s baseline"
            f" (need >= {TARGET_IMPROVEMENT}x; set KERNEL_BENCH_STRICT=0 on"
            f" hardware that is not comparable)"
        )
