"""Figure 8: worst-case rule-matching overhead in the proxy data path.

Paper: "We measured the time to complete a series of HTTP requests to
a server through the service proxy with different number of rules
installed.  Figure 8 shows the CDF for completing 10000 requests in
the worst case scenario: request IDs were compared against all rules
without a match, prior to being forwarded."

Reproduced shape: per-request matching cost grows with the number of
installed rules for the linear matcher (more rules => CDF shifted
right).  The prefix-indexed matcher — the optimization the paper
suggests ("structured (e.g., prefix-based ...) request IDs") — is
ablated alongside: its worst-case cost is near-flat in rule count.
"""

import random
import time

import pytest

from repro.agent import abort, make_matcher
from repro.analysis import Cdf

RULE_COUNTS = [1, 5, 10]
PROBES = 10_000


def build_matcher(strategy: str, rules: int):
    matcher = make_matcher(strategy, rng=random.Random(0))
    for index in range(rules):
        matcher.install(abort("A", "B", pattern=f"test-{index}-*"))
    return matcher


def measure_no_match(strategy: str, rules: int) -> Cdf:
    """Per-request worst-case matching time over PROBES requests."""
    matcher = build_matcher(strategy, rules)
    samples = []
    # Worst case: the ID is compared against every rule, matches none.
    request_id = "zz-no-match-12345"
    for _ in range(PROBES):
        start = time.perf_counter_ns()
        hit = matcher.match("B", "request", request_id)
        samples.append((time.perf_counter_ns() - start) / 1e9)
        assert hit is None
    return Cdf(samples)


_series: dict[tuple[str, int], Cdf] = {}


@pytest.mark.parametrize("rules", RULE_COUNTS)
@pytest.mark.parametrize("strategy", ["linear", "prefix"])
def test_fig8_worst_case_matching(benchmark, report, strategy, rules):
    matcher = build_matcher(strategy, rules)
    request_id = "zz-no-match-12345"

    def probe_many():
        for _ in range(1000):
            matcher.match("B", "request", request_id)

    benchmark(probe_many)
    cdf = measure_no_match(strategy, rules)
    _series[(strategy, rules)] = cdf

    if len(_series) == len(RULE_COUNTS) * 2:
        lines = []
        for strat in ("linear", "prefix"):
            for count in RULE_COUNTS:
                curve = _series[(strat, count)]
                lines.append(
                    f"  {strat:>6} matcher, {count:>2} rules: per-request median"
                    f" {curve.median * 1e6:7.2f} us, p99 {curve.value_at(0.99) * 1e6:7.2f} us"
                )
        # Paper shape: linear matcher cost grows with rule count.
        linear = [_series[("linear", count)].median for count in RULE_COUNTS]
        assert linear[0] < linear[-1], "more rules must cost more (linear scan)"
        # Ablation: the prefix index stays ~flat in rule count.
        prefix = [_series[("prefix", count)].median for count in RULE_COUNTS]
        lines.append(
            f"  linear 10-rule/1-rule median ratio: {linear[-1] / linear[0]:.1f}x;"
            f" prefix: {prefix[-1] / max(prefix[0], 1e-12):.1f}x"
        )
        report.add(
            "Fig 8 — worst-case rule matching (10000 no-match requests)",
            "\n".join(lines)
            + "\n  paper: CDF shifts right as rules increase -> reproduced (linear);"
            "\n  prefix-index ablation: near-flat, the optimization the paper suggests",
        )
