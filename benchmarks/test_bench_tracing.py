"""Span tracing overhead on the tree-app campaign.

Observability that costs more than the signal it yields gets turned
off; the design target for the span/metrics hooks is <10% wall-clock
overhead on a full campaign.  The hooks were built for that budget —
span IDs are a counter bump + one header write per proxied call, and
metric handles are cached per destination on the agent so the hot path
never takes the registry lock.

This benchmark pins the budget: the 42-recipe depth-3 tree campaign
runs unpaced and serial (pure CPU, the regime where per-message
overhead is most visible) with tracing on and off, best-of-N each.
Metrics stay enabled in both runs — the toggle under test is span
minting/propagation, which is what ``Application.default_tracing``
controls and what campaign users would consider switching off.

Numbers land in ``BENCH_tracing.json`` via the session-finish hook in
``conftest.py``.
"""

import os
import time

from repro.apps import build_tree_app
from repro.campaign import CampaignRunner, plan_campaign

REQUESTS = 10
REPEATS = 3
MAX_OVERHEAD = 0.10


def traced_tree3():
    return build_tree_app(3)


def untraced_tree3():
    app = build_tree_app(3)
    app.default_tracing = False
    return app


def best_of(factory, plan):
    """Minimum wall clock over REPEATS runs (noise floor estimator)."""
    best, result = None, None
    for _ in range(REPEATS):
        runner = CampaignRunner(factory, workers=1, pacing=0.0, timeout=120.0)
        start = time.perf_counter()
        result = runner.run(plan)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best, result


def test_tracing_overhead_under_budget(report, bench_tracing):
    plan = plan_campaign(traced_tree3, seed=20, requests=REQUESTS)
    assert len(plan) >= 40, "overhead claim is about campaign-sized suites"

    untraced_s, untraced_result = best_of(untraced_tree3, plan)
    traced_s, traced_result = best_of(traced_tree3, plan)

    # Tracing must be an observer: identical per-recipe verdicts.
    assert [o.status for o in traced_result.outcomes] == [
        o.status for o in untraced_result.outcomes
    ]
    # The traced run actually traced: spans made it into the records.
    assert any(o.metrics for o in traced_result.outcomes)

    overhead = traced_s / untraced_s - 1.0
    bench_tracing.update(
        {
            "app": "tree3",
            "recipes": len(plan),
            "requests_per_recipe": REQUESTS,
            "repeats": REPEATS,
            "cpus": os.cpu_count(),
            "untraced_s": round(untraced_s, 3),
            "traced_s": round(traced_s, 3),
            "overhead": round(overhead, 4),
            "budget": MAX_OVERHEAD,
        }
    )
    report.add(
        "Span tracing — overhead on the 42-recipe tree3 campaign",
        f"  tracing off: {untraced_s:6.2f}s   tracing on: {traced_s:6.2f}s"
        f"   overhead {overhead * 100:+.1f}% (budget {MAX_OVERHEAD * 100:.0f}%)",
    )

    assert overhead < MAX_OVERHEAD, (
        f"span tracing must stay under {MAX_OVERHEAD:.0%} overhead:"
        f" {untraced_s:.2f}s untraced vs {traced_s:.2f}s traced"
        f" ({overhead:+.1%})"
    )
