"""Table 3: the assertion-checker interface, exercised and timed.

Paper Table 3 lists the queries (GetRequests/GetReplies), base
assertions (NumRequests, ReplyLatency, AtMostRequests, CheckStatus,
RequestRate, Combine) and pattern checks (HasTimeouts,
HasBoundedRetries, HasCircuitBreaker, HasBulkHead).  This benchmark
runs each interface entry against a store of 20 000 observation
records and reports the evaluation cost — the "assertions run in
milliseconds" half of the paper's fast-feedback claim (Fig 7's
assertion series is the end-to-end version of the same measurement).
"""

import time

import pytest

from repro.core import (
    AtMostRequests,
    CheckStatus,
    Combine,
    HasBoundedRetries,
    HasBulkhead,
    HasCircuitBreaker,
    HasTimeouts,
    get_replies,
    get_requests,
    num_requests,
    reply_latency,
    request_rate,
)
from repro.logstore import EventStore, ObservationRecord, Query

RECORDS = 20_000


@pytest.fixture(scope="module")
def big_store():
    store = EventStore()
    for index in range(RECORDS // 2):
        ts = index * 0.01
        failed = index % 10 < 3
        store.append(
            ObservationRecord(
                timestamp=ts,
                kind="request",
                src="ServiceA",
                dst="ServiceB" if index % 3 else "ServiceC",
                request_id=f"test-{index}",
                method="GET",
                uri="/api",
                status=503 if failed else 200,
                fault_applied="abort(503)" if failed else None,
            )
        )
        store.append(
            ObservationRecord(
                timestamp=ts + 0.005,
                kind="reply",
                src="ServiceA",
                dst="ServiceB" if index % 3 else "ServiceC",
                request_id=f"test-{index}",
                status=503 if failed else 200,
                latency=0.005,
                gremlin_generated=failed,
            )
        )
    return store


ENTRIES = {
    "GetRequests": lambda store, rlist: get_requests(store, "ServiceA", "ServiceB", "test-*"),
    "GetReplies": lambda store, rlist: get_replies(store, "ServiceA", "ServiceB", "test-*"),
    "NumRequests": lambda store, rlist: num_requests(rlist, tdelta="1min", with_rule=True),
    "ReplyLatency": lambda store, rlist: reply_latency(rlist, with_rule=False),
    "AtMostRequests": lambda store, rlist: AtMostRequests("1min", True, 10**9)(rlist),
    "CheckStatus": lambda store, rlist: CheckStatus(503, 5, True)(rlist),
    "RequestRate": lambda store, rlist: request_rate(rlist),
    "Combine": lambda store, rlist: Combine(
        (CheckStatus, 503, 5, True), (AtMostRequests, "1min", True, 10**9)
    )(rlist),
    "HasTimeouts": lambda store, rlist: HasTimeouts("ServiceB", "1s").run(store),
    "HasBoundedRetries": lambda store, rlist: HasBoundedRetries(
        "ServiceA", "ServiceB", 10**9, window="10s"
    ).run(store),
    "HasCircuitBreaker": lambda store, rlist: HasCircuitBreaker(
        "ServiceA", "ServiceB", threshold=5, tdelta="1s", check_recovery=False
    ).run(store),
    "HasBulkhead": lambda store, rlist: HasBulkhead("ServiceA", "ServiceB", rate=0.1).run(store),
}

_timings: dict[str, float] = {}


@pytest.mark.parametrize("entry", list(ENTRIES))
def test_table3_interface_entry_cost(benchmark, report, big_store, entry):
    rlist = get_requests(big_store, "ServiceA", "ServiceB")
    runner = ENTRIES[entry]
    result = benchmark(lambda: runner(big_store, rlist))
    assert result is not None
    _timings[entry] = benchmark.stats.stats.mean

    if len(_timings) == len(ENTRIES):
        lines = [
            f"  {name:<18} {mean * 1e3:9.3f} ms"
            for name, mean in _timings.items()
        ]
        # Fast-feedback claim: every entry evaluates in < 100 ms even
        # against a 20k-record store.
        assert all(mean < 0.1 for mean in _timings.values())
        report.add(
            f"Table 3 — assertion interface cost over {RECORDS} records",
            "\n".join(lines) + "\n  paper: assertions give feedback in seconds -> "
            "reproduced (milliseconds per entry)",
        )


# --------------------------------------------------------------------------
# Indexed vs linear scaling: the same assertion suite against stores of
# 1k / 10k / 100k records.  A realistic topology has many service pairs,
# so edge-scoped checks touch a small slice of the store — exactly the
# case the secondary indexes exploit.  Results land in BENCH_logstore.json.
# --------------------------------------------------------------------------

SCALES = (1_000, 10_000, 100_000)
_FRONTS = tuple(f"Front{i}" for i in range(8))
_BACKS = tuple(f"Back{i}" for i in range(8))
_EDGES = [(src, dst) for src in _FRONTS for dst in _BACKS]  # 64 pairs
_SUITE_REPEATS = 5


def _topology_records(total):
    """``total`` records round-robined over 16 service edges."""
    records = []
    for index in range(total // 2):
        src, dst = _EDGES[index % len(_EDGES)]
        ts = index * 0.001
        failed = index % 10 < 3
        records.append(
            ObservationRecord(
                timestamp=ts,
                kind="request",
                src=src,
                dst=dst,
                request_id=f"test-{index}",
                method="GET",
                uri="/api",
                status=503 if failed else 200,
                fault_applied="abort(503)" if failed else None,
            )
        )
        records.append(
            ObservationRecord(
                timestamp=ts + 0.0005,
                kind="reply",
                src=src,
                dst=dst,
                request_id=f"test-{index}",
                status=503 if failed else 200,
                latency=0.0005,
                gremlin_generated=failed,
            )
        )
    return records


def _assertion_suite(store):
    """The Table-3 pattern checks scoped to one service edge; returns
    the outcome tuple so both strategies can be compared for equality."""
    checks = [
        HasTimeouts("Back0", "1s"),
        HasBoundedRetries("Front0", "Back0", 10**9, window="10s"),
        HasCircuitBreaker("Front0", "Back0", threshold=5, tdelta="1s", check_recovery=False),
        HasBulkhead("Front0", "Back0", rate=0.1),
    ]
    return tuple((check.name, check.run(store).passed) for check in checks)


def _time_suite(store):
    best = float("inf")
    outcome = None
    for _ in range(_SUITE_REPEATS):
        start = time.perf_counter()
        outcome = _assertion_suite(store)
        best = min(best, time.perf_counter() - start)
    return best, outcome


@pytest.mark.parametrize("scale", SCALES)
def test_indexed_vs_linear_assertion_scaling(report, bench_logstore, scale):
    records = _topology_records(scale)
    numbers = {}
    outcomes = {}
    for strategy in ("indexed", "linear"):
        store = EventStore(strategy=strategy)
        start = time.perf_counter()
        store.extend(records)
        store.all_records()  # force the sort so ingest cost is all-in
        ingest = time.perf_counter() - start

        probe = Query(kind="request", src="Front0", dst="Back0")
        query_repeats = 30
        start = time.perf_counter()
        for _ in range(query_repeats):
            store.search(probe)
        query_elapsed = time.perf_counter() - start

        suite_elapsed, outcomes[strategy] = _time_suite(store)
        numbers[strategy] = {
            "ingest_records_per_sec": round(scale / ingest),
            "queries_per_sec": round(query_repeats / query_elapsed),
            "assertion_suite_ms": round(suite_elapsed * 1e3, 3),
        }

    # Correctness first: both strategies must judge the suite identically.
    assert outcomes["indexed"] == outcomes["linear"]

    speedup = (
        numbers["linear"]["assertion_suite_ms"] / numbers["indexed"]["assertion_suite_ms"]
    )
    entry = dict(numbers)
    entry["assertion_suite_speedup"] = round(speedup, 2)
    bench_logstore[str(scale)] = entry

    report.add(
        f"Log-store scaling — assertion suite over {scale} records",
        "\n".join(
            f"  {strategy:<8} ingest {stats['ingest_records_per_sec']:>9}/s   "
            f"queries {stats['queries_per_sec']:>7}/s   "
            f"suite {stats['assertion_suite_ms']:>9.3f} ms"
            for strategy, stats in numbers.items()
        )
        + f"\n  indexed speedup: {speedup:.1f}x",
    )

    # Acceptance: the indexed engine beats the linear scan by >= 5x on
    # the full assertion suite at the 100k-record scale.
    if scale == max(SCALES):
        assert speedup >= 5.0, f"expected >=5x at {scale} records, got {speedup:.2f}x"
