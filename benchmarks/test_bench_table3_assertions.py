"""Table 3: the assertion-checker interface, exercised and timed.

Paper Table 3 lists the queries (GetRequests/GetReplies), base
assertions (NumRequests, ReplyLatency, AtMostRequests, CheckStatus,
RequestRate, Combine) and pattern checks (HasTimeouts,
HasBoundedRetries, HasCircuitBreaker, HasBulkHead).  This benchmark
runs each interface entry against a store of 20 000 observation
records and reports the evaluation cost — the "assertions run in
milliseconds" half of the paper's fast-feedback claim (Fig 7's
assertion series is the end-to-end version of the same measurement).
"""

import pytest

from repro.core import (
    AtMostRequests,
    CheckStatus,
    Combine,
    HasBoundedRetries,
    HasBulkhead,
    HasCircuitBreaker,
    HasTimeouts,
    get_replies,
    get_requests,
    num_requests,
    reply_latency,
    request_rate,
)
from repro.logstore import EventStore, ObservationRecord

RECORDS = 20_000


@pytest.fixture(scope="module")
def big_store():
    store = EventStore()
    for index in range(RECORDS // 2):
        ts = index * 0.01
        failed = index % 10 < 3
        store.append(
            ObservationRecord(
                timestamp=ts,
                kind="request",
                src="ServiceA",
                dst="ServiceB" if index % 3 else "ServiceC",
                request_id=f"test-{index}",
                method="GET",
                uri="/api",
                status=503 if failed else 200,
                fault_applied="abort(503)" if failed else None,
            )
        )
        store.append(
            ObservationRecord(
                timestamp=ts + 0.005,
                kind="reply",
                src="ServiceA",
                dst="ServiceB" if index % 3 else "ServiceC",
                request_id=f"test-{index}",
                status=503 if failed else 200,
                latency=0.005,
                gremlin_generated=failed,
            )
        )
    return store


ENTRIES = {
    "GetRequests": lambda store, rlist: get_requests(store, "ServiceA", "ServiceB", "test-*"),
    "GetReplies": lambda store, rlist: get_replies(store, "ServiceA", "ServiceB", "test-*"),
    "NumRequests": lambda store, rlist: num_requests(rlist, tdelta="1min", with_rule=True),
    "ReplyLatency": lambda store, rlist: reply_latency(rlist, with_rule=False),
    "AtMostRequests": lambda store, rlist: AtMostRequests("1min", True, 10**9)(rlist),
    "CheckStatus": lambda store, rlist: CheckStatus(503, 5, True)(rlist),
    "RequestRate": lambda store, rlist: request_rate(rlist),
    "Combine": lambda store, rlist: Combine(
        (CheckStatus, 503, 5, True), (AtMostRequests, "1min", True, 10**9)
    )(rlist),
    "HasTimeouts": lambda store, rlist: HasTimeouts("ServiceB", "1s").run(store),
    "HasBoundedRetries": lambda store, rlist: HasBoundedRetries(
        "ServiceA", "ServiceB", 10**9, window="10s"
    ).run(store),
    "HasCircuitBreaker": lambda store, rlist: HasCircuitBreaker(
        "ServiceA", "ServiceB", threshold=5, tdelta="1s", check_recovery=False
    ).run(store),
    "HasBulkhead": lambda store, rlist: HasBulkhead("ServiceA", "ServiceB", rate=0.1).run(store),
}

_timings: dict[str, float] = {}


@pytest.mark.parametrize("entry", list(ENTRIES))
def test_table3_interface_entry_cost(benchmark, report, big_store, entry):
    rlist = get_requests(big_store, "ServiceA", "ServiceB")
    runner = ENTRIES[entry]
    result = benchmark(lambda: runner(big_store, rlist))
    assert result is not None
    _timings[entry] = benchmark.stats.stats.mean

    if len(_timings) == len(ENTRIES):
        lines = [
            f"  {name:<18} {mean * 1e3:9.3f} ms"
            for name, mean in _timings.items()
        ]
        # Fast-feedback claim: every entry evaluates in < 100 ms even
        # against a 20k-record store.
        assert all(mean < 0.1 for mean in _timings.values())
        report.add(
            f"Table 3 — assertion interface cost over {RECORDS} records",
            "\n".join(lines) + "\n  paper: assertions give feedback in seconds -> "
            "reproduced (milliseconds per entry)",
        )
