"""Figure 5: CDFs of WordPress response times under injected delay.

Paper: "CDFs of response times from WordPress, based on injected delay
between WordPress and Elasticsearch.  Quickest response times were
dictated by the delay, indicating absence of a timeout pattern."

Reproduced shape: for the published (naive) plugin, the response-time
CDF for injected delay D starts at >= D — every curve is the delay
plus a small constant.  The hardened contrast client's curve is pinned
at its 1 s timeout instead, independent of D.

The pytest-benchmark number is the wall-clock cost of the whole
100-request experiment (the paper ran it against live containers; we
replay it in virtual time in milliseconds).
"""

import pytest

from repro.analysis import Cdf
from repro.apps import ELASTICSEARCH, WORDPRESS, build_wordpress_app
from repro.core import DelayCalls, Gremlin
from repro.loadgen import ClosedLoopLoad

DELAYS = [1.0, 2.0, 3.0, 4.0]
REQUESTS = 100


def run_experiment(injected_delay: float, hardened: bool) -> Cdf:
    deployment = build_wordpress_app(hardened=hardened).deploy(seed=5)
    source = deployment.add_traffic_source(WORDPRESS)
    gremlin = Gremlin(deployment)
    gremlin.inject(DelayCalls(WORDPRESS, ELASTICSEARCH, interval=injected_delay))
    load = ClosedLoopLoad(num_requests=REQUESTS)
    load.run(source)
    return Cdf(load.result.latencies)


@pytest.mark.parametrize("injected", DELAYS)
def test_fig5_naive_plugin_offset_by_delay(benchmark, report, injected):
    cdf = benchmark.pedantic(
        run_experiment, args=(injected, False), rounds=3, iterations=1
    )
    # Paper shape: quickest responses dictated by the injected delay.
    assert cdf.min >= injected
    assert cdf.median == pytest.approx(injected, rel=0.05)
    report.add(
        f"Fig 5 — naive ElasticPress, injected delay {injected:.0f}s",
        f"  min={cdf.min:.3f}s p25={cdf.value_at(0.25):.3f}s median={cdf.median:.3f}s"
        f" p75={cdf.value_at(0.75):.3f}s max={cdf.max:.3f}s (n={len(cdf)})\n"
        f"  paper: CDF knee at the injected delay -> reproduced: knee at {cdf.min:.2f}s",
    )


def run_noisy_experiment(injected_delay: float) -> Cdf:
    """Fig 5 with heavy-tailed link latency, closer to the paper's
    real-testbed curves: the CDF spreads but its knee stays pinned at
    the injected delay."""
    from repro.network.latency import LognormalLatency

    deployment = build_wordpress_app(hardened=False).deploy(seed=5)
    source = deployment.add_traffic_source(WORDPRESS)
    # Lognormal one-way latency, median ~1 ms with a heavy tail.
    for host_a in deployment.network.hosts:
        for host_b in deployment.network.hosts:
            if host_a.name < host_b.name:
                deployment.network.set_latency(
                    host_a.name,
                    host_b.name,
                    LognormalLatency(mu=-6.9, sigma=0.8, floor=0.0002),
                )
    gremlin = Gremlin(deployment)
    gremlin.inject(DelayCalls(WORDPRESS, ELASTICSEARCH, interval=injected_delay))
    load = ClosedLoopLoad(num_requests=REQUESTS)
    load.run(source)
    return Cdf(load.result.latencies)


@pytest.mark.parametrize("injected", [2.0])
def test_fig5_with_latency_noise(benchmark, report, injected):
    cdf = benchmark.pedantic(run_noisy_experiment, args=(injected,), rounds=3, iterations=1)
    # The knee stays at the injected delay even under noisy links; only
    # the spread above it changes.
    assert cdf.min >= injected
    assert cdf.max > cdf.min  # the noise is visible
    assert cdf.median < injected + 0.1
    report.add(
        f"Fig 5 robustness — injected delay {injected:.0f}s with lognormal link noise",
        f"  min={cdf.min:.3f}s median={cdf.median:.3f}s p99={cdf.value_at(0.99):.3f}s"
        f" max={cdf.max:.3f}s\n"
        "  knee pinned at the injected delay; spread comes from the links"
        " (the paper's real-testbed curve shape)",
    )


@pytest.mark.parametrize("injected", [3.0])
def test_fig5_contrast_hardened_plugin_bounded_by_timeout(benchmark, report, injected):
    cdf = benchmark.pedantic(
        run_experiment, args=(injected, True), rounds=3, iterations=1
    )
    # Contrast shape: bounded by the 1s timeout + fallback, never the delay.
    assert cdf.max < 1.5
    # Statistical confirmation: the naive and hardened distributions are
    # distinguishable at any sane significance level.
    from repro.analysis import compare_cdfs

    naive = run_experiment(injected, hardened=False)
    comparison = compare_cdfs(naive.samples, cdf.samples)
    assert not comparison.same_distribution(alpha=1e-6)
    report.add(
        f"Fig 5 contrast — hardened plugin, injected delay {injected:.0f}s",
        f"  min={cdf.min:.3f}s median={cdf.median:.3f}s max={cdf.max:.3f}s"
        f" — bounded by the 1s client timeout, not the {injected:.0f}s delay\n"
        f"  vs naive plugin: {comparison} (two-sample KS)",
    )
