"""Differential fuzzer: case throughput and battery coverage.

The fuzzer's operational claim is that differential coverage is cheap
enough to run continuously: every case pays for a full deploy + inject
+ load + check cycle *several times over* (baseline execution, oracle
walk, and one re-execution per applicable metamorphic check), yet a
CI-sized corpus should still clear in seconds.  This benchmark pins:

* **throughput** — cases/second through the full battery: serial, the
  4-worker thread fleet (under the GIL this documents rather than
  promises a speedup), and the 4-worker process fleet (spawn-isolated
  interpreters, the backend that can actually use multiple cores —
  ``cpus`` in the JSON says how many this container had);
* **coverage** — what fraction of the corpus the exact oracle diffed,
  and how many cases each metamorphic check ran on, so a generator
  regression that silently shrinks the deterministic domain shows up
  as a number, not a hunch;
* **determinism** — the serial and fleet runs must agree failure-for-
  failure, re-asserting the campaign contract under fuzz load.

Numbers land in ``BENCH_fuzz.json`` via the session-finish hook in
``conftest.py``.
"""

import os
import time

from repro.cli import APPS
from repro.fuzz import run_fuzz

SEED = 2026
CASES = 60
FLEET_WORKERS = 4


def test_fuzz_throughput_and_coverage(report, bench_fuzz):
    start = time.perf_counter()
    serial = run_fuzz(SEED, CASES, workers=1, app_registry=APPS)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    fleet = run_fuzz(SEED, CASES, workers=FLEET_WORKERS, app_registry=APPS)
    fleet_s = time.perf_counter() - start

    start = time.perf_counter()
    procs = run_fuzz(
        SEED, CASES, workers=FLEET_WORKERS, backend="processes", app_registry=APPS
    )
    procs_s = time.perf_counter() - start

    # Determinism contract: worker count and backend change wall clock,
    # nothing else.
    assert serial.to_dict()["failures"] == fleet.to_dict()["failures"]
    assert serial.to_dict()["failures"] == procs.to_dict()["failures"]
    assert serial.metamorphic_counts == fleet.metamorphic_counts
    assert serial.metamorphic_counts == procs.metamorphic_counts
    assert serial.oracle_checked == procs.oracle_checked
    assert serial.passed, serial.summary()

    # The battery must stay fast enough for per-PR CI smoke runs.
    assert serial_s < 60.0, f"{CASES} cases took {serial_s:.1f}s serially"

    bench_fuzz.update(
        {
            "seed": SEED,
            "cases": CASES,
            "cpus": os.cpu_count(),
            "serial_s": round(serial_s, 3),
            "fleet_workers": FLEET_WORKERS,
            "fleet_s": round(fleet_s, 3),
            "processes_s": round(procs_s, 3),
            "cases_per_s_serial": round(CASES / serial_s, 1),
            "cases_per_s_fleet": round(CASES / fleet_s, 1),
            "cases_per_s_processes": round(CASES / procs_s, 1),
            "oracle_checked": serial.oracle_checked,
            "oracle_fraction": round(serial.oracle_checked / CASES, 3),
            "metamorphic_counts": dict(serial.metamorphic_counts),
        }
    )

    lines = [
        f"corpus: seed={SEED}, {CASES} cases",
        f"serial:  {serial_s:.2f}s  ({CASES / serial_s:.1f} cases/s)",
        f"threads({FLEET_WORKERS}): {fleet_s:.2f}s  ({CASES / fleet_s:.1f} cases/s)",
        f"processes({FLEET_WORKERS}): {procs_s:.2f}s  ({CASES / procs_s:.1f} cases/s)",
        f"oracle-diffed: {serial.oracle_checked}/{CASES}",
    ]
    for name, count in sorted(serial.metamorphic_counts.items()):
        lines.append(f"metamorphic {name}: {count}/{CASES}")
    report.add("differential fuzzing throughput", "\n".join(lines))
