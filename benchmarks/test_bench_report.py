"""Cascade-analytics efficacy: report overhead and what-if triage.

Two claims, two experiments:

1. **Report overhead** — folding a campaign into the full resilience
   report (dependency graph, blast radii, root-cause ranking, what-if
   predictions, JSON + HTML rendering) must cost **under 5%** of the
   campaign's own wall clock, measured on the 42-recipe ``tree3``
   campaign.  Observability that competes with execution for time
   doesn't get turned on.

2. **What-if triage** — ordering exploration candidates by graph
   simulation alone (static schedule, no online feedback) must reach
   every planted bug in **at most 60%** of the fault executions the
   prioritized learning frontier needs, summed over the seeded-bug
   suite.  That is the subsystem's reason to exist: the discovered
   graph plus a cheap propagation model replaces most of the feedback
   loop's runtime learning.

Numbers land in ``BENCH_report.json`` via the session-finish hook in
``conftest.py``.
"""

import time

from repro.apps import build_tree_app
from repro.apps.outages import SEEDED_BUG_SUITE
from repro.campaign import CampaignRunner, plan_campaign
from repro.explore import run_explore

SEED = 0
BUDGET = 150
MAX_OVERHEAD = 0.05
MAX_TRIAGE_RATIO = 0.6


def test_report_build_overhead_under_5_percent(report, bench_report):
    factory = lambda: build_tree_app(3)  # noqa: E731 - matches campaign idiom
    plan = plan_campaign(factory, seed=SEED, requests=6)
    assert len(plan.entries) == 42, "tree3 is the 42-recipe campaign"

    start = time.perf_counter()
    result = CampaignRunner(factory, workers=1).run(plan)
    campaign_s = time.perf_counter() - start

    start = time.perf_counter()
    resilience = result.resilience_report()
    json_text = resilience.to_json()
    html_text = resilience.to_html()
    report_s = time.perf_counter() - start

    assert json_text and html_text
    overhead = report_s / campaign_s
    assert overhead < MAX_OVERHEAD, (
        f"report build took {report_s:.3f}s against a {campaign_s:.3f}s"
        f" campaign ({overhead:.1%} > {MAX_OVERHEAD:.0%})"
    )

    bench_report.update(
        {
            "overhead": {
                "recipes": len(plan.entries),
                "campaign_wall_s": round(campaign_s, 4),
                "report_build_s": round(report_s, 4),
                "overhead_fraction": round(overhead, 5),
                "max_overhead": MAX_OVERHEAD,
                "report_json_bytes": len(json_text),
                "report_html_bytes": len(html_text),
            }
        }
    )
    report.add(
        "resilience report: build overhead on the 42-recipe campaign",
        f"campaign {campaign_s:.2f}s, report {report_s*1000:.0f}ms"
        f" ({overhead:.1%}, required < {MAX_OVERHEAD:.0%})",
    )


def test_whatif_triage_beats_prioritized_frontier(report, bench_report):
    per_app: dict = {}
    totals = {"whatif": 0, "prioritized": 0}
    for app in sorted(SEEDED_BUG_SUITE):
        per_app[app] = {}
        for strategy in ("whatif", "prioritized"):
            result = run_explore(
                app, budget=BUDGET, seed=SEED, strategy=strategy,
                stop_when_found=True,
            )
            assert result.all_bugs_found, (
                f"{strategy} missed bugs on {app}: {result.report.render()}"
            )
            totals[strategy] += result.executions_to_all_bugs
            per_app[app][strategy] = result.executions_to_all_bugs

    ratio = totals["whatif"] / totals["prioritized"]
    assert ratio <= MAX_TRIAGE_RATIO, (
        f"whatif needed {totals['whatif']} executions vs prioritized's"
        f" {totals['prioritized']} (ratio {ratio:.2f} > {MAX_TRIAGE_RATIO})"
    )

    bench_report.update(
        {
            "whatif_triage": {
                "seed": SEED,
                "budget": BUDGET,
                "apps": per_app,
                "whatif_total": totals["whatif"],
                "prioritized_total": totals["prioritized"],
                "ratio": round(ratio, 4),
                "max_ratio": MAX_TRIAGE_RATIO,
            }
        }
    )
    lines = [
        f"{'app':14s} {'whatif':>7s} {'prioritized':>11s}",
        *(
            f"{app:14s} {per_app[app]['whatif']:>7d}"
            f" {per_app[app]['prioritized']:>11d}"
            for app in sorted(per_app)
        ),
        f"{'TOTAL':14s} {totals['whatif']:>7d} {totals['prioritized']:>11d}"
        f"   ratio={ratio:.2f} (required <= {MAX_TRIAGE_RATIO})",
    ]
    report.add(
        "what-if triage: executions to find all planted bugs", "\n".join(lines)
    )
