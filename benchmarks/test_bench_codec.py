"""Outcome codec microbench: bytes and latency vs pickle.

The shm transport's compact codec claims two things about real
payload-heavy outcome documents (a socialnetwork recipe outcome with
per-request latency lists, metrics snapshots, and attributions):

* **smaller**: after the first message interns the shape and the
  repeated strings, steady-state messages are a fraction of the
  pickled size (latencies travel as one packed float64 blob, strings
  as 4-byte refs);
* **comparable latency**: encode/decode stay in pickle's range even
  though the codec is pure Python, because the compiled per-shape
  pack/build functions run only C-level operations per message.

Non-gating by design: the numbers are recorded to ``BENCH_codec.json``
for transparency (the fleet-level claim lives in BENCH_campaign.json's
``result_transport`` curves), and the only hard assertions are
round-trip fidelity and steady-state size — both machine-independent.
"""

import os
import pickle
import time

from repro.apps import build_socialnetwork_app
from repro.campaign import CampaignRunner, plan_campaign
from repro.campaign.codec import ResultDecoder, ResultEncoder

ROUNDS = 200


def _time_per_call(fn, rounds=ROUNDS):
    start = time.perf_counter()
    for _ in range(rounds):
        fn()
    return (time.perf_counter() - start) / rounds


def test_codec_vs_pickle_on_socialnetwork_outcome(report, bench_codec):
    plan = plan_campaign(build_socialnetwork_app, seed=0, requests=12).limit(1)
    doc = (
        CampaignRunner(build_socialnetwork_app, workers=1, timeout=120.0)
        .run(plan)
        .outcomes[0]
        .to_dict()
    )

    encoder, decoder = ResultEncoder(), ResultDecoder()
    first = encoder.encode(doc)
    decoder.decode(first)
    steady = encoder.encode(doc)  # shape + strings now interned

    # Fidelity gate: the decoded steady-state message IS the document.
    assert decoder.decode(steady) == doc

    pickled = pickle.dumps(doc, protocol=pickle.HIGHEST_PROTOCOL)
    assert len(steady) < len(pickled), "steady-state codec must be smaller"

    encode_s = _time_per_call(lambda: encoder.encode(doc))
    # Decoding replays the same steady-state body; the decoder's string
    # table is already synchronized, so no state advances per replay.
    decode_s = _time_per_call(lambda: decoder.decode(steady))
    pickle_enc_s = _time_per_call(lambda: pickle.dumps(doc, protocol=-1))
    pickle_dec_s = _time_per_call(lambda: pickle.loads(pickled))

    bench_codec.update(
        {
            "app": "socialnetwork",
            "rounds": ROUNDS,
            "cpus": os.cpu_count(),
            "bytes": {
                "pickle": len(pickled),
                "codec_first_message": len(first),
                "codec_steady_state": len(steady),
                "ratio_vs_pickle": round(len(steady) / len(pickled), 3),
            },
            "latency_us": {
                "codec_encode": round(encode_s * 1e6, 1),
                "codec_decode": round(decode_s * 1e6, 1),
                "pickle_encode": round(pickle_enc_s * 1e6, 1),
                "pickle_decode": round(pickle_dec_s * 1e6, 1),
            },
        }
    )
    report.add(
        "Outcome codec — socialnetwork outcome doc vs pickle",
        f"  bytes: pickle {len(pickled)}, codec first {len(first)},"
        f" steady {len(steady)}"
        f" ({len(steady) / len(pickled):.2f}x of pickle)\n"
        f"  encode: codec {encode_s * 1e6:6.1f}us, pickle"
        f" {pickle_enc_s * 1e6:6.1f}us; decode: codec"
        f" {decode_s * 1e6:6.1f}us, pickle {pickle_dec_s * 1e6:6.1f}us",
    )
