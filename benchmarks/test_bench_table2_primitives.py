"""Table 2: the data-plane fault primitives and their proxy-path cost.

Paper Table 2 defines the agent interface: Abort, Delay, Modify.  This
benchmark measures the wall-clock cost each primitive adds to the
proxy data path (virtual-time delays are free — the simulator jumps
the clock — so what remains is real matching + synthesis + rewrite
work), alongside the no-rule passthrough baseline.

Shape expectation: all primitives are within the same order of
magnitude as passthrough; the proxy is cheap enough to leave in place
in production, the paper's low-overhead claim.
"""

import pytest

from repro.agent import TCP_RESET, abort, delay, modify
from repro.apps import build_twotier
from repro.http import HttpRequest
from repro.microservice import PolicySpec

REQUESTS_PER_ROUND = 200


def build(policy=None, sidecars=True):
    deployment = build_twotier(policy=policy or PolicySpec(timeout=30.0)).deploy(
        seed=91, sidecars=sidecars
    )
    source = deployment.add_traffic_source("ServiceA")
    return deployment, source


def drive(deployment, source, n=REQUESTS_PER_ROUND):
    sim = deployment.sim

    def worker(sim):
        for index in range(n):
            request = HttpRequest("GET", "/api")
            request.request_id = f"test-{index}"
            try:
                yield from source.client.call(request)
            except Exception:  # noqa: BLE001 - resets expected under Abort(-1)
                pass

    sim.process(worker(sim))
    sim.run()


RULES = {
    "passthrough": None,
    "abort_503": lambda: abort("ServiceA", "ServiceB", error=503),
    "abort_reset": lambda: abort("ServiceA", "ServiceB", error=TCP_RESET),
    "delay_100ms": lambda: delay("ServiceA", "ServiceB", interval="100ms"),
    "modify_body": lambda: modify(
        "ServiceA", "ServiceB", pattern="ok", replace_bytes="rewritten"
    ),
}

_costs: dict[str, float] = {}


@pytest.mark.parametrize("primitive", list(RULES))
def test_table2_primitive_proxy_cost(benchmark, report, primitive):
    def round():
        deployment, source = build()
        rule_factory = RULES[primitive]
        if rule_factory is not None:
            for agent in deployment.agents_of("ServiceA"):
                agent.install_rule(rule_factory())
        drive(deployment, source)
        return deployment

    deployment = benchmark.pedantic(round, rounds=3, iterations=1)
    # Every request crossed the proxy exactly once.
    assert deployment.agents_of("ServiceA")[0].proxied == REQUESTS_PER_ROUND
    _costs[primitive] = benchmark.stats.stats.mean / REQUESTS_PER_ROUND


def test_table2_no_sidecar_ablation(benchmark, report):
    """Ablation baseline: the same workload with no proxy at all."""

    def round():
        deployment, source = build(sidecars=False)
        drive(deployment, source)
        return deployment

    deployment = benchmark.pedantic(round, rounds=3, iterations=1)
    assert deployment.agents == []
    _costs["no_sidecar"] = benchmark.stats.stats.mean / REQUESTS_PER_ROUND

    if len(_costs) == len(RULES) + 1:
        baseline = _costs["passthrough"]
        lines = [
            f"  {name:<12} {cost * 1e6:8.2f} us/request"
            f"  ({cost / baseline:4.1f}x passthrough)"
            for name, cost in _costs.items()
        ]
        # Low-overhead claim: no primitive is an order of magnitude
        # above passthrough on the wall-clock data path.
        assert all(cost < baseline * 10 for cost in _costs.values())
        report.add(
            "Table 2 — per-primitive proxy cost (wall time per proxied request)",
            "\n".join(lines)
            + "\n  paper: agents add low overhead -> reproduced (same order of"
            " magnitude\n  as both passthrough and the no-sidecar ablation)",
        )
