"""Production-scale benchmark apps: kernel throughput and campaign cost.

The DeathStarBench-class topologies (28-service ``socialnetwork``,
20-service ``hotelreservation``) exist to show the stack at the scale
the paper's target systems run at.  Two numbers pin that claim:

* **drive throughput** — kernel events/second while closed-loop
  traffic flows through the full 28-service graph (sidecars, tracing,
  log shipping all on).  Measured on the heap scheduler lane, whose
  monotone sequence counter doubles as an exact count of scheduled
  events.
* **campaign wall clock** — time to execute a slice of the
  auto-generated fault campaign against the same app, serial vs a
  4-worker thread fleet, with the determinism contract re-asserted
  (the fleet may change only wall-clock time).

Both are recorded for transparency, not gated: absolute numbers vary
with the container, and the regression gate for kernel throughput
lives in ``test_bench_kernel.py``.  Numbers land in ``BENCH_apps.json``
via the session-finish hook in ``conftest.py``.
"""

import os
import time

from repro.apps.hotelreservation import build_hotelreservation_app
from repro.apps.socialnetwork import build_socialnetwork_app
from repro.campaign import CampaignRunner, plan_campaign
from repro.loadgen import ClosedLoopLoad

ROUNDS = 3
REQUESTS = 50
FLEET_WORKERS = 4
CAMPAIGN_REQUESTS = 5
CAMPAIGN_SLICE = 24


def drive(builder, entry, requests=REQUESTS):
    """Deploy the fragile build, push ``requests`` through the entry,
    and return (scheduled events, log records, elapsed seconds)."""
    deployment = builder().deploy(seed=0, scheduler="heap")
    source = deployment.add_traffic_source(entry, name="user")
    load = ClosedLoopLoad(num_requests=requests, think_time=0.005)
    deployment.sim.process(load.driver(source), name="bench")
    start = time.perf_counter()
    deployment.sim.run()
    deployment.pipeline.flush()
    elapsed = time.perf_counter() - start
    # The heap lane's sequence counter ticks once per scheduled event.
    events = next(deployment.sim._counter)
    return events, len(deployment.store), elapsed


def test_production_app_drive_throughput(report, bench_apps):
    curves = {}
    for name, builder, entry in (
        ("socialnetwork", build_socialnetwork_app, "nginx"),
        ("hotelreservation", build_hotelreservation_app, "frontend"),
    ):
        best = None
        for _ in range(ROUNDS):
            events, records, elapsed = drive(builder, entry)
            rate = events / elapsed
            if best is None or rate > best["events_per_s"]:
                best = {
                    "events": events,
                    "records": records,
                    "elapsed_s": round(elapsed, 3),
                    "events_per_s": round(rate),
                    "requests_per_s": round(REQUESTS / elapsed, 1),
                }
        assert best["events"] > REQUESTS, "the graph did no work per request"
        assert best["records"] > 0, "nothing reached the log store"
        curves[name] = best

    bench_apps["drive"] = {
        "requests": REQUESTS,
        "rounds": ROUNDS,
        "scheduler": "heap",
        **curves,
    }
    report.add(
        "Production apps — closed-loop drive throughput",
        "\n".join(
            f"  {name}: {c['events']} events / {c['elapsed_s']:.2f}s"
            f" = {c['events_per_s']:,} ev/s"
            f" ({c['requests_per_s']} req/s, {c['records']} records)"
            for name, c in curves.items()
        ),
    )


def test_socialnetwork_campaign_wallclock(report, bench_apps):
    plan = plan_campaign(build_socialnetwork_app, seed=11, requests=CAMPAIGN_REQUESTS)
    full_size = len(plan)
    sliced = plan.limit(CAMPAIGN_SLICE)

    serial_runner = CampaignRunner(build_socialnetwork_app, workers=1, timeout=120.0)
    start = time.perf_counter()
    serial = serial_runner.run(sliced)
    serial_s = time.perf_counter() - start

    fleet_runner = CampaignRunner(
        build_socialnetwork_app, workers=FLEET_WORKERS, timeout=120.0
    )
    start = time.perf_counter()
    fleet = fleet_runner.run(sliced)
    fleet_s = time.perf_counter() - start

    # Determinism contract: the fleet changes wall-clock time, nothing else.
    assert [o.status for o in fleet.outcomes] == [o.status for o in serial.outcomes]

    bench_apps["campaign"] = {
        "app": "socialnetwork",
        "services": 28,
        "plan_recipes": full_size,
        "executed_recipes": len(sliced),
        "requests_per_recipe": CAMPAIGN_REQUESTS,
        "cpus": os.cpu_count(),
        "serial_s": round(serial_s, 3),
        "fleet_workers": FLEET_WORKERS,
        "fleet_s": round(fleet_s, 3),
        "per_recipe_s": round(serial_s / len(sliced), 3),
    }
    report.add(
        "Production apps — campaign wall clock on the 28-service socialnetwork",
        f"  {len(sliced)}/{full_size} recipes x {CAMPAIGN_REQUESTS} requests:"
        f" serial {serial_s:6.2f}s ({serial_s / len(sliced):.2f}s/recipe),"
        f" {FLEET_WORKERS} workers {fleet_s:6.2f}s",
    )
