"""Campaign engine: fleet speedup over serial execution.

The campaign runner's claim is operational, not algorithmic: when each
experiment occupies a test slot for real wall-clock time (the
live-deployment regime the paper's Gremlin operates in — faults stay
staged while traffic flows, logs settle before assertions), a fleet of
N workers should finish a recipe suite close to N times faster than a
serial loop.  This benchmark pins that claim on the 42-recipe
auto-generated campaign for the depth-3 service tree (Fig 7's largest
multi-level topology):

* **paced** runs model the live regime with a 0.3 s wall-clock floor
  per recipe (``pacing``) — the fleet must be >= 2x faster at 4 workers;
* **unpaced** runs are recorded for transparency: the simulated data
  plane is pure CPU under the GIL, so on this container (``cpus`` in
  the JSON) thread workers cannot speed up compute-bound campaigns.

The second experiment pins the ``processes`` backend: spawn-isolated
workers overlap paced floors exactly like threads do, and — unlike
threads — can scale the *unpaced* CPU-bound suite across cores, which
is the whole point of the backend.  The cross-core assertion is gated
on the machine actually having cores (``cpus >= 4``); on smaller
containers the curves are recorded but only equivalence is asserted.

The third and fourth experiments pin the dispatch optimizations: a
warm :class:`ProcessPool` amortizes the interpreter-spawn tax across
waves of jobs, batched dispatch cuts pickle/pipe round-trips, and
campaign sharding splits a plan into independent concurrently-run
partitions whose merged result is indistinguishable from an unsharded
run.

All experiments re-assert the determinism contract where it matters
most: every backend/worker/batch/shard combination must produce
identical per-recipe statuses.

Numbers land in ``BENCH_campaign.json`` via the session-finish hook in
``conftest.py``.
"""

import os
import pickle
import time

from repro.apps import build_socialnetwork_app, build_tree_app
from repro.campaign import CampaignRunner, ProcessPool, ProcessWorkerSpec, plan_campaign
from repro.campaign.runner import _crashed_outcome, _process_execute
from repro.cli import build_tree3_app

FLEET_WORKERS = 4
PACING = 0.3
REQUESTS = 10

#: The cross-core claim (processes vs threads on the CPU-bound suite)
#: targets >= 3x at 4 cores; the hard gate is 2x to absorb scheduler
#: noise on shared runners.
PROCESS_SPEEDUP_TARGET = 3.0
PROCESS_SPEEDUP_GATE = 2.0


def tree3():
    return build_tree_app(3)


def run_campaign(plan, *, workers, pacing, backend="threads"):
    # build_tree3_app is module-level in repro.cli, so the factory
    # pickles by reference into spawn workers.
    runner = CampaignRunner(
        build_tree3_app, workers=workers, pacing=pacing, timeout=120.0, backend=backend
    )
    start = time.perf_counter()
    result = runner.run(plan)
    return result, time.perf_counter() - start


def test_fleet_speedup_on_paced_campaign(report, bench_campaign):
    plan = plan_campaign(tree3, seed=20, requests=REQUESTS)
    assert len(plan) >= 40, "speedup claim is about campaign-sized suites"

    serial_result, serial_s = run_campaign(plan, workers=1, pacing=PACING)
    fleet_result, fleet_s = run_campaign(plan, workers=FLEET_WORKERS, pacing=PACING)

    # Determinism contract: the fleet changes wall-clock time, nothing else.
    assert [o.status for o in serial_result.outcomes] == [
        o.status for o in fleet_result.outcomes
    ]

    _, unpaced_serial_s = run_campaign(plan, workers=1, pacing=0.0)
    _, unpaced_fleet_s = run_campaign(plan, workers=FLEET_WORKERS, pacing=0.0)

    speedup = serial_s / fleet_s
    bench_campaign.update(
        {
            "app": "tree3",
            "recipes": len(plan),
            "requests_per_recipe": REQUESTS,
            "workers": FLEET_WORKERS,
            "pacing_s": PACING,
            "cpus": os.cpu_count(),
            "paced": {
                "serial_s": round(serial_s, 3),
                "fleet_s": round(fleet_s, 3),
                "speedup": round(speedup, 2),
            },
            "unpaced": {
                "serial_s": round(unpaced_serial_s, 3),
                "fleet_s": round(unpaced_fleet_s, 3),
                "speedup": round(unpaced_serial_s / unpaced_fleet_s, 2),
            },
        }
    )
    report.add(
        "Campaign engine — fleet speedup on the 42-recipe tree3 suite",
        f"  paced ({PACING:.1f}s/recipe floor): serial {serial_s:6.2f}s,"
        f" {FLEET_WORKERS} workers {fleet_s:6.2f}s -> {speedup:.2f}x\n"
        f"  unpaced (CPU-bound, {os.cpu_count()} cpu): serial {unpaced_serial_s:6.2f}s,"
        f" {FLEET_WORKERS} workers {unpaced_fleet_s:6.2f}s"
        f" -> {unpaced_serial_s / unpaced_fleet_s:.2f}x",
    )

    assert speedup >= 2.0, (
        f"fleet of {FLEET_WORKERS} should halve a paced campaign:"
        f" serial {serial_s:.2f}s vs fleet {fleet_s:.2f}s ({speedup:.2f}x)"
    )


def test_process_backend_scaling(report, bench_campaign):
    plan = plan_campaign(tree3, seed=20, requests=REQUESTS)
    cpus = os.cpu_count() or 1

    serial_result, serial_s = run_campaign(plan, workers=1, pacing=PACING)
    paced_result, paced_s = run_campaign(
        plan, workers=FLEET_WORKERS, pacing=PACING, backend="processes"
    )
    threads_result, threads_s = run_campaign(plan, workers=FLEET_WORKERS, pacing=0.0)
    procs_result, procs_s = run_campaign(
        plan, workers=FLEET_WORKERS, pacing=0.0, backend="processes"
    )

    # Determinism contract: the backend changes wall-clock time, nothing
    # else — statuses agree across every backend/worker combination.
    statuses = [o.status for o in serial_result.outcomes]
    for other in (paced_result, threads_result, procs_result):
        assert [o.status for o in other.outcomes] == statuses

    paced_speedup = serial_s / paced_s
    vs_threads = threads_s / procs_s
    bench_campaign["backend_scaling"] = {
        "workers": FLEET_WORKERS,
        "cpus": cpus,
        "paced": {
            "serial_s": round(serial_s, 3),
            "processes_s": round(paced_s, 3),
            "speedup": round(paced_speedup, 2),
        },
        "unpaced": {
            "threads_s": round(threads_s, 3),
            "processes_s": round(procs_s, 3),
            "processes_vs_threads": round(vs_threads, 2),
            "target_at_4_cores": PROCESS_SPEEDUP_TARGET,
        },
    }
    report.add(
        "Campaign engine — processes backend on the 42-recipe tree3 suite",
        f"  paced ({PACING:.1f}s/recipe floor): serial {serial_s:6.2f}s,"
        f" {FLEET_WORKERS} processes {paced_s:6.2f}s -> {paced_speedup:.2f}x\n"
        f"  unpaced (CPU-bound, {cpus} cpu): {FLEET_WORKERS} threads"
        f" {threads_s:6.2f}s, {FLEET_WORKERS} processes {procs_s:6.2f}s"
        f" -> {vs_threads:.2f}x",
    )

    # Process workers overlap pacing floors like threads do, but their
    # interpreter start-up is real CPU; on a 1-cpu container that
    # serializes against the suite itself, so the floor-overlap claim
    # needs at least a second core to be testable.
    if cpus >= 2:
        assert paced_speedup >= 2.0, (
            f"{FLEET_WORKERS} process workers should halve a paced campaign:"
            f" serial {serial_s:.2f}s vs {paced_s:.2f}s ({paced_speedup:.2f}x)"
        )
    # The cross-core claim needs actual cores to be testable.
    if cpus >= 4:
        assert vs_threads >= PROCESS_SPEEDUP_GATE, (
            f"on {cpus} cpus the processes backend should beat threads on"
            f" the CPU-bound suite: threads {threads_s:.2f}s vs processes"
            f" {procs_s:.2f}s ({vs_threads:.2f}x, target"
            f" {PROCESS_SPEEDUP_TARGET}x, gate {PROCESS_SPEEDUP_GATE}x)"
        )


def _executor_spec():
    """Process-worker spec running real planned recipes, exactly as the
    campaign runner builds it (module-level factory -> picklable)."""
    return ProcessWorkerSpec(
        target=_process_execute,
        context={
            "factory": build_tree3_app,
            "timeout": 120.0,
            "pacing": 0.0,
            "slice_virtual": 60.0,
        },
        on_crash=_crashed_outcome,
    )


def test_warm_pool_and_batched_dispatch(report, bench_campaign):
    """Warm workers amortize the spawn tax across job waves; batching
    amortizes pickle/pipe round-trips — neither may change a result."""
    cpus = os.cpu_count() or 1
    plan = plan_campaign(tree3, seed=20, requests=REQUESTS).limit(8)
    jobs = [(entry, None) for entry in plan.entries]
    waves = 3

    # Cold: a fresh pool — freshly spawned interpreters — per wave.
    start = time.perf_counter()
    cold_waves = []
    for _ in range(waves):
        with ProcessPool(_executor_spec(), size=2) as pool:
            cold_waves.append(pool.run(jobs))
    cold_s = time.perf_counter() - start

    # Warm: one pool held open across the same waves.
    start = time.perf_counter()
    warm_waves = []
    with ProcessPool(_executor_spec(), size=2) as pool:
        for _ in range(waves):
            warm_waves.append(pool.run(jobs))
    warm_s = time.perf_counter() - start

    # Batched: the same jobs, four recipes per dispatch.
    start = time.perf_counter()
    with ProcessPool(_executor_spec(), size=2, batch_size=4) as pool:
        batched = pool.run(jobs)
    batched_s = time.perf_counter() - start

    statuses = [cold_waves[0][position]["status"] for position in range(len(jobs))]
    for docs in cold_waves + warm_waves + [batched]:
        assert [docs[position]["status"] for position in range(len(jobs))] == statuses

    bench_campaign["warm_and_batched"] = {
        "recipes_per_wave": len(jobs),
        "waves": waves,
        "workers": 2,
        "cpus": cpus,
        "cold_pools_s": round(cold_s, 3),
        "warm_pool_s": round(warm_s, 3),
        "warm_speedup": round(cold_s / warm_s, 2),
        "batched_wave_s": round(batched_s, 3),
        "batch_size": 4,
    }
    report.add(
        "Campaign engine — warm workers and batched dispatch",
        f"  {waves} waves x {len(jobs)} recipes: cold pools {cold_s:6.2f}s,"
        f" one warm pool {warm_s:6.2f}s -> {cold_s / warm_s:.2f}x\n"
        f"  one wave, batch_size=4: {batched_s:6.2f}s",
    )

    # The spawn tax the warm pool saves is real CPU on any machine, but
    # on a loaded single-core container the measurement drowns in
    # scheduler noise, so the inequality is only gated with cores.
    if cpus >= 2:
        assert warm_s < cold_s, (
            f"a warm pool should beat respawning per wave: warm {warm_s:.2f}s"
            f" vs cold {cold_s:.2f}s"
        )


def _result_doc_target(worker_id, job, context):
    """Result-path probe: no compute, just ship the heavy doc back."""
    return context["doc"]


def _crashed_doc(job, detail):  # pragma: no cover - fleet contract only
    return {"status": "error", "detail": detail}


def test_result_transport_curves(report, bench_campaign):
    """Result-path throughput: pickle pipe vs shared-memory slabs.

    The probe isolates exactly what the transport knob changes: workers
    return a real payload-heavy socialnetwork outcome doc (per-request
    latency lists, metrics snapshot, attributions — the PR 9 regime
    where result serialization dominates fleet overhead) with zero
    compute per job.  Rates are best-of-3 per configuration because a
    1-cpu container schedules the 21 KB-pipe lane very noisily; the
    cross-core gate (shm >= 1.3x pickle at 4 workers) only runs with
    real cores, but the single-cpu numbers are recorded regardless.
    """
    cpus = os.cpu_count() or 1
    plan = plan_campaign(build_socialnetwork_app, seed=0, requests=12).limit(1)
    doc = (
        CampaignRunner(build_socialnetwork_app, workers=1, timeout=120.0)
        .run(plan)
        .outcomes[0]
        .to_dict()
    )
    jobs = [(str(index), index) for index in range(400)]
    repeats = 3
    batch_size = 8

    curves: dict = {}
    for transport in ("pickle", "shm"):
        for workers in (1, FLEET_WORKERS):
            spec = ProcessWorkerSpec(
                target=_result_doc_target,
                context={"doc": doc},
                on_crash=_crashed_doc,
            )
            with ProcessPool(
                spec, size=workers, batch_size=batch_size, result_transport=transport
            ) as pool:
                warm = pool.run(jobs[:16])
                # Transport equivalence, end to end: the decoded doc is
                # the doc, whatever lane carried it.
                assert all(warm[key] == doc for key in warm), transport
                best_s = min(
                    _timed(pool, jobs) for _ in range(repeats)
                )
            curves[f"{transport}_w{workers}"] = {
                "results_per_s": round(len(jobs) / best_s, 1),
                "us_per_result": round(best_s / len(jobs) * 1e6, 1),
            }

    speedup_w1 = (
        curves["shm_w1"]["results_per_s"] / curves["pickle_w1"]["results_per_s"]
    )
    speedup_w4 = (
        curves[f"shm_w{FLEET_WORKERS}"]["results_per_s"]
        / curves[f"pickle_w{FLEET_WORKERS}"]["results_per_s"]
    )
    bench_campaign["result_transport"] = {
        "app": "socialnetwork",
        "doc_bytes_pickled": len(pickle.dumps(doc, protocol=-1)),
        "jobs": len(jobs),
        "batch_size": batch_size,
        "repeats_best_of": repeats,
        "cpus": cpus,
        "curves": curves,
        "shm_vs_pickle_w1": round(speedup_w1, 2),
        f"shm_vs_pickle_w{FLEET_WORKERS}": round(speedup_w4, 2),
        "gate_at_4_cpus": 1.3,
    }
    report.add(
        "Campaign engine — result transport on socialnetwork-class payloads",
        f"  w1: pickle {curves['pickle_w1']['results_per_s']:7.0f}/s,"
        f" shm {curves['shm_w1']['results_per_s']:7.0f}/s -> {speedup_w1:.2f}x\n"
        f"  w{FLEET_WORKERS}: pickle"
        f" {curves[f'pickle_w{FLEET_WORKERS}']['results_per_s']:7.0f}/s,"
        f" shm {curves[f'shm_w{FLEET_WORKERS}']['results_per_s']:7.0f}/s"
        f" -> {speedup_w4:.2f}x ({cpus} cpu)",
    )

    # The result-path claim needs real cores: at 1 cpu both lanes
    # serialize against each other and the numbers above are recorded
    # for transparency only.
    if cpus >= 4:
        assert speedup_w4 >= 1.3, (
            f"shm transport should beat pickle by >= 1.3x at"
            f" {FLEET_WORKERS} workers on {cpus} cpus: {speedup_w4:.2f}x"
        )


def _timed(pool, jobs):
    start = time.perf_counter()
    results = pool.run(jobs)
    elapsed = time.perf_counter() - start
    assert len(results) == len(jobs)
    return elapsed


def test_sharded_campaign_matches_unsharded(report, bench_campaign):
    """Sharding splits the plan into independent concurrent partitions;
    the merged result must be indistinguishable from the plain run."""
    cpus = os.cpu_count() or 1
    plan = plan_campaign(tree3, seed=20, requests=REQUESTS)

    baseline, baseline_s = run_campaign(plan, workers=2, pacing=0.0)
    statuses = [o.status for o in baseline.outcomes]

    curve = {}
    for shards in (2, 4):
        runner = CampaignRunner(build_tree3_app, workers=2, timeout=120.0)
        start = time.perf_counter()
        sharded = runner.run_sharded(plan, shards=shards)
        elapsed = time.perf_counter() - start
        assert [o.status for o in sharded.outcomes] == statuses
        assert sharded.scorecard().text() == baseline.scorecard().text()
        curve[str(shards)] = round(elapsed, 3)

    bench_campaign["sharding"] = {
        "recipes": len(plan),
        "workers": 2,
        "cpus": cpus,
        "unsharded_s": round(baseline_s, 3),
        "sharded_s": curve,
    }
    report.add(
        "Campaign engine — sharded execution on the tree3 suite",
        f"  unsharded (2 workers): {baseline_s:6.2f}s; "
        + ", ".join(f"{n} shards: {s:6.2f}s" for n, s in curve.items()),
    )
