"""Campaign engine: fleet speedup over serial execution.

The campaign runner's claim is operational, not algorithmic: when each
experiment occupies a test slot for real wall-clock time (the
live-deployment regime the paper's Gremlin operates in — faults stay
staged while traffic flows, logs settle before assertions), a fleet of
N workers should finish a recipe suite close to N times faster than a
serial loop.  This benchmark pins that claim on the 42-recipe
auto-generated campaign for the depth-3 service tree (Fig 7's largest
multi-level topology):

* **paced** runs model the live regime with a 0.3 s wall-clock floor
  per recipe (``pacing``) — the fleet must be >= 2x faster at 4 workers;
* **unpaced** runs are recorded for transparency: the simulated data
  plane is pure CPU under the GIL, so on this container (``cpus`` in
  the JSON) thread workers cannot speed up compute-bound campaigns.

The benchmark also re-asserts the determinism contract where it
matters most: the paced fleet and the serial loop must produce
identical per-recipe statuses.

Numbers land in ``BENCH_campaign.json`` via the session-finish hook in
``conftest.py``.
"""

import os
import time

from repro.apps import build_tree_app
from repro.campaign import CampaignRunner, plan_campaign

FLEET_WORKERS = 4
PACING = 0.3
REQUESTS = 10


def tree3():
    return build_tree_app(3)


def run_campaign(plan, *, workers, pacing):
    runner = CampaignRunner(tree3, workers=workers, pacing=pacing, timeout=120.0)
    start = time.perf_counter()
    result = runner.run(plan)
    return result, time.perf_counter() - start


def test_fleet_speedup_on_paced_campaign(report, bench_campaign):
    plan = plan_campaign(tree3, seed=20, requests=REQUESTS)
    assert len(plan) >= 40, "speedup claim is about campaign-sized suites"

    serial_result, serial_s = run_campaign(plan, workers=1, pacing=PACING)
    fleet_result, fleet_s = run_campaign(plan, workers=FLEET_WORKERS, pacing=PACING)

    # Determinism contract: the fleet changes wall-clock time, nothing else.
    assert [o.status for o in serial_result.outcomes] == [
        o.status for o in fleet_result.outcomes
    ]

    _, unpaced_serial_s = run_campaign(plan, workers=1, pacing=0.0)
    _, unpaced_fleet_s = run_campaign(plan, workers=FLEET_WORKERS, pacing=0.0)

    speedup = serial_s / fleet_s
    bench_campaign.update(
        {
            "app": "tree3",
            "recipes": len(plan),
            "requests_per_recipe": REQUESTS,
            "workers": FLEET_WORKERS,
            "pacing_s": PACING,
            "cpus": os.cpu_count(),
            "paced": {
                "serial_s": round(serial_s, 3),
                "fleet_s": round(fleet_s, 3),
                "speedup": round(speedup, 2),
            },
            "unpaced": {
                "serial_s": round(unpaced_serial_s, 3),
                "fleet_s": round(unpaced_fleet_s, 3),
                "speedup": round(unpaced_serial_s / unpaced_fleet_s, 2),
            },
        }
    )
    report.add(
        "Campaign engine — fleet speedup on the 42-recipe tree3 suite",
        f"  paced ({PACING:.1f}s/recipe floor): serial {serial_s:6.2f}s,"
        f" {FLEET_WORKERS} workers {fleet_s:6.2f}s -> {speedup:.2f}x\n"
        f"  unpaced (CPU-bound, {os.cpu_count()} cpu): serial {unpaced_serial_s:6.2f}s,"
        f" {FLEET_WORKERS} workers {unpaced_fleet_s:6.2f}s"
        f" -> {unpaced_serial_s / unpaced_fleet_s:.2f}x",
    )

    assert speedup >= 2.0, (
        f"fleet of {FLEET_WORKERS} should halve a paced campaign:"
        f" serial {serial_s:.2f}s vs fleet {fleet_s:.2f}s ({speedup:.2f}x)"
    )
