"""Figure 7: time to orchestrate an outage and run assertions vs. app size.

Paper: "We setup an outage for different application graphs ... that
impacts all services (for consistency, we use the Delay fault).  We
then injected 100 test requests into the system, followed by execution
of an assertion for every service in the system.  Figure 7 shows the
time to execute a test as a function of the number of services ...
broken up into two components: failure orchestration, and assertions.
... Even counting the time to inject 100 requests, the test was
completed in under one second."

Reproduced shape: both components grow roughly linearly with service
count and remain far below a second for the 31-service tree.  These
are *wall-clock* measurements of the real control-plane code (rule
serialization, agent programming, log queries, assertion evaluation),
exactly what the paper measures for its own implementation.
"""

import time

import pytest

from repro.apps import TREE_ROOT, build_tree_app, tree_service_names
from repro.core import DelayCalls, Gremlin, HasTimeouts
from repro.core.orchestrator import FailureOrchestrator
from repro.core.translator import RecipeTranslator
from repro.loadgen import ClosedLoopLoad

DEPTHS = [0, 1, 2, 3, 4]  # 1, 3, 7, 15, 31 services

_series: dict[int, dict[str, float]] = {}


def run_experiment(depth: int) -> dict[str, float]:
    """One full Fig-7 test; returns the timing split."""
    deployment = build_tree_app(depth).deploy(seed=7)
    source = deployment.add_traffic_source(TREE_ROOT)
    gremlin = Gremlin(deployment)
    names = tree_service_names(depth)

    # Delay fault on every edge of the tree (impacts all services).
    scenarios = [
        DelayCalls(caller, callee, interval="5ms")
        for caller, callee in deployment.graph.edges()
        if caller in names and callee in names
    ]

    orchestration = 0.0
    if scenarios:
        start = time.perf_counter()
        rules = RecipeTranslator(deployment.graph).translate(scenarios)
        gremlin.orchestrator.apply(rules)
        orchestration = time.perf_counter() - start

    ClosedLoopLoad(num_requests=100).run(source)

    # One assertion per service in the system.
    start = time.perf_counter()
    for name in names:
        HasTimeouts(name, "10s").run(deployment.store)
    assertion = time.perf_counter() - start

    return {
        "services": len(names),
        "orchestration_s": orchestration,
        "assertion_s": assertion,
    }


@pytest.mark.parametrize("depth", DEPTHS)
def test_fig7_orchestration_and_assertion_time(benchmark, report, depth):
    result = benchmark.pedantic(run_experiment, args=(depth,), rounds=3, iterations=1)
    services = int(result["services"])
    _series[services] = result
    # Paper shape: the whole control-plane side stays far under 1 s.
    assert result["orchestration_s"] < 1.0
    assert result["assertion_s"] < 1.0
    if services == max(2 ** (d + 1) - 1 for d in DEPTHS):
        rows = "\n".join(
            f"  {count:>3} services: orchestration {values['orchestration_s'] * 1e3:7.2f} ms,"
            f" assertions {values['assertion_s'] * 1e3:7.2f} ms"
            for count, values in sorted(_series.items())
        )
        report.add(
            "Fig 7 — orchestration & assertion time vs number of services",
            rows
            + "\n  paper: grows with service count, total well under 1 s -> reproduced",
        )
