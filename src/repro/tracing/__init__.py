"""Request-ID generation and propagation (the Dapper/Zipkin stand-in).

The paper (Section 4.1) relies on the common practice of tagging every
user request with a globally unique ID that each microservice forwards
downstream; Gremlin agents match rule patterns against this ID so fault
injection can be confined to test traffic (e.g. IDs of the form
``test-*``) while production flows pass untouched.
"""

from repro.tracing.context import (
    RequestIdGenerator,
    SpanIdGenerator,
    TEST_ID_PREFIX,
    TRACE_HEADERS,
    is_test_request_id,
    propagate,
)

__all__ = [
    "RequestIdGenerator",
    "SpanIdGenerator",
    "TEST_ID_PREFIX",
    "TRACE_HEADERS",
    "is_test_request_id",
    "propagate",
]
