"""Request-ID and span-ID utilities.

IDs are deterministic per generator instance (seeded counter + random
suffix) so simulation runs are reproducible, yet unique across a run.
"""

from __future__ import annotations

import itertools

from repro.http.headers import REQUEST_ID_HEADER, SPAN_ID_HEADER
from repro.http.message import HttpRequest

__all__ = [
    "TEST_ID_PREFIX",
    "TRACE_HEADERS",
    "RequestIdGenerator",
    "SpanIdGenerator",
    "is_test_request_id",
    "propagate",
]

#: Headers a well-behaved service copies from its inbound request onto
#: every outbound call it makes on that request's behalf: the request
#: ID (trace identity) and the span ID of the enclosing call (so the
#: next hop's sidecar records it as the parent span).
TRACE_HEADERS = (REQUEST_ID_HEADER, SPAN_ID_HEADER)

#: Prefix used for synthetic test traffic, matching the paper's
#: ``Pattern='test-*'`` rule examples.
TEST_ID_PREFIX = "test-"


class RequestIdGenerator:
    """Mints unique request IDs.

    ``prefix`` distinguishes traffic classes: ``test-`` for synthetic
    load (the flows Gremlin injects faults on) versus e.g. ``user-``
    for production-like background traffic that must pass unharmed.
    """

    def __init__(self, prefix: str = TEST_ID_PREFIX, start: int = 1) -> None:
        self.prefix = prefix
        self._counter = itertools.count(start)

    def next_id(self) -> str:
        """Return the next unique request ID, e.g. ``"test-17"``."""
        return f"{self.prefix}{next(self._counter)}"

    def __repr__(self) -> str:
        return f"RequestIdGenerator(prefix={self.prefix!r})"


class SpanIdGenerator:
    """Mints span IDs unique within one deployment.

    ``scope`` names the minting site — by convention the sidecar
    agent's owner instance (e.g. ``"svc-1-0"``) — so IDs minted by
    different agents can never collide and a span ID alone tells an
    operator which sidecar observed the call.
    """

    def __init__(self, scope: str, start: int = 1) -> None:
        self.scope = scope
        self._counter = itertools.count(start)

    def next_id(self) -> str:
        """Return the next unique span ID, e.g. ``"svc-1-0#3"``."""
        return f"{self.scope}#{next(self._counter)}"

    def __repr__(self) -> str:
        return f"SpanIdGenerator(scope={self.scope!r})"


def is_test_request_id(request_id: str | None) -> bool:
    """True if the ID marks synthetic test traffic."""
    return request_id is not None and request_id.startswith(TEST_ID_PREFIX)


def propagate(incoming: HttpRequest, outgoing: HttpRequest) -> HttpRequest:
    """Copy the trace headers from an inbound request onto an outbound one.

    This is what every well-behaved microservice does with trace
    headers; the reproduced service runtime calls it on each downstream
    call so a user request's flow is traceable end to end.  Both the
    request ID and the enclosing span ID propagate — the latter is how
    the next hop's sidecar knows its parent span, turning per-edge
    observations into a causal tree.  Returns ``outgoing`` for
    chaining.
    """
    for header in TRACE_HEADERS:
        value = incoming.headers.get(header)
        if value is not None:
            outgoing.headers[header] = value
    return outgoing
