"""Request-ID utilities.

IDs are deterministic per generator instance (seeded counter + random
suffix) so simulation runs are reproducible, yet unique across a run.
"""

from __future__ import annotations

import itertools

from repro.http.headers import REQUEST_ID_HEADER
from repro.http.message import HttpRequest

__all__ = ["TEST_ID_PREFIX", "RequestIdGenerator", "is_test_request_id", "propagate"]

#: Prefix used for synthetic test traffic, matching the paper's
#: ``Pattern='test-*'`` rule examples.
TEST_ID_PREFIX = "test-"


class RequestIdGenerator:
    """Mints unique request IDs.

    ``prefix`` distinguishes traffic classes: ``test-`` for synthetic
    load (the flows Gremlin injects faults on) versus e.g. ``user-``
    for production-like background traffic that must pass unharmed.
    """

    def __init__(self, prefix: str = TEST_ID_PREFIX, start: int = 1) -> None:
        self.prefix = prefix
        self._counter = itertools.count(start)

    def next_id(self) -> str:
        """Return the next unique request ID, e.g. ``"test-17"``."""
        return f"{self.prefix}{next(self._counter)}"

    def __repr__(self) -> str:
        return f"RequestIdGenerator(prefix={self.prefix!r})"


def is_test_request_id(request_id: str | None) -> bool:
    """True if the ID marks synthetic test traffic."""
    return request_id is not None and request_id.startswith(TEST_ID_PREFIX)


def propagate(incoming: HttpRequest, outgoing: HttpRequest) -> HttpRequest:
    """Copy the request ID from an inbound request onto an outbound one.

    This is what every well-behaved microservice does with trace
    headers; the reproduced service runtime calls it on each downstream
    call so a user request's flow is traceable end to end.  Returns
    ``outgoing`` for chaining.
    """
    rid = incoming.headers.get(REQUEST_ID_HEADER)
    if rid is not None:
        outgoing.headers[REQUEST_ID_HEADER] = rid
    return outgoing
