"""Binary-tree applications for the scaling benchmarks (paper Fig 7).

Paper Section 7.2: "we packaged a naive Python-based application along
with the Gremlin agent into a Docker container.  We then deployed the
containers in different configurations by constructing binary trees of
various depths and using them as the application graph."

``build_tree_app(depth)`` builds a complete binary tree of services:
depth 0 is a single service; depth 4 is the paper's largest, 31
services.  Internal nodes call both children sequentially; leaves
answer directly.
"""

from __future__ import annotations

from repro.microservice.app import Application
from repro.microservice.handlers import fanout_handler
from repro.microservice.resilience.policy import PolicySpec
from repro.microservice.service import ServiceDefinition

__all__ = ["build_tree_app", "tree_service_names", "TREE_ROOT"]

#: Name of the root service in every tree app.
TREE_ROOT = "svc-0"


def tree_service_names(depth: int) -> list[str]:
    """Names of all services in a depth-``depth`` tree (heap order)."""
    if depth < 0:
        raise ValueError(f"depth must be >= 0, got {depth}")
    count = 2 ** (depth + 1) - 1
    return [f"svc-{index}" for index in range(count)]


def build_tree_app(
    depth: int,
    service_time: float = 0.001,
    client_policy: PolicySpec | None = None,
) -> Application:
    """A complete binary tree of services, root ``svc-0``.

    Node ``svc-i`` calls ``svc-(2i+1)`` and ``svc-(2i+2)``.  The number
    of services is ``2**(depth+1) - 1``: depths 0..4 give the paper's
    1, 3, 7, 15, 31 configurations.
    """
    names = tree_service_names(depth)
    count = len(names)
    if client_policy is None:
        client_policy = PolicySpec(timeout=30.0)
    app = Application(f"tree-depth-{depth}")
    for index, name in enumerate(names):
        left = 2 * index + 1
        right = 2 * index + 2
        children = [names[child] for child in (left, right) if child < count]
        if children:
            app.add_service(
                ServiceDefinition(
                    name,
                    handler=fanout_handler(children, partial_ok=False),
                    dependencies={child: client_policy for child in children},
                    service_time=service_time,
                )
            )
        else:
            app.add_service(ServiceDefinition(name, service_time=service_time))
    return app
