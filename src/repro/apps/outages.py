"""Topologies and recipes recreating the Table 1 outages.

Every outage in the paper's Table 1 (and the two extra postmortems of
Section 5) is modelled as an application topology plus the Gremlin
recipe that *would have caught the bug before production did*.  Each
builder takes ``hardened`` so the same recipe demonstrably fails
against the as-deployed system and passes once the missing pattern is
added — the "feedback-driven" loop the paper argues for.

===================  ==========================================================
Outage               Missing pattern reproduced
===================  ==========================================================
Parse.ly 2015 /      Datastore crash percolates into the message bus: bus
Stackdriver 2013     workers block on the dead store (no timeout / breaker),
                     queues fill, publishers block.
CircleCI 2015 /      Database overload throttles requests; dependents without
BBC 2014 / Joyent    breakers keep hammering and time out completely.
Spotify 2013         A degraded core service drags every caller's latency up
                     because callers lack timeouts.
Twilio 2013          Datastore failure on the *response* path makes the billing
                     gateway re-send charges that already applied — bounded
                     retries without idempotency keys double-bill customers.
===================  ==========================================================
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.apps.hotelreservation import build_hotelreservation_app
from repro.apps.socialnetwork import build_socialnetwork_app
from repro.core.patterns import (
    HasBoundedRetries,
    HasCircuitBreaker,
    HasTimeouts,
    PatternCheck,
)
from repro.core.recipe import Recipe
from repro.core.scenarios import Crash, Degrade, Overload
from repro.errors import HttpError, NetworkError
from repro.http.message import HttpRequest, HttpResponse
from repro.microservice.app import Application
from repro.microservice.handlers import fanout_handler
from repro.microservice.resilience.policy import PolicySpec
from repro.microservice.service import ServiceContext, ServiceDefinition

__all__ = [
    "build_messagebus_app",
    "messagebus_recipe",
    "build_database_app",
    "database_overload_recipe",
    "build_coreservice_app",
    "coreservice_recipe",
    "build_billing_app",
    "billing_recipe",
    "OUTAGE_SUITE",
    "SeededBug",
    "SeededBugManifest",
    "SEEDED_BUG_SUITE",
    "build_deepfanout_app",
    "build_retrystorm_app",
    "build_stuckbreaker_app",
    "build_socialnetwork_app",
    "build_hotelreservation_app",
]


# ---------------------------------------------------------------------------
# Parse.ly 2015 / Stackdriver 2013: cascading failure via message bus
# ---------------------------------------------------------------------------


def build_messagebus_app(hardened: bool = False) -> Application:
    """Publishers -> message bus -> Cassandra-like datastore.

    The bus forwards every published event to the datastore.  In the
    fragile build its forwarding client has no timeout and no breaker
    and the bus has a small worker pool: when the datastore crashes or
    hangs, every bus worker blocks on it, the pool saturates, and the
    *publishers* start blocking — the cascading failure of the
    Stackdriver postmortem.
    """
    if hardened:
        store_policy = PolicySpec(
            timeout=0.4,
            max_retries=1,
            breaker_failure_threshold=5,
            breaker_recovery_timeout=10.0,
            fallback=lambda request: HttpResponse(202, body=b"buffered for replay"),
        )
    else:
        # The as-deployed bus: no timeout, no breaker, and eager flat
        # retries.  A dead datastore therefore holds each bus worker for
        # seconds per event — the queue-filling behaviour the
        # Stackdriver postmortem describes.
        store_policy = PolicySpec(
            max_retries=20, retry_backoff_base=0.2, retry_backoff_factor=1.0
        )
    app = Application("messagebus-cascade")
    app.add_service(
        ServiceDefinition(
            "publisher",
            handler=fanout_handler(["messagebus"], partial_ok=False),
            dependencies={"messagebus": PolicySpec(timeout=5.0)},
            service_time=0.001,
        )
    )
    app.add_service(
        ServiceDefinition(
            "messagebus",
            handler=fanout_handler(["cassandra"], partial_ok=False),
            dependencies={"cassandra": store_policy},
            service_time=0.001,
            worker_pool=4,
        )
    )
    app.add_service(ServiceDefinition("cassandra", service_time=0.003))
    return app


def messagebus_recipe() -> Recipe:
    """Crash Cassandra; the bus must answer publishers in bounded time
    and stop hammering the dead store — the paper's Section 5 listing::

        Crash('cassandra')
        for s in dependents('messagebus'):
            if not HasTimeouts(s, '1s') and not HasCircuitBreaker(...):
                raise 'Will block on message bus'
    """
    return Recipe(
        name="table1/messagebus-cascade",
        scenarios=[Crash("cassandra")],
        checks=[
            HasTimeouts("messagebus", "1s"),
            HasCircuitBreaker(
                "messagebus", "cassandra", threshold=5, tdelta="5s", check_recovery=False
            ),
        ],
    )


# ---------------------------------------------------------------------------
# CircleCI 2015 / BBC 2014 / Joyent 2015: database overload
# ---------------------------------------------------------------------------


def build_database_app(hardened: bool = False, num_frontends: int = 2) -> Application:
    """N frontend services sharing one overloadable database.

    Fragile frontends have unbounded patience (no timeout, no breaker);
    hardened ones time out, stop retrying, and open a breaker with a
    cached-response fallback — the fix the BBC postmortem describes
    ("services that had not cached the database responses locally began
    timing out and eventually failed completely").
    """
    if hardened:
        db_policy = PolicySpec(
            timeout=0.5,
            max_retries=1,
            breaker_failure_threshold=5,
            breaker_recovery_timeout=10.0,
            fallback=lambda request: HttpResponse(200, body=b"cached response"),
        )
    else:
        db_policy = PolicySpec(max_retries=10, retry_backoff_base=0.001, retry_backoff_factor=1.0)
    app = Application("database-overload")
    for index in range(num_frontends):
        app.add_service(
            ServiceDefinition(
                f"frontend-{index}",
                handler=fanout_handler(["database"], partial_ok=False),
                dependencies={"database": db_policy},
                service_time=0.001,
            )
        )
    app.add_service(ServiceDefinition("database", service_time=0.004))
    return app


def database_overload_recipe(num_frontends: int = 2) -> Recipe:
    """Fully throttle the database; every dependent must back off — the
    paper's Section 5 listing for the BBC outage.

    The emulated throttle rejects all test requests (an Overload with
    ``abort_fraction=1.0``), matching the postmortem's "the database
    backend ... started to throttle requests from various services".
    Frontends with a breaker go quiet after a handful of failures;
    frontends without one keep hammering, which is what the
    HasBoundedRetries checks catch.
    """
    return Recipe(
        name="table1/database-overload",
        scenarios=[Overload("database", abort_fraction=1.0)],
        checks=[
            HasBoundedRetries(f"frontend-{index}", "database", max_tries=5, window="5s")
            for index in range(num_frontends)
        ],
    )


# ---------------------------------------------------------------------------
# Spotify 2013: degradation of a core internal service
# ---------------------------------------------------------------------------


def build_coreservice_app(hardened: bool = False) -> Application:
    """Edge services relying on one core internal service.

    The fragile edges wait indefinitely on the degraded core; hardened
    edges cap the wait at 300 ms and degrade their own answer
    gracefully instead.
    """
    if hardened:
        core_policy = PolicySpec(
            timeout=0.3,
            fallback=lambda request: HttpResponse(200, body=b"degraded mode"),
        )
    else:
        core_policy = PolicySpec.naive()
    app = Application("core-service-degradation")
    for name in ("playlists", "radio"):
        app.add_service(
            ServiceDefinition(
                name,
                handler=fanout_handler(["coreservice"], partial_ok=False),
                dependencies={"coreservice": core_policy},
                service_time=0.001,
            )
        )
    app.add_service(ServiceDefinition("coreservice", service_time=0.002))
    return app


def coreservice_recipe() -> Recipe:
    """Degrade the core service; edges must keep answering quickly."""
    return Recipe(
        name="table1/core-service-degradation",
        scenarios=[Degrade("coreservice", interval="2s")],
        checks=[
            HasTimeouts("playlists", "500ms"),
            HasTimeouts("radio", "500ms"),
        ],
    )


# ---------------------------------------------------------------------------
# Twilio 2013: duplicate billing after a datastore failure
# ---------------------------------------------------------------------------


def _billing_db_handler(idempotent: bool):
    """The billing datastore: applies charges, optionally deduplicated.

    Charges are keyed by the request ID.  The idempotent variant makes
    re-applying a charge a no-op (the actual fix from the Twilio
    postmortem); the fragile one increments the balance every time.
    """

    def handler(ctx: ServiceContext, request: HttpRequest):
        yield from ctx.work()
        charges: dict[str, int] = ctx.state.setdefault("charges", {})
        key = request.request_id or "untagged"
        if idempotent and key in charges:
            return HttpResponse(200, body=b"charge already applied")
        charges[key] = charges.get(key, 0) + 1
        return HttpResponse(200, body=b"charge applied")

    return handler


def _billing_gateway_handler(ctx: ServiceContext, request: HttpRequest):
    """The billing gateway: forwards one charge to the datastore."""
    yield from ctx.work()
    charge = HttpRequest("POST", "/charges")
    try:
        reply = yield from ctx.call("billingdb", charge, parent=request)
    except (NetworkError, HttpError):
        return HttpResponse(503, body=b"billing backend unavailable")
    return HttpResponse(reply.status, body=reply.body)


def build_billing_app(hardened: bool = False) -> Application:
    """Billing gateway -> billing datastore.

    The dangerous combination reproduced from the postmortem: eager
    retries on the gateway *plus* a non-idempotent datastore.  When the
    failure hits the **response** path (charge applied, confirmation
    lost), every retry is another real charge.  The hardened build
    keeps the retries but makes the datastore idempotent.
    """
    app = Application("billing-double-charge")
    app.add_service(
        ServiceDefinition(
            "billinggateway",
            handler=_billing_gateway_handler,
            dependencies={
                "billingdb": PolicySpec(timeout=1.0, max_retries=4, retry_backoff_base=0.010)
            },
            service_time=0.001,
        )
    )
    app.add_service(
        ServiceDefinition(
            "billingdb",
            handler=_billing_db_handler(idempotent=hardened),
            service_time=0.002,
        )
    )
    return app


def billing_recipe() -> Recipe:
    """Fail the datastore's *responses* (the charge applies, the
    confirmation is lost) and verify retries stay bounded.  The
    double-charge itself is application state the example inspects
    directly — Gremlin's role is staging the response-path failure that
    makes it reachable.
    """
    from repro.core.scenarios import AbortCalls

    return Recipe(
        name="table1/billing-double-charge",
        scenarios=[
            AbortCalls("billinggateway", "billingdb", error=503, on="response")
        ],
        checks=[
            HasBoundedRetries("billinggateway", "billingdb", max_tries=5, window="5s")
        ],
    )


#: The full Table 1 suite: (label, app builder, recipe factory).
OUTAGE_SUITE: list[tuple[str, _t.Callable[..., Application], _t.Callable[..., Recipe]]] = [
    ("parsely-stackdriver-messagebus", build_messagebus_app, messagebus_recipe),
    ("circleci-bbc-database", build_database_app, database_overload_recipe),
    ("spotify-coreservice", build_coreservice_app, coreservice_recipe),
    ("twilio-billing", build_billing_app, billing_recipe),
]


# ---------------------------------------------------------------------------
# Seeded-resilience-bug fixtures: ground truth for exploration efficacy
# ---------------------------------------------------------------------------
#
# Each app below plants exactly one known resilience bug at a known
# location, with a manifest recording which pattern check conclusively
# fails once the right fault hits the right edge.  Fault-free, every
# manifest check either passes or is inconclusive (the triggering
# failure was never exercised), so the apps double as negative
# controls.  ``hardened=True`` repairs the planted bug, turning every
# manifest check green under the same faults — the measurement
# baseline the exploration layer (:mod:`repro.explore`) and the fuzz
# efficacy benchmarks are scored against.


@dataclasses.dataclass(frozen=True)
class SeededBug:
    """Ground truth for one planted resilience bug."""

    #: Stable identifier (reported by coverage reports and benchmarks).
    bug_id: str
    #: Names of manifest checks whose *conclusive* failure evidences
    #: this bug — the bug counts as found when any of them fails
    #: non-inconclusively.
    check_names: _t.Tuple[str, ...]
    #: The (src, dst) dependency edge whose fault exposes the bug.
    trigger_edge: _t.Tuple[str, str]
    #: Fault primitive guaranteed to expose it ("abort" or "delay").
    trigger_fault: str
    #: One-line description for reports.
    summary: str


@dataclasses.dataclass(frozen=True)
class SeededBugManifest:
    """Everything needed to run and score one seeded-bug app."""

    name: str
    builder: _t.Callable[..., Application]
    entry: str
    #: Zero-arg factory producing fresh check instances (checks are
    #: rebuilt inside fleet workers, never pickled).
    checks: _t.Callable[[], _t.List[PatternCheck]]
    bugs: _t.Tuple[SeededBug, ...]
    #: Closed-loop workload shape used for every execution of this app.
    requests: int = 40
    think_time: float = 0.04
    #: Canonical Delay interval (seconds) for delay-fault coordinates.
    delay_interval: float = 2.0
    #: Fault primitives the exploration layer sweeps for this app — a
    #: subset of :data:`repro.explore.coords.FAULT_PRIMITIVES`.  The
    #: default keeps the original four-primitive vocabulary (stable
    #: schedules for the seed apps); production-scale apps opt into the
    #: gray-failure and load-shed primitives as well.
    fault_kinds: _t.Tuple[str, ...] = ("abort", "reset", "delay", "delay_short")

    def bug_ids(self) -> _t.List[str]:
        return [bug.bug_id for bug in self.bugs]

    def bugs_found(
        self, verdicts: _t.Iterable[_t.Tuple[str, bool, bool]]
    ) -> _t.Set[str]:
        """Which planted bugs a verdict list evidences.

        ``verdicts`` uses the fuzz/explore convention:
        ``(check_name, passed, inconclusive)``.  Only conclusive
        failures count — an inconclusive check means the fault never
        exercised the trigger, not that the pattern is proven absent.
        """
        failed = {
            name for name, passed, inconclusive in verdicts
            if not passed and not inconclusive
        }
        return {
            bug.bug_id
            for bug in self.bugs
            if failed.intersection(bug.check_names)
        }


def build_deepfanout_app(hardened: bool = False) -> Application:
    """Missing timeout buried two levels down a fan-out.

    ``gateway`` fans out to ``catalog`` and ``search``; ``catalog``
    fans out to ``inventory`` and ``pricing``; ``pricing`` calls
    ``quotes``.  Every edge carries a sensible timeout **except**
    ``catalog -> pricing`` — the classic review miss: the outer edges
    were hardened during an incident, the inner one was added later.
    A Delay parked on ``catalog -> pricing`` therefore drags catalog's
    (and the gateway's) end-to-end latency up unboundedly, while the
    same Delay on any other edge is absorbed by that edge's timeout.
    """
    pricing_policy = (
        PolicySpec(
            timeout=0.3,
            fallback=lambda request: HttpResponse(200, body=b"price list cached"),
        )
        if hardened
        else PolicySpec.naive()
    )
    app = Application("deepfanout-missing-timeout")
    app.add_service(
        ServiceDefinition(
            "gateway",
            handler=fanout_handler(["catalog", "search"], partial_ok=True),
            dependencies={
                # Coarse outer timeout, sized for worst-case normal
                # operation — present, but far too loose to contain an
                # inner stall (the point of the planted bug).
                "catalog": PolicySpec(timeout=8.0),
                "search": PolicySpec(timeout=1.0),
            },
            service_time=0.001,
        )
    )
    app.add_service(
        ServiceDefinition(
            "catalog",
            handler=fanout_handler(["inventory", "pricing"], partial_ok=False),
            dependencies={
                "inventory": PolicySpec(timeout=0.5),
                "pricing": pricing_policy,  # <-- the planted bug
            },
            service_time=0.001,
        )
    )
    app.add_service(
        ServiceDefinition(
            "pricing",
            handler=fanout_handler(["quotes"], partial_ok=True),
            dependencies={"quotes": PolicySpec(timeout=0.25)},
            service_time=0.001,
        )
    )
    app.add_service(ServiceDefinition("search", service_time=0.002))
    app.add_service(ServiceDefinition("inventory", service_time=0.002))
    app.add_service(ServiceDefinition("quotes", service_time=0.002))
    return app


def _deepfanout_checks() -> _t.List[PatternCheck]:
    return [
        HasTimeouts("gateway", "3s"),
        HasTimeouts("catalog", "1s"),
        HasTimeouts("search", "1s"),
        HasTimeouts("inventory", "1s"),
    ]


def build_retrystorm_app(hardened: bool = False) -> Application:
    """Retry-storm amplifier: stacked eager retries multiply load.

    ``frontend -> aggregator -> backend``, plus a well-behaved
    ``aggregator -> cache`` edge.  The fragile aggregator retries the
    backend eight times with flat, near-zero backoff and no breaker;
    the frontend retries the aggregator three times on failure.  One
    failing backend therefore sees each user request amplified into
    dozens of hammering calls — the storm.  Hardened, the aggregator
    keeps one retry but adds a breaker with a cached fallback, so a
    failing backend goes quiet after the threshold instead.
    """
    if hardened:
        backend_policy = PolicySpec(
            timeout=0.3,
            max_retries=1,
            breaker_failure_threshold=5,
            breaker_recovery_timeout=10.0,
            fallback=lambda request: HttpResponse(200, body=b"stale aggregate"),
        )
    else:
        backend_policy = PolicySpec(
            timeout=0.3,
            max_retries=8,
            retry_backoff_base=0.002,
            retry_backoff_factor=1.0,
        )
    app = Application("retrystorm-amplifier")
    app.add_service(
        ServiceDefinition(
            "frontend",
            handler=fanout_handler(["aggregator"], partial_ok=False),
            dependencies={
                "aggregator": PolicySpec(
                    timeout=5.0, max_retries=3, retry_backoff_base=0.005
                )
            },
            service_time=0.001,
        )
    )
    app.add_service(
        ServiceDefinition(
            "aggregator",
            handler=fanout_handler(["cache", "backend"], partial_ok=False),
            dependencies={
                "cache": PolicySpec(timeout=0.2),
                "backend": backend_policy,  # <-- the planted bug
            },
            service_time=0.001,
        )
    )
    app.add_service(ServiceDefinition("cache", service_time=0.001))
    app.add_service(ServiceDefinition("backend", service_time=0.003))
    return app


def _retrystorm_checks() -> _t.List[PatternCheck]:
    return [
        HasBoundedRetries(
            "aggregator", "backend", max_tries=5, failure_status=None
        ),
        HasTimeouts("cache", "1s"),
    ]


def build_stuckbreaker_app(hardened: bool = False) -> Application:
    """A circuit breaker that opens correctly but never closes.

    ``portal`` depends on ``sessions`` (breaker-protected, with a
    fallback) and ``assets``.  The fragile build's breaker has an
    effectively infinite recovery timeout — a real bug class: the
    breaker was tuned during an incident to "stop the bleeding" and
    nobody restored the recovery timer, so one blip permanently
    severs the dependency until a redeploy.  Hardened, the breaker
    half-opens after 300 ms and sends probes, re-closing once the
    dependency heals.
    """
    sessions_policy = PolicySpec(
        timeout=0.2,
        breaker_failure_threshold=4,
        breaker_recovery_timeout=0.3 if hardened else 3600.0,  # <-- the planted bug
        fallback=lambda request: HttpResponse(200, body=b"anonymous session"),
    )
    app = Application("stuckbreaker-never-closes")
    app.add_service(
        ServiceDefinition(
            "portal",
            handler=fanout_handler(["sessions", "assets"], partial_ok=True),
            dependencies={
                "sessions": sessions_policy,
                "assets": PolicySpec(timeout=0.5),
            },
            service_time=0.001,
        )
    )
    app.add_service(ServiceDefinition("sessions", service_time=0.002))
    app.add_service(ServiceDefinition("assets", service_time=0.001))
    return app


def _stuckbreaker_checks() -> _t.List[PatternCheck]:
    return [
        HasCircuitBreaker(
            "portal",
            "sessions",
            threshold=4,
            tdelta="250ms",
            check_recovery=True,
            recovery_window="1s",
        ),
        HasTimeouts("assets", "1s"),
    ]


def _socialnetwork_checks() -> _t.List[PatternCheck]:
    return [
        HasBoundedRetries(
            "post-storage", "post-store", max_tries=5, failure_status=None
        ),
        HasTimeouts("social-graph", "1s"),
        HasTimeouts("media-service", "1s"),
    ]


def _hotelreservation_checks() -> _t.List[PatternCheck]:
    return [
        HasBoundedRetries("rate", "rate-store", max_tries=5, failure_status=None),
        HasTimeouts("reservation", "1s"),
        HasTimeouts("profile", "1s"),
    ]


#: Fault vocabulary the production-scale apps opt into: the original
#: four plus the gray-failure response stall and the load-shed 429.
_FULL_FAULT_KINDS: _t.Tuple[str, ...] = (
    "abort", "reset", "delay", "delay_short", "gray", "exhaust",
)


#: Registry of the seeded-bug fixtures, keyed by app name.  Module
#: level so fleet process workers can rebuild apps and checks from a
#: plain app-name string instead of pickling closures.
SEEDED_BUG_SUITE: _t.Dict[str, SeededBugManifest] = {
    manifest.name: manifest
    for manifest in (
        SeededBugManifest(
            name="deepfanout",
            builder=build_deepfanout_app,
            entry="gateway",
            checks=_deepfanout_checks,
            bugs=(
                SeededBug(
                    bug_id="deepfanout/missing-timeout",
                    check_names=(
                        "HasTimeouts(catalog, 1s)",
                        "HasTimeouts(gateway, 3s)",
                    ),
                    trigger_edge=("catalog", "pricing"),
                    trigger_fault="delay",
                    summary=(
                        "catalog -> pricing has no timeout; a Delay on that"
                        " edge stalls catalog (and the gateway) unboundedly"
                    ),
                ),
            ),
        ),
        SeededBugManifest(
            name="retrystorm",
            builder=build_retrystorm_app,
            entry="frontend",
            checks=_retrystorm_checks,
            bugs=(
                SeededBug(
                    bug_id="retrystorm/unbounded-retries",
                    check_names=("HasBoundedRetries(aggregator, backend, 5)",),
                    trigger_edge=("aggregator", "backend"),
                    trigger_fault="abort",
                    summary=(
                        "aggregator retries a failing backend 8x with flat"
                        " backoff and no breaker; frontend retries multiply"
                        " the hammering further"
                    ),
                ),
            ),
        ),
        SeededBugManifest(
            name="stuckbreaker",
            builder=build_stuckbreaker_app,
            entry="portal",
            checks=_stuckbreaker_checks,
            bugs=(
                SeededBug(
                    bug_id="stuckbreaker/never-closes",
                    check_names=("HasCircuitBreaker(portal, sessions, 4, 0.25s)",),
                    trigger_edge=("portal", "sessions"),
                    trigger_fault="abort",
                    summary=(
                        "portal's breaker on sessions opens but its recovery"
                        " timeout is effectively infinite, so it never"
                        " half-opens again"
                    ),
                ),
            ),
        ),
        SeededBugManifest(
            name="socialnetwork",
            builder=build_socialnetwork_app,
            entry="nginx",
            checks=_socialnetwork_checks,
            bugs=(
                SeededBug(
                    bug_id="socialnetwork/storm-retries",
                    check_names=(
                        "HasBoundedRetries(post-storage, post-store, 5)",
                    ),
                    trigger_edge=("post-storage", "post-store"),
                    trigger_fault="abort",
                    summary=(
                        "post-storage retries a failing post store 8x with"
                        " flat backoff and no breaker — every composed post"
                        " amplifies into a retry storm"
                    ),
                ),
                SeededBug(
                    bug_id="socialnetwork/missing-timeout",
                    check_names=("HasTimeouts(social-graph, 1s)",),
                    trigger_edge=("social-graph", "social-graph-store"),
                    trigger_fault="delay",
                    summary=(
                        "social-graph -> social-graph-store has no timeout;"
                        " a stalled graph store drags the whole compose/"
                        "fan-out write path unboundedly"
                    ),
                ),
            ),
            requests=8,
            think_time=0.01,
            fault_kinds=_FULL_FAULT_KINDS,
        ),
        SeededBugManifest(
            name="hotelreservation",
            builder=build_hotelreservation_app,
            entry="frontend",
            checks=_hotelreservation_checks,
            bugs=(
                SeededBug(
                    bug_id="hotelreservation/storm-retries",
                    check_names=("HasBoundedRetries(rate, rate-store, 5)",),
                    trigger_edge=("rate", "rate-store"),
                    trigger_fault="abort",
                    summary=(
                        "rate retries a failing rate store 8x with flat"
                        " backoff and no breaker — every search amplifies"
                        " into a retry storm"
                    ),
                ),
                SeededBug(
                    bug_id="hotelreservation/missing-timeout",
                    check_names=("HasTimeouts(reservation, 1s)",),
                    trigger_edge=("reservation", "reservation-store"),
                    trigger_fault="delay",
                    summary=(
                        "reservation -> reservation-store has no timeout; a"
                        " stalled reservation store hangs the booking path"
                        " unboundedly"
                    ),
                ),
            ),
            requests=8,
            think_time=0.01,
            fault_kinds=_FULL_FAULT_KINDS,
        ),
    )
}
