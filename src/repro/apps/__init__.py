"""Prebuilt application topologies for the case studies and benchmarks.

* :mod:`repro.apps.twotier` — ServiceA -> ServiceB (paper Example 1)
* :mod:`repro.apps.wordpress` — WordPress + ElasticPress (Figs 5-6)
* :mod:`repro.apps.enterprise` — the IBM case-study portal (Fig 4)
* :mod:`repro.apps.trees` — binary trees of services (Fig 7)
* :mod:`repro.apps.outages` — the Table 1 outage recreations, plus the
  seeded-resilience-bug fixtures the exploration layer is scored on
* :mod:`repro.apps.socialnetwork` — a 28-service DeathStarBench-class
  social network (production-scale benchmark app)
* :mod:`repro.apps.hotelreservation` — a 20-service DeathStarBench-class
  hotel reservation app (production-scale benchmark app)
"""

from repro.apps.enterprise import build_enterprise_app
from repro.apps.hotelreservation import HOTELRESERVATION_SERVICES, build_hotelreservation_app
from repro.apps.outages import (
    OUTAGE_SUITE,
    SEEDED_BUG_SUITE,
    SeededBug,
    SeededBugManifest,
    billing_recipe,
    build_billing_app,
    build_coreservice_app,
    build_database_app,
    build_deepfanout_app,
    build_messagebus_app,
    build_retrystorm_app,
    build_stuckbreaker_app,
    coreservice_recipe,
    database_overload_recipe,
    messagebus_recipe,
)
from repro.apps.socialnetwork import SOCIALNETWORK_SERVICES, build_socialnetwork_app
from repro.apps.trees import TREE_ROOT, build_tree_app, tree_service_names
from repro.apps.twotier import build_twotier
from repro.apps.wordpress import ELASTICSEARCH, MYSQL, WORDPRESS, build_wordpress_app

__all__ = [
    "ELASTICSEARCH",
    "HOTELRESERVATION_SERVICES",
    "MYSQL",
    "OUTAGE_SUITE",
    "SEEDED_BUG_SUITE",
    "SOCIALNETWORK_SERVICES",
    "SeededBug",
    "SeededBugManifest",
    "TREE_ROOT",
    "WORDPRESS",
    "billing_recipe",
    "build_billing_app",
    "build_coreservice_app",
    "build_database_app",
    "build_deepfanout_app",
    "build_enterprise_app",
    "build_hotelreservation_app",
    "build_messagebus_app",
    "build_retrystorm_app",
    "build_socialnetwork_app",
    "build_stuckbreaker_app",
    "build_tree_app",
    "build_twotier",
    "build_wordpress_app",
    "coreservice_recipe",
    "database_overload_recipe",
    "messagebus_recipe",
    "tree_service_names",
]
