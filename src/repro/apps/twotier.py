"""The two-service application of paper Section 3.2 (Example 1).

ServiceA makes API calls to ServiceB.  The operator wants to test
ServiceA's resilience to ServiceB degrading, with the expectation that
ServiceA retries failed calls no more than five times::

    Overload(ServiceB)
    HasBoundedRetries(ServiceA, ServiceB, 5)

``build_twotier`` lets tests dial ServiceA's client from fully naive to
fully hardened, so the same recipe demonstrably passes and fails.
"""

from __future__ import annotations

import typing as _t

from repro.microservice.app import Application
from repro.microservice.handlers import fanout_handler
from repro.microservice.resilience.policy import PolicySpec
from repro.microservice.service import ServiceDefinition

__all__ = ["build_twotier"]


def build_twotier(
    policy: _t.Optional[PolicySpec] = None,
    instances_a: int = 1,
    instances_b: int = 1,
    service_time_b: float = 0.001,
) -> Application:
    """ServiceA -> ServiceB with a configurable A->B client policy.

    ``policy`` defaults to the paper's expectation: bounded retries
    (five) with a one-second timeout and no breaker.
    """
    if policy is None:
        policy = PolicySpec(timeout=1.0, max_retries=5, retry_backoff_base=0.050)
    app = Application("twotier")
    app.add_service(
        ServiceDefinition(
            "ServiceA",
            handler=fanout_handler(["ServiceB"]),
            dependencies={"ServiceB": policy},
            instances=instances_a,
            service_time=0.001,
        )
    )
    app.add_service(
        ServiceDefinition("ServiceB", instances=instances_b, service_time=service_time_b)
    )
    return app
