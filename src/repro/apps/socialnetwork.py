"""A simulated DeathStarBench-class social network (28 services).

Production-scale benchmark topology modelled on the socialNetwork
application of the DeathStarBench suite: an nginx-style frontend fans
out into a compose-post write path (unique-id, text enrichment with
URL shortening and user mentions, media upload, credential check,
post storage, home-timeline fan-out, notification) and two read paths
(home timeline and user timeline), each backed by memcached-style
caches and mongodb-style datastores.

Caches are stateful leaf services: the first read of a key misses
(404) and populates, subsequent reads hit (200) — so request 1 traces
the cold path through the stores and later requests the warm path,
giving the trace-shape coverage signal real variety.  Datastores that
hold authoritative state (credentials, posts, the social graph, media
objects) are consulted on every request regardless of cache state.

``build_socialnetwork_app(resilient=True)`` builds the hardened
deployment: timeouts on every dependency edge, bounded retries plus a
circuit breaker with a stale-read fallback on the post store, and
graceful degradation for decorative features (media, ranking,
notifications).  The default ``resilient=False`` build is the naive
variant with four planted weaknesses:

* ``post-storage -> post-store``: eight flat-backoff retries and no
  breaker — a retry storm amplifier (fails ``HasBoundedRetries``);
* ``social-graph -> social-graph-store``: no timeout — a gray failure
  or long stall on the store drags the whole write path (fails
  ``HasTimeouts``);
* ``media-service -> media-store``: no timeout — resource exhaustion
  (queueing then shedding) at the store stalls media uploads
  unboundedly (fails ``HasTimeouts``);
* ``user-service``: treats *any* unexpected credential-store status as
  transient and re-asks in a tight application-level loop — a
  misconfigured (renamed/404) endpoint triggers unbounded hammering
  (fails ``HasBoundedRetries``).
"""

from __future__ import annotations

import typing as _t

from repro.errors import HttpError, NetworkError
from repro.http.message import HttpRequest, HttpResponse
from repro.microservice.app import Application
from repro.microservice.handlers import fanout_handler
from repro.microservice.resilience.policy import PolicySpec
from repro.microservice.service import ServiceContext, ServiceDefinition

__all__ = ["SOCIALNETWORK_SERVICES", "build_socialnetwork_app"]

#: All 28 services, frontend to storage tier (documentation order).
SOCIALNETWORK_SERVICES: _t.Tuple[str, ...] = (
    "nginx",
    "compose-post",
    "home-timeline",
    "user-timeline",
    "text-service",
    "unique-id",
    "url-shorten",
    "user-mention",
    "media-service",
    "user-service",
    "social-graph",
    "post-storage",
    "write-home-timeline",
    "ranker",
    "notifier",
    "post-cache",
    "post-store",
    "user-timeline-cache",
    "user-timeline-store",
    "home-timeline-cache",
    "social-graph-cache",
    "social-graph-store",
    "user-cache",
    "user-store",
    "media-cache",
    "media-store",
    "url-cache",
    "url-store",
)

_ABSORBED = (NetworkError, HttpError)


def _cache_handler(ctx: ServiceContext, request: HttpRequest):
    """Memcached-style leaf: first read of a key misses and populates."""
    yield from ctx.work()
    keys = ctx.state.setdefault("keys", set())
    key = request.path
    if key in keys:
        return HttpResponse(200, body=b"cache hit")
    keys.add(key)
    return HttpResponse(404, body=b"cache miss")


def _nginx_handler(ctx: ServiceContext, request: HttpRequest):
    """The user-facing page: compose a post, then read both timelines.

    Compose and the home timeline are mandatory; the user timeline is
    decorative and its failure only degrades the page body.
    """
    yield from ctx.work()
    try:
        compose = yield from ctx.call(
            "compose-post", HttpRequest("POST", "/wrk2-api/post/compose"), parent=request
        )
    except _ABSORBED:
        return HttpResponse(503, body=b"compose unavailable")
    if compose.status >= 500:
        return HttpResponse(502, body=b"compose degraded")
    try:
        home = yield from ctx.call(
            "home-timeline", HttpRequest("GET", "/wrk2-api/home-timeline/read"), parent=request
        )
    except _ABSORBED:
        return HttpResponse(503, body=b"home timeline unavailable")
    if home.status >= 500:
        return HttpResponse(502, body=b"home timeline degraded")
    body = b"feed ok"
    try:
        user_tl = yield from ctx.call(
            "user-timeline", HttpRequest("GET", "/wrk2-api/user-timeline/read"), parent=request
        )
        if user_tl.status >= 500:
            body = b"feed degraded: user-timeline"
    except _ABSORBED:
        body = b"feed degraded: user-timeline"
    return HttpResponse(200, body=body)


def _compose_handler(ctx: ServiceContext, request: HttpRequest):
    """The write path: id + text + credentials, then store and fan out."""
    yield from ctx.work()
    for mandatory in ("unique-id", "text-service", "user-service"):
        try:
            reply = yield from ctx.call(
                mandatory, HttpRequest("GET", f"/internal/{mandatory}"), parent=request
            )
        except _ABSORBED:
            return HttpResponse(500, body=f"dependency failure: {mandatory}".encode())
        if reply.status >= 500:
            return HttpResponse(500, body=f"dependency failure: {mandatory}".encode())
    media_note = b""
    try:
        media = yield from ctx.call(
            "media-service", HttpRequest("POST", "/internal/media"), parent=request
        )
        if media.status >= 500:
            media_note = b" (media degraded)"
    except _ABSORBED:
        media_note = b" (media degraded)"
    for write in ("post-storage", "write-home-timeline"):
        try:
            reply = yield from ctx.call(
                write, HttpRequest("POST", f"/internal/{write}"), parent=request
            )
        except _ABSORBED:
            return HttpResponse(500, body=f"dependency failure: {write}".encode())
        if reply.status >= 500:
            return HttpResponse(500, body=f"dependency failure: {write}".encode())
    try:
        yield from ctx.call("notifier", HttpRequest("POST", "/internal/notify"), parent=request)
    except _ABSORBED:
        pass  # notifications are fire-and-forget
    return HttpResponse(200, body=b"post composed" + media_note)


def _cache_aside_handler(cache: str, store: str, label: str):
    """Read path with classic cache-aside: hit short-circuits the store."""

    def handler(ctx: ServiceContext, request: HttpRequest):
        yield from ctx.work()
        try:
            cached = yield from ctx.call(
                cache, HttpRequest("GET", f"/{label}/lookup"), parent=request
            )
            if cached.status == 200:
                return HttpResponse(200, body=f"{label} ok (cache)".encode())
        except _ABSORBED:
            pass
        try:
            reply = yield from ctx.call(
                store, HttpRequest("GET", f"/{label}/fetch"), parent=request
            )
        except _ABSORBED:
            return HttpResponse(503, body=f"{label} backend unavailable".encode())
        if reply.status >= 500:
            return HttpResponse(503, body=f"{label} backend degraded".encode())
        return HttpResponse(200, body=f"{label} ok".encode())

    return handler


def _media_handler(ctx: ServiceContext, request: HttpRequest):
    """Media upload: metadata cache probe, then the authoritative store."""
    yield from ctx.work()
    try:
        yield from ctx.call("media-cache", HttpRequest("GET", "/media/meta"), parent=request)
    except _ABSORBED:
        pass
    try:
        stored = yield from ctx.call(
            "media-store", HttpRequest("POST", "/media/object"), parent=request
        )
    except _ABSORBED:
        return HttpResponse(503, body=b"media backend unavailable")
    if stored.status >= 500:
        return HttpResponse(503, body=b"media backend degraded")
    return HttpResponse(200, body=b"media ok")


def _user_handler(validate_status: bool):
    """Credential check against the authoritative user store.

    The resilient variant treats an unexpected store status (a renamed
    endpoint after a bad deploy — 404s, 400s) as "account defaulted"
    and answers degraded.  The naive variant assumes any non-200 is
    transient and re-asks in a tight loop — the planted
    misconfiguration amplifier.
    """

    def handler(ctx: ServiceContext, request: HttpRequest):
        yield from ctx.work()
        try:
            yield from ctx.call(
                "user-cache", HttpRequest("GET", "/user/profile"), parent=request
            )
        except _ABSORBED:
            pass  # profile data is decorative; credentials are not
        if validate_status:
            try:
                creds = yield from ctx.call(
                    "user-store", HttpRequest("GET", "/user/creds"), parent=request
                )
            except _ABSORBED:
                return HttpResponse(503, body=b"user backend unavailable")
            if creds.status == 200:
                return HttpResponse(200, body=b"user ok")
            return HttpResponse(200, body=b"user defaulted")
        for _attempt in range(8):
            try:
                creds = yield from ctx.call(
                    "user-store", HttpRequest("GET", "/user/creds"), parent=request
                )
            except _ABSORBED:
                continue
            if creds.status == 200:
                return HttpResponse(200, body=b"user ok")
            # Any other status is assumed transient and re-asked: the
            # planted bug — a misconfigured endpoint answers 404 forever.
        return HttpResponse(500, body=b"user lookup failed")

    return handler


def _post_storage_handler(ctx: ServiceContext, request: HttpRequest):
    """Post persistence: recent-post cache probe, authoritative store."""
    yield from ctx.work()
    try:
        yield from ctx.call("post-cache", HttpRequest("GET", "/post/recent"), parent=request)
    except _ABSORBED:
        pass
    try:
        stored = yield from ctx.call(
            "post-store", HttpRequest("POST", "/post/object"), parent=request
        )
    except _ABSORBED:
        return HttpResponse(503, body=b"post backend unavailable")
    if stored.status >= 500:
        return HttpResponse(503, body=b"post backend degraded")
    return HttpResponse(200, body=b"post ok")


def _social_graph_handler(ctx: ServiceContext, request: HttpRequest):
    """Follower lookup: cache probe, then the authoritative edge list."""
    yield from ctx.work()
    try:
        cached = yield from ctx.call(
            "social-graph-cache", HttpRequest("GET", "/graph/followers"), parent=request
        )
    except _ABSORBED:
        cached = None
    try:
        reply = yield from ctx.call(
            "social-graph-store", HttpRequest("GET", "/graph/followers/all"), parent=request
        )
    except _ABSORBED:
        if cached is not None and cached.status == 200:
            return HttpResponse(200, body=b"followers ok (cache)")
        return HttpResponse(503, body=b"graph backend unavailable")
    if reply.status >= 500:
        return HttpResponse(503, body=b"graph backend degraded")
    return HttpResponse(200, body=b"followers ok")


def _write_home_timeline_handler(ctx: ServiceContext, request: HttpRequest):
    """Fan the new post out to followers' home timelines."""
    yield from ctx.work()
    try:
        followers = yield from ctx.call(
            "social-graph", HttpRequest("GET", "/graph/followers"), parent=request
        )
    except _ABSORBED:
        return HttpResponse(503, body=b"fanout failed: social-graph")
    if followers.status >= 500:
        return HttpResponse(503, body=b"fanout degraded: social-graph")
    try:
        yield from ctx.call(
            "home-timeline-cache", HttpRequest("POST", "/timeline/home/push"), parent=request
        )
    except _ABSORBED:
        pass  # cache push is best-effort; readers fall back to stores
    return HttpResponse(200, body=b"fanout ok")


def _home_timeline_handler(ctx: ServiceContext, request: HttpRequest):
    """Home timeline read: cache probe, post hydration, ranking."""
    yield from ctx.work()
    try:
        yield from ctx.call(
            "home-timeline-cache", HttpRequest("GET", "/timeline/home"), parent=request
        )
    except _ABSORBED:
        pass
    try:
        posts = yield from ctx.call(
            "post-storage", HttpRequest("GET", "/post/batch"), parent=request
        )
    except _ABSORBED:
        return HttpResponse(503, body=b"timeline backend unavailable")
    if posts.status >= 500:
        return HttpResponse(503, body=b"timeline backend degraded")
    body = b"home timeline ok"
    try:
        ranked = yield from ctx.call("ranker", HttpRequest("GET", "/rank"), parent=request)
        if ranked.status >= 500:
            body = b"home timeline unranked"
    except _ABSORBED:
        body = b"home timeline unranked"
    return HttpResponse(200, body=body)


def _user_timeline_handler(ctx: ServiceContext, request: HttpRequest):
    """User timeline read: cache hit short-circuits, else index + posts."""
    yield from ctx.work()
    try:
        cached = yield from ctx.call(
            "user-timeline-cache", HttpRequest("GET", "/timeline/user"), parent=request
        )
        if cached.status == 200:
            return HttpResponse(200, body=b"user timeline ok (cache)")
    except _ABSORBED:
        pass
    for backend in ("user-timeline-store", "post-storage"):
        try:
            reply = yield from ctx.call(
                backend, HttpRequest("GET", f"/timeline/user/{backend}"), parent=request
            )
        except _ABSORBED:
            return HttpResponse(503, body=b"user timeline unavailable")
        if reply.status >= 500:
            return HttpResponse(503, body=b"user timeline degraded")
    return HttpResponse(200, body=b"user timeline ok")


def build_socialnetwork_app(
    resilient: bool = False, hardened: _t.Optional[bool] = None
) -> Application:
    """The 28-service social network; ``resilient`` picks the policies.

    ``hardened`` is an alias for ``resilient`` so the app plugs into
    the seeded-bug suite's ``builder(hardened=True)`` convention.
    """
    if hardened is not None:
        resilient = hardened

    def edge(timeout: float, **kwargs) -> PolicySpec:
        return PolicySpec(timeout=timeout, **kwargs) if resilient else PolicySpec.naive()

    if resilient:
        post_store_policy = PolicySpec(
            timeout=0.3,
            max_retries=1,
            breaker_failure_threshold=5,
            breaker_recovery_timeout=10.0,
            fallback=lambda request: HttpResponse(200, body=b"post ok (stale read)"),
        )
        graph_store_policy = PolicySpec(
            timeout=0.25,
            fallback=lambda request: HttpResponse(200, body=b"followers ok (stale)"),
        )
        media_store_policy = PolicySpec(
            timeout=0.3,
            fallback=lambda request: HttpResponse(200, body=b"media placeholder"),
        )
    else:
        # The planted retry storm: eight flat near-zero-backoff retries
        # and no breaker on the post store.
        post_store_policy = PolicySpec(
            timeout=0.3, max_retries=8, retry_backoff_base=0.002, retry_backoff_factor=1.0
        )
        # The planted missing timeouts: unbounded patience on the graph
        # and media stores.
        graph_store_policy = PolicySpec.naive()
        media_store_policy = PolicySpec.naive()

    app = Application("socialnetwork")
    app.add_service(
        ServiceDefinition(
            "nginx",
            handler=_nginx_handler,
            dependencies={
                "compose-post": edge(4.0),
                "home-timeline": edge(2.0),
                "user-timeline": edge(1.0),
            },
            service_time=0.002,
        )
    )
    app.add_service(
        ServiceDefinition(
            "compose-post",
            handler=_compose_handler,
            dependencies={
                "unique-id": edge(0.3),
                "text-service": edge(1.0),
                "user-service": edge(1.0),
                "media-service": edge(0.8),
                "post-storage": edge(1.0),
                "write-home-timeline": edge(1.5),
                "notifier": edge(0.2),
            },
            service_time=0.002,
        )
    )
    app.add_service(
        ServiceDefinition(
            "home-timeline",
            handler=_home_timeline_handler,
            dependencies={
                "home-timeline-cache": edge(0.2),
                "post-storage": edge(1.0),
                "ranker": edge(0.3),
            },
            service_time=0.002,
        )
    )
    app.add_service(
        ServiceDefinition(
            "user-timeline",
            handler=_user_timeline_handler,
            dependencies={
                "user-timeline-cache": edge(0.2),
                "user-timeline-store": edge(0.5),
                "post-storage": edge(1.0),
            },
            service_time=0.002,
        )
    )
    app.add_service(
        ServiceDefinition(
            "text-service",
            handler=fanout_handler(["url-shorten", "user-mention"], partial_ok=False),
            dependencies={"url-shorten": edge(0.8), "user-mention": edge(0.8)},
            service_time=0.001,
        )
    )
    app.add_service(
        ServiceDefinition(
            "url-shorten",
            handler=_cache_aside_handler("url-cache", "url-store", "url"),
            dependencies={"url-cache": edge(0.2), "url-store": edge(0.5)},
            service_time=0.001,
        )
    )
    app.add_service(
        ServiceDefinition(
            "user-mention",
            handler=_cache_aside_handler("user-cache", "user-store", "mention"),
            dependencies={"user-cache": edge(0.2), "user-store": edge(0.5)},
            service_time=0.001,
        )
    )
    app.add_service(
        ServiceDefinition(
            "media-service",
            handler=_media_handler,
            dependencies={
                "media-cache": edge(0.2),
                "media-store": media_store_policy,  # <-- planted: no naive timeout
            },
            service_time=0.002,
        )
    )
    app.add_service(
        ServiceDefinition(
            "user-service",
            handler=_user_handler(validate_status=resilient),
            dependencies={"user-cache": edge(0.2), "user-store": edge(0.5)},
            service_time=0.001,
        )
    )
    app.add_service(
        ServiceDefinition(
            "social-graph",
            handler=_social_graph_handler,
            dependencies={
                "social-graph-cache": edge(0.2),
                "social-graph-store": graph_store_policy,  # <-- planted: no naive timeout
            },
            service_time=0.002,
        )
    )
    app.add_service(
        ServiceDefinition(
            "post-storage",
            handler=_post_storage_handler,
            dependencies={
                "post-cache": edge(0.2),
                "post-store": post_store_policy,  # <-- planted: retry storm
            },
            service_time=0.002,
        )
    )
    app.add_service(
        ServiceDefinition(
            "write-home-timeline",
            handler=_write_home_timeline_handler,
            dependencies={
                "social-graph": edge(1.0),
                "home-timeline-cache": edge(0.2),
            },
            service_time=0.002,
        )
    )
    app.add_service(ServiceDefinition("unique-id", service_time=0.0005))
    app.add_service(ServiceDefinition("ranker", service_time=0.004))
    app.add_service(ServiceDefinition("notifier", service_time=0.001))
    for cache in (
        "post-cache",
        "user-timeline-cache",
        "home-timeline-cache",
        "social-graph-cache",
        "user-cache",
        "media-cache",
        "url-cache",
    ):
        app.add_service(
            ServiceDefinition(cache, handler=_cache_handler, service_time=0.0005)
        )
    for store, service_time in (
        ("post-store", 0.005),
        ("user-timeline-store", 0.004),
        ("social-graph-store", 0.004),
        ("user-store", 0.003),
        ("media-store", 0.005),
        ("url-store", 0.003),
    ):
        app.add_service(ServiceDefinition(store, service_time=service_time))
    return app
