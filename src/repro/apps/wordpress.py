"""The WordPress + ElasticPress case study (paper Section 7.1, Figs 5-6).

Deployment of three services, as in the paper: **wordpress** (with the
ElasticPress plugin enabled), **elasticsearch** (search index) and
**mysql** (the database WordPress requires).

The reproduced plugin behaviour matches the paper's findings exactly:

* ElasticPress *does* handle hard failures gracefully — "fell back to
  the default (MySQL-powered) search method when Elasticsearch ... was
  unreachable or returned an error";
* it has **no timeout** — a Delay fault between WordPress and
  Elasticsearch offsets every response by the injected delay (Fig 5);
* it has **no circuit breaker** — after 100 consecutive aborted
  requests, the next 100 delayed requests all wait out the full delay
  instead of short-circuiting (Fig 6).

``build_wordpress_app(hardened=True)`` swaps in a client with a
timeout and breaker, producing the contrast curves the reproduction
plots next to the naive ones.
"""

from __future__ import annotations

import typing as _t

from repro.errors import HttpError, NetworkError
from repro.http.message import HttpRequest, HttpResponse
from repro.microservice.app import Application
from repro.microservice.resilience.policy import PolicySpec
from repro.microservice.service import ServiceContext, ServiceDefinition

__all__ = ["build_wordpress_app", "WORDPRESS", "ELASTICSEARCH", "MYSQL"]

WORDPRESS = "wordpress"
ELASTICSEARCH = "elasticsearch"
MYSQL = "mysql"

#: Simulated per-query compute: ES is the fast path, MySQL the slow one
#: (which is why the plugin exists).
ES_QUERY_TIME = 0.005
MYSQL_QUERY_TIME = 0.020
WP_RENDER_TIME = 0.002


def _elasticpress_search(ctx: ServiceContext, request: HttpRequest):
    """The ElasticPress request path inside WordPress.

    Try Elasticsearch first; on *any* failure — error status, refused
    connection, reset, or (for the hardened variant) a client timeout
    or open breaker — fall back to MySQL-powered search.  The fallback
    is the part the real plugin got right; the missing timeout/breaker
    are the parts Gremlin exposed.
    """
    yield from ctx.work()
    search = HttpRequest("GET", "/index/_search")
    try:
        response = yield from ctx.call(ELASTICSEARCH, search, parent=request)
        es_failed = response.status >= 500
    except (NetworkError, HttpError):
        es_failed = True
    if not es_failed:
        return HttpResponse(200, body=b"results via elasticsearch")
    fallback = HttpRequest("GET", "/wp_posts/select")
    try:
        response = yield from ctx.call(MYSQL, fallback, parent=request)
    except (NetworkError, HttpError) as exc:
        return HttpResponse(500, body=f"search unavailable: {type(exc).__name__}".encode())
    if response.status >= 500:
        return HttpResponse(500, body=b"search unavailable: mysql degraded")
    return HttpResponse(200, body=b"results via mysql fallback")


def build_wordpress_app(hardened: bool = False) -> Application:
    """The three-service deployment of the case study.

    ``hardened=False`` (default) reproduces the published plugin: no
    timeout, no retries, no breaker on the Elasticsearch client.
    ``hardened=True`` is the fixed variant: a 1 s timeout and a
    5-failure breaker with a 10 s recovery window, so delayed requests
    fail fast onto the MySQL fallback.
    """
    if hardened:
        es_policy = PolicySpec(
            timeout=1.0,
            breaker_failure_threshold=5,
            breaker_recovery_timeout=10.0,
        )
    else:
        es_policy = PolicySpec.naive()

    app = Application("wordpress-elasticpress")
    app.add_service(
        ServiceDefinition(
            WORDPRESS,
            handler=_elasticpress_search,
            dependencies={
                ELASTICSEARCH: es_policy,
                MYSQL: PolicySpec(timeout=5.0, max_retries=1),
            },
            service_time=WP_RENDER_TIME,
        )
    )
    app.add_service(ServiceDefinition(ELASTICSEARCH, service_time=ES_QUERY_TIME))
    app.add_service(ServiceDefinition(MYSQL, service_time=MYSQL_QUERY_TIME))
    return app
