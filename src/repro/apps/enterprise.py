"""The IBM enterprise application of the case study (paper Fig 4).

A web-service search portal: the user-facing **webapp** queries
**searchservice** (which consults the **servicedb** catalogue) and
**activityservice** (which aggregates development activity from the
external services **github** and **stackoverflow**).

Two reproduced findings from Section 7.1:

* The Web App team relied on a Unirest-like HTTP library "for
  abstracting boilerplate failure-handling logic", whose timeout
  implementation "did not gracefully handle corner cases involving TCP
  connection timeout; instead the errors percolated to other parts of
  the microservice".  The default build reproduces that bug: the
  activity-aggregation path catches ordinary timeouts and error
  statuses, but a TCP-level reset escapes the library wrapper and
  crashes the handler (surfacing as a 500 from the webapp).
  ``fixed_unirest=True`` builds the corrected variant.

* Writing the recipe itself surfaces dependency edges with no declared
  failure handling — reproduced by the naive default policies on the
  activity-service edges.
"""

from __future__ import annotations

from repro.errors import ConnectionResetError_, HttpError, NetworkError, RequestTimeoutError
from repro.http.message import HttpRequest, HttpResponse
from repro.microservice.app import Application
from repro.microservice.resilience.policy import PolicySpec
from repro.microservice.service import ServiceContext, ServiceDefinition

__all__ = [
    "build_enterprise_app",
    "WEBAPP",
    "SEARCH",
    "ACTIVITY",
    "SERVICEDB",
    "GITHUB",
    "STACKOVERFLOW",
]

WEBAPP = "webapp"
SEARCH = "searchservice"
ACTIVITY = "activityservice"
SERVICEDB = "servicedb"
GITHUB = "github"
STACKOVERFLOW = "stackoverflow"


def _webapp_handler(fixed_unirest: bool):
    """The user-facing request path: search + activity aggregation.

    The search result is mandatory (its failure degrades the page to a
    503); activity data is decorative and failures should be absorbed.
    With the buggy Unirest wrapper, a TCP reset on the activity call is
    *not* absorbed — the exception percolates and the whole page
    becomes a 500, which is exactly what running the network-instability
    recipe against the real application exposed.
    """

    def handler(ctx: ServiceContext, request: HttpRequest):
        yield from ctx.work()
        try:
            search_reply = yield from ctx.call(
                SEARCH, HttpRequest("GET", "/search?q=payments"), parent=request
            )
        except (NetworkError, HttpError):
            return HttpResponse(503, body=b"search backend unavailable")
        if search_reply.status >= 500:
            return HttpResponse(503, body=b"search backend degraded")

        activity_body = b"activity unavailable"
        absorbed = (RequestTimeoutError, HttpError)
        if fixed_unirest:
            absorbed = (RequestTimeoutError, HttpError, NetworkError)
        try:
            activity_reply = yield from ctx.call(
                ACTIVITY, HttpRequest("GET", "/activity?q=payments"), parent=request
            )
            if activity_reply.status < 500:
                activity_body = activity_reply.body
        except absorbed:
            pass
        # NOTE: with the buggy library, ConnectionResetError_ (a TCP
        # connection corner case) is NOT in `absorbed` and escapes here,
        # turning into a handler crash -> 500 at the server layer.
        return HttpResponse(200, body=b"results + " + activity_body)

    return handler


def _activity_handler(ctx: ServiceContext, request: HttpRequest):
    """Aggregate development activity from the external services."""
    yield from ctx.work()
    fragments = []
    for external in (GITHUB, STACKOVERFLOW):
        try:
            reply = yield from ctx.call(
                external, HttpRequest("GET", "/api/activity"), parent=request
            )
            if reply.status < 500:
                fragments.append(external)
        except (NetworkError, HttpError):
            continue
    if not fragments:
        return HttpResponse(503, body=b"no activity sources reachable")
    return HttpResponse(200, body=("activity:" + ",".join(fragments)).encode())


def _search_handler(ctx: ServiceContext, request: HttpRequest):
    """Look up matching web services in the catalogue database."""
    yield from ctx.work()
    try:
        reply = yield from ctx.call(
            SERVICEDB, HttpRequest("GET", "/catalog/query"), parent=request
        )
    except (NetworkError, HttpError):
        return HttpResponse(503, body=b"catalog unavailable")
    if reply.status >= 500:
        return HttpResponse(503, body=b"catalog degraded")
    return HttpResponse(200, body=b"catalog results")


def build_enterprise_app(fixed_unirest: bool = False) -> Application:
    """The five-service enterprise deployment plus two external APIs.

    External services (github, stackoverflow) are modelled as ordinary
    leaf services with higher latency — from the proxy's viewpoint an
    external API is just another HTTP destination, which is precisely
    why Gremlin can fault-inject on those edges too.
    """
    app = Application("enterprise-search-portal")
    app.add_service(
        ServiceDefinition(
            WEBAPP,
            handler=_webapp_handler(fixed_unirest),
            dependencies={
                SEARCH: PolicySpec(timeout=2.0, max_retries=1),
                # The Unirest-wrapped edge: a timeout is configured, but
                # TCP corner cases escape the wrapper (see module docs).
                ACTIVITY: PolicySpec(timeout=1.0),
            },
            service_time=0.002,
        )
    )
    app.add_service(
        ServiceDefinition(
            SEARCH,
            handler=_search_handler,
            dependencies={SERVICEDB: PolicySpec(timeout=1.0, max_retries=2)},
            service_time=0.003,
        )
    )
    app.add_service(
        ServiceDefinition(
            ACTIVITY,
            handler=_activity_handler,
            dependencies={
                GITHUB: PolicySpec.naive(),
                STACKOVERFLOW: PolicySpec.naive(),
            },
            service_time=0.002,
        )
    )
    app.add_service(ServiceDefinition(SERVICEDB, service_time=0.004))
    app.add_service(ServiceDefinition(GITHUB, service_time=0.030))
    app.add_service(ServiceDefinition(STACKOVERFLOW, service_time=0.040))
    return app
