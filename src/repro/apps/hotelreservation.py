"""A simulated DeathStarBench-class hotel reservation app (20 services).

Modelled on the hotelReservation application of the DeathStarBench
suite: a frontend fans out into authentication, hotel search (geo +
rate lookup), profile hydration, recommendations, reviews, a nearby
attractions widget, and the reservation write path — each backed by
memcached-style caches and mongodb-style datastores.

``build_hotelreservation_app(resilient=True)`` is the hardened build:
timeouts everywhere, bounded retries plus a breaker with a cached-rate
fallback on the rate store, queued-write fallback on the reservation
store, and graceful degradation for decorative widgets.  The default
naive build carries four planted weaknesses:

* ``rate -> rate-store``: eight flat-backoff retries, no breaker — a
  retry storm amplifier (fails ``HasBoundedRetries``);
* ``reservation -> reservation-store``: no timeout — a gray failure
  or stall at the store hangs the booking path (fails
  ``HasTimeouts``);
* ``profile -> profile-store``: no timeout — resource exhaustion at
  the store stalls profile hydration unboundedly (fails
  ``HasTimeouts``);
* ``auth``: treats any unexpected credential-store status as
  transient and re-asks in a tight loop — a misconfigured endpoint
  triggers unbounded hammering (fails ``HasBoundedRetries``).
"""

from __future__ import annotations

import typing as _t

from repro.errors import HttpError, NetworkError
from repro.http.message import HttpRequest, HttpResponse
from repro.microservice.app import Application
from repro.microservice.handlers import fanout_handler
from repro.microservice.resilience.policy import PolicySpec
from repro.microservice.service import ServiceContext, ServiceDefinition

__all__ = ["HOTELRESERVATION_SERVICES", "build_hotelreservation_app"]

#: All 20 services, frontend to storage tier (documentation order).
HOTELRESERVATION_SERVICES: _t.Tuple[str, ...] = (
    "frontend",
    "search",
    "geo",
    "rate",
    "profile",
    "recommendation",
    "auth",
    "reservation",
    "review",
    "attractions",
    "rate-cache",
    "rate-store",
    "geo-store",
    "profile-cache",
    "profile-store",
    "recommendation-store",
    "auth-store",
    "reservation-cache",
    "reservation-store",
    "review-store",
)

_ABSORBED = (NetworkError, HttpError)


def _cache_handler(ctx: ServiceContext, request: HttpRequest):
    """Memcached-style leaf: first read of a key misses and populates."""
    yield from ctx.work()
    keys = ctx.state.setdefault("keys", set())
    key = request.path
    if key in keys:
        return HttpResponse(200, body=b"cache hit")
    keys.add(key)
    return HttpResponse(404, body=b"cache miss")


def _frontend_handler(ctx: ServiceContext, request: HttpRequest):
    """Book a room: auth, search, profile, and the reservation write
    are mandatory; recommendations, reviews, and the attractions widget
    only degrade the page body when they fail."""
    yield from ctx.work()
    for mandatory in ("auth", "search", "profile", "reservation"):
        try:
            reply = yield from ctx.call(
                mandatory, HttpRequest("GET", f"/api/{mandatory}"), parent=request
            )
        except _ABSORBED:
            return HttpResponse(503, body=f"dependency failure: {mandatory}".encode())
        if reply.status >= 500:
            return HttpResponse(502, body=f"dependency failure: {mandatory}".encode())
    degraded = []
    for widget in ("recommendation", "review", "attractions"):
        try:
            reply = yield from ctx.call(
                widget, HttpRequest("GET", f"/api/{widget}"), parent=request
            )
            if reply.status >= 500:
                degraded.append(widget)
        except _ABSORBED:
            degraded.append(widget)
    if degraded:
        return HttpResponse(200, body=("booking ok, degraded: " + ",".join(degraded)).encode())
    return HttpResponse(200, body=b"booking ok")


def _geo_handler(ctx: ServiceContext, request: HttpRequest):
    """Nearby-hotel lookup against the geo index."""
    yield from ctx.work()
    try:
        reply = yield from ctx.call(
            "geo-store", HttpRequest("GET", "/geo/nearby"), parent=request
        )
    except _ABSORBED:
        return HttpResponse(503, body=b"geo index unavailable")
    if reply.status >= 500:
        return HttpResponse(503, body=b"geo index degraded")
    return HttpResponse(200, body=b"hotels ok")


def _rate_handler(ctx: ServiceContext, request: HttpRequest):
    """Room rates: cache probe, then the authoritative rate plans."""
    yield from ctx.work()
    try:
        yield from ctx.call("rate-cache", HttpRequest("GET", "/rate/plans"), parent=request)
    except _ABSORBED:
        pass
    try:
        reply = yield from ctx.call(
            "rate-store", HttpRequest("GET", "/rate/plans/all"), parent=request
        )
    except _ABSORBED:
        return HttpResponse(503, body=b"rate backend unavailable")
    if reply.status >= 500:
        return HttpResponse(503, body=b"rate backend degraded")
    return HttpResponse(200, body=b"rates ok")


def _profile_handler(ctx: ServiceContext, request: HttpRequest):
    """Hotel profile hydration: cache probe, authoritative documents."""
    yield from ctx.work()
    try:
        yield from ctx.call(
            "profile-cache", HttpRequest("GET", "/profile/docs"), parent=request
        )
    except _ABSORBED:
        pass
    try:
        reply = yield from ctx.call(
            "profile-store", HttpRequest("GET", "/profile/docs/all"), parent=request
        )
    except _ABSORBED:
        return HttpResponse(503, body=b"profile backend unavailable")
    if reply.status >= 500:
        return HttpResponse(503, body=b"profile backend degraded")
    return HttpResponse(200, body=b"profiles ok")


def _auth_handler(validate_status: bool):
    """Credential check against the authoritative auth store.

    The resilient variant treats an unexpected store status (renamed
    endpoint, bad deploy — 404s) as "login defaulted to guest" and
    answers degraded; the naive variant assumes any non-200 is
    transient and re-asks in a tight loop — the planted
    misconfiguration amplifier.
    """

    def handler(ctx: ServiceContext, request: HttpRequest):
        yield from ctx.work()
        if validate_status:
            try:
                creds = yield from ctx.call(
                    "auth-store", HttpRequest("GET", "/auth/creds"), parent=request
                )
            except _ABSORBED:
                return HttpResponse(503, body=b"auth backend unavailable")
            if creds.status == 200:
                return HttpResponse(200, body=b"auth ok")
            return HttpResponse(200, body=b"auth defaulted")
        for _attempt in range(8):
            try:
                creds = yield from ctx.call(
                    "auth-store", HttpRequest("GET", "/auth/creds"), parent=request
                )
            except _ABSORBED:
                continue
            if creds.status == 200:
                return HttpResponse(200, body=b"auth ok")
            # Any other status is assumed transient and re-asked: the
            # planted bug — a misconfigured endpoint answers 404 forever.
        return HttpResponse(500, body=b"auth lookup failed")

    return handler


def _reservation_handler(ctx: ServiceContext, request: HttpRequest):
    """The booking write path: availability probe, then the durable write."""
    yield from ctx.work()
    try:
        yield from ctx.call(
            "reservation-cache", HttpRequest("GET", "/reservation/avail"), parent=request
        )
    except _ABSORBED:
        pass
    try:
        stored = yield from ctx.call(
            "reservation-store", HttpRequest("POST", "/reservation/book"), parent=request
        )
    except _ABSORBED:
        return HttpResponse(503, body=b"reservation backend unavailable")
    if stored.status >= 500:
        return HttpResponse(503, body=b"reservation backend degraded")
    return HttpResponse(200, body=b"reservation ok")


def _review_handler(ctx: ServiceContext, request: HttpRequest):
    """Guest reviews widget."""
    yield from ctx.work()
    try:
        reply = yield from ctx.call(
            "review-store", HttpRequest("GET", "/review/recent"), parent=request
        )
    except _ABSORBED:
        return HttpResponse(503, body=b"reviews unavailable")
    if reply.status >= 500:
        return HttpResponse(503, body=b"reviews degraded")
    return HttpResponse(200, body=b"reviews ok")


def _recommendation_handler(ctx: ServiceContext, request: HttpRequest):
    """Personalised recommendations widget."""
    yield from ctx.work()
    try:
        reply = yield from ctx.call(
            "recommendation-store", HttpRequest("GET", "/recommend/top"), parent=request
        )
    except _ABSORBED:
        return HttpResponse(503, body=b"recommendations unavailable")
    if reply.status >= 500:
        return HttpResponse(503, body=b"recommendations degraded")
    return HttpResponse(200, body=b"recommendations ok")


def build_hotelreservation_app(
    resilient: bool = False, hardened: _t.Optional[bool] = None
) -> Application:
    """The 20-service hotel reservation app; ``resilient`` picks the
    policies.  ``hardened`` is an alias for ``resilient`` so the app
    plugs into the seeded-bug suite's ``builder(hardened=True)``
    convention.
    """
    if hardened is not None:
        resilient = hardened

    def edge(timeout: float, **kwargs) -> PolicySpec:
        return PolicySpec(timeout=timeout, **kwargs) if resilient else PolicySpec.naive()

    if resilient:
        rate_store_policy = PolicySpec(
            timeout=0.3,
            max_retries=1,
            breaker_failure_threshold=5,
            breaker_recovery_timeout=10.0,
            fallback=lambda request: HttpResponse(200, body=b"rates ok (cached)"),
        )
        reservation_store_policy = PolicySpec(
            timeout=0.3,
            fallback=lambda request: HttpResponse(200, body=b"reservation queued"),
        )
        profile_store_policy = PolicySpec(
            timeout=0.3,
            fallback=lambda request: HttpResponse(200, body=b"profiles ok (stale)"),
        )
    else:
        # The planted retry storm: eight flat near-zero-backoff retries
        # and no breaker on the rate store.
        rate_store_policy = PolicySpec(
            timeout=0.3, max_retries=8, retry_backoff_base=0.002, retry_backoff_factor=1.0
        )
        # The planted missing timeouts: unbounded patience on the
        # reservation and profile stores.
        reservation_store_policy = PolicySpec.naive()
        profile_store_policy = PolicySpec.naive()

    app = Application("hotelreservation")
    app.add_service(
        ServiceDefinition(
            "frontend",
            handler=_frontend_handler,
            dependencies={
                "auth": edge(1.0),
                "search": edge(2.0),
                "profile": edge(1.5),
                "reservation": edge(2.0),
                "recommendation": edge(0.5),
                "review": edge(0.5),
                "attractions": edge(0.3),
            },
            service_time=0.002,
        )
    )
    app.add_service(
        ServiceDefinition(
            "search",
            handler=fanout_handler(["geo", "rate"], partial_ok=False),
            dependencies={"geo": edge(0.8), "rate": edge(1.0)},
            service_time=0.001,
        )
    )
    app.add_service(
        ServiceDefinition(
            "geo",
            handler=_geo_handler,
            dependencies={"geo-store": edge(0.5)},
            service_time=0.001,
        )
    )
    app.add_service(
        ServiceDefinition(
            "rate",
            handler=_rate_handler,
            dependencies={
                "rate-cache": edge(0.2),
                "rate-store": rate_store_policy,  # <-- planted: retry storm
            },
            service_time=0.001,
        )
    )
    app.add_service(
        ServiceDefinition(
            "profile",
            handler=_profile_handler,
            dependencies={
                "profile-cache": edge(0.2),
                "profile-store": profile_store_policy,  # <-- planted: no naive timeout
            },
            service_time=0.002,
        )
    )
    app.add_service(
        ServiceDefinition(
            "recommendation",
            handler=_recommendation_handler,
            dependencies={"recommendation-store": edge(0.5)},
            service_time=0.001,
        )
    )
    app.add_service(
        ServiceDefinition(
            "auth",
            handler=_auth_handler(validate_status=resilient),
            dependencies={"auth-store": edge(0.5)},
            service_time=0.001,
        )
    )
    app.add_service(
        ServiceDefinition(
            "reservation",
            handler=_reservation_handler,
            dependencies={
                "reservation-cache": edge(0.2),
                "reservation-store": reservation_store_policy,  # <-- planted: no timeout
            },
            service_time=0.002,
        )
    )
    app.add_service(
        ServiceDefinition(
            "review",
            handler=_review_handler,
            dependencies={"review-store": edge(0.5)},
            service_time=0.001,
        )
    )
    app.add_service(ServiceDefinition("attractions", service_time=0.02))
    for cache in ("rate-cache", "profile-cache", "reservation-cache"):
        app.add_service(
            ServiceDefinition(cache, handler=_cache_handler, service_time=0.0005)
        )
    for store, service_time in (
        ("rate-store", 0.004),
        ("geo-store", 0.003),
        ("profile-store", 0.004),
        ("recommendation-store", 0.003),
        ("auth-store", 0.003),
        ("reservation-store", 0.005),
        ("review-store", 0.003),
    ):
        app.add_service(ServiceDefinition(store, service_time=service_time))
    return app
