"""An Apache-Benchmark-like concurrent load tool.

Paper Section 7.2 uses ``ab`` to measure proxy overhead ("the time to
complete a series of HTTP requests to a server through the service
proxy").  :class:`ApacheBench` reproduces its shape: ``concurrency``
closed-loop workers sharing a total request budget, reporting the
per-request latency distribution.
"""

from __future__ import annotations

import typing as _t

from repro.http.message import HttpRequest
from repro.loadgen.workload import LoadResult, Sample
from repro.microservice.app import TrafficSource
from repro.tracing.context import RequestIdGenerator

__all__ = ["ApacheBench"]


class ApacheBench:
    """``ab -n total_requests -c concurrency`` for the simulated world."""

    def __init__(
        self,
        total_requests: int,
        concurrency: int = 1,
        uri: str = "/",
        ids: _t.Optional[RequestIdGenerator] = None,
    ) -> None:
        if total_requests < 1:
            raise ValueError(f"total_requests must be >= 1, got {total_requests}")
        if concurrency < 1:
            raise ValueError(f"concurrency must be >= 1, got {concurrency}")
        self.total_requests = total_requests
        self.concurrency = concurrency
        self.uri = uri
        self.ids = ids if ids is not None else RequestIdGenerator()
        self.result = LoadResult()
        self._remaining = total_requests

    def run(self, source: TrafficSource) -> LoadResult:
        """Run all workers to completion; returns the pooled result."""
        sim = source.sim
        for worker in range(self.concurrency):
            sim.process(self._worker(source), name=f"ab-worker-{worker}")
        sim.run()
        return self.result

    def _worker(self, source: TrafficSource) -> _t.Generator:
        sim = source.sim
        while self._remaining > 0:
            self._remaining -= 1
            request = HttpRequest("GET", self.uri)
            request.request_id = self.ids.next_id()
            start = sim.now
            status: _t.Optional[int] = None
            error: _t.Optional[str] = None
            try:
                response = yield from source.client.call(request)
                status = response.status
            except Exception as exc:  # noqa: BLE001 - record, keep loading
                error = type(exc).__name__
            self.result.add(
                Sample(
                    request_id=request.request_id or "",
                    start=start,
                    elapsed=sim.now - start,
                    status=status,
                    error=error,
                )
            )
