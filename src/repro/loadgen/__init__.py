"""Load generation: closed-loop, open-loop (Poisson), and an ab-like tool."""

from repro.loadgen.bench_tool import ApacheBench
from repro.loadgen.workload import ClosedLoopLoad, LoadResult, OpenLoopLoad, Sample

__all__ = ["ApacheBench", "ClosedLoopLoad", "LoadResult", "OpenLoopLoad", "Sample"]
