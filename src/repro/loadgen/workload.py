"""Workload generators driving test traffic through a deployment.

The paper (Section 6) leaves test-input generation to the operator or
to "standard load-generation tools"; these classes are those tools for
the simulated world.  Both shapes used by the evaluation are covered:

* :class:`ClosedLoopLoad` — one logical user issuing requests
  back-to-back (optionally with think time): the shape of "injected
  100 test requests into the system" (Fig 5-7).
* :class:`OpenLoopLoad` — Poisson arrivals at a target rate, each
  request independent: the shape needed for overload and bulkhead
  experiments where concurrency matters.

Every request is tagged with a fresh ID from a
:class:`~repro.tracing.RequestIdGenerator` (default prefix ``test-``),
so fault rules scoped to test traffic match it.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.http.message import HttpRequest
from repro.microservice.app import TrafficSource
from repro.tracing.context import RequestIdGenerator

__all__ = ["Sample", "LoadResult", "ClosedLoopLoad", "OpenLoopLoad"]


@dataclasses.dataclass(frozen=True)
class Sample:
    """One completed request as the load generator saw it."""

    request_id: str
    start: float
    elapsed: float
    #: HTTP status, or None when the call raised.
    status: _t.Optional[int]
    #: Exception class name when the call raised, else None.
    error: _t.Optional[str]

    @property
    def ok(self) -> bool:
        """True for a 2xx outcome."""
        return self.status is not None and 200 <= self.status < 300


class LoadResult:
    """Accumulates samples and computes summary statistics."""

    def __init__(self) -> None:
        self.samples: list[Sample] = []

    def add(self, sample: Sample) -> None:
        """Record one completed request."""
        self.samples.append(sample)

    @property
    def latencies(self) -> list[float]:
        """Elapsed times of all samples, in completion order."""
        return [sample.elapsed for sample in self.samples]

    @property
    def statuses(self) -> list[_t.Optional[int]]:
        """Status codes (None for errored calls)."""
        return [sample.status for sample in self.samples]

    @property
    def error_count(self) -> int:
        """Samples that raised instead of returning a response."""
        return sum(1 for sample in self.samples if sample.error is not None)

    @property
    def success_rate(self) -> float:
        """Fraction of samples with 2xx outcomes."""
        if not self.samples:
            return 0.0
        return sum(1 for sample in self.samples if sample.ok) / len(self.samples)

    def __len__(self) -> int:
        return len(self.samples)

    def __repr__(self) -> str:
        return (
            f"<LoadResult n={len(self.samples)} ok={self.success_rate:.0%}"
            f" errors={self.error_count}>"
        )


class ClosedLoopLoad:
    """Sequential requests from one logical user.

    Parameters
    ----------
    num_requests:
        How many requests to issue.
    think_time:
        Virtual seconds between a response and the next request.
    uri:
        Request URI (every request identical apart from its ID).
    ids:
        Request-ID generator; defaults to a fresh ``test-`` stream.
    """

    def __init__(
        self,
        num_requests: int,
        think_time: float = 0.0,
        uri: str = "/",
        ids: _t.Optional[RequestIdGenerator] = None,
    ) -> None:
        if num_requests < 1:
            raise ValueError(f"num_requests must be >= 1, got {num_requests}")
        if think_time < 0:
            raise ValueError(f"think_time must be >= 0, got {think_time}")
        self.num_requests = num_requests
        self.think_time = think_time
        self.uri = uri
        self.ids = ids if ids is not None else RequestIdGenerator()
        self.result = LoadResult()

    def driver(self, source: TrafficSource) -> _t.Generator:
        """The simulation process issuing the requests."""
        sim = source.sim
        for _ in range(self.num_requests):
            request = HttpRequest("GET", self.uri)
            request.request_id = self.ids.next_id()
            start = sim.now
            status: _t.Optional[int] = None
            error: _t.Optional[str] = None
            try:
                response = yield from source.client.call(request)
                status = response.status
            except Exception as exc:  # noqa: BLE001 - record, keep loading
                error = type(exc).__name__
            self.result.add(
                Sample(
                    request_id=request.request_id or "",
                    start=start,
                    elapsed=sim.now - start,
                    status=status,
                    error=error,
                )
            )
            if self.think_time > 0:
                yield sim.timeout(self.think_time)

    def run(self, source: TrafficSource) -> LoadResult:
        """Convenience: start the driver and run the simulator to idle."""
        sim = source.sim
        sim.process(self.driver(source), name="closed-loop-load")
        sim.run()
        return self.result


class OpenLoopLoad:
    """Poisson arrivals at ``rate`` req/s for ``duration`` seconds.

    Each request runs in its own process, so slow responses do not
    suppress the arrival rate — the defining property of open-loop
    load, and the reason it exposes queueing collapse where closed-loop
    load cannot.
    """

    def __init__(
        self,
        rate: float,
        duration: float,
        uri: str = "/",
        ids: _t.Optional[RequestIdGenerator] = None,
        rng_stream: str = "loadgen.openloop",
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        if duration <= 0:
            raise ValueError(f"duration must be > 0, got {duration}")
        self.rate = rate
        self.duration = duration
        self.uri = uri
        self.ids = ids if ids is not None else RequestIdGenerator()
        self.rng_stream = rng_stream
        self.result = LoadResult()

    def driver(self, source: TrafficSource) -> _t.Generator:
        """Arrival process: spawns one process per request."""
        sim = source.sim
        rng = sim.rng(self.rng_stream)
        deadline = sim.now + self.duration
        while sim.now < deadline:
            sim.process(self._one_request(source), name="open-loop-request")
            yield sim.timeout(rng.expovariate(self.rate))

    def _one_request(self, source: TrafficSource) -> _t.Generator:
        sim = source.sim
        request = HttpRequest("GET", self.uri)
        request.request_id = self.ids.next_id()
        start = sim.now
        status: _t.Optional[int] = None
        error: _t.Optional[str] = None
        try:
            response = yield from source.client.call(request)
            status = response.status
        except Exception as exc:  # noqa: BLE001 - record, keep loading
            error = type(exc).__name__
        self.result.add(
            Sample(
                request_id=request.request_id or "",
                start=start,
                elapsed=sim.now - start,
                status=status,
                error=error,
            )
        )

    def run(self, source: TrafficSource) -> LoadResult:
        """Convenience: start the arrival process and run to idle."""
        sim = source.sim
        sim.process(self.driver(source), name="open-loop-load")
        sim.run()
        return self.result
