"""Shared exception hierarchy for the Gremlin reproduction.

Every package in :mod:`repro` raises exceptions rooted at
:class:`ReproError` so that callers can catch framework errors without
accidentally swallowing programming errors (``TypeError`` etc.).

The network- and HTTP-level exceptions deliberately mirror what a real
microservice client observes when a remote dependency fails, because the
paper's fault model (Section 3.1) is defined in exactly those terms:
delayed responses, error responses, invalid responses, connection
timeouts, and failure to establish the connection.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` framework."""


class SimulationError(ReproError):
    """Base class for errors raised by the discrete-event kernel."""


class StaleEventError(SimulationError):
    """An event was triggered (succeeded or failed) more than once."""


class ProcessKilled(SimulationError):
    """Raised inside a process generator when it is forcibly killed."""


class NetworkError(ReproError):
    """Base class for simulated transport-level failures.

    These are the errors a microservice's HTTP client can observe; the
    Gremlin fault primitives are designed to provoke exactly these.
    """


class ConnectionRefusedError_(NetworkError):
    """No listener is bound at the destination address."""


class ConnectionResetError_(NetworkError):
    """The peer (or a fault rule with ``Error=-1``) reset the connection
    at the TCP level, returning no application-level error code."""


class ConnectionTimeoutError(NetworkError):
    """The connection could not be established in bounded time, e.g.
    because the destination host is partitioned away or blackholed."""


class HostUnreachableError(NetworkError):
    """The destination host does not exist on the simulated network."""


class HttpError(ReproError):
    """Base class for HTTP-layer errors."""


class CodecError(HttpError):
    """A wire-format payload could not be parsed back into a message.

    Raised when a ``Modify`` fault corrupts a message beyond what the
    receiving side can interpret — the 'invalid responses' entry of the
    paper's fault model.
    """


class RequestTimeoutError(HttpError):
    """A client-side per-call timeout expired before the response
    arrived.  Carries the elapsed virtual time for diagnostics."""

    def __init__(self, message: str = "request timed out", elapsed: float | None = None):
        super().__init__(message)
        self.elapsed = elapsed


class CircuitOpenError(HttpError):
    """A call was rejected locally because the circuit breaker guarding
    the destination dependency is open."""


class BulkheadFullError(HttpError):
    """A call was rejected locally because the bulkhead (per-dependency
    concurrency pool) for the destination is exhausted."""


class RegistryError(ReproError):
    """Base class for service-registry errors."""


class ServiceNotFoundError(RegistryError):
    """A lookup named a service with no registered instances."""


class GremlinError(ReproError):
    """Base class for errors raised by the Gremlin control/data plane."""


class RuleValidationError(GremlinError):
    """A fault-injection rule failed validation (unknown fault type,
    missing mandatory parameter, bad probability, ...)."""


class RecipeError(GremlinError):
    """A recipe is malformed or referenced services absent from the
    logical application graph."""


class OrchestrationError(GremlinError):
    """The Failure Orchestrator could not program the data plane, e.g.
    a rule names a source service with no deployed agent."""


class AssertionQueryError(GremlinError):
    """An assertion-checker query was malformed (unknown field, bad
    time window, ...)."""


class CampaignError(GremlinError):
    """A test campaign could not be planned, executed, loaded or
    diffed (duplicate recipe names, unknown entry service, corrupt
    campaign dump, mismatched diff inputs, ...)."""


class CampaignTimeoutError(CampaignError):
    """One recipe of a campaign exceeded its wall-clock budget; the
    runner records the recipe as ``timeout`` and moves on."""


class ExploreError(GremlinError):
    """The fault-space exploration layer was misused (unknown seeded
    app, malformed coordinate, unserializable fault primitive, ...)."""


class ObservabilityError(ReproError):
    """Base class for errors raised by the observability subsystem
    (metrics registry, trace reconstruction, fault attribution)."""


class MetricsError(ObservabilityError):
    """A metric was registered or merged inconsistently, e.g. the same
    series name re-registered with different bucket boundaries, or two
    histogram snapshots with incompatible buckets merged."""


class TraceError(ObservabilityError):
    """A causal tree could not be reconstructed from span records,
    e.g. duplicate span IDs or a request ID with no recorded spans."""


class AnalysisError(ReproError, ValueError):
    """A statistics helper was fed an unusable sample, e.g. an empty
    series passed to a percentile.

    Subclasses ``ValueError`` as well so long-standing callers that
    guard analysis calls with ``except ValueError`` keep working.
    """
