"""The Failure Orchestrator (paper Section 4.2).

    "The Failure Orchestrator sends fault-injection actions to the
    Gremlin data plane agents through an out-of-band control channel.
    Since an application might have multiple instances of any given
    service, the Failure Orchestrator locates and configures all
    physical instances of the Gremlin agents."

Locating instances goes through the deployment's agent inventory (the
registry equivalent); each agent is programmed over its
:class:`~repro.agent.control_api.AgentControlChannel`, i.e. every rule
really crosses a serialize/parse/validate boundary.  Wall-clock timing
of :meth:`apply` is what the Figure 7 benchmark reports as
"orchestration" time.
"""

from __future__ import annotations

import dataclasses
import time
import typing as _t

from repro.agent.control_api import AgentControlChannel
from repro.agent.proxy import GremlinAgent
from repro.agent.rules import FaultRule
from repro.errors import OrchestrationError

__all__ = ["InstallationReport", "FailureOrchestrator"]


@dataclasses.dataclass
class InstallationReport:
    """What one :meth:`FailureOrchestrator.apply` call did."""

    #: Rules requested, in priority order.
    rules: list[FaultRule]
    #: agent instance id -> rule ids installed there.
    installed: dict[str, list[int]]
    #: Wall-clock seconds spent programming the data plane.
    wall_time: float

    @property
    def agents_programmed(self) -> int:
        """Number of distinct agents that received at least one rule."""
        return len(self.installed)

    @property
    def rules_installed(self) -> int:
        """Total rule installations across all agents."""
        return sum(len(ids) for ids in self.installed.values())


class FailureOrchestrator:
    """Programs fault rules onto every relevant agent instance."""

    def __init__(self, agents: _t.Sequence[GremlinAgent]) -> None:
        self._channels: dict[str, list[AgentControlChannel]] = {}
        for agent in agents:
            self._channels.setdefault(agent.owner_service, []).append(
                AgentControlChannel(agent)
            )

    @classmethod
    def for_deployment(cls, deployment) -> "FailureOrchestrator":
        """Build from a :class:`~repro.microservice.app.Deployment`."""
        return cls(deployment.agents)

    def channels_for(self, service: str) -> list[AgentControlChannel]:
        """Control channels of every agent instance owned by ``service``."""
        return list(self._channels.get(service, []))

    def apply(self, rules: _t.Sequence[FaultRule]) -> InstallationReport:
        """Install ``rules`` on all physical instances of each source.

        A rule whose source service has no deployed agent is a hard
        error — silently skipping it would report a test as passed
        without the fault ever being injected.

        Atomicity: if any installation fails part-way, everything
        installed by *this call* is rolled back before the error
        propagates, so a failed apply never leaves the data plane
        injecting half an outage.
        """
        start = time.perf_counter()
        installed: dict[str, list[int]] = {}
        applied: list[tuple[AgentControlChannel, int]] = []
        try:
            for rule in rules:
                channels = self._channels.get(rule.src)
                if not channels:
                    raise OrchestrationError(
                        f"no Gremlin agent deployed for source service {rule.src!r};"
                        f" cannot inject {rule}"
                    )
                for channel in channels:
                    rule_id = channel.push_rule(rule)
                    applied.append((channel, rule_id))
                    installed.setdefault(channel.owner_instance, []).append(rule_id)
        except Exception:
            for channel, rule_id in applied:
                channel.agent.remove_rule(rule_id)
            raise
        wall = time.perf_counter() - start
        return InstallationReport(rules=list(rules), installed=installed, wall_time=wall)

    def clear_all(self) -> float:
        """Remove every rule from every agent; returns wall seconds."""
        start = time.perf_counter()
        for channels in self._channels.values():
            for channel in channels:
                channel.clear()
        return time.perf_counter() - start

    def __repr__(self) -> str:
        return (
            f"<FailureOrchestrator services={list(self._channels)}"
            f" agents={sum(len(c) for c in self._channels.values())}>"
        )
