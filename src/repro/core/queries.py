"""Assertion-checker queries (top block of paper Table 3).

``GetRequests`` and ``GetReplies`` fetch filtered, time-sorted
observation lists ("RList") from the event store; everything else in
the assertion layer operates on those lists.  The functions mirror the
paper's signatures::

    GetRequests(Src, Dst, ID)   GetReplies(Src, Dst, ID)

with optional time-window bounds added so chained recipes can scope a
query to one failure phase.
"""

from __future__ import annotations

import typing as _t

from repro.logstore.query import Query
from repro.logstore.record import ObservationKind, ObservationRecord
from repro.logstore.store import EventStore

__all__ = [
    "RList",
    "StoreLike",
    "QueryCache",
    "get_requests",
    "get_replies",
    "observed_status",
    "observed_latency",
]

#: An RList is a time-sorted list of observation records.  RLists are
#: read-only by convention: assertion code never mutates one, which is
#: what lets :class:`QueryCache` hand the same list to every consumer.
RList = _t.List[ObservationRecord]


class QueryCache:
    """Memoizing read-through façade over an event store.

    The paper's checker issues one Elasticsearch query per assertion
    step; a recipe's checks typically scope to the same few
    ``(src, dst, kind)`` slices, so the checker used to re-fetch the
    same records once per step.  Wrapping the store in a ``QueryCache``
    for the duration of one evaluation batch fetches each distinct
    :class:`~repro.logstore.query.Query` exactly once (``Query`` is a
    frozen dataclass, hence hashable) and evaluates every step against
    the shared slice.

    A cache is only valid while the underlying store is quiescent:
    create one after the log pipeline has drained, run the checks, and
    drop it.  ``hits``/``misses`` expose the sharing for reports and
    tests — ``misses`` is the number of distinct scopes actually
    fetched.
    """

    def __init__(self, store: EventStore) -> None:
        self.store = store
        self._results: dict[Query, RList] = {}
        self.hits = 0
        self.misses = 0

    def search(self, query: Query) -> RList:
        """Matching records, fetched once per distinct query."""
        cached = self._results.get(query)
        if cached is None:
            cached = self._results[query] = self.store.search(query)
            self.misses += 1
        else:
            self.hits += 1
        return cached

    def count(self, query: Query) -> int:
        """Number of matching records (cached alongside search)."""
        return len(self.search(query))

    def __repr__(self) -> str:
        return f"<QueryCache scopes={self.misses} hits={self.hits}>"


#: Anything the assertion layer can query: a raw store or a cache.
StoreLike = _t.Union[EventStore, QueryCache]


def get_requests(
    store: StoreLike,
    src: str,
    dst: str,
    id_pattern: str = "*",
    since: _t.Optional[float] = None,
    until: _t.Optional[float] = None,
) -> RList:
    """All observed requests from ``src`` to ``dst``, sorted by time.

    ``id_pattern`` is a glob over the request ID (``'test-*'``), as in
    the paper's rule examples.
    """
    return store.search(
        Query(
            kind=ObservationKind.REQUEST,
            src=src,
            dst=dst,
            id_pattern=id_pattern,
            since=since,
            until=until,
        )
    )


def get_replies(
    store: StoreLike,
    src: str,
    dst: str,
    id_pattern: str = "*",
    since: _t.Optional[float] = None,
    until: _t.Optional[float] = None,
) -> RList:
    """All observed replies for ``src``'s calls to ``dst``.

    Reply records live at the *caller's* agent (the sidecar handles the
    caller's outbound traffic), so ``src``/``dst`` have the same
    orientation as in :func:`get_requests`.
    """
    return store.search(
        Query(
            kind=ObservationKind.REPLY,
            src=src,
            dst=dst,
            id_pattern=id_pattern,
            since=since,
            until=until,
        )
    )


def observed_status(record: ObservationRecord, with_rule: bool) -> _t.Optional[int]:
    """The status a record "returned", under either accounting view.

    ``with_rule=True`` is the caller-observed view: statuses
    synthesized by Gremlin's Abort count.  ``with_rule=False`` is the
    callee-actual view: a Gremlin-synthesized outcome is treated as no
    reply at all (status ``None``), exposing the callee's untampered
    behaviour.
    """
    if record.status is None:
        return None
    if not with_rule and _gremlin_synthesized(record):
        return None
    return record.status


def observed_latency(record: ObservationRecord, with_rule: bool) -> _t.Optional[float]:
    """A reply record's latency under either accounting view.

    ``with_rule=True``: as the caller experienced it, Gremlin delays
    included.  ``with_rule=False``: the callee's actual service time —
    injected delay subtracted, and Gremlin-synthesized replies excluded
    entirely (``None``).
    """
    if record.latency is None:
        return None
    if with_rule:
        return record.latency
    if _gremlin_synthesized(record):
        return None
    return record.actual_latency


def _gremlin_synthesized(record: ObservationRecord) -> bool:
    if record.gremlin_generated:
        return True
    # Request records carry the outcome in-place; an abort fault on the
    # request means the recorded status came from Gremlin, not the callee.
    return record.fault_applied is not None and "abort" in record.fault_applied
