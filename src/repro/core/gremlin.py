"""The Gremlin facade: control plane wired to one deployment.

Ties together the Recipe Translator, Failure Orchestrator and
Assertion Checker (paper Figure 2) and exposes both interaction
styles:

* **declarative** — :meth:`Gremlin.run_recipe` stages the scenarios,
  drives the load, waits for logs to land, evaluates every check, and
  cleans up; returns a :class:`~repro.core.recipe.RecipeResult`.
* **imperative** — :meth:`inject` / :meth:`check` / :meth:`clear` let
  the operator write the paper's *chained failures* (Section 4.2):
  inject an Overload, test for bounded retries, and only then escalate
  to a Crash and test the circuit breaker.
"""

from __future__ import annotations

import time
import typing as _t

from repro.core.orchestrator import FailureOrchestrator, InstallationReport
from repro.core.patterns import CheckResult, PatternCheck
from repro.core.queries import QueryCache, RList, get_replies, get_requests
from repro.core.recipe import Recipe, RecipeResult
from repro.core.scenarios import FailureScenario
from repro.core.translator import RecipeTranslator
from repro.microservice.app import Deployment

__all__ = ["Gremlin"]


class Gremlin:
    """Control plane bound to a running deployment."""

    def __init__(self, deployment: Deployment) -> None:
        self.deployment = deployment
        self.translator = RecipeTranslator(deployment.graph)
        self.orchestrator = FailureOrchestrator(deployment.agents)

    @property
    def sim(self):
        """The deployment's simulator."""
        return self.deployment.sim

    @property
    def store(self):
        """The deployment's centralized event store."""
        return self.deployment.store

    # -- imperative API ---------------------------------------------------------

    def inject(
        self, *scenarios: FailureScenario
    ) -> InstallationReport:
        """Translate scenarios and program every relevant agent."""
        rules = self.translator.translate(list(scenarios))
        return self.orchestrator.apply(rules)

    def clear(self) -> None:
        """Remove all injected faults from the data plane."""
        self.orchestrator.clear_all()

    def check(
        self,
        pattern_check: PatternCheck,
        since: _t.Optional[float] = None,
        until: _t.Optional[float] = None,
    ) -> CheckResult:
        """Evaluate one pattern check against the current logs."""
        self.deployment.pipeline.flush()
        return pattern_check.run(self.store, since=since, until=until)

    def get_requests(self, src: str, dst: str, id_pattern: str = "*", **kwargs) -> RList:
        """Table 3's ``GetRequests`` bound to this deployment's store."""
        self.deployment.pipeline.flush()
        return get_requests(self.store, src, dst, id_pattern, **kwargs)

    def get_replies(self, src: str, dst: str, id_pattern: str = "*", **kwargs) -> RList:
        """Table 3's ``GetReplies`` bound to this deployment's store."""
        self.deployment.pipeline.flush()
        return get_replies(self.store, src, dst, id_pattern, **kwargs)

    # -- declarative API ------------------------------------------------------------

    def run_recipe(self, recipe: Recipe) -> RecipeResult:
        """Execute a full recipe: inject -> load -> settle -> check -> clean.

        Wall-clock timing: ``orchestration_time`` covers translating
        the scenarios and programming the agents; ``assertion_time``
        covers evaluating every check.  Virtual time: the failure
        window spans from injection until the load (plus ``settle``)
        has run, and checks are scoped to that window so repeated
        recipes against one deployment do not see each other's traffic.
        """
        sim = self.sim
        window_start = sim.now

        orch_start = time.perf_counter()
        rules = self.translator.translate(list(recipe.scenarios))
        report = self.orchestrator.apply(rules)
        orchestration_time = time.perf_counter() - orch_start

        if recipe.load is not None:
            sim.process(recipe.load(self.deployment), name=f"load/{recipe.name}")
            sim.run()
        if recipe.settle > 0:
            sim.run(until=sim.now + recipe.settle)
        # Let shipped logs land before querying (logstash drain).
        drained = self.deployment.pipeline.drained()
        if not drained.triggered:
            sim.run()
        window_end = sim.now

        assert_start = time.perf_counter()
        # One scan per distinct scope: the suite's checks are grouped by
        # the (src, dst, kind) slices they declare, each slice is
        # fetched once through a shared cache, and every assertion step
        # evaluates against the shared RList.
        cache = QueryCache(self.store)
        for check in recipe.checks:
            for scope in check.scopes(since=window_start, until=window_end):
                cache.search(scope)
        outcomes = [
            check.run(cache, since=window_start, until=window_end)
            for check in recipe.checks
        ]
        assertion_time = time.perf_counter() - assert_start

        self.orchestrator.clear_all()
        return RecipeResult(
            recipe=recipe,
            checks=outcomes,
            installed=report.installed,
            orchestration_time=orchestration_time,
            assertion_time=assertion_time,
            window=(window_start, window_end),
            distinct_scopes=cache.misses,
            shared_fetches=cache.hits,
        )

    def run_recipes(
        self, recipes: _t.Sequence[Recipe], settle_between: float = 0.0
    ) -> list[RecipeResult]:
        """Run a suite of recipes back to back.

        ``settle_between`` adds idle virtual time between recipes so
        client-side state (breaker windows, backoffs) relaxes before
        the next experiment — the hygiene a real test campaign needs.
        """
        results = []
        for index, recipe in enumerate(recipes):
            if index > 0 and settle_between > 0:
                self.sim.run(until=self.sim.now + settle_between)
            results.append(self.run_recipe(recipe))
        return results

    @staticmethod
    def suite_report(results: _t.Sequence[RecipeResult]) -> str:
        """Multi-recipe summary: one line per recipe plus totals."""
        lines = []
        passed = 0
        for result in results:
            mark = "PASS" if result.passed else "FAIL"
            if result.passed:
                passed += 1
            lines.append(
                f"  [{mark}] {result.recipe.name}"
                f" (orch {result.orchestration_time * 1e3:.2f} ms,"
                f" assert {result.assertion_time * 1e3:.2f} ms,"
                f" {len(result.checks)} checks)"
            )
        lines.append(f"  {passed}/{len(results)} recipes passed")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"<Gremlin deployment={self.deployment.application.name!r}>"
