"""A Chaos-Monkey-style randomized fault injector (baseline).

Paper Section 8.1 positions Gremlin against Netflix's Chaos Monkey:

    "Chaos Monkey is a randomized fault-injection tool ... However, the
    tool lacks support for automatically analyzing application
    behavior, which is necessary to quickly zero in on implementation
    bugs.  Moreover, faults injected by Chaos Monkey cannot be
    constrained to a subset of requests or services."

This module implements that baseline so the comparison is executable:
:class:`ChaosMonkey` repeatedly picks a *random* service and kills it
for a while (by stopping its instances — service-scoped, like the real
tool, not request-scoped), with no assertion checking of its own.  The
comparison benchmark measures how many random rounds it takes to
stumble onto the failure mode a single targeted Gremlin recipe stages
directly.
"""

from __future__ import annotations

import dataclasses
import random as _random
import typing as _t

from repro.microservice.app import Deployment

__all__ = ["ChaosEvent", "ChaosMonkey"]


@dataclasses.dataclass(frozen=True)
class ChaosEvent:
    """One randomized kill: which service, when, for how long."""

    service: str
    start: float
    duration: float


class ChaosMonkey:
    """Randomized service killer over a deployment.

    Parameters
    ----------
    candidates:
        Services eligible for termination; defaults to every service in
        the deployment (Chaos Monkey does not discriminate).
    mean_interval:
        Mean virtual seconds between kills (exponentially distributed).
    outage_duration:
        How long a killed service stays down before it is restarted.
    seed:
        Explicit RNG seed for the monkey's own draws.  When given, the
        kill schedule depends only on this seed (identical across
        deployments with different simulator seeds); when omitted, the
        monkey draws from the deployment's named ``rng_stream`` as
        before, so existing behaviour is unchanged.
    """

    def __init__(
        self,
        deployment: Deployment,
        candidates: _t.Optional[_t.Sequence[str]] = None,
        mean_interval: float = 5.0,
        outage_duration: float = 2.0,
        rng_stream: str = "chaosmonkey",
        seed: _t.Optional[int] = None,
    ) -> None:
        if mean_interval <= 0:
            raise ValueError(f"mean_interval must be > 0, got {mean_interval}")
        if outage_duration <= 0:
            raise ValueError(f"outage_duration must be > 0, got {outage_duration}")
        self.deployment = deployment
        self.candidates = (
            list(candidates) if candidates is not None else list(deployment.instances)
        )
        if not self.candidates:
            raise ValueError("no candidate services to terminate")
        self.mean_interval = mean_interval
        self.outage_duration = outage_duration
        self._rng = (
            _random.Random(seed) if seed is not None else deployment.sim.rng(rng_stream)
        )
        #: Every kill performed, in order.
        self.events: list[ChaosEvent] = []
        self._running = False

    def unleash(self, duration: float) -> None:
        """Start killing random services for ``duration`` virtual seconds.

        Runs as a simulation process; drive the simulator (e.g. with a
        load generator) to let it act.
        """
        if self._running:
            raise RuntimeError("this monkey is already unleashed")
        self._running = True
        self.deployment.sim.process(self._rampage(duration), name="chaos-monkey")

    def kill_once(self) -> ChaosEvent:
        """Kill one random service immediately (restarts itself after
        the outage duration).  Returns the event."""
        sim = self.deployment.sim
        service = self._rng.choice(self.candidates)
        event = ChaosEvent(service=service, start=sim.now, duration=self.outage_duration)
        self.events.append(event)
        instances = self.deployment.instances_of(service)
        for instance in instances:
            instance.stop()

        def _restart(_ev) -> None:
            for instance in instances:
                if not instance.running:
                    instance.start()

        sim.timeout(self.outage_duration).add_callback(_restart)
        return event

    def _rampage(self, duration: float) -> _t.Generator:
        sim = self.deployment.sim
        deadline = sim.now + duration
        while sim.now < deadline:
            yield sim.timeout(self._rng.expovariate(1.0 / self.mean_interval))
            if sim.now >= deadline:
                break
            self.kill_once()
        self._running = False

    def __repr__(self) -> str:
        return (
            f"<ChaosMonkey candidates={self.candidates}"
            f" kills={len(self.events)}>"
        )
