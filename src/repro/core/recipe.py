"""Recipes and their results.

A :class:`Recipe` is the operator-facing test description of paper
Section 3.2: an outage scenario (one or more
:class:`~repro.core.scenarios.FailureScenario`), the load to inject,
and the assertions (:class:`~repro.core.patterns.PatternCheck`) on how
the microservices must react.  :class:`RecipeResult` carries per-check
outcomes plus the orchestration/assertion wall-clock split that the
Figure 7 benchmark reports.

Recipes here are declarative; the *chained failures* style of Section
4.2 (inject, check, decide, inject again) is written imperatively
against the :class:`~repro.core.gremlin.Gremlin` facade — Python is the
recipe language in both the paper and this reproduction.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.core.patterns import CheckResult, PatternCheck
from repro.core.scenarios import FailureScenario
from repro.errors import RecipeError

__all__ = ["Recipe", "RecipeResult"]

#: Load callables receive the deployment and return a generator to run
#: as a simulation process (e.g. a loadgen driver).
LoadFactory = _t.Callable[[_t.Any], _t.Generator]


@dataclasses.dataclass
class Recipe:
    """One declarative resilience test.

    Parameters
    ----------
    name:
        Identifier for reports.
    scenarios:
        Failure scenarios to stage, in priority order.
    checks:
        Pattern checks to validate after the failure window.
    load:
        Optional callable building the test-load process; when omitted
        the operator drives load manually before checking.
    settle:
        Extra virtual seconds to run after the load finishes, letting
        in-flight retries/backoffs and the log pipeline settle.
    """

    name: str
    scenarios: _t.Sequence[FailureScenario]
    checks: _t.Sequence[PatternCheck] = ()
    load: _t.Optional[LoadFactory] = None
    settle: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise RecipeError("recipe needs a name")
        # Normalize to tuples so two recipes built from a list and a
        # tuple of equal elements compare equal (dataclass __eq__) —
        # the contract the fuzzer's JSON round-trip tests rely on.
        self.scenarios = tuple(self.scenarios)
        self.checks = tuple(self.checks)
        if not self.scenarios:
            raise RecipeError(f"recipe {self.name!r} has no failure scenarios")
        for scenario in self.scenarios:
            if not isinstance(scenario, FailureScenario):
                raise RecipeError(
                    f"recipe {self.name!r}: {scenario!r} is not a FailureScenario"
                )
        for check in self.checks:
            if not isinstance(check, PatternCheck):
                raise RecipeError(f"recipe {self.name!r}: {check!r} is not a PatternCheck")


@dataclasses.dataclass
class RecipeResult:
    """Everything a recipe execution produced."""

    recipe: Recipe
    #: Per-check outcomes, in recipe order.
    checks: list[CheckResult]
    #: Rules installed, per agent instance.
    installed: dict[str, list[int]]
    #: Wall-clock seconds programming the data plane (Fig 7 x-axis).
    orchestration_time: float
    #: Wall-clock seconds evaluating all assertions (Fig 7 series 2).
    assertion_time: float
    #: Virtual time span [start, end] of the failure window.
    window: tuple[float, float]
    #: Distinct store scopes fetched while evaluating the check suite.
    distinct_scopes: int = 0
    #: Query evaluations answered from the shared per-recipe cache.
    shared_fetches: int = 0

    @property
    def passed(self) -> bool:
        """True when every check passed."""
        return all(check.passed for check in self.checks)

    @property
    def failures(self) -> list[CheckResult]:
        """The checks that did not pass."""
        return [check for check in self.checks if not check.passed]

    def report(self) -> str:
        """Human-readable multi-line summary."""
        lines = [
            f"recipe {self.recipe.name!r}: {'PASS' if self.passed else 'FAIL'}",
            f"  scenarios: {', '.join(s.describe() for s in self.recipe.scenarios)}",
            f"  orchestration: {self.orchestration_time * 1e3:.2f} ms"
            f" ({sum(len(v) for v in self.installed.values())} rule installs"
            f" on {len(self.installed)} agents)",
            f"  assertions:   {self.assertion_time * 1e3:.2f} ms"
            f" ({self.distinct_scopes} scopes fetched,"
            f" {self.shared_fetches} shared)",
        ]
        for check in self.checks:
            lines.append(f"  {check}")
        return "\n".join(lines)
