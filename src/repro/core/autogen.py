"""Automatic recipe generation (paper Section 9, future work).

    "Given semantic annotations to the application graph, it might be
    possible to automatically identify microservices and resiliency
    patterns in need of testing, then construct and run appropriate
    recipes."

This module implements that sketch: :func:`generate_recipes` walks the
logical application graph and, for every caller/callee edge, emits the
recipes that would validate the four resiliency patterns on that edge
— an Overload probing bounded retries, a Crash probing the circuit
breaker, a Hang probing timeouts, and (for callers with several
dependencies) a Degrade probing the bulkhead.

Annotations let operators tune the generator per service::

    annotations = {
        "mysql":  EdgeAnnotation(criticality="high"),
        "github": EdgeAnnotation(skip=True),       # third party, don't test
    }

Skipped services generate nothing; high-criticality callees get the
Crash, RetryStorm, and GrayFailure recipes on top of the Overload,
others only the Overload.  Opt-in flags add a ResourceExhaustion probe
(``shed_capacity``), a Misconfiguration probe (``config_risk``), and a
NoOpControl calibration recipe (``control``) whose checks must pass on
a healthy build — a failing control flags a broken check, not a broken
service.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.core.patterns import (
    HasBoundedRetries,
    HasBulkhead,
    HasCircuitBreaker,
    HasTimeouts,
)
from repro.core.recipe import Recipe
from repro.core.scenarios import (
    Crash,
    Degrade,
    GrayFailure,
    Hang,
    Misconfiguration,
    NoOpControl,
    Overload,
    ResourceExhaustion,
    RetryStorm,
)
from repro.microservice.graph import ApplicationGraph

__all__ = ["EdgeAnnotation", "generate_recipes"]


@dataclasses.dataclass
class EdgeAnnotation:
    """Operator guidance for auto-generation around one service."""

    #: "high" adds crash/breaker, retry-storm, and gray-failure recipes
    #: on top of the overload/retry ones.
    criticality: str = "normal"
    #: Don't generate recipes that fault this service (e.g. third party
    #: endpoints billed per call).
    skip: bool = False
    #: Requests this service absorbs before load-shedding 429s; when
    #: set, generates a ResourceExhaustion recipe probing caller retry
    #: discipline against shed responses.
    shed_capacity: _t.Optional[int] = None
    #: This service's config churns often (endpoints renamed, replies
    #: reshaped); generates a Misconfiguration recipe.
    config_risk: bool = False
    #: Generate a NoOpControl calibration recipe: rules install but
    #: never fire, so every check must pass on a healthy build.
    control: bool = False
    #: Expected retry bound for generated HasBoundedRetries checks.
    max_tries: int = 5
    #: Expected caller answer deadline for generated HasTimeouts checks.
    max_latency: float = 2.0
    #: Breaker parameters for generated HasCircuitBreaker checks.
    breaker_threshold: int = 5
    breaker_window: float = 10.0


def generate_recipes(
    graph: ApplicationGraph,
    annotations: _t.Optional[dict[str, EdgeAnnotation]] = None,
    entry_services: _t.Optional[_t.Sequence[str]] = None,
) -> list[Recipe]:
    """Emit a recipe per (pattern, edge) worth testing.

    ``entry_services`` marks user-facing services whose response-time
    bound matters most; they get the HasTimeouts check in Hang recipes.
    Defaults to the graph's entry nodes.
    """
    annotations = annotations or {}
    if entry_services is None:
        entry_services = graph.entry_services()
    recipes: list[Recipe] = []

    for callee in graph.services():
        note = annotations.get(callee, EdgeAnnotation())
        if note.skip:
            continue
        callers = graph.dependents(callee)
        if not callers:
            continue  # nothing observes this service failing

        retry_checks = [
            HasBoundedRetries(caller, callee, annotations.get(caller, note).max_tries)
            for caller in callers
        ]
        recipes.append(
            Recipe(
                name=f"auto/overload-{callee}",
                scenarios=[Overload(callee)],
                checks=retry_checks,
            )
        )

        hang_checks = [
            HasTimeouts(caller, annotations.get(caller, EdgeAnnotation()).max_latency)
            for caller in callers
            if caller in entry_services or graph.dependents(caller)
        ]
        if hang_checks:
            recipes.append(
                Recipe(
                    name=f"auto/hang-{callee}",
                    scenarios=[Hang(callee)],
                    checks=hang_checks,
                )
            )

        if note.criticality == "high":
            breaker_checks = [
                HasCircuitBreaker(
                    caller,
                    callee,
                    threshold=note.breaker_threshold,
                    tdelta=note.breaker_window,
                )
                for caller in callers
            ]
            recipes.append(
                Recipe(
                    name=f"auto/crash-{callee}",
                    scenarios=[Crash(callee)],
                    checks=breaker_checks,
                )
            )
            recipes.append(
                Recipe(
                    name=f"auto/retrystorm-{callee}",
                    scenarios=[RetryStorm(callee)],
                    checks=retry_checks,
                )
            )
            if hang_checks:
                recipes.append(
                    Recipe(
                        name=f"auto/grayfailure-{callee}",
                        scenarios=[GrayFailure(callee, interval="2s")],
                        checks=hang_checks,
                    )
                )

        multi_dependency_callers = [
            caller for caller in callers if len(graph.dependencies(caller)) > 1
        ]
        if multi_dependency_callers:
            recipes.append(
                Recipe(
                    name=f"auto/degrade-{callee}",
                    scenarios=[Degrade(callee, interval="2s")],
                    checks=[
                        HasBulkhead(caller, callee, rate=1.0)
                        for caller in multi_dependency_callers
                    ],
                )
            )

        if note.shed_capacity is not None:
            recipes.append(
                Recipe(
                    name=f"auto/exhaust-{callee}",
                    scenarios=[ResourceExhaustion(callee, shed_after=note.shed_capacity)],
                    checks=retry_checks,
                )
            )
        if note.config_risk:
            recipes.append(
                Recipe(
                    name=f"auto/misconfig-{callee}",
                    scenarios=[Misconfiguration(callee)],
                    checks=retry_checks,
                )
            )
        if note.control:
            recipes.append(
                Recipe(
                    name=f"auto/control-{callee}",
                    scenarios=[NoOpControl(callee)],
                    checks=retry_checks + hang_checks,
                )
            )
    return recipes
