"""The Recipe Translator (paper Section 4.2).

    "Internally, the translator breaks down the recipe into a set of
    fault-injection rules to be executed on the application's logical
    graph."

The translator is pure: scenarios + graph in, validated primitive
rules out.  It never touches the data plane — that is the Failure
Orchestrator's job — which keeps translation unit-testable and makes
the Figure 7 cost split (orchestration vs. assertion) measurable.
"""

from __future__ import annotations

import typing as _t

from repro.agent.rules import FaultRule
from repro.core.scenarios import FailureScenario
from repro.errors import RecipeError
from repro.microservice.graph import ApplicationGraph

__all__ = ["RecipeTranslator"]


class RecipeTranslator:
    """Decomposes high-level scenarios into primitive fault rules."""

    def __init__(self, graph: ApplicationGraph) -> None:
        self.graph = graph

    def translate(
        self, scenarios: _t.Union[FailureScenario, _t.Sequence[FailureScenario]]
    ) -> list[FaultRule]:
        """Translate one scenario or a sequence of them.

        Rules from multiple scenarios are concatenated in scenario
        order; agents apply the first matching rule, so scenario order
        is priority order — the property the Overload decomposition
        relies on.
        """
        if isinstance(scenarios, FailureScenario):
            scenarios = [scenarios]
        if not scenarios:
            raise RecipeError("recipe contains no failure scenarios")
        rules: list[FaultRule] = []
        for scenario in scenarios:
            if not isinstance(scenario, FailureScenario):
                raise RecipeError(
                    f"expected a FailureScenario, got {type(scenario).__name__}"
                )
            rules.extend(scenario.decompose(self.graph))
        return rules

    def affected_sources(self, rules: _t.Sequence[FaultRule]) -> list[str]:
        """The distinct source services whose agents need programming."""
        seen: dict[str, None] = {}
        for rule in rules:
            seen.setdefault(rule.src)
        return list(seen)

    def __repr__(self) -> str:
        return f"<RecipeTranslator graph={self.graph!r}>"
