"""High-level failure scenarios (paper Section 5, "Example recipes").

A :class:`FailureScenario` describes an outage in operator vocabulary
— *overload this service*, *crash that one*, *partition these groups*
— and decomposes into primitive :class:`~repro.agent.rules.FaultRule`
objects against the logical application graph, exactly the role of the
paper's Recipe Translator.

Every scenario takes a ``pattern`` confining injection to matching
request IDs (default ``'test-*'``), so production flows in the same
deployment pass untouched.
"""

from __future__ import annotations

import typing as _t

from repro.agent.rules import FaultRule, TCP_RESET, abort, delay, modify
from repro.errors import RecipeError
from repro.microservice.graph import ApplicationGraph
from repro.util import parse_duration

__all__ = [
    "FailureScenario",
    "AbortCalls",
    "DelayCalls",
    "ModifyReplies",
    "Disconnect",
    "Crash",
    "Hang",
    "Overload",
    "Degrade",
    "NetworkPartition",
    "FakeSuccess",
    "RetryStorm",
    "GrayFailure",
    "Misconfiguration",
    "ResourceExhaustion",
    "NoOpControl",
]


class FailureScenario:
    """Base class: a named outage decomposable into fault rules."""

    #: Human-readable scenario kind, set by subclasses.
    kind = "scenario"

    def decompose(self, graph: ApplicationGraph) -> list[FaultRule]:
        """Translate into primitive rules using the application graph."""
        raise NotImplementedError

    def describe(self) -> str:
        """One-line description for recipe reports."""
        return f"{self.kind}"

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.describe()}>"

    def __eq__(self, other: object) -> bool:
        """Structural equality: same scenario type, same parameters.

        Lets a recipe that round-tripped through the fuzzer's JSON
        repro artifact compare equal to the original.
        """
        if type(other) is not type(self):
            return NotImplemented
        return self.__dict__ == other.__dict__

    def __hash__(self) -> int:
        return hash((type(self).__name__, tuple(sorted(
            (key, repr(value)) for key, value in self.__dict__.items()
        ))))


class AbortCalls(FailureScenario):
    """Primitive passthrough: Abort on one caller/callee edge."""

    kind = "abort"

    def __init__(
        self,
        src: str,
        dst: str,
        error: int = 503,
        pattern: str = "test-*",
        on: str = "request",
        probability: float = 1.0,
        max_matches: _t.Optional[int] = None,
        skip_matches: int = 0,
    ) -> None:
        self.src = src
        self.dst = dst
        self.error = error
        self.pattern = pattern
        self.on = on
        self.probability = probability
        self.max_matches = max_matches
        self.skip_matches = skip_matches

    def decompose(self, graph: ApplicationGraph) -> list[FaultRule]:
        graph.validate_services([self.src, self.dst])
        return [
            abort(
                self.src,
                self.dst,
                error=self.error,
                pattern=self.pattern,
                on=self.on,
                probability=self.probability,
                max_matches=self.max_matches,
                skip_matches=self.skip_matches,
            )
        ]

    def describe(self) -> str:
        return f"abort({self.src}->{self.dst}, error={self.error})"


class DelayCalls(FailureScenario):
    """Primitive passthrough: Delay on one caller/callee edge."""

    kind = "delay"

    def __init__(
        self,
        src: str,
        dst: str,
        interval: _t.Union[str, float],
        pattern: str = "test-*",
        on: str = "request",
        probability: float = 1.0,
        max_matches: _t.Optional[int] = None,
        skip_matches: int = 0,
    ) -> None:
        self.src = src
        self.dst = dst
        self.interval = parse_duration(interval)
        self.pattern = pattern
        self.on = on
        self.probability = probability
        self.max_matches = max_matches
        self.skip_matches = skip_matches

    def decompose(self, graph: ApplicationGraph) -> list[FaultRule]:
        graph.validate_services([self.src, self.dst])
        return [
            delay(
                self.src,
                self.dst,
                interval=self.interval,
                pattern=self.pattern,
                on=self.on,
                probability=self.probability,
                max_matches=self.max_matches,
                skip_matches=self.skip_matches,
            )
        ]

    def describe(self) -> str:
        return f"delay({self.src}->{self.dst}, {self.interval:g}s)"


class ModifyReplies(FailureScenario):
    """Primitive passthrough: Modify on responses of one edge."""

    kind = "modify"

    def __init__(
        self,
        src: str,
        dst: str,
        pattern: _t.Union[str, bytes],
        replace_bytes: _t.Union[str, bytes],
        id_pattern: _t.Optional[str] = None,
    ) -> None:
        self.src = src
        self.dst = dst
        self.pattern = pattern
        self.replace_bytes = replace_bytes
        self.id_pattern = id_pattern

    def decompose(self, graph: ApplicationGraph) -> list[FaultRule]:
        graph.validate_services([self.src, self.dst])
        return [
            modify(
                self.src,
                self.dst,
                pattern=self.pattern,
                replace_bytes=self.replace_bytes,
                id_pattern=self.id_pattern,
            )
        ]

    def describe(self) -> str:
        return f"modify({self.src}->{self.dst})"


class Disconnect(FailureScenario):
    """Paper Section 5's ``Disconnect``: one edge answers an error.

    "Returns a HTTP error code when Service1 sends a request to
    Service2" — an Abort with ``Probability=1`` on test traffic.
    """

    kind = "disconnect"

    def __init__(
        self, service1: str, service2: str, error: int = 503, pattern: str = "test-*"
    ) -> None:
        self.service1 = service1
        self.service2 = service2
        self.error = error
        self.pattern = pattern

    def decompose(self, graph: ApplicationGraph) -> list[FaultRule]:
        graph.validate_services([self.service1, self.service2])
        return [
            abort(self.service1, self.service2, error=self.error, pattern=self.pattern)
        ]

    def describe(self) -> str:
        return f"disconnect({self.service1} -x-> {self.service2})"


class Crash(FailureScenario):
    """Paper Section 5's ``Crash``: abrupt fail-stop of a service.

    Aborts requests from *all dependents* with ``Error=-1``: "terminate
    the connection at the TCP level, and return no application error
    codes ... emulating an abrupt crash."  ``probability < 1`` gives
    the paper's *transient crashes*.
    """

    kind = "crash"

    def __init__(self, service: str, pattern: str = "test-*", probability: float = 1.0) -> None:
        self.service = service
        self.pattern = pattern
        self.probability = probability

    def decompose(self, graph: ApplicationGraph) -> list[FaultRule]:
        graph.validate_services([self.service])
        dependents = graph.dependents(self.service)
        if not dependents:
            raise RecipeError(
                f"Crash({self.service!r}): service has no dependents to observe the crash"
            )
        return [
            abort(
                dependent,
                self.service,
                error=TCP_RESET,
                pattern=self.pattern,
                probability=self.probability,
            )
            for dependent in dependents
        ]

    def describe(self) -> str:
        return f"crash({self.service})"


class Hang(FailureScenario):
    """Paper Section 5's ``Hang``: the service stops answering.

    "Software hangs are simulated using long delays (e.g., 1 hour)" on
    requests from every dependent.
    """

    kind = "hang"

    def __init__(self, service: str, interval: _t.Union[str, float] = "1h", pattern: str = "test-*") -> None:
        self.service = service
        self.interval = parse_duration(interval)
        self.pattern = pattern

    def decompose(self, graph: ApplicationGraph) -> list[FaultRule]:
        graph.validate_services([self.service])
        dependents = graph.dependents(self.service)
        if not dependents:
            raise RecipeError(f"Hang({self.service!r}): service has no dependents")
        return [
            delay(dependent, self.service, interval=self.interval, pattern=self.pattern)
            for dependent in dependents
        ]

    def describe(self) -> str:
        return f"hang({self.service}, {self.interval:g}s)"


class Overload(FailureScenario):
    """Paper Section 5's ``Overload``: mixed aborts and delays.

    "Gremlin delays 75% of requests between Service1 and its
    neighboring services by 100 milliseconds and aborts 25% of requests
    with an error code."

    Decomposition note: our agents apply the *first* matching rule, so
    the 25%/75% split is expressed as an Abort with probability
    ``abort_fraction`` followed by a Delay with probability 1.0 — every
    non-aborted request is delayed, giving exactly the paper's disjoint
    25/75 partition of the stream.
    """

    kind = "overload"

    def __init__(
        self,
        service: str,
        abort_fraction: float = 0.25,
        interval: _t.Union[str, float] = "100ms",
        error: int = 503,
        pattern: str = "test-*",
    ) -> None:
        if not 0.0 <= abort_fraction <= 1.0:
            raise RecipeError(f"abort_fraction must be in [0, 1], got {abort_fraction}")
        self.service = service
        self.abort_fraction = abort_fraction
        self.interval = parse_duration(interval)
        self.error = error
        self.pattern = pattern

    def decompose(self, graph: ApplicationGraph) -> list[FaultRule]:
        graph.validate_services([self.service])
        dependents = graph.dependents(self.service)
        if not dependents:
            raise RecipeError(f"Overload({self.service!r}): service has no dependents")
        rules: list[FaultRule] = []
        for dependent in dependents:
            if self.abort_fraction > 0:
                rules.append(
                    abort(
                        dependent,
                        self.service,
                        error=self.error,
                        pattern=self.pattern,
                        probability=self.abort_fraction,
                    )
                )
            if self.abort_fraction < 1.0:
                rules.append(
                    delay(
                        dependent,
                        self.service,
                        interval=self.interval,
                        pattern=self.pattern,
                        probability=1.0,
                    )
                )
        return rules

    def describe(self) -> str:
        return (
            f"overload({self.service}, abort={self.abort_fraction:.0%},"
            f" delay={self.interval:g}s)"
        )


class Degrade(FailureScenario):
    """Pure slowdown of a service seen by all dependents.

    Models the Spotify 2013 incident class ("degradation of a core
    internal service"): no errors, just latency.
    """

    kind = "degrade"

    def __init__(
        self, service: str, interval: _t.Union[str, float] = "1s", pattern: str = "test-*"
    ) -> None:
        self.service = service
        self.interval = parse_duration(interval)
        self.pattern = pattern

    def decompose(self, graph: ApplicationGraph) -> list[FaultRule]:
        graph.validate_services([self.service])
        dependents = graph.dependents(self.service)
        if not dependents:
            raise RecipeError(f"Degrade({self.service!r}): service has no dependents")
        return [
            delay(dependent, self.service, interval=self.interval, pattern=self.pattern)
            for dependent in dependents
        ]

    def describe(self) -> str:
        return f"degrade({self.service}, {self.interval:g}s)"


class NetworkPartition(FailureScenario):
    """Paper Section 5: partition along a cut of the application graph.

    "A network partition is implemented using a series of Abort
    operations with a TCP-level reset along the cut of an application
    graph."  Rules are installed for every edge crossing the cut, in
    whichever direction the edge points.
    """

    kind = "partition"

    def __init__(
        self,
        group_a: _t.Iterable[str],
        group_b: _t.Iterable[str],
        pattern: str = "test-*",
    ) -> None:
        self.group_a = list(group_a)
        self.group_b = list(group_b)
        self.pattern = pattern

    def decompose(self, graph: ApplicationGraph) -> list[FaultRule]:
        crossing = graph.edges_across(self.group_a, self.group_b)
        if not crossing:
            raise RecipeError(
                f"NetworkPartition: no edges cross the cut"
                f" {self.group_a} | {self.group_b}"
            )
        return [
            abort(caller, callee, error=TCP_RESET, pattern=self.pattern)
            for caller, callee in crossing
        ]

    def describe(self) -> str:
        return f"partition({self.group_a} | {self.group_b})"


class FakeSuccess(FailureScenario):
    """Paper Section 5's ``FakeSuccess``: corrupt successful replies.

    Rewrites the payload of responses from a service to all its
    dependents (e.g. ``key`` -> ``badkey``) "to trigger unexpected
    behavior in services that depend on Service1" — an input-validation
    probe.
    """

    kind = "fake_success"

    def __init__(
        self,
        service: str,
        pattern: _t.Union[str, bytes] = "key",
        replace_bytes: _t.Union[str, bytes] = "badkey",
        id_pattern: _t.Optional[str] = "test-*",
    ) -> None:
        self.service = service
        self.pattern = pattern
        self.replace_bytes = replace_bytes
        self.id_pattern = id_pattern

    def decompose(self, graph: ApplicationGraph) -> list[FaultRule]:
        graph.validate_services([self.service])
        dependents = graph.dependents(self.service)
        if not dependents:
            raise RecipeError(f"FakeSuccess({self.service!r}): service has no dependents")
        return [
            modify(
                dependent,
                self.service,
                pattern=self.pattern,
                replace_bytes=self.replace_bytes,
                id_pattern=self.id_pattern,
            )
            for dependent in dependents
        ]

    def describe(self) -> str:
        return f"fake_success({self.service})"


class RetryStorm(FailureScenario):
    """A service answers every caller with a retryable error.

    Inspired by SREGym's ``rpc_retry_storm`` problem class: unlike
    :class:`Crash` (a TCP-level reset), the service stays up but
    returns an application-level 5xx that naive clients treat as
    transient — provoking every caller's retry loop simultaneously.
    One user request amplifies into a hammering storm wherever retries
    are unbounded; callers with breakers go quiet after the threshold.
    """

    kind = "retry_storm"

    def __init__(
        self,
        service: str,
        error: int = 503,
        pattern: str = "test-*",
        probability: float = 1.0,
    ) -> None:
        self.service = service
        self.error = error
        self.pattern = pattern
        self.probability = probability

    def decompose(self, graph: ApplicationGraph) -> list[FaultRule]:
        graph.validate_services([self.service])
        dependents = graph.dependents(self.service)
        if not dependents:
            raise RecipeError(
                f"RetryStorm({self.service!r}): service has no dependents to provoke"
            )
        return [
            abort(
                dependent,
                self.service,
                error=self.error,
                pattern=self.pattern,
                probability=self.probability,
            )
            for dependent in dependents
        ]

    def describe(self) -> str:
        return f"retry_storm({self.service}, error={self.error})"


class GrayFailure(FailureScenario):
    """Slow-but-not-dead: a fraction of replies arrive late.

    The gray-failure class (SREGym's partial degradations): the
    service keeps answering correctly, but ``slow_fraction`` of its
    *responses* are delayed by ``interval``.  Health checks pass,
    errors never fire — only latency-sensitive callers (timeouts,
    hedging) notice.  ``slow_fraction=1.0`` is a deterministic
    response-path stall; fractional values exercise the probabilistic
    rule machinery.
    """

    kind = "gray_failure"

    def __init__(
        self,
        service: str,
        interval: _t.Union[str, float] = "250ms",
        slow_fraction: float = 1.0,
        pattern: str = "test-*",
    ) -> None:
        if not 0.0 <= slow_fraction <= 1.0:
            raise RecipeError(f"slow_fraction must be in [0, 1], got {slow_fraction}")
        self.service = service
        self.interval = parse_duration(interval)
        self.slow_fraction = slow_fraction
        self.pattern = pattern

    def decompose(self, graph: ApplicationGraph) -> list[FaultRule]:
        graph.validate_services([self.service])
        dependents = graph.dependents(self.service)
        if not dependents:
            raise RecipeError(f"GrayFailure({self.service!r}): service has no dependents")
        return [
            delay(
                dependent,
                self.service,
                interval=self.interval,
                pattern=self.pattern,
                on="response",
                probability=self.slow_fraction,
            )
            for dependent in dependents
        ]

    def describe(self) -> str:
        return (
            f"gray_failure({self.service}, {self.interval:g}s"
            f" on {self.slow_fraction:.0%} of replies)"
        )


class Misconfiguration(FailureScenario):
    """A deploy-time config error: wrong endpoint or garbage replies.

    SREGym's misconfiguration problems (wrong port, bad image) as seen
    from the network.  ``mode="endpoint"`` makes every call to the
    service answer 404 — the callee is up but the caller dials a route
    that does not exist.  ``mode="reply"`` leaves routing intact but
    corrupts every reply body (``reply_pattern`` -> ``replace_bytes``)
    — the always-invalid-reply shape of a service running the wrong
    build.  Both are fully deterministic.
    """

    kind = "misconfiguration"

    _MODES = ("endpoint", "reply")

    def __init__(
        self,
        service: str,
        mode: str = "endpoint",
        error: int = 404,
        reply_pattern: _t.Union[str, bytes] = "ok",
        replace_bytes: _t.Union[str, bytes] = "<garbage>",
        pattern: str = "test-*",
    ) -> None:
        if mode not in self._MODES:
            raise RecipeError(
                f"Misconfiguration mode must be one of {self._MODES}, got {mode!r}"
            )
        self.service = service
        self.mode = mode
        self.error = error
        self.reply_pattern = reply_pattern
        self.replace_bytes = replace_bytes
        self.pattern = pattern

    def decompose(self, graph: ApplicationGraph) -> list[FaultRule]:
        graph.validate_services([self.service])
        dependents = graph.dependents(self.service)
        if not dependents:
            raise RecipeError(
                f"Misconfiguration({self.service!r}): service has no dependents"
            )
        if self.mode == "endpoint":
            return [
                abort(dependent, self.service, error=self.error, pattern=self.pattern)
                for dependent in dependents
            ]
        return [
            modify(
                dependent,
                self.service,
                pattern=self.reply_pattern,
                replace_bytes=self.replace_bytes,
                id_pattern=self.pattern,
            )
            for dependent in dependents
        ]

    def describe(self) -> str:
        detail = f"error={self.error}" if self.mode == "endpoint" else "garbage replies"
        return f"misconfiguration({self.service}, {self.mode}: {detail})"


class ResourceExhaustion(FailureScenario):
    """Load-dependent degradation ending in load shedding.

    Models a service hitting a resource ceiling under arrival
    pressure: the first ``shed_after`` requests on each caller edge
    queue (a Delay of ``interval``), and every request after that is
    shed with 429 Too Many Requests.  Decomposes to an Abort armed
    with ``skip_matches=shed_after`` ahead of a Delay budgeted with
    ``max_matches=shed_after`` — first-match-wins makes the two rules
    partition the stream deterministically, exercising the skip/budget
    machinery end to end.
    """

    kind = "resource_exhaustion"

    def __init__(
        self,
        service: str,
        interval: _t.Union[str, float] = "100ms",
        shed_after: int = 4,
        error: int = 429,
        pattern: str = "test-*",
    ) -> None:
        if shed_after < 1:
            raise RecipeError(f"shed_after must be >= 1, got {shed_after}")
        self.service = service
        self.interval = parse_duration(interval)
        self.shed_after = shed_after
        self.error = error
        self.pattern = pattern

    def decompose(self, graph: ApplicationGraph) -> list[FaultRule]:
        graph.validate_services([self.service])
        dependents = graph.dependents(self.service)
        if not dependents:
            raise RecipeError(
                f"ResourceExhaustion({self.service!r}): service has no dependents"
            )
        rules: list[FaultRule] = []
        for dependent in dependents:
            rules.append(
                abort(
                    dependent,
                    self.service,
                    error=self.error,
                    pattern=self.pattern,
                    skip_matches=self.shed_after,
                )
            )
            rules.append(
                delay(
                    dependent,
                    self.service,
                    interval=self.interval,
                    pattern=self.pattern,
                    max_matches=self.shed_after,
                )
            )
        return rules

    def describe(self) -> str:
        return (
            f"resource_exhaustion({self.service}, {self.interval:g}s queueing,"
            f" shed {self.error} after {self.shed_after})"
        )


class NoOpControl(FailureScenario):
    """A control scenario that installs rules but never fires them.

    False-positive calibration (SREGym's no-op problems): the full
    injection machinery runs — rules decompose, install, and
    structurally match — but ``probability=0`` means no message is
    ever touched.  Any check that fails under a NoOpControl fails
    fault-free too, so a campaign lane running it measures the
    assertion suite's false-positive rate.
    """

    kind = "noop_control"

    def __init__(self, service: str, pattern: str = "test-*") -> None:
        self.service = service
        self.pattern = pattern

    def decompose(self, graph: ApplicationGraph) -> list[FaultRule]:
        graph.validate_services([self.service])
        dependents = graph.dependents(self.service)
        if not dependents:
            raise RecipeError(f"NoOpControl({self.service!r}): service has no dependents")
        return [
            abort(
                dependent,
                self.service,
                error=503,
                pattern=self.pattern,
                probability=0.0,
            )
            for dependent in dependents
        ]

    def describe(self) -> str:
        return f"noop_control({self.service})"
