"""Base assertions and the ``Combine`` operator (middle of Table 3).

Base assertions compute over an RList and return booleans so they can
be chained.  ``Combine`` evaluates a sequence of them in the style of a
state machine: each assertion that passes *consumes* the prefix of
records that satisfied it, and the next assertion sees only the
remainder, with its time window anchored at the consumption point —
exactly the semantics the paper uses to validate a circuit breaker
("upon seeing five API call failures, the caller should backoff for a
minute, before issuing more API calls").

Two API styles are provided, matching how the paper presents them:

* plain functions (``num_requests``, ``reply_latency``,
  ``request_rate``) for direct queries;
* assertion *classes* (:class:`CheckStatus`, :class:`AtMostRequests`,
  ...) whose instances are predicates over an RList and which
  ``Combine`` knows how to thread state through.  The classes are also
  callable so a bare ``CheckStatus(...)(rlist)`` works outside Combine.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.core.queries import RList, observed_latency, observed_status
from repro.util import parse_duration

__all__ = [
    "num_requests",
    "reply_latency",
    "request_rate",
    "StepOutcome",
    "BaseAssertion",
    "CheckStatus",
    "AtMostRequests",
    "AtLeastRequests",
    "NoRequestsFor",
    "Combine",
    "combine",
]


# -- plain query functions ----------------------------------------------------


def num_requests(
    rlist: RList,
    tdelta: _t.Union[str, float, None] = None,
    with_rule: bool = True,
) -> int:
    """Number of records in ``rlist``, optionally within a time window.

    ``tdelta`` bounds the window starting at the first record's
    timestamp (the paper's optional ``Tdelta``).

    ``with_rule`` accounting: requests the caller sent are real in both
    views — a Gremlin Abort intercepted them, but the caller *did* send
    them — so request records always count.  Records synthesized by
    Gremlin itself (abort replies) exist only in the caller-observed
    view and are excluded when ``with_rule=False``.
    """
    if not rlist:
        return 0
    records: _t.Iterable = rlist
    if tdelta is not None:
        horizon = rlist[0].timestamp + parse_duration(tdelta)
        records = (r for r in rlist if r.timestamp <= horizon)
    if with_rule:
        return sum(1 for _ in records)
    return sum(1 for r in records if not r.gremlin_generated)


def reply_latency(rlist: RList, with_rule: bool = True) -> list[float]:
    """Latency of each reply in ``rlist`` (see Table 3).

    ``with_rule=True`` gives caller-observed latencies (injected delays
    included); ``with_rule=False`` gives the callee's untampered
    timings and drops Gremlin-synthesized replies.
    """
    latencies = []
    for record in rlist:
        value = observed_latency(record, with_rule)
        if value is not None:
            latencies.append(value)
    return latencies


def request_rate(rlist: RList) -> float:
    """Rate of requests (req/sec) across the span of ``rlist``.

    A single record (or an empty list) has no measurable span; the
    rate is defined as 0.0 in that case.
    """
    if len(rlist) < 2:
        return 0.0
    span = rlist[-1].timestamp - rlist[0].timestamp
    if span <= 0:
        return 0.0
    return (len(rlist) - 1) / span


def _window_end(rlist: RList, start: int, horizon: float) -> int:
    """First index >= ``start`` whose record is past ``horizon``.

    RLists are time-sorted by contract, so the records inside a window
    form a contiguous prefix of the unconsumed suffix and two-pointer
    bisection finds its end without materializing anything.  (Manual
    bisect: :func:`bisect.bisect_right` only grew ``key=`` in 3.10.)
    """
    lo, hi = start, len(rlist)
    while lo < hi:
        mid = (lo + hi) // 2
        if rlist[mid].timestamp <= horizon:
            lo = mid + 1
        else:
            hi = mid
    return lo


def _count_in_window(rlist: RList, start: int, end: int, with_rule: bool) -> int:
    """Request count of ``rlist[start:end]`` under the accounting view."""
    if with_rule:
        return end - start
    count = 0
    for index in range(start, end):
        if not rlist[index].gremlin_generated:
            count += 1
    return count


# -- assertion classes -----------------------------------------------------------


@dataclasses.dataclass
class StepOutcome:
    """Result of one assertion step inside :class:`Combine`."""

    passed: bool
    consumed: int
    detail: str
    #: Timestamp anchoring the next step's window (None = unchanged).
    anchor: _t.Optional[float] = None


class BaseAssertion:
    """A chainable predicate over an RList.

    ``evaluate`` receives the not-yet-consumed records plus the anchor
    timestamp established by the previous step (None on the first
    step), and reports pass/fail, how many leading records it consumed,
    and the next anchor.

    ``evaluate_from`` is the zero-copy variant :class:`Combine` uses:
    it sees the *full* RList plus a start offset, so chaining steps
    never slices the list.  Subclasses may implement either method; the
    default implementations delegate to each other (``consumed`` is
    always relative to the unconsumed suffix).
    """

    def evaluate(self, rlist: RList, anchor: _t.Optional[float]) -> StepOutcome:
        return self.evaluate_from(rlist, 0, anchor)

    def evaluate_from(
        self, rlist: RList, start: int, anchor: _t.Optional[float]
    ) -> StepOutcome:
        """Evaluate over ``rlist[start:]`` without copying it.

        The fallback slices for compatibility with assertions that only
        implement :meth:`evaluate`; the built-ins all override this
        with offset-based scans so a Combine chain is one pass over one
        shared list.
        """
        if type(self).evaluate is BaseAssertion.evaluate:
            raise NotImplementedError(
                f"{type(self).__name__} must implement evaluate() or evaluate_from()"
            )
        return self.evaluate(rlist[start:] if start else rlist, anchor)

    def __call__(self, rlist: RList) -> bool:
        """Standalone evaluation over a full RList."""
        return self.evaluate(rlist, None).passed


class CheckStatus(BaseAssertion):
    """Table 3's ``CheckStatus(RList, Status, NumMatch, withRule)``.

    Passes when at least ``num_match`` records returned ``status``.
    Inside Combine it consumes the prefix through the ``num_match``-th
    matching record and anchors the next step at that record's time.
    """

    def __init__(self, status: int, num_match: int, with_rule: bool = True) -> None:
        if num_match < 1:
            raise ValueError(f"num_match must be >= 1, got {num_match}")
        self.status = status
        self.num_match = num_match
        self.with_rule = with_rule

    def evaluate_from(
        self, rlist: RList, start: int, anchor: _t.Optional[float]
    ) -> StepOutcome:
        matches = 0
        for index in range(start, len(rlist)):
            record = rlist[index]
            if observed_status(record, self.with_rule) == self.status:
                matches += 1
                if matches >= self.num_match:
                    return StepOutcome(
                        passed=True,
                        consumed=index - start + 1,
                        detail=f"found {matches} replies with status {self.status}",
                        anchor=record.timestamp,
                    )
        return StepOutcome(
            passed=False,
            consumed=len(rlist) - start,
            detail=(
                f"only {matches}/{self.num_match} records returned status"
                f" {self.status} (withRule={self.with_rule})"
            ),
        )

    def __repr__(self) -> str:
        return f"CheckStatus({self.status}, {self.num_match}, withRule={self.with_rule})"


class AtMostRequests(BaseAssertion):
    """Table 3's ``AtMostRequests(RList, Tdelta, withRule, Num)``.

    Passes when at most ``num`` records fall inside the ``tdelta``
    window following the anchor (or the first record, standalone).
    Consumes every record inside the window.
    """

    def __init__(self, tdelta: _t.Union[str, float], with_rule: bool, num: int) -> None:
        if num < 0:
            raise ValueError(f"num must be >= 0, got {num}")
        self.tdelta = parse_duration(tdelta)
        self.with_rule = with_rule
        self.num = num

    def evaluate_from(
        self, rlist: RList, start: int, anchor: _t.Optional[float]
    ) -> StepOutcome:
        if anchor is None:
            anchor = rlist[start].timestamp if start < len(rlist) else 0.0
        horizon = anchor + self.tdelta
        end = _window_end(rlist, start, horizon)
        count = _count_in_window(rlist, start, end, self.with_rule)
        passed = count <= self.num
        return StepOutcome(
            passed=passed,
            consumed=end - start,
            detail=(
                f"{count} requests within {self.tdelta:g}s window"
                f" (limit {self.num}, withRule={self.with_rule})"
            ),
            anchor=horizon,
        )

    def __repr__(self) -> str:
        return f"AtMostRequests({self.tdelta:g}s, withRule={self.with_rule}, num={self.num})"


class AtLeastRequests(BaseAssertion):
    """Dual of :class:`AtMostRequests`: at least ``num`` in the window.

    Not in Table 3 verbatim, but needed to express the recovery half of
    circuit-breaker validation ("SuccessThreshold requests should close
    the circuit breaker") and bulkhead liveness.
    """

    def __init__(self, tdelta: _t.Union[str, float], with_rule: bool, num: int) -> None:
        if num < 0:
            raise ValueError(f"num must be >= 0, got {num}")
        self.tdelta = parse_duration(tdelta)
        self.with_rule = with_rule
        self.num = num

    def evaluate_from(
        self, rlist: RList, start: int, anchor: _t.Optional[float]
    ) -> StepOutcome:
        if anchor is None:
            anchor = rlist[start].timestamp if start < len(rlist) else 0.0
        horizon = anchor + self.tdelta
        end = _window_end(rlist, start, horizon)
        count = _count_in_window(rlist, start, end, self.with_rule)
        passed = count >= self.num
        return StepOutcome(
            passed=passed,
            consumed=end - start,
            detail=(
                f"{count} requests within {self.tdelta:g}s window"
                f" (minimum {self.num}, withRule={self.with_rule})"
            ),
            anchor=horizon,
        )

    def __repr__(self) -> str:
        return f"AtLeastRequests({self.tdelta:g}s, withRule={self.with_rule}, num={self.num})"


def NoRequestsFor(tdelta: _t.Union[str, float], with_rule: bool = True) -> AtMostRequests:
    """Convenience: silence for a window (``AtMostRequests(..., 0)``)."""
    return AtMostRequests(tdelta, with_rule, 0)


# -- Combine ------------------------------------------------------------------------


@dataclasses.dataclass
class CombineResult:
    """Outcome of a full Combine evaluation."""

    passed: bool
    steps: list[StepOutcome]
    #: Records left unconsumed after the final step.
    remainder: RList

    def __bool__(self) -> bool:
        return self.passed

    def explain(self) -> str:
        """Multi-line human-readable trace of each step."""
        lines = []
        for index, step in enumerate(self.steps):
            mark = "PASS" if step.passed else "FAIL"
            lines.append(f"  step {index + 1}: [{mark}] {step.detail}")
        return "\n".join(lines)


__all__.append("CombineResult")


class Combine:
    """Table 3's ``Combine(RList, (Assertion, args)...)`` operator.

    Steps may be :class:`BaseAssertion` instances or paper-style tuples
    ``(CheckStatus, 503, 5, True)`` — a class followed by its
    constructor arguments.  Evaluation threads the RList through the
    steps: each passing step's consumed prefix is discarded before the
    next step runs ("Combine automatically discards requests that have
    triggered the first assertion before passing RList to the second").
    Evaluation short-circuits on the first failing step.
    """

    def __init__(self, *steps: _t.Union[BaseAssertion, tuple]) -> None:
        if not steps:
            raise ValueError("Combine requires at least one assertion step")
        self.steps = [self._coerce(step) for step in steps]

    @staticmethod
    def _coerce(step: _t.Union[BaseAssertion, tuple]) -> BaseAssertion:
        if isinstance(step, BaseAssertion):
            return step
        if isinstance(step, tuple) and step and callable(step[0]):
            factory, *args = step
            built = factory(*args)
            if not isinstance(built, BaseAssertion):
                raise TypeError(f"{factory!r} did not build a BaseAssertion")
            return built
        raise TypeError(f"Combine step must be a BaseAssertion or (Class, args...), got {step!r}")

    def evaluate(self, rlist: RList) -> CombineResult:
        """Run the state machine over ``rlist``.

        Single pass over one shared list: consumption advances an
        offset instead of re-slicing the RList per step, so an
        N-step chain over K records costs O(K + steps), not O(K·steps).
        """
        offset = 0
        anchor: _t.Optional[float] = None
        outcomes: list[StepOutcome] = []
        for assertion in self.steps:
            outcome = assertion.evaluate_from(rlist, offset, anchor)
            outcomes.append(outcome)
            if not outcome.passed:
                return CombineResult(passed=False, steps=outcomes, remainder=rlist[offset:])
            offset += outcome.consumed
            if outcome.anchor is not None:
                anchor = outcome.anchor
        return CombineResult(passed=True, steps=outcomes, remainder=rlist[offset:])

    def __call__(self, rlist: RList) -> bool:
        return self.evaluate(rlist).passed


def combine(rlist: RList, *steps: _t.Union[BaseAssertion, tuple]) -> bool:
    """Paper-style invocation: ``combine(RList, (CheckStatus, ...), ...)``."""
    return Combine(*steps).evaluate(rlist).passed
