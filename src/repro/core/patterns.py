"""Pattern checks (bottom block of paper Table 3).

Each check validates, purely from network observations, that a service
implements one of the resiliency design patterns of Section 2.1:

* :class:`HasTimeouts` — Src answers its upstream callers within a
  latency bound even while its own dependencies misbehave.
* :class:`HasBoundedRetries` — after repeated failures, Src sends at
  most MaxTries more requests to Dst within a window (built from
  ``Combine`` exactly as the paper's listing shows).
* :class:`HasCircuitBreaker` — Threshold failures are followed by a
  Tdelta-long silence on the wire, then recovery probes.
* :class:`HasBulkhead` — while SlowDst is degraded, Src keeps calling
  its *other* dependents at a healthy rate.

Checks return a :class:`CheckResult` rather than a bare boolean so
recipe reports can explain *why* something failed — the quick feedback
loop the paper argues makes systematic testing valuable.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.core.assertions import (
    AtLeastRequests,
    AtMostRequests,
    BaseAssertion,
    CheckStatus,
    Combine,
    StepOutcome,
    request_rate,
)
from repro.core.queries import StoreLike, get_requests, observed_status
from repro.logstore.query import Query
from repro.logstore.record import ObservationKind
from repro.util import parse_duration

__all__ = [
    "CheckResult",
    "PatternCheck",
    "CheckFailures",
    "HasTimeouts",
    "HasBoundedRetries",
    "HasCircuitBreaker",
    "HasBulkhead",
]


def _requests_scope(src, dst, id_pattern, since, until) -> Query:
    """The ``GetRequests`` query a (src, dst)-scoped check evaluates over.

    Kept in one place so every check's :meth:`PatternCheck.scopes`
    builds exactly the Query that :func:`~repro.core.queries.get_requests`
    issues — equality is what lets the QueryCache share the fetch.
    """
    return Query(
        kind=ObservationKind.REQUEST,
        src=src,
        dst=dst,
        id_pattern=id_pattern,
        since=since,
        until=until,
    )


@dataclasses.dataclass
class CheckResult:
    """Outcome of a pattern check, with explanation and evidence."""

    name: str
    passed: bool
    detail: str
    #: Check-specific evidence (counts, latencies, step traces).
    data: dict = dataclasses.field(default_factory=dict)
    #: True when there were no observations to judge — the check failed
    #: for lack of evidence, not because the pattern is proven absent.
    inconclusive: bool = False

    def __bool__(self) -> bool:
        return self.passed

    def __str__(self) -> str:
        mark = "PASS" if self.passed else ("INCONCLUSIVE" if self.inconclusive else "FAIL")
        return f"[{mark}] {self.name}: {self.detail}"


class PatternCheck:
    """Base class: a named, store-evaluable resiliency-pattern check.

    ``run`` accepts either a raw :class:`~repro.logstore.store.EventStore`
    or a :class:`~repro.core.queries.QueryCache`; the Gremlin facade
    passes a cache shared across a recipe's whole check suite so
    assertion steps scoped to the same ``(src, dst, kind)`` slice fetch
    it once.
    """

    #: Human-readable check name, set by subclasses.
    name = "pattern"

    def run(
        self,
        store: StoreLike,
        since: _t.Optional[float] = None,
        until: _t.Optional[float] = None,
    ) -> CheckResult:
        """Evaluate against the event store, optionally time-scoped."""
        raise NotImplementedError

    def scopes(
        self, since: _t.Optional[float] = None, until: _t.Optional[float] = None
    ) -> list[Query]:
        """The store queries this check will issue, when statically known.

        The facade groups the suite's scopes through a shared
        :class:`~repro.core.queries.QueryCache` so overlapping checks
        share one fetch.  Checks whose queries depend on prior results
        (e.g. dependency discovery) may return a partial list.
        """
        return []

    def _no_data(self, detail: str) -> CheckResult:
        return CheckResult(self.name, passed=False, detail=detail, inconclusive=True)

    def __eq__(self, other: object) -> bool:
        """Structural equality: same check type, same parameters.

        Mirrors :meth:`FailureScenario.__eq__` so recipes round-trip
        through the fuzzer's JSON repro artifacts.
        """
        if type(other) is not type(self):
            return NotImplemented
        return self.__dict__ == other.__dict__

    def __hash__(self) -> int:
        return hash((type(self).__name__, tuple(sorted(
            (key, repr(value)) for key, value in self.__dict__.items()
        ))))


class CheckFailures(BaseAssertion):
    """Base assertion: at least ``num_match`` *failed* outcomes.

    A failure is a 5xx status or a transport error (reset / timeout /
    refused) under the given ``with_rule`` view.  This generalizes
    ``CheckStatus`` for breaker validation, where the triggering
    failures may be resets (Crash) rather than one specific code.
    """

    def __init__(self, num_match: int, with_rule: bool = True) -> None:
        if num_match < 1:
            raise ValueError(f"num_match must be >= 1, got {num_match}")
        self.num_match = num_match
        self.with_rule = with_rule

    def evaluate_from(self, rlist, start, anchor):
        matches = 0
        for index in range(start, len(rlist)):
            record = rlist[index]
            status = observed_status(record, self.with_rule)
            failed = (status is not None and status >= 500) or record.error is not None
            if failed:
                matches += 1
                if matches >= self.num_match:
                    return StepOutcome(
                        passed=True,
                        consumed=index - start + 1,
                        detail=f"found {matches} failed calls",
                        anchor=record.timestamp,
                    )
        return StepOutcome(
            passed=False,
            consumed=len(rlist) - start,
            detail=f"only {matches}/{self.num_match} failed calls observed",
        )

    def __repr__(self) -> str:
        return f"CheckFailures({self.num_match}, withRule={self.with_rule})"


class HasTimeouts(PatternCheck):
    """``HasTimeouts(Src, MaxLatency)``: bounded upstream response time.

    Examines every reply *from* ``src`` observed by its upstream
    callers.  Violations are replies slower than ``max_latency`` and
    calls that never completed at all (a hung service).  A service with
    working timeouts answers its callers within its own budget even
    when a dependency is held by a Delay fault — the property Fig 5
    shows ElasticPress lacking.
    """

    def __init__(self, src: str, max_latency: _t.Union[str, float], id_pattern: str = "*") -> None:
        self.src = src
        self.max_latency = parse_duration(max_latency)
        self.id_pattern = id_pattern
        self.name = f"HasTimeouts({src}, {self.max_latency:g}s)"

    def scopes(self, since=None, until=None):
        shared = dict(dst=self.src, id_pattern=self.id_pattern, since=since, until=until)
        return [
            Query(kind=ObservationKind.REPLY, **shared),
            Query(kind=ObservationKind.REQUEST, **shared),
        ]

    def run(self, store, since=None, until=None):
        reply_scope, request_scope = self.scopes(since, until)
        replies = store.search(reply_scope)
        requests = store.search(request_scope)
        if not requests:
            return self._no_data(f"no upstream calls to {self.src!r} observed")
        slow = [r for r in replies if r.latency is not None and r.latency > self.max_latency]
        unanswered = [r for r in requests if r.status is None and r.error is None]
        passed = not slow and not unanswered
        detail = (
            f"{len(replies)} replies from {self.src!r}: {len(slow)} exceeded"
            f" {self.max_latency:g}s, {len(unanswered)} calls never completed"
        )
        return CheckResult(
            self.name,
            passed,
            detail,
            data={
                "replies": len(replies),
                "slow": len(slow),
                "unanswered": len(unanswered),
                "max_observed": max((r.latency for r in replies if r.latency is not None), default=0.0),
            },
        )


class HasBoundedRetries(PatternCheck):
    """``HasBoundedRetries(Src, Dst, MaxTries)`` — the paper's listing::

        RList = GetRequests(Src, Dst)
        Combine(RList, (CheckStatus, 503, 5, True),
                       (AtMostRequests, '1min', False, MaxTries))

    "if five replies with error codes are observed by Src, then Src
    should send at most MaxTries more requests to Dst within the next
    minute."

    ``failure_status=None`` widens the trigger from one specific status
    code to *any* failed call (5xx or transport error) — needed when the
    staged fault is a Crash, whose failures are TCP resets carrying no
    application status code.
    """

    def __init__(
        self,
        src: str,
        dst: str,
        max_tries: int,
        failure_status: _t.Optional[int] = 503,
        num_failures: int = 5,
        window: _t.Union[str, float] = "1min",
        id_pattern: str = "*",
    ) -> None:
        self.src = src
        self.dst = dst
        self.max_tries = max_tries
        self.failure_status = failure_status
        self.num_failures = num_failures
        self.window = window
        self.id_pattern = id_pattern
        self.name = f"HasBoundedRetries({src}, {dst}, {max_tries})"

    def scopes(self, since=None, until=None):
        return [_requests_scope(self.src, self.dst, self.id_pattern, since, until)]

    def run(self, store, since=None, until=None):
        rlist = get_requests(store, self.src, self.dst, self.id_pattern, since, until)
        if not rlist:
            return self._no_data(f"no requests {self.src!r} -> {self.dst!r} observed")
        if self.failure_status is None:
            trigger: BaseAssertion = CheckFailures(self.num_failures, with_rule=True)
            trigger_text = f"{self.num_failures} failed calls"
        else:
            trigger = CheckStatus(self.failure_status, self.num_failures, True)
            trigger_text = (
                f"{self.num_failures} failures with status {self.failure_status}"
            )
        result = Combine(
            trigger,
            (AtMostRequests, self.window, False, self.max_tries),
        ).evaluate(rlist)
        if not result.steps[0].passed:
            return self._no_data(
                f"fewer than {trigger_text} observed — fault not exercised"
            )
        return CheckResult(
            self.name,
            result.passed,
            result.steps[-1].detail,
            data={"requests": len(rlist), "trace": result.explain()},
        )


class HasCircuitBreaker(PatternCheck):
    """``HasCircuitBreaker(Src, Dst, Threshold, Tdelta, SuccessThreshold)``.

    "Threshold failed requests triggers absence of calls for Tdelta
    time.  SuccessThreshold requests should close the circuit breaker."

    Three chained steps over ``GetRequests(Src, Dst)``:

    1. ``Threshold`` failed calls are observed (any 5xx or transport
       error — Crash-induced resets count);
    2. near-silence on the wire for ``Tdelta`` (at most
       ``half_open_allowance`` probes tolerated, 0 by default — the
       paper's strict "absence of calls");
    3. when ``check_recovery`` (default True): at least
       ``success_threshold`` requests within ``recovery_window`` after
       the silent period, showing the breaker re-probes and closes.
    """

    def __init__(
        self,
        src: str,
        dst: str,
        threshold: int = 5,
        tdelta: _t.Union[str, float] = "1min",
        success_threshold: int = 1,
        half_open_allowance: int = 0,
        check_recovery: bool = True,
        recovery_window: _t.Union[str, float, None] = None,
        id_pattern: str = "*",
    ) -> None:
        self.src = src
        self.dst = dst
        self.threshold = threshold
        self.tdelta = parse_duration(tdelta)
        self.success_threshold = success_threshold
        self.half_open_allowance = half_open_allowance
        self.check_recovery = check_recovery
        self.recovery_window = (
            parse_duration(recovery_window) if recovery_window is not None else self.tdelta
        )
        self.id_pattern = id_pattern
        self.name = f"HasCircuitBreaker({src}, {dst}, {threshold}, {self.tdelta:g}s)"

    def scopes(self, since=None, until=None):
        return [_requests_scope(self.src, self.dst, self.id_pattern, since, until)]

    def run(self, store, since=None, until=None):
        rlist = get_requests(store, self.src, self.dst, self.id_pattern, since, until)
        if not rlist:
            return self._no_data(f"no requests {self.src!r} -> {self.dst!r} observed")
        steps: list = [
            CheckFailures(self.threshold, with_rule=True),
            AtMostRequests(self.tdelta, True, self.half_open_allowance),
        ]
        if self.check_recovery:
            steps.append(AtLeastRequests(self.recovery_window, True, self.success_threshold))
        result = Combine(*steps).evaluate(rlist)
        if not result.steps[0].passed:
            return self._no_data(
                f"fewer than {self.threshold} failures observed — fault not exercised"
            )
        return CheckResult(
            self.name,
            result.passed,
            "; ".join(step.detail for step in result.steps[1:]),
            data={"requests": len(rlist), "trace": result.explain()},
        )


class HasBulkhead(PatternCheck):
    """``HasBulkHead(Src, SlowDst, Rate)``.

    "Ensures that service request rate is at least Rate to dependents
    other than SlowDst" — i.e. while ``slow_dst`` is degraded, ``src``
    keeps serving its other dependencies instead of stalling on a
    shared, exhausted pool.

    ``other_dsts`` may be given explicitly; otherwise every destination
    ``src`` was observed calling (besides ``slow_dst``) is checked.
    """

    def __init__(
        self,
        src: str,
        slow_dst: str,
        rate: float,
        other_dsts: _t.Optional[_t.Sequence[str]] = None,
        id_pattern: str = "*",
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        self.src = src
        self.slow_dst = slow_dst
        self.rate = rate
        self.other_dsts = list(other_dsts) if other_dsts is not None else None
        self.id_pattern = id_pattern
        self.name = f"HasBulkhead({src}, slow={slow_dst}, rate>={rate:g}/s)"

    def scopes(self, since=None, until=None):
        if self.other_dsts is None:
            # Dependents are discovered from the trace; only the
            # discovery scan is statically known.
            return [Query(kind=ObservationKind.REQUEST, src=self.src, since=since, until=until)]
        return [
            _requests_scope(self.src, dst, self.id_pattern, since, until)
            for dst in self.other_dsts
        ]

    def run(self, store, since=None, until=None):
        others = self.other_dsts
        if others is None:
            observed = {
                record.dst
                for record in store.search(
                    Query(kind=ObservationKind.REQUEST, src=self.src, since=since, until=until)
                )
            }
            others = sorted(observed - {self.slow_dst})
        if not others:
            return self._no_data(
                f"{self.src!r} has no observed dependents other than {self.slow_dst!r}"
            )
        rates = {}
        for dst in others:
            rlist = get_requests(store, self.src, dst, self.id_pattern, since, until)
            rates[dst] = request_rate(rlist)
        starved = {dst: r for dst, r in rates.items() if r < self.rate}
        passed = not starved
        detail = (
            f"rates to other dependents: "
            + ", ".join(f"{dst}={r:.2f}/s" for dst, r in sorted(rates.items()))
            + (f"; starved: {sorted(starved)}" if starved else "")
        )
        return CheckResult(self.name, passed, detail, data={"rates": rates})
