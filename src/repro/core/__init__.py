"""The Gremlin control plane (the paper's primary contribution).

Recipe Translator, Failure Orchestrator, Assertion Checker (queries,
base assertions, Combine, pattern checks), the scenario library, the
declarative Recipe object, and the :class:`Gremlin` facade tying it to
a deployment.  :mod:`repro.core.autogen` implements the paper's
future-work sketch of automatic recipe generation.
"""

from repro.core.assertions import (
    AtLeastRequests,
    AtMostRequests,
    BaseAssertion,
    CheckStatus,
    Combine,
    CombineResult,
    NoRequestsFor,
    StepOutcome,
    combine,
    num_requests,
    reply_latency,
    request_rate,
)
from repro.core.autogen import EdgeAnnotation, generate_recipes
from repro.core.chaos import ChaosEvent, ChaosMonkey
from repro.core.gremlin import Gremlin
from repro.core.orchestrator import FailureOrchestrator, InstallationReport
from repro.core.patterns import (
    CheckFailures,
    CheckResult,
    HasBoundedRetries,
    HasBulkhead,
    HasCircuitBreaker,
    HasTimeouts,
    PatternCheck,
)
from repro.core.queries import (
    QueryCache,
    StoreLike,
    get_replies,
    get_requests,
    observed_latency,
    observed_status,
)
from repro.core.recipe import Recipe, RecipeResult
from repro.core.scenarios import (
    AbortCalls,
    Crash,
    Degrade,
    DelayCalls,
    Disconnect,
    FailureScenario,
    FakeSuccess,
    GrayFailure,
    Hang,
    Misconfiguration,
    ModifyReplies,
    NetworkPartition,
    NoOpControl,
    Overload,
    ResourceExhaustion,
    RetryStorm,
)
from repro.core.translator import RecipeTranslator

__all__ = [
    "AbortCalls",
    "AtLeastRequests",
    "AtMostRequests",
    "BaseAssertion",
    "ChaosEvent",
    "ChaosMonkey",
    "CheckFailures",
    "CheckResult",
    "CheckStatus",
    "Combine",
    "CombineResult",
    "Crash",
    "Degrade",
    "DelayCalls",
    "Disconnect",
    "EdgeAnnotation",
    "FailureOrchestrator",
    "FailureScenario",
    "FakeSuccess",
    "GrayFailure",
    "Gremlin",
    "Hang",
    "HasBoundedRetries",
    "HasBulkhead",
    "HasCircuitBreaker",
    "HasTimeouts",
    "InstallationReport",
    "Misconfiguration",
    "ModifyReplies",
    "NetworkPartition",
    "NoOpControl",
    "NoRequestsFor",
    "Overload",
    "PatternCheck",
    "QueryCache",
    "Recipe",
    "RecipeResult",
    "RecipeTranslator",
    "ResourceExhaustion",
    "RetryStorm",
    "StepOutcome",
    "StoreLike",
    "combine",
    "generate_recipes",
    "get_replies",
    "get_requests",
    "num_requests",
    "observed_latency",
    "observed_status",
    "reply_latency",
    "request_rate",
]
