"""Compact binary outcome codec for the shared-memory result lane.

The process fleet's results are JSON-ish documents
(:meth:`RecipeOutcome.to_dict` payloads): nested dicts and lists whose
leaves are ``int`` / ``float`` / ``bool`` / ``str`` / ``None``.
Successive outcomes from one campaign share almost their entire
*shape* — the same metric-label keys, the same check names, the same
nesting — and differ only in leaf values.  The codec exploits that:

* The **shape** of a document (its nesting structure, every dict's key
  tuple, every list's length, and the exact type of every leaf) is
  serialized once per worker connection and interned on both sides;
  subsequent messages reference it by id.  Nested dicts and lists are
  length-prefixed inside the shape definition.
* Each registered shape is compiled — the same move as the kernel's
  compiled rule tables — into a *packer* and a *builder* function plus
  one :class:`struct.Struct` format covering every numeric leaf, so a
  message's numbers travel as one packed ``<qd?…`` blob (latency
  samples become a contiguous float64 array) and decode with a single
  C-level ``unpack`` into a generated constructor of dict/list
  displays.  No per-token interpreter runs on the hot path.
* Leaf **strings** (statuses, service names, check names, fault kinds)
  are interned in a table synchronized by message order: the first
  occurrence ships inline, every later occurrence is a 4-byte ref, and
  the decoder returns the *same* ``str`` objects it already holds.

Anything outside the codec's domain — non-string dict keys, exotic
types, ints beyond 64 bits, strings with NULs or lone surrogates,
pathological nesting — falls back to :mod:`pickle` for that one
message (``KIND_PICKLE``); the stream stays self-describing and the
stateful tables never desynchronize because state commits only when a
codec message is actually emitted.

Encoder and decoder form a connected pair over a FIFO channel: the
decoder must observe every codec message the encoder produced, in
order.  The fleet keeps one pair per worker pipe.  A sender whose
transport can itself fail *after* encoding (the shm lane: slab write,
then pipe send) must use :meth:`ResultEncoder.encode_pending` and run
the returned commit callback only once the message is actually on its
way — a message that was encoded but never delivered then leaves the
shared tables untouched, so degrading that one result to another lane
cannot desynchronize the pair.
"""

from __future__ import annotations

import pickle
import struct
import typing as _t

__all__ = [
    "CodecError",
    "KIND_CODEC",
    "KIND_PICKLE",
    "MAX_DEPTH",
    "MAX_INTERNED_STRINGS",
    "MAX_SHAPES",
    "ResultDecoder",
    "ResultEncoder",
    "derive_shape",
    "parse_shape_def",
    "shape_def_bytes",
]

#: First byte of every message: how the rest of the body is encoded.
KIND_CODEC = 0
KIND_PICKLE = 1

#: Structural bounds; documents exceeding them use the pickle fallback.
MAX_DEPTH = 32
MAX_NODES = 200_000
MAX_SHAPES = 64
MAX_INTERNED_STRINGS = 4096

#: String-table ref meaning "take the next inline string".
_INLINE_REF = 0xFFFFFFFF

_SCALAR_TAGS = {"q", "d", "?", "s", "n"}


class CodecError(Exception):
    """A message body could not be decoded (corrupt or out of sync)."""


class _Fallback(Exception):
    """Internal: the value is outside the codec's domain."""


class _Mismatch(Exception):
    """Internal: a document does not fit a compiled shape."""


# -- shape derivation and wire form -------------------------------------------


def derive_shape(value: _t.Any, _depth: int = 0) -> _t.Any:
    """The hashable shape of ``value``: structure + keys + leaf types.

    Leaves map to struct-format tags (``q`` int64, ``d`` float64,
    ``?`` bool, plus ``s`` string and ``n`` None); containers map to
    ``('L', children)`` / ``('D', keys, children)`` tuples.  Raises
    :class:`_Fallback` for anything the codec does not model.
    """
    if _depth > MAX_DEPTH:
        raise _Fallback("nesting too deep")
    kind = type(value)
    if kind is bool:  # before int: bool is an int subclass
        return "?"
    if kind is int:
        return "q"
    if kind is float:
        return "d"
    if kind is str:
        return "s"
    if value is None:
        return "n"
    if kind is list:
        return ("L", tuple(derive_shape(item, _depth + 1) for item in value))
    if kind is dict:
        keys = tuple(value.keys())
        for key in keys:
            if type(key) is not str:
                raise _Fallback(f"non-string dict key: {key!r}")
        return (
            "D",
            keys,
            tuple(derive_shape(item, _depth + 1) for item in value.values()),
        )
    raise _Fallback(f"unsupported type {kind.__name__}")


def _shape_nodes(shape: _t.Any) -> int:
    if isinstance(shape, str):
        return 1
    if shape[0] == "L":
        return 1 + sum(_shape_nodes(child) for child in shape[1])
    return 1 + len(shape[1]) + sum(_shape_nodes(child) for child in shape[2])


def _uvarint(value: int) -> bytes:
    out = bytearray()
    while True:
        bits = value & 0x7F
        value >>= 7
        out.append(bits | (0x80 if value else 0))
        if not value:
            return bytes(out)


def _read_uvarint(buf, index: int) -> tuple[int, int]:
    shift = 0
    value = 0
    while True:
        try:
            byte = buf[index]
        except IndexError:
            raise CodecError("truncated varint") from None
        index += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, index
        shift += 7
        if shift > 63:
            raise CodecError("varint too long")


def shape_def_bytes(shape: _t.Any) -> bytes:
    """Serialize a shape for the once-per-shape wire definition.

    Containers are length-prefixed — the count of a list's elements or
    a dict's keys is part of the definition, so messages themselves
    never carry container sizes.
    """
    parts: list[bytes] = []

    def emit(node: _t.Any) -> None:
        if isinstance(node, str):
            parts.append(node.encode("ascii"))
            return
        if node[0] == "L":
            parts.append(b"L" + _uvarint(len(node[1])))
            for child in node[1]:
                emit(child)
            return
        keys, children = node[1], node[2]
        parts.append(b"D" + _uvarint(len(keys)))
        for key in keys:
            raw = key.encode("utf-8")
            parts.append(_uvarint(len(raw)) + raw)
        for child in children:
            emit(child)

    emit(shape)
    return b"".join(parts)


def parse_shape_def(buf: bytes) -> _t.Any:
    """Inverse of :func:`shape_def_bytes`; raises :class:`CodecError`."""

    def parse(index: int, depth: int) -> tuple[_t.Any, int]:
        if depth > MAX_DEPTH:
            raise CodecError("shape definition nests too deeply")
        try:
            tag = chr(buf[index])
        except IndexError:
            raise CodecError("truncated shape definition") from None
        index += 1
        if tag in _SCALAR_TAGS:
            return tag, index
        if tag == "L":
            count, index = _read_uvarint(buf, index)
            children = []
            for _ in range(count):
                child, index = parse(index, depth + 1)
                children.append(child)
            return ("L", tuple(children)), index
        if tag == "D":
            count, index = _read_uvarint(buf, index)
            keys = []
            for _ in range(count):
                length, index = _read_uvarint(buf, index)
                raw = bytes(buf[index : index + length])
                if len(raw) != length:
                    raise CodecError("truncated shape key")
                index += length
                try:
                    keys.append(raw.decode("utf-8"))
                except UnicodeDecodeError as exc:
                    raise CodecError(f"bad shape key: {exc}") from None
            children = []
            for _ in range(count):
                child, index = parse(index, depth + 1)
                children.append(child)
            return ("D", tuple(keys), tuple(children)), index
        raise CodecError(f"unknown shape tag {tag!r}")

    shape, index = parse(0, 0)
    if index != len(buf):
        raise CodecError("trailing bytes after shape definition")
    return shape


# -- shape compilation --------------------------------------------------------


class _CompiledShape:
    """A shape compiled to straight-line pack/build functions.

    ``pack(doc, nums, strs)`` walks a document that is *claimed* to fit
    the shape, appending numeric leaves to ``nums`` and string leaves
    to ``strs``; any structural deviation raises :class:`_Mismatch`.
    ``build(nums, strs)`` is the inverse constructor over a decoded
    numeric tuple and resolved string list.  Both are generated source
    (dict/list displays, ``dict(zip(...))``, slices — all C-level
    operations), compiled once and reused for every message.
    """

    __slots__ = ("shape", "definition", "pack", "build", "struct", "types", "n_strings")

    def __init__(self, shape: _t.Any) -> None:
        self.shape = shape
        self.definition = shape_def_bytes(shape)
        fmt: list[str] = []
        n_strings = 0
        consts: dict[str, _t.Any] = {}
        pack_lines: list[str] = []
        counter = [0]

        def const(obj: _t.Any) -> str:
            name = f"K{len(consts)}"
            consts[name] = obj
            return name

        def gen(node: _t.Any, path: str) -> str:
            nonlocal n_strings
            if node == "n":
                pack_lines.append(f"if {path} is not None: raise Mismatch")
                return "None"
            if node in ("q", "d", "?"):
                slot = len(fmt)
                fmt.append(node)
                pack_lines.append(f"nums.append({path})")
                return f"nums[{slot}]"
            if node == "s":
                slot = n_strings
                n_strings += 1
                pack_lines.append(f"strs.append({path})")
                return f"strs[{slot}]"
            if node[0] == "L":
                children = node[1]
                pack_lines.append(
                    f"if type({path}) is not list or len({path}) != {len(children)}:"
                    " raise Mismatch"
                )
                if children and all(c in ("q", "d", "?") for c in children):
                    start = len(fmt)
                    fmt.extend(children)
                    pack_lines.append(f"nums.extend({path})")
                    return f"list(nums[{start}:{start + len(children)}])"
                if children and all(c == "s" for c in children):
                    start = n_strings
                    n_strings += len(children)
                    pack_lines.append(f"strs.extend({path})")
                    return f"strs[{start}:{start + len(children)}]"
                name = f"v{counter[0]}"
                counter[0] += 1
                items = []
                for pos, child in enumerate(children):
                    pack_lines.append(f"{name}_{pos} = {path}[{pos}]")
                    items.append(gen(child, f"{name}_{pos}"))
                return "[" + ", ".join(items) + "]"
            keys, children = node[1], node[2]
            key_list = const(list(keys))
            pack_lines.append(
                f"if type({path}) is not dict or list({path}) != {key_list}:"
                " raise Mismatch"
            )
            if children and all(c in ("q", "d", "?") for c in children):
                start = len(fmt)
                fmt.extend(children)
                key_tuple = const(keys)
                pack_lines.append(f"nums.extend({path}.values())")
                return (
                    f"dict(zip({key_tuple},"
                    f" nums[{start}:{start + len(children)}]))"
                )
            if children and all(c == "s" for c in children):
                start = n_strings
                n_strings += len(children)
                key_tuple = const(keys)
                pack_lines.append(f"strs.extend({path}.values())")
                return (
                    f"dict(zip({key_tuple},"
                    f" strs[{start}:{start + len(children)}]))"
                )
            name = f"v{counter[0]}"
            counter[0] += 1
            pack_lines.append(f"{name} = list({path}.values())")
            entries = []
            for pos, (key, child) in enumerate(zip(keys, children)):
                pack_lines.append(f"{name}_{pos} = {name}[{pos}]")
                entries.append(f"{key!r}: " + gen(child, f"{name}_{pos}"))
            return "{" + ", ".join(entries) + "}"

        build_expr = gen(node=self.shape, path="doc")
        namespace: dict[str, _t.Any] = dict(consts)
        namespace["Mismatch"] = _Mismatch
        pack_src = "def pack(doc, nums, strs):\n" + "".join(
            f"    {line}\n" for line in (pack_lines or ["pass"])
        )
        exec(compile(pack_src, "<codec-pack>", "exec"), namespace)
        build_src = f"def build(nums, strs):\n    return {build_expr}\n"
        exec(compile(build_src, "<codec-build>", "exec"), namespace)
        self.pack = namespace["pack"]
        self.build = namespace["build"]
        self.struct = struct.Struct("<" + "".join(fmt))
        leaf_types = {"q": int, "d": float, "?": bool}
        self.types = [leaf_types[tag] for tag in fmt]
        self.n_strings = n_strings


# -- the stateful encoder/decoder pair ----------------------------------------


def _commit_nothing() -> None:
    """Commit callback for stateless (pickle-fallback) messages."""


class ResultEncoder:
    """Worker-side half of the codec: values in, message bodies out.

    :meth:`encode` always succeeds — values outside the codec's domain
    become pickle-fallback messages — and only mutates the shared
    shape/string state when a codec message is actually returned, so a
    fallback can never desynchronize the decoder.  When delivery itself
    can fail after encoding, use :meth:`encode_pending` instead and
    invoke the commit callback only once the message is safely sent.
    """

    #: Compiled shapes tried before a full re-derivation; campaigns
    #: alternate between a handful of shapes (pass vs fail vs error).
    MRU_TRIES = 3

    def __init__(self) -> None:
        self._shapes: dict[_t.Any, tuple[int, _CompiledShape]] = {}
        self._mru: list[tuple[int, _CompiledShape]] = []
        self._strings: dict[str, int] = {}

    def _try_pack(
        self, compiled: _CompiledShape, value: _t.Any
    ) -> _t.Optional[tuple[list, list]]:
        nums: list = []
        strs: list = []
        try:
            compiled.pack(value, nums, strs)
        except Exception:  # _Mismatch or a type error from a probe line
            return None
        if list(map(type, nums)) != compiled.types:
            return None
        for item in strs:
            if type(item) is not str:
                return None
        return nums, strs

    def encode(self, value: _t.Any) -> bytes:
        """One message body (``KIND_CODEC`` or ``KIND_PICKLE``)."""
        body, commit = self.encode_pending(value)
        commit()
        return body

    def encode_pending(
        self, value: _t.Any
    ) -> tuple[bytes, _t.Callable[[], None]]:
        """Encode without committing shared state: ``(body, commit)``.

        The encoder's shape/string tables advance only when ``commit``
        runs; call it exactly once, *after* the body has actually been
        delivered.  A body that is dropped instead (slab write or pipe
        send failed, caller degraded to another transport) must never
        be committed — the decoder did not see it, and committing would
        permanently desynchronize the FIFO pair.  Pickle-fallback
        bodies are stateless; their commit is a no-op.
        """
        pending = self._encode_codec(value)
        if pending is not None:
            return pending
        body = bytes([KIND_PICKLE]) + pickle.dumps(
            value, protocol=pickle.HIGHEST_PROTOCOL
        )
        return body, _commit_nothing

    def _encode_codec(
        self, value: _t.Any
    ) -> _t.Optional[tuple[bytes, _t.Callable[[], None]]]:
        packed = None
        shape_id = None
        compiled = None
        for known_id, known in self._mru[: self.MRU_TRIES]:
            packed = self._try_pack(known, value)
            if packed is not None:
                shape_id, compiled = known_id, known
                break
        is_new_shape = False
        if packed is None:
            try:
                shape = derive_shape(value)
            except (_Fallback, RecursionError):
                return None
            known_entry = self._shapes.get(shape)
            if known_entry is not None:
                shape_id, compiled = known_entry
            else:
                if len(self._shapes) >= MAX_SHAPES or _shape_nodes(shape) > MAX_NODES:
                    return None
                try:
                    compiled = _CompiledShape(shape)
                except Exception:  # noqa: BLE001 - e.g. un-encodable key
                    return None
                shape_id = len(self._shapes)
                is_new_shape = True
            packed = self._try_pack(compiled, value)
            if packed is None:  # pragma: no cover - derive/pack disagree
                return None
        nums, strs = packed
        try:
            numeric_blob = compiled.struct.pack(*nums)
        except (struct.error, OverflowError, SystemError):
            return None  # e.g. an int beyond 64 bits
        refs: list[int] = []
        inline: list[str] = []
        pending: dict[str, int] = {}
        table = self._strings
        for item in strs:
            ref = table.get(item)
            if ref is None:
                ref = pending.get(item)
            if ref is None:
                if "\x00" in item:
                    return None
                inline.append(item)
                if len(table) + len(pending) < MAX_INTERNED_STRINGS:
                    pending[item] = len(table) + len(pending)
                refs.append(_INLINE_REF)
            else:
                refs.append(ref)
        try:
            inline_blob = "\x00".join(inline).encode("utf-8")
        except UnicodeEncodeError:
            return None  # lone surrogates: pickle round-trips them
        parts = [bytes([KIND_CODEC])]
        if is_new_shape:
            parts.append(_uvarint(0))
            parts.append(_uvarint(len(compiled.definition)))
            parts.append(compiled.definition)
        else:
            parts.append(_uvarint(shape_id + 1))
        parts.append(_uvarint(len(refs)))
        parts.append(struct.pack(f"<{len(refs)}I", *refs))
        parts.append(_uvarint(len(inline_blob)))
        parts.append(inline_blob)
        parts.append(numeric_blob)
        body = b"".join(parts)

        def commit() -> None:
            # Runs only once the message is actually delivered: the
            # decoder advances its tables on receipt, so the encoder
            # must advance in lockstep — no sooner.
            table.update(pending)
            if is_new_shape:
                self._shapes[compiled.shape] = (shape_id, compiled)
            entry = (shape_id, compiled)
            if not self._mru or self._mru[0] != entry:
                try:
                    self._mru.remove(entry)
                except ValueError:
                    pass
                self._mru.insert(0, entry)

        return body, commit


class ResultDecoder:
    """Parent-side half of the codec; pairs with one :class:`ResultEncoder`.

    Decoding is strict: a generation-skewed, truncated, or corrupt body
    raises :class:`CodecError` (the fleet converts that into the crash
    path for the worker, whose codec state can no longer be trusted).
    """

    def __init__(self) -> None:
        self._shapes: list[_CompiledShape] = []
        self._strings: list[str] = []

    def decode(self, buf) -> _t.Any:
        """Rebuild the value from one message body (bytes-like)."""
        if len(buf) < 1:
            raise CodecError("empty message body")
        kind = buf[0]
        if kind == KIND_PICKLE:
            try:
                return pickle.loads(buf[1:])
            except Exception as exc:
                raise CodecError(f"pickle fallback failed: {exc}") from exc
        if kind != KIND_CODEC:
            raise CodecError(f"unknown message kind {kind}")
        token, index = _read_uvarint(buf, 1)
        if token == 0:
            def_len, index = _read_uvarint(buf, index)
            definition = bytes(buf[index : index + def_len])
            if len(definition) != def_len:
                raise CodecError("truncated shape definition")
            index += def_len
            if len(self._shapes) >= MAX_SHAPES:
                raise CodecError("shape table overflow")
            compiled = _CompiledShape(parse_shape_def(definition))
            self._shapes.append(compiled)
        else:
            try:
                compiled = self._shapes[token - 1]
            except IndexError:
                raise CodecError(f"unknown shape id {token - 1}") from None
        n_refs, index = _read_uvarint(buf, index)
        if n_refs != compiled.n_strings:
            raise CodecError("string count does not match shape")
        end = index + 4 * n_refs
        if end > len(buf):
            raise CodecError("truncated string refs")
        refs = struct.unpack_from(f"<{n_refs}I", buf, index)
        index = end
        inline_len, index = _read_uvarint(buf, index)
        inline_blob = bytes(buf[index : index + inline_len])
        if len(inline_blob) != inline_len:
            raise CodecError("truncated inline strings")
        index += inline_len
        if index + compiled.struct.size != len(buf):
            raise CodecError("numeric blob length does not match shape")
        nums = compiled.struct.unpack_from(buf, index)
        n_inline = refs.count(_INLINE_REF)
        if n_inline:
            try:
                inline = inline_blob.decode("utf-8").split("\x00")
            except UnicodeDecodeError as exc:
                raise CodecError(f"bad inline strings: {exc}") from None
            if len(inline) != n_inline:
                raise CodecError("inline string count mismatch")
        else:
            if inline_len:
                raise CodecError("unexpected inline strings")
            inline = []
        table = self._strings
        strs: list[str] = []
        inline_iter = iter(inline)
        for ref in refs:
            if ref == _INLINE_REF:
                item = next(inline_iter)
                strs.append(item)
                if len(table) < MAX_INTERNED_STRINGS:
                    table.append(item)
            else:
                try:
                    strs.append(table[ref])
                except IndexError:
                    raise CodecError(f"unknown string ref {ref}") from None
        try:
            return compiled.build(nums, strs)
        except Exception as exc:  # pragma: no cover - build is total
            raise CodecError(f"shape rebuild failed: {exc}") from exc
