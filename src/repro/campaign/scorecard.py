"""Resilience scorecards: campaign outcomes folded per service/pattern.

A campaign answers 40 small questions ("does the webapp bound its
retries against the database?"); the scorecard folds them into the one
table an operator actually reads: for each service, which resiliency
patterns held under fault and which did not.  Rendering goes through
:func:`repro.analysis.report.text_table` so campaign reports look like
every other report in the repo.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.analysis.report import text_table
from repro.campaign.plan import PATTERN_RANK
from repro.campaign.results import RecipeOutcome

__all__ = ["PatternScore", "Scorecard"]


@dataclasses.dataclass
class PatternScore:
    """Tally of one (service, pattern) cell."""

    total: int = 0
    passed: int = 0
    failed: int = 0
    inconclusive: int = 0
    flaky: int = 0
    broken: int = 0
    #: timeout / error / skipped outcomes — executions, not verdicts.
    unscored: int = 0

    def add(self, outcome: RecipeOutcome) -> None:
        self.total += 1
        if outcome.status == "pass":
            self.passed += 1
        elif outcome.status == "fail":
            self.failed += 1
            if outcome.classification == "flaky":
                self.flaky += 1
            elif outcome.classification == "broken":
                self.broken += 1
        elif outcome.status == "inconclusive":
            self.inconclusive += 1
        else:
            self.unscored += 1

    def merge(self, other: "PatternScore") -> None:
        for field in dataclasses.fields(self):
            setattr(
                self,
                field.name,
                getattr(self, field.name) + getattr(other, field.name),
            )

    @property
    def conclusive(self) -> int:
        """Executions that produced a verdict either way."""
        return self.passed + self.failed

    def cell(self) -> str:
        """Compact table cell: ``passed/total`` plus markers —
        ``~`` flaky, ``!`` broken, ``?`` inconclusive present."""
        if self.total == 0:
            return "-"
        marks = ""
        if self.flaky:
            marks += "~"
        if self.broken:
            marks += "!"
        if self.inconclusive:
            marks += "?"
        return f"{self.passed}/{self.total}{marks}"

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


class Scorecard:
    """Per-service / per-pattern aggregation of campaign outcomes."""

    def __init__(self) -> None:
        self.cells: dict[tuple[str, str], PatternScore] = {}
        #: (recipe name, serialized FaultAttribution dict) per failing
        #: recipe — the "why" behind every failed cell.
        self.attributions: list[tuple[str, dict]] = []

    @classmethod
    def from_outcomes(cls, outcomes: _t.Iterable[RecipeOutcome]) -> "Scorecard":
        card = cls()
        for outcome in outcomes:
            card.add(outcome)
        return card

    def add(self, outcome: RecipeOutcome) -> None:
        key = (outcome.service, outcome.pattern)
        score = self.cells.get(key)
        if score is None:
            score = self.cells[key] = PatternScore()
        score.add(outcome)
        for attribution in outcome.attributions:
            self.attributions.append((outcome.name, attribution))

    @property
    def services(self) -> list[str]:
        """All scored services, sorted."""
        return sorted({service for service, _ in self.cells})

    @property
    def patterns(self) -> list[str]:
        """All scored patterns, hard failures first."""
        return sorted(
            {pattern for _, pattern in self.cells},
            key=lambda p: (PATTERN_RANK.get(p, 99), p),
        )

    def service_score(self, service: str) -> PatternScore:
        """All of one service's cells merged."""
        merged = PatternScore()
        for (svc, _), score in self.cells.items():
            if svc == service:
                merged.merge(score)
        return merged

    def pattern_score(self, pattern: str) -> PatternScore:
        """All of one pattern's cells merged."""
        merged = PatternScore()
        for (_, pat), score in self.cells.items():
            if pat == pattern:
                merged.merge(score)
        return merged

    def service_verdicts(self) -> dict[str, str]:
        """Per-service verdict for the resilience report.

        * ``vulnerable`` — at least one deterministic failure (a failed
          cell that no reseeded rerun passed);
        * ``at-risk`` — only flaky failures, or inconclusive/unscored
          executions clouding the evidence;
        * ``resilient`` — every conclusive execution passed;
        * ``untested`` — no executions produced a verdict at all.
        """
        verdicts: dict[str, str] = {}
        for service in self.services:
            merged = self.service_score(service)
            if merged.failed > merged.flaky:
                verdicts[service] = "vulnerable"
            elif merged.flaky or merged.inconclusive or merged.unscored:
                verdicts[service] = "at-risk"
            elif merged.passed:
                verdicts[service] = "resilient"
            else:
                verdicts[service] = "untested"
        return verdicts

    def totals(self) -> PatternScore:
        """Everything merged — the campaign's headline numbers."""
        merged = PatternScore()
        for score in self.cells.values():
            merged.merge(score)
        return merged

    def text(self, title: _t.Optional[str] = "resilience scorecard") -> str:
        """Render as an aligned table (one row per service).

        Cell legend: ``passed/total``, ``~`` flaky, ``!`` broken,
        ``?`` inconclusive, ``-`` pattern not tested on that service.
        """
        patterns = self.patterns
        empty = PatternScore()
        rows = []
        for service in self.services:
            row: list[str] = [service]
            for pattern in patterns:
                row.append(self.cells.get((service, pattern), empty).cell())
            merged = self.service_score(service)
            row.append(
                f"{merged.passed}/{merged.conclusive}"
                if merged.conclusive
                else "-"
            )
            rows.append(row)
        total_row: list[str] = ["TOTAL"]
        for pattern in patterns:
            total_row.append(self.pattern_score(pattern).cell())
        totals = self.totals()
        total_row.append(
            f"{totals.passed}/{totals.conclusive}" if totals.conclusive else "-"
        )
        rows.append(total_row)
        table = text_table(["service"] + patterns + ["score"], rows, title=title)
        if not self.attributions:
            return table
        return table + "\n" + self.attribution_section()

    def attribution_section(self, limit: int = 10) -> str:
        """Human-readable fault attributions for the failed cells.

        One line per (recipe, attribution): the injected fault, the
        rule that fired, and the propagation path to the entry edge —
        so the operator reads *why* a cell failed without re-running
        anything.
        """
        from repro.observability.attribution import FaultAttribution

        lines = ["fault attribution (failed recipes):"]
        for recipe_name, doc in self.attributions[:limit]:
            attribution = FaultAttribution.from_dict(doc)
            lines.append(f"  {recipe_name} :: {attribution.describe()}")
        hidden = len(self.attributions) - limit
        if hidden > 0:
            lines.append(f"  ... and {hidden} more (see the campaign dump)")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "services": {
                service: {
                    pattern: self.cells[(service, pattern)].to_dict()
                    for pattern in self.patterns
                    if (service, pattern) in self.cells
                }
                for service in self.services
            },
            "totals": self.totals().to_dict(),
        }

    def __repr__(self) -> str:
        totals = self.totals()
        return (
            f"<Scorecard services={len(self.services)}"
            f" recipes={totals.total} passed={totals.passed}>"
        )
